// Ablation study (DESIGN.md): how much of the data-driven methods'
// advantage comes from the fanout join method vs merely modeling
// single-table distributions well? Runs BayesCard / DeepDB / FLAT twice on
// STATS-CEB — once with the fanout method (default) and once falling back
// to join-uniformity over the same single-table models — and additionally
// sweeps the SPN/FSPN RDC thresholds. The expected shape: removing the
// fanout method collapses these methods to histogram-level join quality
// (paper §5.1 credits the fanout independence balance for their accuracy).

#include <cstdio>

#include "cardest/bayescard_est.h"
#include "cardest/deepdb_est.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"

namespace cardbench {
namespace {

void Report(BenchEnv& env, const std::string& label,
            CardinalityEstimator& est, double pg_exec) {
  const auto run = env.RunEstimator(est);
  const Percentiles q = ComputePercentiles(run.AllQErrors());
  const Percentiles p = ComputePercentiles(run.AllPErrors());
  std::printf("%-28s exec %10s (%+6.1f%% vs PG)  Q50 %-8s Q99 %-10s P50 %6.3f "
              "P99 %8.3f\n",
              label.c_str(), FormatDuration(run.TotalExecSeconds()).c_str(),
              100.0 * (pg_exec - run.TotalExecSeconds()) / pg_exec,
              FormatCount(q.p50).c_str(), FormatCount(q.p99).c_str(), p.p50,
              p.p99);
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  auto pg = env.MakeNamedEstimator("PostgreSQL");
  CARDBENCH_CHECK(pg.ok(), "PostgreSQL failed");
  const double pg_exec = env.RunEstimator(**pg).TotalExecSeconds();
  std::printf("Ablation on STATS-CEB (scale=%.2f); PostgreSQL exec %s\n\n",
              flags.scale, FormatDuration(pg_exec).c_str());

  // --- Fanout join method on/off. ---
  std::printf("-- fanout join method vs join uniformity --\n");
  {
    BayesCardEstimator bn(env.db());
    Report(env, "BayesCard (fanout)", bn, pg_exec);
    bn.set_use_fanout_join(false);
    Report(env, "BayesCard (uniformity)", bn, pg_exec);
  }
  {
    DeepDbEstimator spn(env.db());
    Report(env, "DeepDB (fanout)", spn, pg_exec);
    spn.set_use_fanout_join(false);
    Report(env, "DeepDB (uniformity)", spn, pg_exec);
  }
  {
    FlatEstimator fspn(env.db());
    Report(env, "FLAT (fanout)", fspn, pg_exec);
    fspn.set_use_fanout_join(false);
    Report(env, "FLAT (uniformity)", fspn, pg_exec);
  }

  // --- RDC-style threshold sweep for the SPN/FSPN learners. ---
  std::printf("\n-- SPN/FSPN dependence-threshold sweep --\n");
  for (const double independence : {0.15, 0.3, 0.6}) {
    SpnOptions options;
    options.independence_threshold = independence;
    DeepDbEstimator spn(env.db(), 48, options);
    Report(env, StrFormat("DeepDB (indep=%.2f)", independence), spn, pg_exec);
  }
  for (const double high : {0.5, 0.7, 0.9}) {
    SpnOptions options;
    options.high_correlation_threshold = high;
    FlatEstimator fspn(env.db(), 48, options);
    Report(env, StrFormat("FLAT (factorize=%.2f)", high), fspn, pg_exec);
  }
  std::printf("\n(expected: uniformity variants collapse toward "
              "histogram-level join quality; thresholds trade model size "
              "for accuracy)\n");
  return 0;
}
