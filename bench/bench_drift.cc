// Drift benchmark for the online-refresh pipeline: models are trained on
// the 50% of STATS created before the timestamp cutoff, the remaining rows
// stream in as timestamp-ordered micro-batches, and the serving stack
// (EstimationService) answers the STATS-CEB workload under three refresh
// policies:
//
//   no_refresh    — the stale models keep serving, never updated;
//   incremental   — every micro-batch goes through RefreshIncremental
//                   (reservoir merge / histogram merge / warm-start
//                   boosting / warm-start NN and MSCN fine-tune epochs),
//                   models mutate in place;
//   full_retrain  — every micro-batch triggers a from-scratch retrain on
//                   the current data, hot-swapped in via HotSwapEstimator.
//
// After the last batch the streamed database holds the same rows as the
// full data, so the env workload's exact sub-plan cardinalities score all
// three policies. Per estimator and mode we report median/P99 sub-plan
// Q-Error, median P-Error, serving latency P50/P99 through the service,
// and the total refresh wall-clock. The shape to verify: incremental
// refresh stays within ~2x of the full-retrain median Q-Error at a >= 5x
// cheaper refresh cost, while no_refresh drifts. Results go to stdout and
// bench_drift.json (consumed by scripts/run_all_benches.sh and validated
// by scripts/check_bench_json.sh).

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardest/insertion_batch.h"
#include "cardest/registry.h"
#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "datagen/streaming_feed.h"
#include "datagen/update_split.h"
#include "exec/true_card.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"
#include "optimizer/optimizer.h"
#include "service/estimation_service.h"

namespace cardbench {
namespace {

struct ModeResult {
  Percentiles qerror;
  Percentiles perror;
  Percentiles latency;  // seconds, over whole-query service requests
  double refresh_seconds = 0.0;
  uint64_t model_version = 0;
};

// Re-labels the first `count` training queries against `db`'s current
// contents (the refresh workload of the query-driven estimators: same query
// shapes, post-insert cardinalities). Queries the tight-limited service
// cannot answer are skipped.
std::vector<TrainingQuery> Relabel(const std::vector<TrainingQuery>& source,
                                   const Database& db, size_t count) {
  ExecLimits limits;
  limits.timeout_seconds = 10.0;
  limits.max_intermediate_tuples = 20000000;
  TrueCardService service(db, limits);
  std::vector<TrainingQuery> out;
  out.reserve(std::min(count, source.size()));
  for (size_t i = 0; i < source.size() && out.size() < count; ++i) {
    auto card = service.Card(source[i].query);
    if (!card.ok()) continue;
    out.push_back({source[i].query, *card});
  }
  return out;
}

// Scores one registered estimator through the serving stack: every workload
// query is answered as one whole-query service request (timed), sub-plan
// estimates are compared against the env's exact cardinalities, and the
// chosen plan is re-costed under truth for P-Error.
ModeResult Score(BenchEnv& env, EstimationService& service,
                 const std::string& name) {
  ModeResult result;
  std::vector<double> qerrors, perrors, latencies;
  const CardinalityEstimator* model = service.GetEstimator(name);
  CARDBENCH_CHECK(model != nullptr, "estimator %s not registered",
                  name.c_str());
  for (const auto& ctx : env.query_contexts()) {
    Stopwatch watch;
    auto cards = service.EstimateQuerySync(name, *ctx.graph);
    latencies.push_back(watch.ElapsedSeconds());
    CARDBENCH_CHECK(cards.ok(), "service estimation failed for %s: %s",
                    ctx.query->name.c_str(), cards.status().ToString().c_str());
    for (const auto& [mask, est] : *cards) {
      auto it = ctx.true_cards.find(mask);
      if (it != ctx.true_cards.end()) {
        qerrors.push_back(QError(est, it->second));
      }
    }
    auto plan = env.optimizer().Plan(*ctx.graph, *model);
    CARDBENCH_CHECK(plan.ok(), "planning failed for %s: %s",
                    ctx.query->name.c_str(), plan.status().ToString().c_str());
    const double cost_true =
        env.optimizer().RecostWithCards(*plan->plan, ctx.true_cards);
    perrors.push_back(ctx.true_plan_cost > 0
                          ? cost_true / ctx.true_plan_cost
                          : 1.0);
  }
  result.qerror = ComputePercentiles(std::move(qerrors));
  result.perror = ComputePercentiles(std::move(perrors));
  result.latency = ComputePercentiles(std::move(latencies));
  return result;
}

int Run(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"UniSample", "MultiHist", "LW-XGB", "LW-NN", "MSCN"};
  }
  // Streaming cadence: enough micro-batches that the per-event economics
  // show (incremental refresh cost is ~constant in the batch count — it
  // tracks the total inserted rows — while the full-retrain policy pays a
  // from-scratch build per batch).
  const size_t num_batches = flags.fast ? 3 : 12;
  const size_t refresh_queries = flags.fast ? 96 : 384;

  std::printf("drift bench: STATS scale=%.2f, 50%% timestamp split, %zu "
              "micro-batches, %zu refresh queries\n\n",
              flags.scale, num_batches, refresh_queries);

  // Two identical generations of the data (same config + seed), each split
  // at the median creation timestamp. `stale` is never touched again — its
  // models serve the no_refresh mode. `streamed` receives the micro-batches
  // and backs both refresh policies.
  StatsGenConfig config;
  config.scale = flags.scale;
  config.seed = flags.seed;
  auto gen_stale = GenerateStatsDatabase(config);
  TimeSplit split_stale =
      SplitDatabaseByTime(*gen_stale, StatsTimestampColumn, 0.5);
  auto gen_streamed = GenerateStatsDatabase(config);
  TimeSplit split_streamed =
      SplitDatabaseByTime(*gen_streamed, StatsTimestampColumn, 0.5);
  Database& stale = *split_stale.stale;
  Database& streamed = *split_streamed.stale;

  // Training workload for the query-driven methods, labeled on the stale
  // half (what a production system would have trained on pre-drift).
  const std::vector<TrainingQuery> stale_training =
      Relabel(env.training(), stale, refresh_queries);
  TrueCardService stale_cards(stale);
  TrueCardService streamed_cards(streamed);
  EstimatorConfig est_config;
  est_config.fast = flags.fast;

  // One service per policy; mode B's models refresh in place, mode C's are
  // hot-swapped wholesale.
  ServiceOptions service_options;
  service_options.num_threads = std::max<size_t>(1, flags.threads);
  service_options.queue_depth = flags.queue_depth;
  EstimationService svc_stale(service_options);
  EstimationService svc_inc(service_options);
  EstimationService svc_full(service_options);

  std::vector<std::string> active;
  for (const auto& name : estimators) {
    auto for_stale = MakeEstimator(name, stale, stale_cards, &stale_training,
                                   est_config);
    auto for_inc = MakeEstimator(name, streamed, streamed_cards,
                                 &stale_training, est_config);
    auto for_full = MakeEstimator(name, streamed, streamed_cards,
                                  &stale_training, est_config);
    if (!for_stale.ok() || !for_inc.ok() || !for_full.ok()) {
      std::printf("%-12s skipped (%s)\n", name.c_str(),
                  for_stale.status().ToString().c_str());
      continue;
    }
    svc_stale.RegisterEstimator(std::move(*for_stale));
    svc_inc.RegisterEstimator(std::move(*for_inc));
    svc_full.RegisterEstimator(std::move(*for_full));
    active.push_back(name);
  }
  CARDBENCH_CHECK(!active.empty(), "no estimator could be built");

  // Stream the post-cutoff rows in and refresh under both policies. The
  // refresh timers cover model updates only; re-labeling the refresh
  // workload is shared pipeline work outside both.
  StreamingInsertFeed feed(streamed, std::move(split_streamed.insertions),
                           StatsTimestampColumn, num_batches);
  std::map<std::string, double> inc_seconds, full_seconds;
  std::map<std::string, uint64_t> inc_version, full_version;
  size_t streamed_rows = 0;
  while (!feed.Done()) {
    auto batch = feed.ApplyNext(streamed);
    CARDBENCH_CHECK(batch.ok(), "insertion batch failed: %s",
                    batch.status().ToString().c_str());
    streamed_rows += batch->total_inserted_rows();
    const std::vector<TrainingQuery> refresh_training =
        Relabel(env.training(), streamed, refresh_queries);
    batch->refresh_training = &refresh_training;

    RefreshReport report;
    const Status refresh = svc_inc.RefreshIncremental(*batch, &report);
    CARDBENCH_CHECK(refresh.ok(), "incremental refresh failed: %s",
                    refresh.ToString().c_str());
    for (const auto& entry : report.entries) {
      CARDBENCH_CHECK(!entry.full_retrain_required,
                      "%s fell off the incremental path", entry.name.c_str());
      inc_seconds[entry.name] += entry.seconds;
      inc_version[entry.name] = entry.model_version;
    }

    for (const auto& name : active) {
      Stopwatch watch;
      auto retrained = MakeEstimator(name, streamed, streamed_cards,
                                     &refresh_training, est_config);
      const double seconds = watch.ElapsedSeconds();
      CARDBENCH_CHECK(retrained.ok(), "retrain of %s failed: %s", name.c_str(),
                      retrained.status().ToString().c_str());
      full_seconds[name] += seconds;
      full_version[name] = batch->data_version;
      svc_full.HotSwapEstimator(std::move(*retrained), batch->data_version,
                                seconds);
    }
    std::printf("applied batch -> data_version %llu (+%zu rows)\n",
                static_cast<unsigned long long>(batch->data_version),
                batch->total_inserted_rows());
  }

  // The streamed database has caught up with the full data: the env
  // workload's exact cardinalities now score every mode.
  for (const auto& table_name : env.db().table_names()) {
    CARDBENCH_CHECK(streamed.TableOrDie(table_name).num_rows() ==
                        env.db().TableOrDie(table_name).num_rows(),
                    "streamed table %s did not catch up", table_name.c_str());
  }
  std::printf("streamed %zu rows total; scoring %zu estimators x 3 modes "
              "over %zu queries\n\n",
              streamed_rows, active.size(), env.query_contexts().size());

  struct EstimatorResult {
    std::string name;
    ModeResult no_refresh, incremental, full_retrain;
  };
  std::vector<EstimatorResult> results;
  for (const auto& name : active) {
    EstimatorResult r;
    r.name = name;
    r.no_refresh = Score(env, svc_stale, name);
    r.incremental = Score(env, svc_inc, name);
    r.incremental.refresh_seconds = inc_seconds[name];
    r.incremental.model_version = inc_version[name];
    r.full_retrain = Score(env, svc_full, name);
    r.full_retrain.refresh_seconds = full_seconds[name];
    r.full_retrain.model_version = full_version[name];
    results.push_back(std::move(r));
  }

  std::printf("%-12s %-13s %10s %10s %8s %10s %10s %12s\n", "Method", "Mode",
              "Q-50%", "Q-99%", "P-50%", "lat-P50", "lat-P99", "refresh");
  for (const auto& r : results) {
    const struct { const char* label; const ModeResult* mode; } rows[] = {
        {"no_refresh", &r.no_refresh},
        {"incremental", &r.incremental},
        {"full_retrain", &r.full_retrain},
    };
    for (const auto& row : rows) {
      std::printf("%-12s %-13s %10s %10s %8.3f %10s %10s %12s\n",
                  r.name.c_str(), row.label,
                  FormatCount(row.mode->qerror.p50).c_str(),
                  FormatCount(row.mode->qerror.p99).c_str(),
                  row.mode->perror.p50,
                  FormatDuration(row.mode->latency.p50).c_str(),
                  FormatDuration(row.mode->latency.p99).c_str(),
                  row.mode->refresh_seconds > 0
                      ? FormatDuration(row.mode->refresh_seconds).c_str()
                      : "-");
    }
    const double ratio = r.full_retrain.qerror.p50 > 0
                             ? r.incremental.qerror.p50 /
                                   r.full_retrain.qerror.p50
                             : 0.0;
    const double speedup = r.incremental.refresh_seconds > 0
                               ? r.full_retrain.refresh_seconds /
                                     r.incremental.refresh_seconds
                               : 0.0;
    std::printf("%-12s   -> incremental/full Q-50%% ratio %.2fx, refresh "
                "%.1fx cheaper (model v%llu)\n",
                r.name.c_str(), ratio, speedup,
                static_cast<unsigned long long>(r.incremental.model_version));
  }
  std::printf("\n(shape: incremental within ~2x of full-retrain median "
              "Q-Error at >= 5x cheaper refresh; no_refresh drifts)\n");

  const char* json_path = "bench_drift.json";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_drift\",\n  %s,\n"
                 "  \"dataset\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"batches\": %zu,\n  \"queries\": %zu,\n"
                 "  \"streamed_rows\": %zu,\n  \"estimators\": [\n",
                 CpuInfoJson().c_str(),
                 env.dataset_name().c_str(), flags.scale, num_batches,
                 env.query_contexts().size(), streamed_rows);
    auto mode_json = [out](const char* label, const ModeResult& m,
                           bool last) {
      std::fprintf(out,
                   "        \"%s\": {\"median_qerror\": %.6f, "
                   "\"p99_qerror\": %.6f, \"median_perror\": %.6f, "
                   "\"latency_p50_us\": %.3f, \"latency_p99_us\": %.3f, "
                   "\"refresh_seconds\": %.6f, \"model_version\": %llu}%s\n",
                   label, m.qerror.p50, m.qerror.p99, m.perror.p50,
                   m.latency.p50 * 1e6, m.latency.p99 * 1e6,
                   m.refresh_seconds,
                   static_cast<unsigned long long>(m.model_version),
                   last ? "" : ",");
    };
    for (size_t i = 0; i < results.size(); ++i) {
      const EstimatorResult& r = results[i];
      const double ratio = r.full_retrain.qerror.p50 > 0
                               ? r.incremental.qerror.p50 /
                                     r.full_retrain.qerror.p50
                               : 0.0;
      const double speedup = r.incremental.refresh_seconds > 0
                                 ? r.full_retrain.refresh_seconds /
                                       r.incremental.refresh_seconds
                                 : 0.0;
      std::fprintf(out,
                   "    {\"name\": \"%s\",\n"
                   "      \"incremental_vs_full_qerror_ratio\": %.4f,\n"
                   "      \"refresh_speedup\": %.2f,\n      \"modes\": {\n",
                   r.name.c_str(), ratio, speedup);
      mode_json("no_refresh", r.no_refresh, false);
      mode_json("incremental", r.incremental, false);
      mode_json("full_retrain", r.full_retrain, true);
      std::fprintf(out, "      }}%s\n",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  const cardbench::BenchFlags flags = cardbench::ParseBenchFlags(argc, argv);
  return cardbench::Run(flags);
}
