// Reproduces paper Figure 2 (the Q57 case study) and observations O5/O6/
// O13: on the workload's heaviest query, print the plans chosen by
// BayesCard, FLAT and TrueCard with their execution times, then re-run the
// §7.1 injection experiment — replace the root estimate with a deliberate
// under/over-estimate and show that the physical operator choice (and the
// runtime) flips while the join order barely matters.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cardest/truecard_est.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

void ShowPlan(BenchEnv& env, const Query& query,
              const BenchEnv::QueryContext& ctx, CardinalityEstimator& est) {
  auto plan = env.optimizer().Plan(query, est);
  CARDBENCH_CHECK(plan.ok(), "planning failed");
  ExecLimits limits;
  limits.timeout_seconds = env.flags().exec_timeout * 4;
  Executor executor(env.db(), limits);
  auto exec = executor.ExecuteCount(*plan->plan, /*analyze=*/true);
  CARDBENCH_CHECK(exec.ok(), "execution failed");
  const double recost =
      env.optimizer().RecostWithCards(*plan->plan, ctx.true_cards);
  const double perror =
      ctx.true_plan_cost > 0 ? recost / ctx.true_plan_cost : 1.0;
  std::printf("--- %s ---\n", est.name().c_str());
  std::printf("root estimate: %.0f (true %.0f), exec %s%s, P-Error %.3f\n",
              plan->injected_cards.at(query.FullMask()),
              ctx.true_cards.at(query.FullMask()),
              FormatDuration(exec->elapsed_seconds).c_str(),
              exec->timed_out ? " (capped)" : "", perror);
  std::printf("%s\n", plan->plan->ExplainAnalyze(exec->actual_rows).c_str());
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  // The heaviest query (largest true cardinality) plays the role of Q57.
  const BenchEnv::QueryContext* heavy = nullptr;
  for (const auto& ctx : env.query_contexts()) {
    if (heavy == nullptr || ctx.true_cards.at(ctx.query->FullMask()) >
                                heavy->true_cards.at(heavy->query->FullMask())) {
      heavy = &ctx;
    }
  }
  CARDBENCH_CHECK(heavy != nullptr, "empty workload");
  const Query& query = *heavy->query;

  std::printf("Figure 2 case study (scale=%.2f)\n", flags.scale);
  std::printf("query: %s\ntrue cardinality: %s\n\n", query.ToSql().c_str(),
              FormatCount(heavy->true_cards.at(query.FullMask())).c_str());

  for (const char* name : {"TrueCard", "BayesCard", "FLAT"}) {
    auto est = env.MakeNamedEstimator(name);
    CARDBENCH_CHECK(est.ok(), "%s failed", name);
    ShowPlan(env, query, *heavy, **est);
  }

  // O13 injection experiment: systematic multiplicative error applied to
  // every multi-table sub-plan estimate (the correlated way real
  // estimators err; the paper's root-only 7x injection has no effect in
  // our cost model because all join algorithms emit output at the same
  // per-tuple cost). Watch the join order and operators change with the
  // error direction and magnitude.
  TrueCardEstimator oracle(env.truecard());
  for (const double factor : {1.0 / 50.0, 1.0 / 7.0, 7.0, 50.0}) {
    std::unordered_map<std::string, double> overrides;
    for (const auto& [mask, card] : heavy->true_cards) {
      const Query sub = query.Induced(mask);
      if (sub.tables.size() > 1) {
        overrides[sub.CanonicalKey()] = card * factor;
      }
    }
    InjectedCardEstimator injected(oracle, std::move(overrides));
    std::printf(">>> all multi-table estimates forced to %.3fx truth:\n",
                factor);
    ShowPlan(env, query, *heavy, injected);
  }
  std::printf("(paper O13 analogue: systematic under- and over-estimation "
              "change the chosen plan and its runtime; correctness is "
              "unaffected)\n");
  return 0;
}
