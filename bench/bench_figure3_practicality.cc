// Reproduces paper Figure 3: the practicality aspects of the methods that
// beat the PostgreSQL baseline — average inference latency per sub-plan
// query, model size, and training time, on both datasets. The shape to
// verify (O8): BayesCard trains fastest with the smallest model;
// SPN/FSPN models are larger and slower to build on STATS than on IMDB;
// the autoregressive model is the slowest at inference.

#include <cstdio>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

void RunDataset(BenchDataset dataset, const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(dataset, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"PessEst", "MSCN",   "NeuroCardE",
                  "BayesCard", "DeepDB", "FLAT"};
  }

  std::printf("\n=== %s ===\n", env.dataset_name().c_str());
  std::printf("%-12s %22s %14s %14s\n", "Method", "Inference (avg/sub-plan)",
              "Model size", "Training");
  for (const auto& name : estimators) {
    auto est = env.MakeNamedEstimator(name);
    if (!est.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  est.status().ToString().c_str());
      continue;
    }
    const auto run = env.RunEstimator(**est);
    size_t total_estimates = 0;
    for (const auto& q : run.queries) total_estimates += q.num_estimates;
    const double avg_inference =
        total_estimates > 0
            ? run.TotalInferenceSeconds() / static_cast<double>(total_estimates)
            : 0.0;
    std::printf("%-12s %22s %14s %14s\n", name.c_str(),
                FormatDuration(avg_inference).c_str(),
                FormatBytes((*est)->ModelBytes()).c_str(),
                FormatDuration((*est)->TrainSeconds()).c_str());
  }
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Figure 3: practicality aspects (scale=%.2f)\n", flags.scale);
  RunDataset(BenchDataset::kImdb, flags);
  RunDataset(BenchDataset::kStats, flags);
  std::printf("\n(paper shape O8: BayesCard smallest/fastest to train; "
              "autoregressive slowest inference)\n");
  return 0;
}
