// Reproduces paper Figure 3: the practicality aspects of the methods that
// beat the PostgreSQL baseline — average inference latency per sub-plan
// query, model size, and training time, on both datasets. The shape to
// verify (O8): BayesCard trains fastest with the smallest model;
// SPN/FSPN models are larger and slower to build on STATS than on IMDB;
// the autoregressive model is the slowest at inference.
//
// Model sizes are the serialized artifact bytes (CardinalityEstimator::
// ModelBytes), i.e. what a deployment actually ships. With --model-dir the
// construction column separates training from artifact loading; the JSON
// emitted at the end records both so warm-vs-cold sweeps can be compared.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

struct PracticalityRow {
  std::string dataset;
  std::string estimator;
  double avg_inference_seconds = 0.0;
  size_t model_bytes = 0;
  double train_seconds = 0.0;   // model's own fit time (0 when loaded)
  double build_seconds = 0.0;   // wall time of training construction
  double load_seconds = 0.0;    // wall time of artifact loading
  bool loaded = false;
};

void RunDataset(BenchDataset dataset, const BenchFlags& flags,
                std::vector<PracticalityRow>* rows) {
  auto env_result = BenchEnv::Create(dataset, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"PessEst", "MSCN",   "NeuroCardE",
                  "BayesCard", "DeepDB", "FLAT"};
  }

  std::printf("\n=== %s ===\n", env.dataset_name().c_str());
  std::printf("%-12s %22s %14s %14s %14s\n", "Method",
              "Inference (avg/sub-plan)", "Model size", "Training", "Load");
  for (const auto& name : estimators) {
    ModelStoreStats stats;
    auto est = env.MakeNamedEstimator(name, &stats);
    if (!est.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  est.status().ToString().c_str());
      continue;
    }
    const auto run = env.RunEstimator(**est);
    size_t total_estimates = 0;
    for (const auto& q : run.queries) total_estimates += q.num_estimates;

    PracticalityRow row;
    row.dataset = env.dataset_name();
    row.estimator = name;
    row.avg_inference_seconds =
        total_estimates > 0
            ? run.TotalInferenceSeconds() / static_cast<double>(total_estimates)
            : 0.0;
    row.model_bytes = (*est)->ModelBytes();
    row.train_seconds = (*est)->TrainSeconds();
    row.build_seconds = stats.build_seconds;
    row.load_seconds = stats.load_seconds;
    row.loaded = stats.loaded;
    std::printf("%-12s %22s %14s %14s %14s\n", name.c_str(),
                FormatDuration(row.avg_inference_seconds).c_str(),
                FormatBytes(row.model_bytes).c_str(),
                FormatDuration(row.train_seconds).c_str(),
                row.loaded ? FormatDuration(row.load_seconds).c_str() : "-");
    rows->push_back(std::move(row));
  }
}

void WriteJson(const std::vector<PracticalityRow>& rows) {
  std::FILE* json = std::fopen("bench_figure3_practicality.json", "w");
  if (json == nullptr) return;
  std::fprintf(json, "{\n  \"bench\": \"bench_figure3_practicality\",\n  %s,\n",
               CpuInfoJson().c_str());
  std::fprintf(json, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PracticalityRow& row = rows[i];
    std::fprintf(json,
                 "    {\"dataset\": \"%s\", \"estimator\": \"%s\", "
                 "\"avg_inference_seconds\": %.9f, \"model_bytes\": %zu, "
                 "\"train_seconds\": %.6f, \"build_seconds\": %.6f, "
                 "\"load_seconds\": %.6f, \"loaded\": %s}%s\n",
                 row.dataset.c_str(), row.estimator.c_str(),
                 row.avg_inference_seconds, row.model_bytes, row.train_seconds,
                 row.build_seconds, row.load_seconds,
                 row.loaded ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote bench_figure3_practicality.json (%zu rows)\n",
              rows.size());
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Figure 3: practicality aspects (scale=%.2f)\n", flags.scale);
  std::vector<PracticalityRow> rows;
  RunDataset(BenchDataset::kImdb, flags, &rows);
  RunDataset(BenchDataset::kStats, flags, &rows);
  WriteJson(rows);
  std::printf("\n(paper shape O8: BayesCard smallest/fastest to train; "
              "autoregressive slowest inference)\n");
  return 0;
}
