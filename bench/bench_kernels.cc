// Micro-benchmark of the shared kernel layer (src/common/simd.h): times
// every kernel at every SIMD tier the host can execute and reports each
// tier's speedup over the scalar reference. The JSON artifact feeds the
// check_perf_floor gate — a refactor that silently drops a vector tier back
// to scalar-level throughput fails the test suite instead of landing.
//
//   bench_kernels [--json=PATH] [--reps=N] [--quick]
//
// Timing method: each (kernel, tier) point runs `reps` passes over a fixed
// working set and reports best-of-3 chunk wall time per element —
// insensitive to one-off scheduler noise, cheap enough for a ctest gate.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/cpu_info.h"
#include "common/rng.h"
#include "common/simd.h"

namespace cardbench {
namespace {

using simd::Cmp;
using simd::KernelTable;
using simd::Level;

// L1-resident working set: the hot callers run over L1-sized spans (GEMM
// inner rows, 1-4K-row filter batches), and an L2-bound sweep would measure
// memory bandwidth instead of kernel throughput.
constexpr size_t kN = 1024;

// Sink defeating dead-code elimination of result values.
volatile double g_sink = 0.0;

struct KernelCase {
  const char* name;
  std::function<void(const KernelTable&)> run;  // one pass over kN elements
};

struct Row {
  std::string kernel;
  std::string level;
  double ns_per_element = 0.0;
  double speedup_vs_scalar = 0.0;
};

std::vector<KernelCase> BuildCases() {
  static Rng rng(2021);
  static std::vector<double> a(kN), b(kN), dst(kN);
  static std::vector<int64_t> values(kN);
  static std::vector<uint8_t> valid(kN);
  static std::vector<uint32_t> rows(kN), out(kN + 8);
  static std::vector<int64_t> keys(kN);
  static std::vector<uint8_t> valid_out(kN);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble() - 0.5;
    dst[i] = 0.0;
    values[i] = static_cast<int64_t>(rng.NextUint64(100));
    valid[i] = rng.NextUint64(16) != 0;
    rows[i] = static_cast<uint32_t>(rng.NextUint64(kN));
  }
  return {
      {"dot",
       [](const KernelTable& kt) { g_sink = kt.dot(a.data(), b.data(), kN); }},
      {"axpy",
       [](const KernelTable& kt) { kt.axpy(dst.data(), a.data(), 1.0001, kN); }},
      {"relu",
       [](const KernelTable& kt) { kt.relu(dst.data(), kN); }},
      {"filter_range",
       [](const KernelTable& kt) {
         g_sink = static_cast<double>(kt.filter_range(
             values.data(), valid.data(), 0, kN, Cmp::kLt, 50, out.data()));
       }},
      {"filter_rows",
       [](const KernelTable& kt) {
         // Rebuild the row list each pass: filter_rows compacts in place.
         std::memcpy(out.data(), rows.data(), kN * sizeof(uint32_t));
         g_sink = static_cast<double>(kt.filter_rows(
             values.data(), valid.data(), out.data(), kN, Cmp::kGe, 50));
       }},
      {"gather",
       [](const KernelTable& kt) {
         kt.gather(values.data(), valid.data(), rows.data(), kN, keys.data(),
                   valid_out.data());
       }},
  };
}

double TimePass(const KernelCase& kc, const KernelTable& kt, size_t reps) {
  // Warm-up pass pulls the working set into cache.
  kc.run(kt);
  double best_ns = 1e300;
  for (int chunk = 0; chunk < 3; ++chunk) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) kc.run(kt);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        (static_cast<double>(reps) * static_cast<double>(kN));
    best_ns = std::min(best_ns, ns);
  }
  return best_ns;
}

int Run(int argc, char** argv) {
  std::string json_path;
  size_t reps = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoul(arg.substr(7));
    } else if (arg == "--quick") {
      reps = 50;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--reps=N] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Level> levels = {Level::kScalar};
  for (Level l : {Level::kSse2, Level::kAvx2, Level::kAvx512}) {
    if (l <= simd::DetectLevel()) levels.push_back(l);
  }

  std::printf("kernel micro-bench: %zu elements/pass, %zu reps, cpu \"%s\" "
              "(best tier %s)\n",
              kN, reps, CpuModelName().c_str(), CpuSimdCapability());
  std::printf("%-14s %-8s %14s %14s\n", "kernel", "level", "ns/element",
              "vs scalar");

  std::vector<Row> rows;
  for (const KernelCase& kc : BuildCases()) {
    double scalar_ns = 0.0;
    for (Level level : levels) {
      const double ns = TimePass(kc, simd::KernelsFor(level), reps);
      if (level == Level::kScalar) scalar_ns = ns;
      Row row;
      row.kernel = kc.name;
      row.level = simd::LevelName(level);
      row.ns_per_element = ns;
      row.speedup_vs_scalar = ns > 0.0 ? scalar_ns / ns : 0.0;
      rows.push_back(row);
      std::printf("%-14s %-8s %14.3f %13.2fx\n", kc.name,
                  simd::LevelName(level), ns, row.speedup_vs_scalar);
    }
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_kernels\",\n  %s,\n",
                 CpuInfoJson().c_str());
    std::fprintf(out, "  \"elements_per_pass\": %zu,\n  \"reps\": %zu,\n", kN,
                 reps);
    std::fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out,
                   "    {\"kernel\": \"%s\", \"level\": \"%s\", "
                   "\"ns_per_element\": %.4f, \"speedup_vs_scalar\": %.3f}%s\n",
                   rows[i].kernel.c_str(), rows[i].level.c_str(),
                   rows[i].ns_per_element, rows[i].speedup_vs_scalar,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("rows -> %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) { return cardbench::Run(argc, argv); }
