// Micro-benchmark of the vectorized, morsel-parallel executor (PR 2's
// pipeline): executes every STATS-CEB counting plan under a
// (exec-threads × batch-size) sweep and reports per-configuration wall time
// and speedup over the serial baseline. Counts are asserted identical to
// the baseline in every configuration — parallelism and batch size are
// performance knobs only. The shape to verify on a multi-core machine:
// >= 2x total speedup at 4 threads with the default batch size. Results go
// to stdout and to bench_micro_executor.json (consumed by
// scripts/run_all_benches.sh).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

struct ConfigResult {
  size_t threads = 0;
  size_t batch_size = 0;
  double seconds = 0.0;
  size_t timeouts = 0;
};

int Run(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::unique_ptr<PlanNode>> plans;
  for (const auto& ctx : env.query_contexts()) {
    plans.push_back(env.truecard().BuildCountingPlan(*ctx.query));
  }
  CARDBENCH_CHECK(!plans.empty(), "empty workload");

  ExecLimits limits;
  limits.timeout_seconds = flags.exec_timeout;
  const size_t repeats = std::max<size_t>(1, flags.exec_repeats);

  // Executes every plan under one configuration; per-plan wall time is the
  // minimum over repeats (de-noising sub-second runs), the configuration
  // time is the sum. Counts land in *counts.
  auto run_config = [&](size_t threads, size_t batch,
                        std::vector<uint64_t>* counts) {
    ExecOptions options;
    options.batch_size = batch;
    options.num_threads = threads;
    Executor executor(env.db(), limits, options);
    ConfigResult result;
    result.threads = threads;
    result.batch_size = batch;
    counts->clear();
    for (const auto& plan : plans) {
      double best = -1.0;
      uint64_t count = 0;
      for (size_t r = 0; r < repeats; ++r) {
        auto exec = executor.ExecuteCount(*plan);
        CARDBENCH_CHECK(exec.ok(), "execution failed: %s",
                        exec.status().ToString().c_str());
        if (exec->timed_out) {
          ++result.timeouts;
          best = flags.exec_timeout;
          break;
        }
        count = exec->count;
        if (best < 0 || exec->elapsed_seconds < best) {
          best = exec->elapsed_seconds;
        }
      }
      result.seconds += best;
      counts->push_back(count);
    }
    return result;
  };

  std::printf("executor micro-bench: %zu plans, %zu repeats, scale %g\n\n",
              plans.size(), repeats, flags.scale);

  // Serial baseline: the configuration every sweep point must reproduce.
  std::vector<uint64_t> baseline_counts;
  const ConfigResult baseline = run_config(1, 1024, &baseline_counts);

  std::printf("%8s %10s %12s %9s %9s\n", "threads", "batch", "total", "speedup",
              "timeouts");
  std::vector<ConfigResult> results;
  std::vector<uint64_t> counts;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t batch : {size_t{256}, size_t{1024}, size_t{4096}}) {
      const ConfigResult r = run_config(threads, batch, &counts);
      CARDBENCH_CHECK(counts == baseline_counts,
                      "counts diverged at threads=%zu batch=%zu — parallel "
                      "executor bug",
                      threads, batch);
      std::printf("%8zu %10zu %12s %8.2fx %9zu\n", threads, batch,
                  FormatDuration(r.seconds).c_str(),
                  r.seconds > 0 ? baseline.seconds / r.seconds : 0.0,
                  r.timeouts);
      results.push_back(r);
    }
  }

  const char* json_path = "bench_micro_executor.json";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_micro_executor\",\n  %s,\n"
                 "  \"dataset\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"plans\": %zu,\n  \"repeats\": %zu,\n"
                 "  \"serial_seconds\": %.6f,\n  \"configs\": [\n",
                 CpuInfoJson().c_str(),
                 env.dataset_name().c_str(), flags.scale, plans.size(),
                 repeats, baseline.seconds);
    for (size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"batch_size\": %zu, "
                   "\"seconds\": %.6f, \"speedup\": %.4f, \"timeouts\": %zu}%s\n",
                   r.threads, r.batch_size, r.seconds,
                   r.seconds > 0 ? baseline.seconds / r.seconds : 0.0,
                   r.timeouts, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  const cardbench::BenchFlags flags = cardbench::ParseBenchFlags(argc, argv);
  return cardbench::Run(flags);
}
