// google-benchmark microbenchmarks for estimator inference latency (§6.1):
// one EstimateCard call on representative single-table and 3-way-join
// sub-plan queries for each always-available method. Complements the
// wall-clock planning times of Table 3/Figure 3 with controlled per-call
// numbers.
//
// Before the gbench micros run, a batch-size sweep measures the batched
// EstimateCards path on a 5-way join: per-sub-plan latency and sub-plans/sec
// at batch sizes 1, 8, 32, 128 and "all connected subsets" (the optimizer's
// one-call-per-query shape). The sweep's table goes to stdout and the raw
// rows to bench_micro_inference_batch.json — the speedup-vs-batch-1 column
// is the batched-GEMM payoff for the NN-based methods.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cardest/registry.h"
#include "common/cpu_info.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "query/parser.h"
#include "query/query_graph.h"
#include "workload/workload_gen.h"

namespace cardbench {
namespace {

struct MicroEnv {
  std::unique_ptr<Database> db;
  std::unique_ptr<TrueCardService> truecard;
  Query single;
  Query join3;

  MicroEnv() {
    StatsGenConfig config;
    config.scale = 0.1;
    db = GenerateStatsDatabase(config);
    truecard = std::make_unique<TrueCardService>(*db);
    single = *ParseSql(
        "SELECT COUNT(*) FROM posts WHERE posts.Score >= 10 AND "
        "posts.PostTypeId = 1;");
    join3 = *ParseSql(
        "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
        "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= "
        "5 AND users.Reputation >= 20;");
  }
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

std::unique_ptr<CardinalityEstimator>& Estimator(const std::string& name) {
  static std::map<std::string, std::unique_ptr<CardinalityEstimator>>* cache =
      new std::map<std::string, std::unique_ptr<CardinalityEstimator>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    EstimatorConfig config;
    config.fast = true;
    auto est = MakeEstimator(name, *Env().db, *Env().truecard, nullptr, config);
    if (!est.ok()) std::abort();
    it = cache->emplace(name, std::move(*est)).first;
  }
  return it->second;
}

void BM_Inference(benchmark::State& state, const std::string& name,
                  bool join) {
  auto& est = Estimator(name);
  const Query& query = join ? Env().join3 : Env().single;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->EstimateCard(query));
  }
}

#define CARDBENCH_MICRO(method)                                          \
  BENCHMARK_CAPTURE(BM_Inference, method##_single_table, #method, false); \
  BENCHMARK_CAPTURE(BM_Inference, method##_join3, #method, true)

CARDBENCH_MICRO(PostgreSQL);
CARDBENCH_MICRO(MultiHist);
CARDBENCH_MICRO(UniSample);
CARDBENCH_MICRO(WJSample);
CARDBENCH_MICRO(PessEst);
CARDBENCH_MICRO(BayesCard);
CARDBENCH_MICRO(DeepDB);
CARDBENCH_MICRO(FLAT);
CARDBENCH_MICRO(NeuroCardE);

#undef CARDBENCH_MICRO

// ---------------------------------------------------------------------------
// Batch-size sweep over EstimateCards.

struct SweepRow {
  std::string estimator;
  size_t batch_size = 0;
  bool all_subsets = false;
  double us_per_subplan = 0.0;
  double subplans_per_sec = 0.0;
  double speedup_vs_batch1 = 0.0;
};

/// Times `estimator` over the same round-robin stream of >= `target`
/// sub-plans at every batch size — only the chunking into EstimateCards
/// calls changes, so points are comparable — and returns microseconds per
/// sub-plan.
double TimeBatch(const CardinalityEstimator& estimator, const QueryGraph& graph,
                 size_t batch, size_t target) {
  const std::vector<uint64_t>& subsets = graph.connected_subsets();
  const size_t rounds = (target + subsets.size() - 1) / subsets.size();
  std::vector<uint64_t> stream;
  stream.reserve(rounds * subsets.size());
  for (size_t r = 0; r < rounds; ++r) {
    stream.insert(stream.end(), subsets.begin(), subsets.end());
  }
  benchmark::DoNotOptimize(estimator.EstimateCards(graph, subsets));  // warm-up
  const auto start = std::chrono::steady_clock::now();
  for (size_t pos = 0; pos < stream.size(); pos += batch) {
    const size_t n = std::min(batch, stream.size() - pos);
    benchmark::DoNotOptimize(estimator.EstimateCards(
        graph, std::span<const uint64_t>(stream.data() + pos, n)));
  }
  const auto stop = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(stop - start).count();
  return us / static_cast<double>(stream.size());
}

void RunBatchSweep() {
  MicroEnv& env = Env();
  // A 5-way join: its connected-subset space is the batch the optimizer
  // hands to EstimateCards once per planned query.
  const Query query = *ParseSql(
      "SELECT COUNT(*) FROM users, posts, comments, votes, badges "
      "WHERE users.Id = posts.OwnerUserId AND posts.Id = comments.PostId "
      "AND posts.Id = votes.PostId AND users.Id = badges.UserId "
      "AND posts.Score >= 3 AND votes.VoteTypeId = 2;");
  const QueryGraph graph(query, *env.db);
  const size_t num_subsets = graph.connected_subsets().size();

  auto training = GenerateTrainingQueries(*env.db, *env.truecard, 100, 7);
  if (!training.ok()) {
    std::fprintf(stderr, "training workload failed: %s\n",
                 training.status().ToString().c_str());
    return;
  }
  EstimatorConfig config;
  config.fast = true;
  // PostgreSQL rides the default per-mask loop (the ~1x reference row);
  // MSCN / LW-NN batch their GEMMs, LW-XGB its GBDT walk, DeepDB its factor
  // cache. The AR family is excluded only for sweep runtime.
  const std::vector<std::string> names = {"PostgreSQL", "MSCN", "LW-NN",
                                          "LW-XGB", "DeepDB"};
  constexpr size_t kTargetSubplans = 256;

  std::vector<SweepRow> rows;
  std::printf("\nbatched EstimateCards sweep (5-way join, %zu connected "
              "subsets, >=%zu sub-plans per point)\n",
              num_subsets, kTargetSubplans);
  std::printf("%-12s %12s %16s %16s %12s\n", "estimator", "batch",
              "us/subplan", "subplans/sec", "vs batch=1");
  for (const std::string& name : names) {
    auto est = MakeEstimator(name, *env.db, *env.truecard, &*training, config);
    if (!est.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                   est.status().ToString().c_str());
      continue;
    }
    const std::vector<size_t> batches = {1, 8, 32, 128, num_subsets};
    double batch1_us = 0.0;
    for (size_t b = 0; b < batches.size(); ++b) {
      SweepRow row;
      row.estimator = name;
      row.batch_size = batches[b];
      row.all_subsets = b + 1 == batches.size();
      row.us_per_subplan =
          TimeBatch(**est, graph, batches[b], kTargetSubplans);
      row.subplans_per_sec = 1e6 / row.us_per_subplan;
      if (batches[b] == 1) batch1_us = row.us_per_subplan;
      row.speedup_vs_batch1 =
          batch1_us > 0.0 ? batch1_us / row.us_per_subplan : 0.0;
      rows.push_back(row);
      char label[32];
      if (row.all_subsets) {
        std::snprintf(label, sizeof(label), "all(%zu)", row.batch_size);
      } else {
        std::snprintf(label, sizeof(label), "%zu", row.batch_size);
      }
      std::printf("%-12s %12s %16.2f %16.0f %11.2fx\n", name.c_str(), label,
                  row.us_per_subplan, row.subplans_per_sec,
                  row.speedup_vs_batch1);
    }
  }

  const char* json_path = "bench_micro_inference_batch.json";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out, "{\n  \"bench\": \"bench_micro_inference_batch\",\n");
    std::fprintf(out, "  %s,\n", CpuInfoJson().c_str());
    std::fprintf(out, "  \"query\": \"5-way join (stats scale 0.1)\",\n");
    std::fprintf(out, "  \"num_connected_subsets\": %zu,\n", num_subsets);
    std::fprintf(out, "  \"target_subplans_per_point\": %zu,\n",
                 kTargetSubplans);
    std::fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      std::fprintf(out,
                   "    {\"estimator\": \"%s\", \"batch_size\": %zu, "
                   "\"all_subsets\": %s, \"us_per_subplan\": %.3f, "
                   "\"subplans_per_sec\": %.1f, \"speedup_vs_batch1\": "
                   "%.3f}%s\n",
                   row.estimator.c_str(), row.batch_size,
                   row.all_subsets ? "true" : "false", row.us_per_subplan,
                   row.subplans_per_sec, row.speedup_vs_batch1,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("sweep rows -> %s\n\n", json_path);
  }
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  cardbench::RunBatchSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
