// google-benchmark microbenchmarks for estimator inference latency (§6.1):
// one EstimateCard call on representative single-table and 3-way-join
// sub-plan queries for each always-available method. Complements the
// wall-clock planning times of Table 3/Figure 3 with controlled per-call
// numbers.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "cardest/registry.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "query/parser.h"

namespace cardbench {
namespace {

struct MicroEnv {
  std::unique_ptr<Database> db;
  std::unique_ptr<TrueCardService> truecard;
  Query single;
  Query join3;

  MicroEnv() {
    StatsGenConfig config;
    config.scale = 0.1;
    db = GenerateStatsDatabase(config);
    truecard = std::make_unique<TrueCardService>(*db);
    single = *ParseSql(
        "SELECT COUNT(*) FROM posts WHERE posts.Score >= 10 AND "
        "posts.PostTypeId = 1;");
    join3 = *ParseSql(
        "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
        "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= "
        "5 AND users.Reputation >= 20;");
  }
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

std::unique_ptr<CardinalityEstimator>& Estimator(const std::string& name) {
  static std::map<std::string, std::unique_ptr<CardinalityEstimator>>* cache =
      new std::map<std::string, std::unique_ptr<CardinalityEstimator>>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    EstimatorConfig config;
    config.fast = true;
    auto est = MakeEstimator(name, *Env().db, *Env().truecard, nullptr, config);
    if (!est.ok()) std::abort();
    it = cache->emplace(name, std::move(*est)).first;
  }
  return it->second;
}

void BM_Inference(benchmark::State& state, const std::string& name,
                  bool join) {
  auto& est = Estimator(name);
  const Query& query = join ? Env().join3 : Env().single;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->EstimateCard(query));
  }
}

#define CARDBENCH_MICRO(method)                                          \
  BENCHMARK_CAPTURE(BM_Inference, method##_single_table, #method, false); \
  BENCHMARK_CAPTURE(BM_Inference, method##_join3, #method, true)

CARDBENCH_MICRO(PostgreSQL);
CARDBENCH_MICRO(MultiHist);
CARDBENCH_MICRO(UniSample);
CARDBENCH_MICRO(WJSample);
CARDBENCH_MICRO(PessEst);
CARDBENCH_MICRO(BayesCard);
CARDBENCH_MICRO(DeepDB);
CARDBENCH_MICRO(FLAT);
CARDBENCH_MICRO(NeuroCardE);

#undef CARDBENCH_MICRO

}  // namespace
}  // namespace cardbench

BENCHMARK_MAIN();
