// Micro-benchmark of the join hash path (src/exec/join_hash.h): builds and
// count-probes the radix-partitioned open-addressing table against the
// legacy chained `std::unordered_map<Value, std::vector<uint32_t>>` over a
// (rows × radix_bits × threads) sweep with STATS-like key duplication.
// Match counts are asserted identical between implementations at every
// point — layout, fan-out, prefetch and parallelism are performance knobs
// only. The JSON artifact feeds the check_perf_floor gate: the shape to
// verify is multi-x probe throughput over legacy on STATS-scale build
// sides.
//
//   bench_micro_join [--json=PATH] [--reps=N] [--quick]
//
// Timing method: per configuration, `reps` full build (and probe) passes;
// the minimum wall time is reported — insensitive to one-off scheduler
// noise, cheap enough for a ctest gate in --quick mode.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/join_hash.h"

namespace cardbench {
namespace {

constexpr size_t kProbeMorselTuples = size_t{1} << 14;

/// JoinKeySource over plain vectors (the bench's stand-in for the
/// executor's TupleSet-backed source).
class VectorKeySource final : public JoinKeySource {
 public:
  VectorKeySource(const std::vector<Value>& keys,
                  const std::vector<uint8_t>& valid)
      : keys_(keys), valid_(valid) {}

  void GatherKeys(size_t lo, size_t hi, Value* keys,
                  uint8_t* valid) const override {
    for (size_t i = lo; i < hi; ++i) {
      keys[i - lo] = keys_[i];
      valid[i - lo] = valid_[i];
    }
  }

 private:
  const std::vector<Value>& keys_;
  const std::vector<uint8_t>& valid_;
};

struct Input {
  std::vector<Value> keys;
  std::vector<uint8_t> valid;
};

/// STATS-like key column: a skew-free key domain a quarter the row count
/// (average fanout 4, like the FK sides of the STATS join graph) with 2%
/// NULLs.
Input MakeInput(size_t rows, int64_t domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Input input;
  input.keys.resize(rows);
  input.valid.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    input.keys[i] = static_cast<Value>(rng() % static_cast<uint64_t>(domain));
    input.valid[i] = rng() % 50 != 0;
  }
  return input;
}

using LegacyTable = std::unordered_map<Value, std::vector<uint32_t>>;

LegacyTable BuildLegacy(const Input& build) {
  LegacyTable ht;
  ht.reserve(build.keys.size());
  for (size_t i = 0; i < build.keys.size(); ++i) {
    if (build.valid[i]) {
      ht[build.keys[i]].push_back(static_cast<uint32_t>(i));
    }
  }
  return ht;
}

/// Count-probe of the legacy table over one morsel (the executor's
/// count-only fast path: sum bucket sizes).
uint64_t ProbeLegacyMorsel(const LegacyTable& ht, const Input& probe,
                           size_t lo, size_t hi) {
  uint64_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    if (!probe.valid[i]) continue;
    auto it = ht.find(probe.keys[i]);
    if (it != ht.end()) count += it->second.size();
  }
  return count;
}

/// Count-probe of the radix table over one morsel, mirroring the
/// executor's RadixProbeMorsel: batch-hashed keys with software prefetch
/// `distance` probes ahead.
uint64_t ProbeRadixMorsel(const JoinHashTable& ht, const Input& probe,
                          size_t lo, size_t hi, size_t distance,
                          std::vector<uint64_t>& hash_scratch) {
  uint64_t count = 0;
  uint64_t* hashes = hash_scratch.data();
  for (size_t i = lo; i < hi; ++i) {
    hashes[i - lo] = probe.valid[i] ? JoinKeyHash(probe.keys[i]) : 0;
  }
  const size_t n = hi - lo;
  for (size_t i = 0; i < std::min(distance, n); ++i) {
    if (probe.valid[lo + i]) ht.Prefetch(hashes[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (distance != 0 && i + distance < n && probe.valid[lo + i + distance]) {
      ht.Prefetch(hashes[i + distance]);
    }
    if (!probe.valid[lo + i]) continue;
    count += ht.CountMatches(probe.keys[lo + i], hashes[i]);
  }
  return count;
}

/// Fans `fn(m)` over morsels, serially or on `pool`, and sums the counts.
uint64_t RunMorsels(ThreadPool* pool, size_t total,
                    const std::function<uint64_t(size_t, size_t)>& fn) {
  const size_t num_morsels =
      (total + kProbeMorselTuples - 1) / kProbeMorselTuples;
  std::vector<uint64_t> counts(num_morsels, 0);
  auto morsel = [&](size_t m) {
    counts[m] = fn(m * kProbeMorselTuples,
                   std::min(total, (m + 1) * kProbeMorselTuples));
  };
  if (pool == nullptr) {
    for (size_t m = 0; m < num_morsels; ++m) morsel(m);
  } else {
    ParallelFor(*pool, num_morsels, morsel);
  }
  uint64_t count = 0;
  for (uint64_t c : counts) count += c;
  return count;
}

double Seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

struct ConfigResult {
  size_t rows = 0;
  size_t radix_bits = 0;
  size_t threads = 0;
  double build_ns_per_row = 0.0;
  double probe_ns_per_row = 0.0;
  double legacy_build_ns_per_row = 0.0;
  double legacy_probe_ns_per_row = 0.0;
  double probe_speedup_vs_legacy = 0.0;
  double build_speedup_vs_legacy = 0.0;
};

int Run(int argc, char** argv) {
  std::string json_path;
  size_t reps = 3;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoul(arg.substr(7));
    } else if (arg == "--quick") {
      quick = true;
      reps = std::min<size_t>(reps, 2);
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--reps=N] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }
  reps = std::max<size_t>(reps, 1);

  // STATS-scale build sides: the large STATS tables land in the 10^5-10^6
  // row range at scale 1. --quick keeps one representative size for the
  // ctest floor gate.
  const std::vector<size_t> row_counts =
      quick ? std::vector<size_t>{size_t{1} << 18}
            : std::vector<size_t>{size_t{1} << 16, size_t{1} << 20};
  const std::vector<size_t> radix_bits_sweep =
      quick ? std::vector<size_t>{size_t{4}}
            : std::vector<size_t>{size_t{0}, size_t{4}, size_t{8}};
  const std::vector<size_t> thread_sweep = {size_t{1}, size_t{4}};

  std::printf(
      "join micro-bench: %zu reps, cpu \"%s\" (best tier %s)\n",
      reps, CpuModelName().c_str(), CpuSimdCapability());
  std::printf("%9s %5s %8s %11s %11s %11s %11s %9s\n", "rows", "bits",
              "threads", "build ns/r", "probe ns/r", "leg bld ns",
              "leg prb ns", "speedup");

  std::vector<ConfigResult> results;
  for (size_t rows : row_counts) {
    const int64_t domain = static_cast<int64_t>(rows / 4);
    const Input build = MakeInput(rows, domain, /*seed=*/rows + 1);
    const Input probe = MakeInput(rows * 2, domain, /*seed=*/rows + 2);
    const VectorKeySource source(build.keys, build.valid);

    // Legacy baseline at each thread count (the build is inherently
    // serial; only its probe parallelizes).
    const LegacyTable legacy = BuildLegacy(build);
    double legacy_build_s = 1e300;
    for (size_t r = 0; r < reps; ++r) {
      legacy_build_s =
          std::min(legacy_build_s, Seconds([&] { (void)BuildLegacy(build); }));
    }
    std::vector<double> legacy_probe_s(thread_sweep.size(), 1e300);
    std::vector<uint64_t> expected(thread_sweep.size(), 0);
    for (size_t t = 0; t < thread_sweep.size(); ++t) {
      ThreadPool pool_storage(std::max<size_t>(thread_sweep[t], 1));
      ThreadPool* pool = thread_sweep[t] > 1 ? &pool_storage : nullptr;
      for (size_t r = 0; r < reps; ++r) {
        uint64_t count = 0;
        const double s = Seconds([&] {
          count = RunMorsels(pool, probe.keys.size(),
                             [&](size_t lo, size_t hi) {
                               return ProbeLegacyMorsel(legacy, probe, lo, hi);
                             });
        });
        legacy_probe_s[t] = std::min(legacy_probe_s[t], s);
        expected[t] = count;
      }
    }
    CARDBENCH_CHECK(expected[0] > 0, "degenerate workload: zero matches");

    for (size_t radix : radix_bits_sweep) {
      for (size_t t = 0; t < thread_sweep.size(); ++t) {
        const size_t threads = thread_sweep[t];
        ThreadPool pool_storage(threads);
        ThreadPool* pool = threads > 1 ? &pool_storage : nullptr;
        JoinMorselRunner runner;
        if (pool != nullptr) {
          runner = [pool](size_t count,
                          const std::function<void(size_t)>& fn) {
            ParallelFor(*pool, count, fn);
          };
        }
        JoinHashConfig config;
        config.radix_bits = radix;

        double build_s = 1e300;
        double probe_s = 1e300;
        for (size_t r = 0; r < reps; ++r) {
          JoinHashTable table;
          build_s = std::min(build_s, Seconds([&] {
            CARDBENCH_CHECK(table.Build(source, build.keys.size(), config,
                                        runner, nullptr),
                            "build aborted without a budget");
          }));
          uint64_t count = 0;
          probe_s = std::min(probe_s, Seconds([&] {
            count = RunMorsels(
                pool, probe.keys.size(), [&](size_t lo, size_t hi) {
                  // Reused per-thread hash scratch, like the executor's
                  // arena-backed KeyScratch (which never zero-fills).
                  thread_local std::vector<uint64_t> scratch;
                  scratch.resize(kProbeMorselTuples);
                  return ProbeRadixMorsel(table, probe, lo, hi,
                                          config.prefetch_distance, scratch);
                });
          }));
          CARDBENCH_CHECK(count == expected[t],
                          "radix join counted %llu, legacy %llu at rows=%zu "
                          "radix_bits=%zu threads=%zu — join table bug",
                          static_cast<unsigned long long>(count),
                          static_cast<unsigned long long>(expected[t]), rows,
                          radix, threads);
        }

        ConfigResult res;
        res.rows = rows;
        res.radix_bits = radix;
        res.threads = threads;
        const double rows_d = static_cast<double>(rows);
        const double probes_d = static_cast<double>(probe.keys.size());
        res.build_ns_per_row = build_s * 1e9 / rows_d;
        res.probe_ns_per_row = probe_s * 1e9 / probes_d;
        res.legacy_build_ns_per_row = legacy_build_s * 1e9 / rows_d;
        res.legacy_probe_ns_per_row = legacy_probe_s[t] * 1e9 / probes_d;
        res.probe_speedup_vs_legacy =
            probe_s > 0 ? legacy_probe_s[t] / probe_s : 0.0;
        res.build_speedup_vs_legacy =
            build_s > 0 ? legacy_build_s / build_s : 0.0;
        results.push_back(res);
        std::printf("%9zu %5zu %8zu %11.2f %11.2f %11.2f %11.2f %8.2fx\n",
                    rows, radix, threads, res.build_ns_per_row,
                    res.probe_ns_per_row, res.legacy_build_ns_per_row,
                    res.legacy_probe_ns_per_row, res.probe_speedup_vs_legacy);
      }
    }
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_micro_join\",\n  %s,\n",
                 CpuInfoJson().c_str());
    std::fprintf(out, "  \"reps\": %zu,\n  \"configs\": [\n", reps);
    for (size_t i = 0; i < results.size(); ++i) {
      const ConfigResult& r = results[i];
      std::fprintf(
          out,
          "    {\"rows\": %zu, \"radix_bits\": %zu, \"threads\": %zu, "
          "\"build_ns_per_row\": %.3f, \"probe_ns_per_row\": %.3f, "
          "\"legacy_build_ns_per_row\": %.3f, "
          "\"legacy_probe_ns_per_row\": %.3f, "
          "\"build_speedup_vs_legacy\": %.3f, "
          "\"probe_speedup_vs_legacy\": %.3f}%s\n",
          r.rows, r.radix_bits, r.threads, r.build_ns_per_row,
          r.probe_ns_per_row, r.legacy_build_ns_per_row,
          r.legacy_probe_ns_per_row, r.build_speedup_vs_legacy,
          r.probe_speedup_vs_legacy, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("configs -> %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) { return cardbench::Run(argc, argv); }
