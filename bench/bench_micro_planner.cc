// Micro-benchmark of the planner's QueryGraph refactor: plans every
// STATS-CEB query repeatedly through the legacy string-based path
// (Induced(mask) sub-queries, per-split edge scans) and the compiled-IR
// path ((graph, mask) dispatch over precomputed adjacency bitmasks), and
// reports plans/second plus the estimation-dispatch share of planning time
// for each. Plans are asserted identical between the paths — the parity
// the refactor promises — so the delta is pure overhead removed. The shape
// to verify: the graph path is faster than the legacy path, and compiling
// the graph per plan (the convenience overload) lands between the two.
// Results go to stdout and to bench_micro_planner.json (consumed by
// scripts/run_all_benches.sh).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

struct PathResult {
  std::string path;
  double seconds = 0.0;             ///< total planning wall time
  double estimation_seconds = 0.0;  ///< portion inside EstimateCard dispatch
  size_t plans = 0;

  double PlansPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(plans) / seconds : 0.0;
  }
};

int Run(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;
  const Optimizer& opt = env.optimizer();
  const auto& contexts = env.query_contexts();
  CARDBENCH_CHECK(!contexts.empty(), "empty workload");

  const size_t repeats = std::max<size_t>(3, flags.exec_repeats);
  const std::string estimator_name =
      flags.estimators.empty() ? "PostgreSQL" : flags.estimators[0];
  auto est = env.MakeNamedEstimator(estimator_name);
  CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s", estimator_name.c_str(),
                  est.status().ToString().c_str());
  const CardinalityEstimator& estimator = **est;

  std::printf("planner micro-bench: %zu queries x %zu repeats, "
              "estimator %s, scale %g\n\n",
              contexts.size(), repeats, estimator_name.c_str(), flags.scale);

  // Identity check first (outside the timed loops): both paths must choose
  // the same plan at the same cost for every query.
  for (const auto& ctx : contexts) {
    auto legacy = opt.PlanLegacy(*ctx.query, estimator);
    auto graph = opt.Plan(*ctx.graph, estimator);
    CARDBENCH_CHECK(legacy.ok() && graph.ok(), "planning failed");
    CARDBENCH_CHECK(
        legacy->plan->Explain() == graph->plan->Explain() &&
            legacy->plan->estimated_cost == graph->plan->estimated_cost,
        "graph and legacy paths diverged on %s", ctx.query->name.c_str());
  }

  // One timed sweep: `plan` maps a context to a PlanResult.
  auto run_path = [&](const char* name, auto&& plan) {
    PathResult result;
    result.path = name;
    Stopwatch wall;
    for (size_t r = 0; r < repeats; ++r) {
      for (const auto& ctx : contexts) {
        auto planned = plan(ctx);
        CARDBENCH_CHECK(planned.ok(), "planning failed: %s",
                        planned.status().ToString().c_str());
        result.estimation_seconds += planned->estimation_seconds;
        ++result.plans;
      }
    }
    result.seconds = wall.ElapsedSeconds();
    return result;
  };

  const PathResult legacy = run_path("legacy", [&](const auto& ctx) {
    return opt.PlanLegacy(*ctx.query, estimator);
  });
  const PathResult graph = run_path("graph", [&](const auto& ctx) {
    return opt.Plan(*ctx.graph, estimator);
  });
  // The convenience overload compiles a throwaway graph per plan — the cost
  // a caller pays for not reusing the IR.
  const PathResult compile = run_path("graph+compile", [&](const auto& ctx) {
    return opt.Plan(*ctx.query, estimator);
  });

  std::printf("%-14s %12s %10s %14s %9s\n", "path", "plans/s", "total",
              "estimation", "speedup");
  const std::vector<const PathResult*> rows = {&legacy, &graph, &compile};
  for (const PathResult* r : rows) {
    std::printf("%-14s %12.1f %10s %14s %8.2fx\n", r->path.c_str(),
                r->PlansPerSecond(), FormatDuration(r->seconds).c_str(),
                FormatDuration(r->estimation_seconds).c_str(),
                r->seconds > 0.0 ? legacy.seconds / r->seconds : 0.0);
  }
  std::printf("\nshape check: graph path faster than legacy %s "
              "(%.2fx), per-plan compile overhead %s\n",
              graph.seconds < legacy.seconds ? "yes" : "NO",
              graph.seconds > 0.0 ? legacy.seconds / graph.seconds : 0.0,
              FormatDuration((compile.seconds - graph.seconds) /
                             std::max<size_t>(1, compile.plans))
                  .c_str());

  const char* json_path = "bench_micro_planner.json";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_micro_planner\",\n  %s,\n"
                 "  \"dataset\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"estimator\": \"%s\",\n  \"queries\": %zu,\n"
                 "  \"repeats\": %zu,\n  \"paths\": [\n",
                 CpuInfoJson().c_str(), env.dataset_name().c_str(), flags.scale,
                 estimator_name.c_str(), contexts.size(), repeats);
    for (size_t i = 0; i < rows.size(); ++i) {
      const PathResult& r = *rows[i];
      std::fprintf(out,
                   "    {\"path\": \"%s\", \"plans_per_second\": %.1f, "
                   "\"seconds\": %.6f, \"estimation_seconds\": %.6f, "
                   "\"speedup_vs_legacy\": %.4f}%s\n",
                   r.path.c_str(), r.PlansPerSecond(), r.seconds,
                   r.estimation_seconds,
                   r.seconds > 0.0 ? legacy.seconds / r.seconds : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  const cardbench::BenchFlags flags = cardbench::ParseBenchFlags(argc, argv);
  return cardbench::Run(flags);
}
