// Extension bench (DESIGN.md): how accurate does CardEst have to be?
// Sweeps a noisy oracle — exact cardinalities perturbed by log-normal
// noise of magnitude sigma — over STATS-CEB and reports execution time,
// Q-Error and P-Error per sigma. Expected shape: execution time and
// P-Error degrade smoothly with sigma while Q-Error grows mechanically;
// moderate noise (sigma ~ 1, i.e. typical 2x errors) barely hurts,
// grounding the paper's observation that only *certain* estimation errors
// matter (O5/O12).

#include <cstdio>

#include "cardest/noisy_oracle_est.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::printf("Noise-sensitivity sweep on STATS-CEB (scale=%.2f)\n", flags.scale);
  std::printf("sigma = stddev of log2-scale multiplicative noise on exact "
              "cardinalities\n\n");
  std::printf("%-8s %12s %10s %10s | %8s %8s\n", "sigma", "Exec", "Q-50%",
              "Q-99%", "P-50%", "P-99%");

  for (const double sigma : {0.0, 0.5, 1.0, 2.0, 3.0, 5.0}) {
    NoisyOracleEstimator est(env.truecard(), sigma);
    const auto run = env.RunEstimator(est);
    const Percentiles q = ComputePercentiles(run.AllQErrors());
    const Percentiles p = ComputePercentiles(run.AllPErrors());
    std::printf("%-8.1f %12s %10s %10s | %8.3f %8.3f%s\n", sigma,
                FormatDuration(run.TotalExecSeconds()).c_str(),
                FormatCount(q.p50).c_str(), FormatCount(q.p99).c_str(),
                p.p50, p.p99,
                run.timeouts > 0
                    ? StrFormat("  (%zu capped)", run.timeouts).c_str()
                    : "");
  }
  std::printf("\n(expected: exec/P-Error degrade smoothly with sigma; "
              "Q-Error grows mechanically regardless of plan impact)\n");
  return 0;
}
