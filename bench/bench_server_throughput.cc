// Network-server throughput: replays the STATS-CEB workload against an
// in-process cardserved instance over real loopback sockets — the wire
// protocol, the poll event loop and the admission control all on the
// serving path — and reports closed-loop throughput/latency at several
// concurrency levels plus an open-loop overload point. The shapes to
// verify: every closed-loop request completes with bounded tail latency
// (no rejections, no hangs), the overloaded server answers immediate
// structured rejections instead of hanging clients, and the /metrics
// endpoint serves parseable per-estimator quantiles. (Closed-loop
// throughput growth with concurrency depends on the host's core count —
// on a single-core box added clients only add scheduling overhead — so
// the sweep is reported but not asserted monotone.)
//
// Results go to stdout and to bench_server_throughput.json (collected by
// scripts/run_all_benches.sh).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_info.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "server/client.h"
#include "server/server.h"
#include "service/estimation_service.h"
#include "service/load_driver.h"

namespace cardbench {
namespace {

struct SweepRow {
  size_t concurrency = 0;
  LoadReport report;
};

struct OverloadRow {
  double offered_qps = 0.0;
  LoadReport report;
  double reject_wall_seconds = 0.0;  ///< wall time of the run (drops incl.)
};

struct EstimatorRun {
  std::string name;
  std::vector<SweepRow> closed_loop;
  OverloadRow overload;
  LatencyHistogram::Snapshot server_latency;
};

Result<std::unique_ptr<CardinalityEstimator>> NamedEstimator(
    BenchEnv& env, const std::string& registry_name) {
  return env.MakeNamedEstimator(registry_name);
}

int RunBench(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimator_names = flags.estimators;
  if (estimator_names.empty()) estimator_names = {"PostgreSQL"};

  std::vector<std::string> sqls;
  for (const auto& ctx : env.query_contexts()) {
    sqls.push_back(ctx.query->ToSql());
  }
  CARDBENCH_CHECK(!sqls.empty(), "empty workload");
  std::printf("\nworkload: %s, %zu queries over loopback TCP\n",
              env.dataset_name().c_str(), sqls.size());

  // The serving stack under test: service workers behind a bounded queue,
  // fronted by the cardserved event loop on an ephemeral loopback port.
  ServiceOptions service_options;
  service_options.num_threads = std::max<size_t>(4, flags.threads);
  service_options.queue_depth = flags.queue_depth;
  EstimationService service(service_options);
  std::vector<std::string> serving_names;
  for (const std::string& registry_name : estimator_names) {
    auto est = NamedEstimator(env, registry_name);
    CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s",
                    registry_name.c_str(), est.status().ToString().c_str());
    serving_names.push_back((*est)->name());
    service.RegisterEstimator(std::move(*est));
  }
  CardServer server(service, env.db());
  CARDBENCH_CHECK(server.Start().ok(), "server start failed");
  std::printf("cardserved on 127.0.0.1:%u, %zu worker(s), queue depth "
              "%zu\n",
              server.port(), service.num_threads(),
              service.queue_capacity());

  const std::vector<size_t> concurrency_levels = {1, 4, 16};
  const size_t closed_requests =
      std::max<size_t>(sqls.size(), flags.fast ? 300 : 1200);

  std::vector<EstimatorRun> runs;
  for (const std::string& name : serving_names) {
    EstimatorRun run;
    run.name = name;

    // Untimed warm-up pass: pays the sub-plan cache misses once so every
    // measured concurrency point sees the same hot-cache serving path.
    {
      SocketEstimateBackend backend("127.0.0.1", server.port(), sqls);
      LoadDriver driver(backend);
      LoadOptions load;
      load.estimator = name;
      load.concurrency = 4;
      auto warmup = driver.Run(load);
      CARDBENCH_CHECK(warmup.ok(), "warm-up run failed: %s",
                      warmup.status().ToString().c_str());
    }

    std::printf("\n%s, closed loop (clients keep one request in flight)\n",
                name.c_str());
    std::printf("%-12s %10s %10s %10s %10s %9s %9s\n", "concurrency",
                "QPS", "p50", "p95", "p99", "rejected", "hit rate");
    for (size_t concurrency : concurrency_levels) {
      SocketEstimateBackend backend("127.0.0.1", server.port(), sqls);
      LoadDriver driver(backend);
      LoadOptions load;
      load.estimator = name;
      load.concurrency = concurrency;
      load.replays = std::max<size_t>(1, closed_requests / sqls.size());
      auto report = driver.Run(load);
      CARDBENCH_CHECK(report.ok(), "closed-loop run failed: %s",
                      report.status().ToString().c_str());
      std::printf("%-12zu %10.1f %10s %10s %10s %9zu %8.1f%%\n",
                  concurrency, report->QueriesPerSecond(),
                  FormatDuration(report->latency.p50).c_str(),
                  FormatDuration(report->latency.p95).c_str(),
                  FormatDuration(report->latency.p99).c_str(),
                  report->rejected, 100.0 * report->cache.HitRate());
      run.closed_loop.push_back(SweepRow{concurrency, std::move(*report)});
    }
    runs.push_back(std::move(run));
  }

  // Overload: a deliberately tiny service (one worker, depth-1 queue)
  // behind its own server, hammered open-loop well past capacity — past
  // even the hot-cache serving rate, so the queue overflows in steady
  // state. The measurement is the shedding behavior itself: drops must be
  // immediate structured rejections, so the run's wall time stays near
  // the offered schedule instead of ballooning.
  ServiceOptions overload_options;
  overload_options.num_threads = 1;
  overload_options.queue_depth = 1;
  EstimationService overload_service(overload_options);
  for (const std::string& registry_name : estimator_names) {
    auto est = NamedEstimator(env, registry_name);
    CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s",
                    registry_name.c_str(), est.status().ToString().c_str());
    overload_service.RegisterEstimator(std::move(*est));
  }
  CardServer overload_server(overload_service, env.db());
  CARDBENCH_CHECK(overload_server.Start().ok(),
                  "overload server start failed");

  std::printf("\nopen-loop overload (queue depth 1, 1 worker)\n");
  std::printf("%-24s %12s %10s %10s %10s %10s\n", "estimator",
              "offered QPS", "completed", "dropped", "achieved", "wall");
  // Every overload request is a distinct query (a unique predicate
  // constant ⇒ a unique graph fingerprint ⇒ a guaranteed sub-plan cache
  // miss), so the offered load measures estimator work rather than cache
  // lookups — the tiny service genuinely saturates and must shed.
  std::vector<std::string> overload_sqls;
  for (size_t i = 0, n = flags.fast ? 1000 : 2000; i < n; ++i) {
    overload_sqls.push_back(StrFormat(
        "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
        "posts.OwnerUserId AND posts.Id = comments.PostId AND "
        "comments.Score >= %zu;",
        i + 1));
  }

  for (size_t e = 0; e < serving_names.size(); ++e) {
    EstimatorRun& run = runs[e];
    double peak_qps = 0.0;
    for (const SweepRow& row : run.closed_loop) {
      peak_qps = std::max(peak_qps, row.report.QueriesPerSecond());
    }
    const double offered = std::max(20000.0, peak_qps * 8.0);
    SocketEstimateBackend backend("127.0.0.1", overload_server.port(),
                                  overload_sqls);
    LoadDriver driver(backend);
    LoadOptions load;
    load.estimator = run.name;
    load.concurrency = 32;
    load.replays = 1;
    load.offered_qps = offered;
    Stopwatch wall;
    auto report = driver.Run(load);
    CARDBENCH_CHECK(report.ok(), "open-loop run failed: %s",
                    report.status().ToString().c_str());
    run.overload.offered_qps = offered;
    run.overload.reject_wall_seconds = wall.ElapsedSeconds();
    std::printf("%-24s %12.1f %10zu %10zu %10.1f %9.1fs\n",
                run.name.c_str(), offered, report->requests,
                report->dropped, report->QueriesPerSecond(),
                run.overload.reject_wall_seconds);
    run.overload.report = std::move(*report);
  }

  // Server-side latency quantiles per estimator, scraped from the metrics
  // plane of the closed-loop server (the histogram the /metrics endpoint
  // serves).
  for (auto& [name, snapshot] : server.metrics().LatencySnapshots()) {
    for (EstimatorRun& run : runs) {
      if (run.name == name) run.server_latency = snapshot;
    }
  }

  auto metrics_page = FetchServerMetrics("127.0.0.1", server.port());
  const bool metrics_ok =
      metrics_page.ok() &&
      metrics_page->find("cardserved_requests_total") != std::string::npos &&
      metrics_page->find("cardserved_latency_seconds") != std::string::npos;

  size_t total_dropped = 0;
  bool closed_loop_clean = true;
  for (const EstimatorRun& run : runs) {
    total_dropped += run.overload.report.dropped;
    for (const SweepRow& row : run.closed_loop) {
      // Every request completed (no rejections — the queue is sized for
      // the client count) with a bounded tail.
      if (row.report.rejected != 0 || row.report.dropped != 0 ||
          row.report.latency.p99 > 0.1) {
        closed_loop_clean = false;
      }
    }
  }
  std::printf("\nshape check: closed loop completes with bounded tails %s, "
              "overload sheds load (%zu dropped) %s, /metrics parseable "
              "%s\n",
              closed_loop_clean ? "yes" : "NO", total_dropped,
              total_dropped > 0 ? "yes" : "NO", metrics_ok ? "yes" : "NO");

  const char* json_path = "bench_server_throughput.json";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fprintf(out,
                 "{\n  \"bench\": \"bench_server_throughput\",\n  %s,\n"
                 "  \"dataset\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"queries\": %zu,\n  \"workers\": %zu,\n"
                 "  \"queue_depth\": %zu,\n  \"estimators\": [\n",
                 CpuInfoJson().c_str(),
                 env.dataset_name().c_str(), flags.scale, sqls.size(),
                 service.num_threads(), service.queue_capacity());
    for (size_t e = 0; e < runs.size(); ++e) {
      const EstimatorRun& run = runs[e];
      std::fprintf(out, "    {\"name\": \"%s\",\n", run.name.c_str());
      std::fprintf(out, "     \"closed_loop\": [\n");
      for (size_t i = 0; i < run.closed_loop.size(); ++i) {
        const SweepRow& row = run.closed_loop[i];
        std::fprintf(
            out,
            "       {\"concurrency\": %zu, \"qps\": %.1f, "
            "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
            "\"requests\": %zu, \"rejected\": %zu, "
            "\"cache_hit_rate\": %.4f}%s\n",
            row.concurrency, row.report.QueriesPerSecond(),
            row.report.latency.p50 * 1e6, row.report.latency.p95 * 1e6,
            row.report.latency.p99 * 1e6, row.report.requests,
            row.report.rejected, row.report.cache.HitRate(),
            i + 1 < run.closed_loop.size() ? "," : "");
      }
      std::fprintf(out, "     ],\n");
      std::fprintf(
          out,
          "     \"open_loop\": {\"offered_qps\": %.1f, "
          "\"completed\": %zu, \"dropped\": %zu, \"timeouts\": %zu, "
          "\"achieved_qps\": %.1f, \"wall_seconds\": %.3f},\n",
          run.overload.offered_qps, run.overload.report.requests,
          run.overload.report.dropped, run.overload.report.timeouts,
          run.overload.report.QueriesPerSecond(),
          run.overload.reject_wall_seconds);
      std::fprintf(
          out,
          "     \"server_latency\": {\"count\": %llu, "
          "\"mean_us\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
          "\"p999_us\": %.1f}}%s\n",
          static_cast<unsigned long long>(run.server_latency.count),
          run.server_latency.MeanSeconds() * 1e6,
          run.server_latency.Quantile(0.5) * 1e6,
          run.server_latency.Quantile(0.99) * 1e6,
          run.server_latency.Quantile(0.999) * 1e6,
          e + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"metrics_endpoint_ok\": %s,\n"
                 "  \"total_dropped\": %zu\n}\n",
                 metrics_ok ? "true" : "false", total_dropped);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
  }

  overload_server.Stop();
  server.Stop();
  return 0;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Server throughput: STATS-CEB replay through cardserved "
              "over loopback TCP (scale=%.2f%s)\n",
              flags.scale, flags.fast ? ", fast" : "");
  return RunBench(flags);
}
