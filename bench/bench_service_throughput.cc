// Serving-layer throughput: replays the STATS-CEB workload against the
// EstimationService at increasing worker counts and reports queries/second,
// tail latency and cache effectiveness. The shape to verify: near-linear
// scaling from 1 to 8 workers on a cold cache (>= 3x at 8), bit-identical
// estimates to the serial loop (the thread-safety contract in
// cardest/estimator.h is what makes sharing one trained model legal), and a
// hot cache absorbing a repeated replay entirely.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"
#include "service/estimation_service.h"
#include "service/load_driver.h"

namespace cardbench {
namespace {

/// Estimates of every connected sub-plan of every workload query, computed
/// serially by direct EstimateCard calls — the reference the service's
/// concurrent answers must match exactly.
std::vector<std::unordered_map<uint64_t, double>> SerialReference(
    const CardinalityEstimator& estimator, const BenchEnv& env) {
  std::vector<std::unordered_map<uint64_t, double>> reference;
  for (const auto& ctx : env.query_contexts()) {
    const Query& query = *ctx.query;
    std::unordered_map<uint64_t, double> cards;
    for (uint64_t mask : EnumerateConnectedSubsets(query)) {
      cards[mask] = mask == query.FullMask()
                        ? estimator.EstimateCard(query)
                        : estimator.EstimateCard(query.Induced(mask));
    }
    reference.push_back(std::move(cards));
  }
  return reference;
}

/// Wraps an estimator with a fixed per-estimate latency — the shape of a
/// model served out of process (the learned methods' deployment mode: the
/// planner pays an RPC to an inference server per sub-plan). Workers
/// overlap the waits, so service throughput scales with pool size even on
/// a single core; this isolates the serving layer's concurrency from the
/// machine's.
class RemoteModelEstimator : public CardinalityEstimator {
 public:
  RemoteModelEstimator(std::unique_ptr<CardinalityEstimator> inner,
                       double latency_seconds)
      : inner_(std::move(inner)), latency_seconds_(latency_seconds) {}
  std::string name() const override { return "RemoteModel"; }
  double EstimateCard(const Query& subquery) const override {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(latency_seconds_));
    return inner_->EstimateCard(subquery);
  }

 private:
  std::unique_ptr<CardinalityEstimator> inner_;
  double latency_seconds_;
};

/// One load sweep point: fresh service with `workers` threads and an
/// effectively disabled cache, `requests` total requests.
Result<LoadReport> SweepPoint(BenchEnv& env, const BenchFlags& flags,
                              const std::string& registry_name,
                              const std::string& serving_name,
                              const std::vector<const QueryGraph*>& graphs,
                              size_t workers, size_t requests,
                              double rpc_latency) {
  ServiceOptions options;
  options.num_threads = workers;
  options.queue_depth = flags.queue_depth;
  // The sweep measures worker parallelism, so the cache is sized to
  // nothing: every sub-plan estimate is real model work on every replay
  // (the cache's own effect is reported separately).
  options.cache_capacity = 1;
  options.cache_shards = 1;
  EstimationService service(options);
  CARDBENCH_ASSIGN_OR_RETURN(auto est, env.MakeNamedEstimator(registry_name));
  if (rpc_latency > 0.0) {
    service.RegisterEstimator(std::make_unique<RemoteModelEstimator>(
        std::move(est), rpc_latency));
  } else {
    service.RegisterEstimator(std::move(est));
  }

  LoadDriver driver(service, graphs);
  LoadOptions load;
  load.estimator = rpc_latency > 0.0 ? "RemoteModel" : serving_name;
  load.concurrency = workers * 2;  // keep every worker saturated
  load.replays = std::max<size_t>(1, requests / graphs.size());
  return driver.Run(load);
}

void RunBench(const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  const std::string estimator_name =
      flags.estimators.empty() ? "PostgreSQL" : flags.estimators[0];

  std::vector<const Query*> queries;
  std::vector<const QueryGraph*> graphs;
  for (const auto& ctx : env.query_contexts()) {
    queries.push_back(ctx.query);
    graphs.push_back(ctx.graph.get());
  }
  std::printf("\nworkload: %s, %zu queries, estimator: %s\n",
              env.dataset_name().c_str(), queries.size(),
              estimator_name.c_str());

  // Serial reference for the identity check, from its own instance (equally
  // trained instances answer identically — training is deterministic).
  auto reference_est = env.MakeNamedEstimator(estimator_name);
  CARDBENCH_CHECK(reference_est.ok(), "estimator %s failed: %s",
                  estimator_name.c_str(),
                  reference_est.status().ToString().c_str());
  const auto reference = SerialReference(**reference_est, env);
  // Serving lookups go by the model's self-reported name, which can differ
  // from the registry spelling.
  const std::string serving_name = (*reference_est)->name();

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", cores);

  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  constexpr size_t kTopWorkers = 8;

  // Sweep 1: in-process estimator, CPU-bound. Scaling here tracks the
  // machine's cores (flat on a single-core host by physics, not by design).
  std::printf("\nin-process %s (CPU-bound; scaling is capped by cores)\n",
              serving_name.c_str());
  std::printf("%-8s %10s %9s %10s %10s %10s %9s\n", "workers", "QPS",
              "speedup", "p50", "p95", "p99", "rejected");
  double cpu_baseline = 0.0;
  double cpu_top = 0.0;
  for (size_t workers : worker_counts) {
    auto report = SweepPoint(env, flags, estimator_name, serving_name,
                             graphs, workers, 1000, 0.0);
    CARDBENCH_CHECK(report.ok(), "load run failed: %s",
                    report.status().ToString().c_str());
    if (workers == 1) cpu_baseline = report->QueriesPerSecond();
    cpu_top = report->QueriesPerSecond();
    std::printf("%-8zu %10.1f %8.2fx %10s %10s %10s %9zu\n", workers,
                report->QueriesPerSecond(),
                cpu_baseline > 0 ? report->QueriesPerSecond() / cpu_baseline
                                 : 0.0,
                FormatDuration(report->latency.p50).c_str(),
                FormatDuration(report->latency.p95).c_str(),
                FormatDuration(report->latency.p99).c_str(),
                report->rejected);
  }

  // Sweep 2: the same workload against a remote-served model (fixed
  // per-estimate inference latency). Workers overlap the waits, so this
  // measures the serving layer's own concurrency on any machine.
  std::printf("\nremote-model %s + 100us/estimate RPC (latency-bound)\n",
              serving_name.c_str());
  std::printf("%-8s %10s %9s %10s %10s %10s %9s\n", "workers", "QPS",
              "speedup", "p50", "p95", "p99", "rejected");
  double rpc_baseline = 0.0;
  double rpc_top = 0.0;
  for (size_t workers : worker_counts) {
    auto report = SweepPoint(env, flags, estimator_name, serving_name,
                             graphs, workers, 200, 100e-6);
    CARDBENCH_CHECK(report.ok(), "load run failed: %s",
                    report.status().ToString().c_str());
    if (workers == 1) rpc_baseline = report->QueriesPerSecond();
    rpc_top = report->QueriesPerSecond();
    std::printf("%-8zu %10.1f %8.2fx %10s %10s %10s %9zu\n", workers,
                report->QueriesPerSecond(),
                rpc_baseline > 0 ? report->QueriesPerSecond() / rpc_baseline
                                 : 0.0,
                FormatDuration(report->latency.p50).c_str(),
                FormatDuration(report->latency.p95).c_str(),
                FormatDuration(report->latency.p99).c_str(),
                report->rejected);
  }

  // Cache-enabled service (default sizing) for the identity check and the
  // hot-cache replay.
  ServiceOptions cached_options;
  cached_options.num_threads = kTopWorkers;
  cached_options.queue_depth = flags.queue_depth;
  auto last_service = std::make_unique<EstimationService>(cached_options);
  {
    auto est = env.MakeNamedEstimator(estimator_name);
    CARDBENCH_CHECK(est.ok(), "estimator %s failed: %s",
                    estimator_name.c_str(), est.status().ToString().c_str());
    last_service->RegisterEstimator(std::move(*est));
  }

  // Identity check against the serial reference: same estimates bit-for-bit
  // means identical Q-Error and P-Error by construction (both metrics are
  // pure functions of the sub-plan estimates).
  size_t mismatched = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto cards = last_service->EstimateQuerySync(serving_name, *queries[i]);
    CARDBENCH_CHECK(cards.ok(), "estimate failed: %s",
                    cards.status().ToString().c_str());
    if (*cards != reference[i]) ++mismatched;
  }

  // Hot-cache replay: the workload was just served, so a repeat should be
  // absorbed by the sub-plan cache.
  // Graph-dispatch replay against entries the query-path identity check just
  // inserted: a hit rate > 0 proves graph and graph-less requests share
  // cache entries through the fingerprint key.
  LoadDriver hot_driver(*last_service, graphs);
  LoadOptions hot;
  hot.estimator = serving_name;
  hot.concurrency = kTopWorkers * 2;
  hot.replays = 1;
  auto hot_report = hot_driver.Run(hot);
  CARDBENCH_CHECK(hot_report.ok(), "hot replay failed: %s",
                  hot_report.status().ToString().c_str());

  const double cpu_scaling = cpu_baseline > 0.0 ? cpu_top / cpu_baseline : 0.0;
  const double rpc_scaling = rpc_baseline > 0.0 ? rpc_top / rpc_baseline : 0.0;
  std::printf("\nestimates vs serial: %s (%zu/%zu queries match exactly)\n",
              mismatched == 0 ? "identical" : "MISMATCH",
              queries.size() - mismatched, queries.size());
  std::printf("hot-cache replay: %.1f QPS, hit rate %.1f%%\n",
              hot_report->QueriesPerSecond(),
              100.0 * hot_report->cache.HitRate());
  std::printf("\nshape check: 8-worker speedup %.2fx latency-bound "
              "(want >= 3x), %.2fx CPU-bound on %u core(s), "
              "identical estimates %s, warm hit rate > 0 %s\n",
              rpc_scaling, cpu_scaling, cores,
              mismatched == 0 ? "yes" : "NO",
              hot_report->cache.HitRate() > 0.0 ? "yes" : "NO");
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Service throughput: STATS-CEB replay through the "
              "estimation service (scale=%.2f%s)\n",
              flags.scale, flags.fast ? ", fast" : "");
  RunBench(flags);
  return 0;
}
