// Reproduces paper Table 1: statistical comparison of the (simplified)
// IMDB dataset and STATS. Prints our synthetic counterparts next to the
// paper's reported values; the shape to verify is IMDB < STATS on every
// complexity axis (scale, FOJ size, skew, correlation, join richness).

#include <cstdio>
#include <set>

#include "common/str_util.h"
#include "datagen/imdb_gen.h"
#include "datagen/stats_gen.h"
#include "harness/bench_env.h"
#include "storage/stats.h"

namespace cardbench {
namespace {

struct DatasetSummary {
  size_t tables = 0;
  size_t attributes = 0;
  size_t min_attrs_per_table = 0;
  size_t max_attrs_per_table = 0;
  double foj = 0.0;
  size_t domain = 0;
  double skew = 0.0;
  double corr = 0.0;
  size_t relations = 0;
  std::string join_forms;
};

DatasetSummary Summarize(const Database& db) {
  DatasetSummary s;
  s.tables = db.num_tables();
  s.attributes = NumFilterableAttributes(db);
  s.min_attrs_per_table = 99;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    size_t attrs = 0;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnKind kind = table.column(c).kind();
      attrs += (kind == ColumnKind::kNumeric || kind == ColumnKind::kCategorical);
    }
    s.min_attrs_per_table = std::min(s.min_attrs_per_table, attrs);
    s.max_attrs_per_table = std::max(s.max_attrs_per_table, attrs);
  }
  s.foj = EstimateFullOuterJoinSize(db);
  s.domain = TotalAttributeDomainSize(db);
  s.skew = AverageDistributionSkewness(db);
  s.corr = AveragePairwiseCorrelation(db);
  s.relations = db.join_relations().size();
  // Join forms: a pure star means every relation shares one center table.
  std::set<std::string> left_tables;
  for (const auto& rel : db.join_relations()) left_tables.insert(rel.left_table);
  s.join_forms = left_tables.size() == 1 ? "star" : "star/chain/mixed";
  return s;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ImdbGenConfig ic;
  ic.scale = flags.scale;
  auto imdb = GenerateImdbDatabase(ic);
  StatsGenConfig sc;
  sc.scale = flags.scale;
  sc.seed = flags.seed;
  auto stats = GenerateStatsDatabase(sc);

  const DatasetSummary a = Summarize(*imdb);
  const DatasetSummary b = Summarize(*stats);

  std::printf("Table 1: IMDB (simplified) vs STATS dataset statistics "
              "(scale=%.2f)\n", flags.scale);
  std::printf("paper values in [brackets]\n\n");
  std::printf("%-34s %18s %18s\n", "Item", "IMDB", "STATS");
  std::printf("%-34s %18zu %18zu\n", "# of tables [6 / 8]", a.tables, b.tables);
  std::printf("%-34s %18zu %18zu\n", "# of n./c. attributes [8 / 23]",
              a.attributes, b.attributes);
  std::printf("%-34s %12zu-%-5zu %12zu-%-5zu\n",
              "# attrs per table [1-2 / 1-8]", a.min_attrs_per_table,
              a.max_attrs_per_table, b.min_attrs_per_table,
              b.max_attrs_per_table);
  std::printf("%-34s %18s %18s\n", "full outer join size [2e12 / 3e16]",
              FormatCount(a.foj).c_str(), FormatCount(b.foj).c_str());
  std::printf("%-34s %18zu %18zu\n",
              "total attr domain [369563 / 578341]", a.domain, b.domain);
  std::printf("%-34s %18.3f %18.3f\n", "avg distribution skew [9.2 / 21.8]",
              a.skew, b.skew);
  std::printf("%-34s %18.3f %18.3f\n", "avg pairwise corr [0.149 / 0.221]",
              a.corr, b.corr);
  std::printf("%-34s %18s %18s\n", "join forms [star / mixed]",
              a.join_forms.c_str(), b.join_forms.c_str());
  std::printf("%-34s %18zu %18zu\n", "# of join relations [5 / 12]",
              a.relations, b.relations);

  const bool shape_holds = b.tables > a.tables && b.attributes > a.attributes &&
                           b.foj > a.foj && b.skew > a.skew &&
                           b.corr > a.corr && b.relations > a.relations;
  std::printf("\nshape check (STATS more complex on every axis): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
