// Reproduces paper Table 2: comparison of the JOB-LIGHT and STATS-CEB
// query workloads (query counts, join sizes, template counts, predicate
// counts, join types, true-cardinality range).

#include <cstdio>
#include <map>
#include <set>

#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

struct WorkloadSummary {
  size_t queries = 0;
  size_t min_tables = 99, max_tables = 0;
  size_t templates = 0;
  size_t min_preds = 99, max_preds = 0;
  bool has_fk_fk = false;
  double min_card = 1e300, max_card = 0.0;
};

WorkloadSummary Summarize(BenchEnv& env) {
  WorkloadSummary s;
  std::set<std::string> template_keys;
  for (const auto& ctx : env.query_contexts()) {
    const Query& q = *ctx.query;
    ++s.queries;
    s.min_tables = std::min(s.min_tables, q.tables.size());
    s.max_tables = std::max(s.max_tables, q.tables.size());
    s.min_preds = std::min(s.min_preds, q.predicates.size());
    s.max_preds = std::max(s.max_preds, q.predicates.size());
    Query tmpl = q;
    tmpl.predicates.clear();
    template_keys.insert(tmpl.CanonicalKey());
    for (const auto& edge : q.joins) {
      // FK-FK: neither endpoint is a schema-relation PK side.
      bool pk_side = false;
      for (const auto& rel : env.db().join_relations()) {
        if ((rel.left_table == edge.left_table &&
             rel.left_column == edge.left_column) ||
            (rel.left_table == edge.right_table &&
             rel.left_column == edge.right_column)) {
          pk_side = true;
          break;
        }
      }
      if (!pk_side) s.has_fk_fk = true;
    }
    const double card = ctx.true_cards.at(q.FullMask());
    s.min_card = std::min(s.min_card, card);
    s.max_card = std::max(s.max_card, card);
  }
  s.templates = template_keys.size();
  return s;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  auto imdb_env = BenchEnv::Create(BenchDataset::kImdb, flags);
  auto stats_env = BenchEnv::Create(BenchDataset::kStats, flags);
  if (!imdb_env.ok() || !stats_env.ok()) {
    std::fprintf(stderr, "env creation failed\n");
    return 1;
  }

  const WorkloadSummary a = Summarize(**imdb_env);
  const WorkloadSummary b = Summarize(**stats_env);

  std::printf("Table 2: JOB-LIGHT vs STATS-CEB workload statistics "
              "(scale=%.2f)\n", flags.scale);
  std::printf("paper values in [brackets]\n\n");
  std::printf("%-40s %14s %14s\n", "Item", "JOB-LIGHT", "STATS-CEB");
  std::printf("%-40s %14zu %14zu\n", "# of queries [70 / 146]", a.queries,
              b.queries);
  std::printf("%-40s %10zu-%-3zu %10zu-%-3zu\n", "# of joined tables [2-5 / 2-8]",
              a.min_tables, a.max_tables, b.min_tables, b.max_tables);
  std::printf("%-40s %14zu %14zu\n", "# of join templates [23 / 70]",
              a.templates, b.templates);
  std::printf("%-40s %10zu-%-3zu %10zu-%-3zu\n",
              "# of filtering predicates [1-4 / 1-16]", a.min_preds,
              a.max_preds, b.min_preds, b.max_preds);
  std::printf("%-40s %14s %14s\n", "join type [PK-FK / PK-FK+FK-FK]",
              a.has_fk_fk ? "PK-FK/FK-FK" : "PK-FK",
              b.has_fk_fk ? "PK-FK/FK-FK" : "PK-FK");
  std::printf("%-40s %6s-%-8s %6s-%-8s\n",
              "true cardinality range [9-9e9 / 200-2e10]",
              FormatCount(a.min_card).c_str(), FormatCount(a.max_card).c_str(),
              FormatCount(b.min_card).c_str(), FormatCount(b.max_card).c_str());

  const bool shape_holds =
      b.queries > a.queries && b.max_tables > a.max_tables &&
      b.templates > a.templates && b.max_preds > a.max_preds &&
      b.has_fk_fk && !a.has_fk_fk &&
      (b.max_card / std::max(b.min_card, 1.0)) >
          (a.max_card / std::max(a.min_card, 1.0));
  std::printf("\nshape check (STATS-CEB more diverse on every axis): %s\n",
              shape_holds ? "PASS" : "FAIL");
  return shape_holds ? 0 : 1;
}
