// Reproduces paper Table 3: overall end-to-end performance of every
// CardEst method on JOB-LIGHT and STATS-CEB — total end-to-end time,
// execution + planning split, and relative improvement over the
// PostgreSQL baseline. The shape to verify: data-driven PGM methods
// (BayesCard/DeepDB/FLAT) and PessEst approach TrueCard; histogram and
// sampling baselines lag or regress; query-driven methods hover near
// PostgreSQL.

#include <cstdio>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

void RunDataset(BenchDataset dataset, const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(dataset, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) estimators = AllEstimatorNames();

  std::printf("\n=== %s (%s workload, %zu queries) ===\n",
              env.dataset_name().c_str(), env.workload().name.c_str(),
              env.query_contexts().size());
  // At simulator scale, inference overhead is proportionally much larger
  // than on the paper's hours-long workloads (the whole workload behaves
  // like the paper's OLTP split, O7). Improvement is therefore reported
  // both end-to-end and execution-only; the exec-only column is the
  // Table 3 shape target, the E2E column reproduces the Table 5 (TP)
  // behaviour.
  std::printf("%-12s %14s %22s %11s %11s %8s\n", "Method", "End-to-End",
              "Exec + Plan", "Impr(E2E)", "Impr(Exec)", "Timeouts");

  double postgres_e2e = -1.0;
  double postgres_exec = -1.0;
  for (const auto& name : estimators) {
    auto est = env.MakeNamedEstimator(name);
    if (!est.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  est.status().ToString().c_str());
      continue;
    }
    const BenchEnv::RunResult run = env.RunEstimator(**est);
    const double e2e = run.EndToEndSeconds();
    const double exec = run.TotalExecSeconds();
    if (name == "PostgreSQL") {
      postgres_e2e = e2e;
      postgres_exec = exec;
    }
    std::string impr_e2e = "--", impr_exec = "--";
    if (postgres_e2e > 0) {
      impr_e2e =
          StrFormat("%+.1f%%", 100.0 * (postgres_e2e - e2e) / postgres_e2e);
      impr_exec = StrFormat("%+.1f%%",
                            100.0 * (postgres_exec - exec) / postgres_exec);
    }
    std::printf("%-12s %14s %12s + %-9s %11s %11s %5zu%s\n", name.c_str(),
                FormatDuration(e2e).c_str(), FormatDuration(exec).c_str(),
                FormatDuration(run.TotalPlanSeconds()).c_str(),
                impr_e2e.c_str(), impr_exec.c_str(), run.timeouts,
                run.timeouts > 0 ? " (capped)" : "");
  }
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Table 3: overall end-to-end performance "
              "(scale=%.2f, exec cap %.0fs/query)\n",
              flags.scale, flags.exec_timeout);
  RunDataset(BenchDataset::kImdb, flags);
  RunDataset(BenchDataset::kStats, flags);
  return 0;
}
