// Reproduces paper Table 4: end-to-end time improvement over the
// PostgreSQL baseline, broken down by the number of joined tables
// (buckets 2-3 / 4 / 5 / 6-8) on STATS-CEB. The shape to verify (O4):
// improvements shrink relative to TrueCard as the join count grows.

#include <cstdio>
#include <array>
#include <map>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

namespace cardbench {
namespace {

int BucketOf(size_t tables) {
  if (tables <= 3) return 0;
  if (tables == 4) return 1;
  if (tables == 5) return 2;
  return 3;
}

const char* kBucketNames[] = {"2-3", "4", "5", "6-8"};

// Buckets use execution time: at simulator scale the paper's
// exec-dominated regime only holds for the execution component (see the
// Table 3 bench header note).
std::array<double, 4> BucketExec(const BenchEnv::RunResult& run) {
  std::array<double, 4> totals = {0, 0, 0, 0};
  for (const auto& q : run.queries) {
    totals[static_cast<size_t>(BucketOf(q.num_tables))] += q.exec_seconds;
  }
  return totals;
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"PessEst", "MSCN", "BayesCard", "DeepDB", "FLAT", "TrueCard"};
  }

  // Baseline buckets.
  auto pg = env.MakeNamedEstimator("PostgreSQL");
  CARDBENCH_CHECK(pg.ok(), "PostgreSQL estimator failed");
  const auto pg_run = env.RunEstimator(**pg);
  const auto pg_buckets = BucketExec(pg_run);

  std::array<size_t, 4> counts = {0, 0, 0, 0};
  for (const auto& q : pg_run.queries) {
    ++counts[static_cast<size_t>(BucketOf(q.num_tables))];
  }

  std::printf("Table 4: execution-time improvement over PostgreSQL by # of join tables "
              "(STATS-CEB, scale=%.2f)\n\n", flags.scale);
  std::printf("%-9s %-9s", "# tables", "# queries");
  for (const auto& name : estimators) std::printf(" %11s", name.c_str());
  std::printf("\n");

  std::map<std::string, std::array<double, 4>> buckets;
  for (const auto& name : estimators) {
    auto est = env.MakeNamedEstimator(name);
    CARDBENCH_CHECK(est.ok(), "%s failed: %s", name.c_str(),
                    est.status().ToString().c_str());
    buckets[name] = BucketExec(env.RunEstimator(**est));
  }

  for (int b = 0; b < 4; ++b) {
    std::printf("%-9s %-9zu", kBucketNames[b], counts[static_cast<size_t>(b)]);
    for (const auto& name : estimators) {
      const double base = pg_buckets[static_cast<size_t>(b)];
      const double mine = buckets[name][static_cast<size_t>(b)];
      if (base <= 0) {
        std::printf(" %11s", "--");
      } else {
        std::printf(" %+10.1f%%", 100.0 * (base - mine) / base);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(paper shape O4: gaps to TrueCard widen as join count "
              "grows)\n");
  return 0;
}
