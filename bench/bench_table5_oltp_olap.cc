// Reproduces paper Table 5: OLTP vs OLAP breakdown of execution and
// planning time on STATS-CEB. Queries are split by their TrueCard-plan
// execution time (the fast half is the "TP" workload, the slow half "AP").
// The shape to verify (O7): planning/inference time is a significant share
// of the TP workload's end-to-end time for the slow-inference learned
// methods, and negligible for the AP workload.

#include <cstdio>
#include <algorithm>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"PostgreSQL", "TrueCard", "PessEst",   "MSCN",
                  "NeuroCardE", "BayesCard", "DeepDB",   "FLAT"};
  }

  // Split by the oracle plan's execution time.
  auto oracle = env.MakeNamedEstimator("TrueCard");
  CARDBENCH_CHECK(oracle.ok(), "TrueCard failed");
  const auto oracle_run = env.RunEstimator(**oracle);
  std::vector<double> times;
  for (const auto& q : oracle_run.queries) times.push_back(q.exec_seconds);
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  const double threshold = sorted[sorted.size() / 2];
  std::vector<bool> is_tp(times.size());
  size_t tp_count = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    is_tp[i] = times[i] <= threshold;
    tp_count += is_tp[i];
  }

  std::printf("Table 5: OLTP/OLAP performance on STATS-CEB (scale=%.2f)\n",
              flags.scale);
  std::printf("TP = %zu fastest queries (oracle exec <= %s), AP = %zu rest\n\n",
              tp_count, FormatDuration(threshold).c_str(),
              times.size() - tp_count);
  std::printf("%-12s %14s %20s %14s %20s\n", "Method", "TP Exec", "TP Plan (%)",
              "AP Exec", "AP Plan (%)");

  for (const auto& name : estimators) {
    auto est = env.MakeNamedEstimator(name);
    if (!est.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  est.status().ToString().c_str());
      continue;
    }
    const auto run = env.RunEstimator(**est);
    double tp_exec = 0, tp_plan = 0, ap_exec = 0, ap_plan = 0;
    for (size_t i = 0; i < run.queries.size(); ++i) {
      if (is_tp[i]) {
        tp_exec += run.queries[i].exec_seconds;
        tp_plan += run.queries[i].plan_seconds;
      } else {
        ap_exec += run.queries[i].exec_seconds;
        ap_plan += run.queries[i].plan_seconds;
      }
    }
    std::printf("%-12s %14s %12s (%4.1f%%) %14s %12s (%4.1f%%)\n", name.c_str(),
                FormatDuration(tp_exec).c_str(),
                FormatDuration(tp_plan).c_str(),
                100.0 * tp_plan / std::max(1e-9, tp_exec + tp_plan),
                FormatDuration(ap_exec).c_str(),
                FormatDuration(ap_plan).c_str(),
                100.0 * ap_plan / std::max(1e-9, ap_exec + ap_plan));
  }
  std::printf("\n(paper shape O7: plan share large on TP, trivial on AP for "
              "slow-inference methods)\n");
  return 0;
}
