// Reproduces paper Table 6: update performance of the data-driven
// methods. Models are trained on the 50% of STATS created before the
// timestamp cutoff; the remaining rows are inserted, each model performs
// its incremental update (timed), and the end-to-end workload time of the
// updated model is compared against the model trained on the full data.
// The shape to verify (O10): BayesCard updates orders of magnitude faster
// than SPN/FSPN/autoregressive models and loses no end-to-end quality.

#include <cstdio>

#include "common/logging.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "datagen/streaming_feed.h"
#include "datagen/update_split.h"
#include "harness/bench_env.h"

int main(int argc, char** argv) {
  using namespace cardbench;
  BenchFlags flags = ParseBenchFlags(argc, argv);
  auto env_result = BenchEnv::Create(BenchDataset::kStats, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) {
    estimators = {"NeuroCardE", "BayesCard", "DeepDB", "FLAT"};
  }

  std::printf("Table 6: update performance on STATS (scale=%.2f, 50%% "
              "timestamp split)\n\n", flags.scale);
  std::printf("%-12s %14s %18s %18s\n", "Method", "Update time",
              "Original E2E", "E2E after update");

  for (const auto& name : estimators) {
    // Original: model trained on the full data (as in Table 3).
    auto original = env.MakeNamedEstimator(name);
    if (!original.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  original.status().ToString().c_str());
      continue;
    }
    const auto original_run = env.RunEstimator(**original);

    // Stale: fresh generation of the same data, split by creation time.
    StatsGenConfig config;
    config.scale = flags.scale;
    config.seed = flags.seed;
    auto full = GenerateStatsDatabase(config);
    TimeSplit split = SplitDatabaseByTime(*full, StatsTimestampColumn, 0.5);
    TrueCardService stale_cards(*split.stale);
    EstimatorConfig est_config;
    est_config.fast = flags.fast;
    auto stale = MakeEstimator(name, *split.stale, stale_cards, nullptr,
                               est_config);
    if (!stale.ok()) {
      std::printf("%-12s   skipped (%s)\n", name.c_str(),
                  stale.status().ToString().c_str());
      continue;
    }

    // Insert the post-cutoff rows as one streaming batch and update the
    // model through its incremental path (the timed step). Table-6 methods
    // absorb inserts via their Update() hook (the default IncrementalUpdate
    // forwards to it), so timings match the paper's bulk-update protocol.
    StreamingInsertFeed feed(*split.stale, std::move(split.insertions),
                             StatsTimestampColumn, 1);
    auto batch = feed.ApplyNext(*split.stale);
    CARDBENCH_CHECK(batch.ok(), "insertions failed: %s",
                    batch.status().ToString().c_str());
    Stopwatch watch;
    const Status update_status = (*stale)->IncrementalUpdate(*batch);
    const double update_seconds = watch.ElapsedSeconds();
    CARDBENCH_CHECK(update_status.ok(), "update failed: %s",
                    update_status.ToString().c_str());

    // The updated stale database now holds the same rows as env.db(), so
    // the env workload (and its exact cardinalities) apply unchanged.
    const auto updated_run = env.RunEstimator(**stale);

    std::printf("%-12s %14s %18s %18s\n", name.c_str(),
                FormatDuration(update_seconds).c_str(),
                FormatDuration(original_run.EndToEndSeconds()).c_str(),
                FormatDuration(updated_run.EndToEndSeconds()).c_str());
  }
  std::printf("\n(paper shape O10: BayesCard updates fastest and keeps its "
              "E2E time; SPN/FSPN drift; autoregressive slowest)\n");
  return 0;
}
