// Reproduces paper Table 7 and observation O14: Q-Error and P-Error
// distributions (50/90/99 percentiles) of every method, with methods
// sorted by descending execution time, plus the correlation of each
// metric against execution time across methods. The shape to verify:
// P-Error percentiles order methods by runtime far better than Q-Error
// does (the paper reports ~0.8 vs ~0.04 correlation).

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/str_util.h"
#include "harness/bench_env.h"
#include "metrics/metrics.h"

namespace cardbench {
namespace {

struct MethodSummary {
  std::string name;
  double exec_seconds = 0.0;
  Percentiles qerror;
  Percentiles perror;
};

void RunDataset(BenchDataset dataset, const BenchFlags& flags) {
  auto env_result = BenchEnv::Create(dataset, flags);
  CARDBENCH_CHECK(env_result.ok(), "env creation failed: %s",
                  env_result.status().ToString().c_str());
  BenchEnv& env = **env_result;

  std::vector<std::string> estimators = flags.estimators;
  if (estimators.empty()) estimators = AllEstimatorNames();

  std::vector<MethodSummary> summaries;
  for (const auto& name : estimators) {
    auto est = env.MakeNamedEstimator(name);
    if (!est.ok()) continue;
    const auto run = env.RunEstimator(**est);
    MethodSummary s;
    s.name = name;
    s.exec_seconds = run.TotalExecSeconds();
    s.qerror = ComputePercentiles(run.AllQErrors());
    s.perror = ComputePercentiles(run.AllPErrors());
    summaries.push_back(std::move(s));
  }
  std::sort(summaries.begin(), summaries.end(),
            [](const MethodSummary& a, const MethodSummary& b) {
              return a.exec_seconds > b.exec_seconds;
            });

  std::printf("\n=== %s (%s) — methods sorted by descending exec time ===\n",
              env.dataset_name().c_str(), env.workload().name.c_str());
  std::printf("%-12s %10s | %10s %10s %10s | %8s %8s %8s\n", "Method", "Exec",
              "Q-50%", "Q-90%", "Q-99%", "P-50%", "P-90%", "P-99%");
  for (const auto& s : summaries) {
    std::printf("%-12s %10s | %10s %10s %10s | %8.3f %8.3f %8.3f\n",
                s.name.c_str(), FormatDuration(s.exec_seconds).c_str(),
                FormatCount(s.qerror.p50).c_str(),
                FormatCount(s.qerror.p90).c_str(),
                FormatCount(s.qerror.p99).c_str(), s.perror.p50, s.perror.p90,
                s.perror.p99);
  }

  // O14: correlation of each metric's percentiles with execution time.
  std::vector<double> exec, q50, q90, p50, p90;
  for (const auto& s : summaries) {
    exec.push_back(s.exec_seconds);
    q50.push_back(s.qerror.p50);
    q90.push_back(s.qerror.p90);
    p50.push_back(s.perror.p50);
    p90.push_back(s.perror.p90);
  }
  std::printf("\ncorrelation with exec time (Spearman):  Q-50%% %.3f  Q-90%% "
              "%.3f  |  P-50%% %.3f  P-90%% %.3f\n",
              SpearmanCorrelationOf(q50, exec),
              SpearmanCorrelationOf(q90, exec),
              SpearmanCorrelationOf(p50, exec),
              SpearmanCorrelationOf(p90, exec));
  std::printf("(paper O14: P-Error correlates with runtime ~0.8, Q-Error "
              "~0.04)\n");
}

}  // namespace
}  // namespace cardbench

int main(int argc, char** argv) {
  using namespace cardbench;
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  std::printf("Table 7: Q-Error vs P-Error (scale=%.2f)\n", flags.scale);
  // The paper's O11-O14 analysis (and its correlation numbers) are made on
  // STATS-CEB; run that by default. JOB-LIGHT columns of Table 7 can be
  // produced by adding the IMDB dataset here — omitted from the default
  // run to keep the full-suite wall time bounded.
  RunDataset(BenchDataset::kStats, flags);
  return 0;
}
