file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_practicality.dir/bench_figure3_practicality.cc.o"
  "CMakeFiles/bench_figure3_practicality.dir/bench_figure3_practicality.cc.o.d"
  "bench_figure3_practicality"
  "bench_figure3_practicality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_practicality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
