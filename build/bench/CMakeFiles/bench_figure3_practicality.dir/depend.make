# Empty dependencies file for bench_figure3_practicality.
# This may be replaced when dependencies are built.
