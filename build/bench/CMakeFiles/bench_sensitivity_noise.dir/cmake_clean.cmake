file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_noise.dir/bench_sensitivity_noise.cc.o"
  "CMakeFiles/bench_sensitivity_noise.dir/bench_sensitivity_noise.cc.o.d"
  "bench_sensitivity_noise"
  "bench_sensitivity_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
