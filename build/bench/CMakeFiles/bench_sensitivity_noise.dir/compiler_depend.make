# Empty compiler generated dependencies file for bench_sensitivity_noise.
# This may be replaced when dependencies are built.
