file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_join_tables.dir/bench_table4_join_tables.cc.o"
  "CMakeFiles/bench_table4_join_tables.dir/bench_table4_join_tables.cc.o.d"
  "bench_table4_join_tables"
  "bench_table4_join_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_join_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
