# Empty dependencies file for bench_table4_join_tables.
# This may be replaced when dependencies are built.
