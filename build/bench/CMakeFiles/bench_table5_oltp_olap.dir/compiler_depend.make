# Empty compiler generated dependencies file for bench_table5_oltp_olap.
# This may be replaced when dependencies are built.
