# Empty dependencies file for bench_table6_update.
# This may be replaced when dependencies are built.
