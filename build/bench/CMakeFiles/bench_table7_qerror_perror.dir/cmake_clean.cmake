file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_qerror_perror.dir/bench_table7_qerror_perror.cc.o"
  "CMakeFiles/bench_table7_qerror_perror.dir/bench_table7_qerror_perror.cc.o.d"
  "bench_table7_qerror_perror"
  "bench_table7_qerror_perror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_qerror_perror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
