# Empty compiler generated dependencies file for bench_table7_qerror_perror.
# This may be replaced when dependencies are built.
