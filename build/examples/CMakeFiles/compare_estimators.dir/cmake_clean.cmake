file(REMOVE_RECURSE
  "CMakeFiles/compare_estimators.dir/compare_estimators.cpp.o"
  "CMakeFiles/compare_estimators.dir/compare_estimators.cpp.o.d"
  "compare_estimators"
  "compare_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
