# Empty compiler generated dependencies file for compare_estimators.
# This may be replaced when dependencies are built.
