file(REMOVE_RECURSE
  "CMakeFiles/custom_estimator.dir/custom_estimator.cpp.o"
  "CMakeFiles/custom_estimator.dir/custom_estimator.cpp.o.d"
  "custom_estimator"
  "custom_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
