# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("datagen")
subdirs("query")
subdirs("exec")
subdirs("optimizer")
subdirs("ml")
subdirs("cardest")
subdirs("workload")
subdirs("metrics")
subdirs("harness")
