
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cardest/autoregressive_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/autoregressive_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/autoregressive_est.cc.o.d"
  "/root/repo/src/cardest/bayescard_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/bayescard_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/bayescard_est.cc.o.d"
  "/root/repo/src/cardest/binner.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/binner.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/binner.cc.o.d"
  "/root/repo/src/cardest/deepdb_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/deepdb_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/deepdb_est.cc.o.d"
  "/root/repo/src/cardest/extended_table.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/extended_table.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/extended_table.cc.o.d"
  "/root/repo/src/cardest/fanout_estimator.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/fanout_estimator.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/fanout_estimator.cc.o.d"
  "/root/repo/src/cardest/foj_sampler.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/foj_sampler.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/foj_sampler.cc.o.d"
  "/root/repo/src/cardest/lw_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/lw_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/lw_est.cc.o.d"
  "/root/repo/src/cardest/mscn_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/mscn_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/mscn_est.cc.o.d"
  "/root/repo/src/cardest/multihist_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/multihist_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/multihist_est.cc.o.d"
  "/root/repo/src/cardest/postgres_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/postgres_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/postgres_est.cc.o.d"
  "/root/repo/src/cardest/query_features.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/query_features.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/query_features.cc.o.d"
  "/root/repo/src/cardest/registry.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/registry.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/registry.cc.o.d"
  "/root/repo/src/cardest/sampling_est.cc" "src/cardest/CMakeFiles/cardbench_cardest.dir/sampling_est.cc.o" "gcc" "src/cardest/CMakeFiles/cardbench_cardest.dir/sampling_est.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/cardbench_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cardbench_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cardbench_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cardbench_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cardbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
