file(REMOVE_RECURSE
  "CMakeFiles/cardbench_cardest.dir/autoregressive_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/autoregressive_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/bayescard_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/bayescard_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/binner.cc.o"
  "CMakeFiles/cardbench_cardest.dir/binner.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/deepdb_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/deepdb_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/extended_table.cc.o"
  "CMakeFiles/cardbench_cardest.dir/extended_table.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/fanout_estimator.cc.o"
  "CMakeFiles/cardbench_cardest.dir/fanout_estimator.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/foj_sampler.cc.o"
  "CMakeFiles/cardbench_cardest.dir/foj_sampler.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/lw_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/lw_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/mscn_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/mscn_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/multihist_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/multihist_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/postgres_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/postgres_est.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/query_features.cc.o"
  "CMakeFiles/cardbench_cardest.dir/query_features.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/registry.cc.o"
  "CMakeFiles/cardbench_cardest.dir/registry.cc.o.d"
  "CMakeFiles/cardbench_cardest.dir/sampling_est.cc.o"
  "CMakeFiles/cardbench_cardest.dir/sampling_est.cc.o.d"
  "libcardbench_cardest.a"
  "libcardbench_cardest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_cardest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
