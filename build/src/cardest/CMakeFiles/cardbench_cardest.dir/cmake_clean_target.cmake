file(REMOVE_RECURSE
  "libcardbench_cardest.a"
)
