# Empty dependencies file for cardbench_cardest.
# This may be replaced when dependencies are built.
