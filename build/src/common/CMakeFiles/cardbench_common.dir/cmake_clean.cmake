file(REMOVE_RECURSE
  "CMakeFiles/cardbench_common.dir/logging.cc.o"
  "CMakeFiles/cardbench_common.dir/logging.cc.o.d"
  "CMakeFiles/cardbench_common.dir/rng.cc.o"
  "CMakeFiles/cardbench_common.dir/rng.cc.o.d"
  "CMakeFiles/cardbench_common.dir/str_util.cc.o"
  "CMakeFiles/cardbench_common.dir/str_util.cc.o.d"
  "libcardbench_common.a"
  "libcardbench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
