file(REMOVE_RECURSE
  "libcardbench_common.a"
)
