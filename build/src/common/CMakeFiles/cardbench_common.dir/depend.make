# Empty dependencies file for cardbench_common.
# This may be replaced when dependencies are built.
