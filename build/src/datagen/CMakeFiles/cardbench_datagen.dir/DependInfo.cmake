
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/distributions.cc" "src/datagen/CMakeFiles/cardbench_datagen.dir/distributions.cc.o" "gcc" "src/datagen/CMakeFiles/cardbench_datagen.dir/distributions.cc.o.d"
  "/root/repo/src/datagen/imdb_gen.cc" "src/datagen/CMakeFiles/cardbench_datagen.dir/imdb_gen.cc.o" "gcc" "src/datagen/CMakeFiles/cardbench_datagen.dir/imdb_gen.cc.o.d"
  "/root/repo/src/datagen/stats_gen.cc" "src/datagen/CMakeFiles/cardbench_datagen.dir/stats_gen.cc.o" "gcc" "src/datagen/CMakeFiles/cardbench_datagen.dir/stats_gen.cc.o.d"
  "/root/repo/src/datagen/update_split.cc" "src/datagen/CMakeFiles/cardbench_datagen.dir/update_split.cc.o" "gcc" "src/datagen/CMakeFiles/cardbench_datagen.dir/update_split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cardbench_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cardbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
