file(REMOVE_RECURSE
  "CMakeFiles/cardbench_datagen.dir/distributions.cc.o"
  "CMakeFiles/cardbench_datagen.dir/distributions.cc.o.d"
  "CMakeFiles/cardbench_datagen.dir/imdb_gen.cc.o"
  "CMakeFiles/cardbench_datagen.dir/imdb_gen.cc.o.d"
  "CMakeFiles/cardbench_datagen.dir/stats_gen.cc.o"
  "CMakeFiles/cardbench_datagen.dir/stats_gen.cc.o.d"
  "CMakeFiles/cardbench_datagen.dir/update_split.cc.o"
  "CMakeFiles/cardbench_datagen.dir/update_split.cc.o.d"
  "libcardbench_datagen.a"
  "libcardbench_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
