file(REMOVE_RECURSE
  "libcardbench_datagen.a"
)
