# Empty dependencies file for cardbench_datagen.
# This may be replaced when dependencies are built.
