
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/cardbench_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/cardbench_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/cardbench_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/cardbench_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/true_card.cc" "src/exec/CMakeFiles/cardbench_exec.dir/true_card.cc.o" "gcc" "src/exec/CMakeFiles/cardbench_exec.dir/true_card.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/cardbench_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cardbench_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cardbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
