file(REMOVE_RECURSE
  "CMakeFiles/cardbench_exec.dir/executor.cc.o"
  "CMakeFiles/cardbench_exec.dir/executor.cc.o.d"
  "CMakeFiles/cardbench_exec.dir/plan.cc.o"
  "CMakeFiles/cardbench_exec.dir/plan.cc.o.d"
  "CMakeFiles/cardbench_exec.dir/true_card.cc.o"
  "CMakeFiles/cardbench_exec.dir/true_card.cc.o.d"
  "libcardbench_exec.a"
  "libcardbench_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
