file(REMOVE_RECURSE
  "libcardbench_exec.a"
)
