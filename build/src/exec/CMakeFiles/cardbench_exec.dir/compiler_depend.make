# Empty compiler generated dependencies file for cardbench_exec.
# This may be replaced when dependencies are built.
