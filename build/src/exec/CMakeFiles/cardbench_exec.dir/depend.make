# Empty dependencies file for cardbench_exec.
# This may be replaced when dependencies are built.
