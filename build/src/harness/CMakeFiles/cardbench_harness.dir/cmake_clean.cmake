file(REMOVE_RECURSE
  "CMakeFiles/cardbench_harness.dir/bench_env.cc.o"
  "CMakeFiles/cardbench_harness.dir/bench_env.cc.o.d"
  "libcardbench_harness.a"
  "libcardbench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
