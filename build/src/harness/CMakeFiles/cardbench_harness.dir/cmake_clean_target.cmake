file(REMOVE_RECURSE
  "libcardbench_harness.a"
)
