# Empty dependencies file for cardbench_harness.
# This may be replaced when dependencies are built.
