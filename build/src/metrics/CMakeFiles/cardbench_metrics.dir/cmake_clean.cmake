file(REMOVE_RECURSE
  "CMakeFiles/cardbench_metrics.dir/metrics.cc.o"
  "CMakeFiles/cardbench_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/cardbench_metrics.dir/perror.cc.o"
  "CMakeFiles/cardbench_metrics.dir/perror.cc.o.d"
  "libcardbench_metrics.a"
  "libcardbench_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
