file(REMOVE_RECURSE
  "libcardbench_metrics.a"
)
