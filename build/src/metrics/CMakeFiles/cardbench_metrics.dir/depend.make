# Empty dependencies file for cardbench_metrics.
# This may be replaced when dependencies are built.
