
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/clustering.cc" "src/ml/CMakeFiles/cardbench_ml.dir/clustering.cc.o" "gcc" "src/ml/CMakeFiles/cardbench_ml.dir/clustering.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/cardbench_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/cardbench_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/made.cc" "src/ml/CMakeFiles/cardbench_ml.dir/made.cc.o" "gcc" "src/ml/CMakeFiles/cardbench_ml.dir/made.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/cardbench_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/cardbench_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/ml/CMakeFiles/cardbench_ml.dir/nn.cc.o" "gcc" "src/ml/CMakeFiles/cardbench_ml.dir/nn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cardbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
