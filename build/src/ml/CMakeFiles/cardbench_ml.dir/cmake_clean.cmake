file(REMOVE_RECURSE
  "CMakeFiles/cardbench_ml.dir/clustering.cc.o"
  "CMakeFiles/cardbench_ml.dir/clustering.cc.o.d"
  "CMakeFiles/cardbench_ml.dir/gbdt.cc.o"
  "CMakeFiles/cardbench_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/cardbench_ml.dir/made.cc.o"
  "CMakeFiles/cardbench_ml.dir/made.cc.o.d"
  "CMakeFiles/cardbench_ml.dir/matrix.cc.o"
  "CMakeFiles/cardbench_ml.dir/matrix.cc.o.d"
  "CMakeFiles/cardbench_ml.dir/nn.cc.o"
  "CMakeFiles/cardbench_ml.dir/nn.cc.o.d"
  "libcardbench_ml.a"
  "libcardbench_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
