file(REMOVE_RECURSE
  "libcardbench_ml.a"
)
