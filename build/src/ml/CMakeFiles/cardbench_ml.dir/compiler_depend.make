# Empty compiler generated dependencies file for cardbench_ml.
# This may be replaced when dependencies are built.
