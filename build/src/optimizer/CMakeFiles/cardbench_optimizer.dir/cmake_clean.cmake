file(REMOVE_RECURSE
  "CMakeFiles/cardbench_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/cardbench_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/cardbench_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/cardbench_optimizer.dir/optimizer.cc.o.d"
  "libcardbench_optimizer.a"
  "libcardbench_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
