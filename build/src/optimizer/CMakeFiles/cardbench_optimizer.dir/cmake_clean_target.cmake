file(REMOVE_RECURSE
  "libcardbench_optimizer.a"
)
