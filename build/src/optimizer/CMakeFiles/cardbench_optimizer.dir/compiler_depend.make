# Empty compiler generated dependencies file for cardbench_optimizer.
# This may be replaced when dependencies are built.
