file(REMOVE_RECURSE
  "CMakeFiles/cardbench_query.dir/parser.cc.o"
  "CMakeFiles/cardbench_query.dir/parser.cc.o.d"
  "CMakeFiles/cardbench_query.dir/query.cc.o"
  "CMakeFiles/cardbench_query.dir/query.cc.o.d"
  "libcardbench_query.a"
  "libcardbench_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
