file(REMOVE_RECURSE
  "libcardbench_query.a"
)
