# Empty compiler generated dependencies file for cardbench_query.
# This may be replaced when dependencies are built.
