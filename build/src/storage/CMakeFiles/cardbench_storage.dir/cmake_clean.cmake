file(REMOVE_RECURSE
  "CMakeFiles/cardbench_storage.dir/catalog.cc.o"
  "CMakeFiles/cardbench_storage.dir/catalog.cc.o.d"
  "CMakeFiles/cardbench_storage.dir/column.cc.o"
  "CMakeFiles/cardbench_storage.dir/column.cc.o.d"
  "CMakeFiles/cardbench_storage.dir/csv.cc.o"
  "CMakeFiles/cardbench_storage.dir/csv.cc.o.d"
  "CMakeFiles/cardbench_storage.dir/index.cc.o"
  "CMakeFiles/cardbench_storage.dir/index.cc.o.d"
  "CMakeFiles/cardbench_storage.dir/stats.cc.o"
  "CMakeFiles/cardbench_storage.dir/stats.cc.o.d"
  "CMakeFiles/cardbench_storage.dir/table.cc.o"
  "CMakeFiles/cardbench_storage.dir/table.cc.o.d"
  "libcardbench_storage.a"
  "libcardbench_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
