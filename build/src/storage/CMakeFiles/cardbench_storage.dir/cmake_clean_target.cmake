file(REMOVE_RECURSE
  "libcardbench_storage.a"
)
