# Empty compiler generated dependencies file for cardbench_storage.
# This may be replaced when dependencies are built.
