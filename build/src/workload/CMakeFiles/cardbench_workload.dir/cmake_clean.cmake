file(REMOVE_RECURSE
  "CMakeFiles/cardbench_workload.dir/workload_gen.cc.o"
  "CMakeFiles/cardbench_workload.dir/workload_gen.cc.o.d"
  "CMakeFiles/cardbench_workload.dir/workload_io.cc.o"
  "CMakeFiles/cardbench_workload.dir/workload_io.cc.o.d"
  "libcardbench_workload.a"
  "libcardbench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardbench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
