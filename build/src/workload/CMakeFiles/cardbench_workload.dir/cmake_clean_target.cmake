file(REMOVE_RECURSE
  "libcardbench_workload.a"
)
