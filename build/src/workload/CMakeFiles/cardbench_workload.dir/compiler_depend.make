# Empty compiler generated dependencies file for cardbench_workload.
# This may be replaced when dependencies are built.
