# Empty dependencies file for cardbench_workload.
# This may be replaced when dependencies are built.
