file(REMOVE_RECURSE
  "CMakeFiles/binner_test.dir/binner_test.cc.o"
  "CMakeFiles/binner_test.dir/binner_test.cc.o.d"
  "binner_test"
  "binner_test.pdb"
  "binner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
