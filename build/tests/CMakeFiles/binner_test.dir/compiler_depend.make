# Empty compiler generated dependencies file for binner_test.
# This may be replaced when dependencies are built.
