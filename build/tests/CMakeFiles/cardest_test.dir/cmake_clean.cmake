file(REMOVE_RECURSE
  "CMakeFiles/cardest_test.dir/cardest_test.cc.o"
  "CMakeFiles/cardest_test.dir/cardest_test.cc.o.d"
  "cardest_test"
  "cardest_test.pdb"
  "cardest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
