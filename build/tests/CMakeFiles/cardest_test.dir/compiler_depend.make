# Empty compiler generated dependencies file for cardest_test.
# This may be replaced when dependencies are built.
