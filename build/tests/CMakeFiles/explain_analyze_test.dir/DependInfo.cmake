
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/explain_analyze_test.cc" "tests/CMakeFiles/explain_analyze_test.dir/explain_analyze_test.cc.o" "gcc" "tests/CMakeFiles/explain_analyze_test.dir/explain_analyze_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/cardbench_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/cardbench_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/cardbench_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cardbench_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cardbench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
