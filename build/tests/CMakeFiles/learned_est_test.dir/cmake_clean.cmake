file(REMOVE_RECURSE
  "CMakeFiles/learned_est_test.dir/learned_est_test.cc.o"
  "CMakeFiles/learned_est_test.dir/learned_est_test.cc.o.d"
  "learned_est_test"
  "learned_est_test.pdb"
  "learned_est_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_est_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
