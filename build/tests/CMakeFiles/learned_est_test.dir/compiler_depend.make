# Empty compiler generated dependencies file for learned_est_test.
# This may be replaced when dependencies are built.
