file(REMOVE_RECURSE
  "CMakeFiles/optimizer_physical_test.dir/optimizer_physical_test.cc.o"
  "CMakeFiles/optimizer_physical_test.dir/optimizer_physical_test.cc.o.d"
  "optimizer_physical_test"
  "optimizer_physical_test.pdb"
  "optimizer_physical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_physical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
