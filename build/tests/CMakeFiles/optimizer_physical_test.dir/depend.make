# Empty dependencies file for optimizer_physical_test.
# This may be replaced when dependencies are built.
