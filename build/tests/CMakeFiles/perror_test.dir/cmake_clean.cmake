file(REMOVE_RECURSE
  "CMakeFiles/perror_test.dir/perror_test.cc.o"
  "CMakeFiles/perror_test.dir/perror_test.cc.o.d"
  "perror_test"
  "perror_test.pdb"
  "perror_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perror_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
