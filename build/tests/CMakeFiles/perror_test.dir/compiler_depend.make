# Empty compiler generated dependencies file for perror_test.
# This may be replaced when dependencies are built.
