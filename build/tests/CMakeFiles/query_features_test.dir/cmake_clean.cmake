file(REMOVE_RECURSE
  "CMakeFiles/query_features_test.dir/query_features_test.cc.o"
  "CMakeFiles/query_features_test.dir/query_features_test.cc.o.d"
  "query_features_test"
  "query_features_test.pdb"
  "query_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
