# Empty dependencies file for query_features_test.
# This may be replaced when dependencies are built.
