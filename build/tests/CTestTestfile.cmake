# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/binner_test[1]_include.cmake")
include("/root/repo/build/tests/cardest_test[1]_include.cmake")
include("/root/repo/build/tests/learned_est_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/perror_test[1]_include.cmake")
include("/root/repo/build/tests/workload_io_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/explain_analyze_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/query_features_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_physical_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
