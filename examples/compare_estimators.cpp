// Compares how different estimators change the optimizer's plan for one
// query — the paper's central experiment in miniature. For each method the
// example prints the chosen join order/operators, the P-Error (plan cost
// under true cardinalities relative to the optimal plan) and the measured
// execution time, demonstrating O5/O6: estimation quality matters through
// the plan it produces, not on its own.
//
// Build & run:  ./build/examples/compare_estimators

#include <cstdio>

#include "cardest/registry.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"

int main() {
  using namespace cardbench;

  StatsGenConfig config;
  config.scale = 0.3;
  auto db = GenerateStatsDatabase(config);
  TrueCardService truecard(*db);
  Optimizer optimizer(*db);

  // A 5-way join whose intermediate sizes differ wildly between orders.
  auto query = ParseSql(
      "SELECT COUNT(*) FROM users, posts, comments, votes, badges "
      "WHERE users.Id = posts.OwnerUserId AND posts.Id = comments.PostId "
      "AND posts.Id = votes.PostId AND users.Id = badges.UserId "
      "AND posts.Score >= 3 AND votes.VoteTypeId = 2;");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query->ToSql().c_str());

  auto true_cards = truecard.AllSubplanCards(*query);
  if (!true_cards.ok()) {
    std::fprintf(stderr, "true cards failed\n");
    return 1;
  }

  // Denominator of P-Error: the true-cardinality plan's cost.
  EstimatorConfig fast;
  fast.fast = true;
  auto oracle = MakeEstimator("TrueCard", *db, truecard, nullptr, fast);
  auto oracle_plan = optimizer.Plan(*query, **oracle);
  const double best_cost =
      optimizer.RecostWithCards(*oracle_plan->plan, *true_cards);

  Executor executor(*db);
  std::printf("%-12s %10s %10s %10s   plan summary\n", "method", "P-Error",
              "exec", "est(root)");
  for (const char* name :
       {"TrueCard", "PostgreSQL", "BayesCard", "DeepDB", "FLAT", "UniSample",
        "WJSample", "PessEst", "MultiHist"}) {
    auto est = MakeEstimator(name, *db, truecard, nullptr, fast);
    if (!est.ok()) continue;
    auto plan = optimizer.Plan(*query, **est);
    if (!plan.ok()) continue;
    const double cost =
        optimizer.RecostWithCards(*plan->plan, *true_cards);
    auto exec = executor.ExecuteCount(*plan->plan);
    // Render the join order as a compact left-deep-ish summary: the root
    // join method plus the table order of the leaves.
    std::string summary = JoinMethodName(plan->plan->join_method);
    std::printf("%-12s %10.3f %10s %10s   root=%s\n", name, cost / best_cost,
                exec.ok() ? FormatDuration(exec->elapsed_seconds).c_str()
                          : "err",
                FormatCount(plan->injected_cards.at(query->FullMask())).c_str(),
                summary.c_str());
  }
  std::printf("\ntrue final cardinality: %s\n",
              FormatCount(true_cards->at(query->FullMask())).c_str());
  std::printf("\nfull plan under TrueCard:\n%s\n",
              oracle_plan->plan->Explain().c_str());
  return 0;
}
