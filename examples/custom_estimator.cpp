// Shows how to plug a custom cardinality estimator into the benchmark
// platform: implement the CardinalityEstimator interface, hand it to the
// optimizer, and measure it against the built-in baselines. The toy
// estimator below combines exact single-table histograms with a damped
// join correction — a few dozen lines, yet it can be evaluated with the
// full Q-Error / P-Error / end-to-end machinery like any paper method.
//
// Build & run:  ./build/examples/custom_estimator

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cardest/postgres_est.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "exec/true_card.h"
#include "metrics/metrics.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "workload/workload_gen.h"

namespace {

using namespace cardbench;

/// A toy estimator: PostgreSQL's single-table machinery plus a damping
/// exponent on the join-uniformity correction (joins shrink estimates less
/// aggressively than pure independence suggests).
class DampedJoinEstimator : public CardinalityEstimator {
 public:
  DampedJoinEstimator(const Database& db, double damping)
      : base_(db), db_(db), damping_(damping) {}

  std::string name() const override { return "DampedJoin"; }

  double EstimateCard(const Query& subquery) const override {
    double card = 1.0;
    for (const auto& table : subquery.tables) {
      card *= static_cast<double>(db_.TableOrDie(table).num_rows()) *
              base_.TableSelectivity(subquery, table);
    }
    for (const auto& edge : subquery.joins) {
      const Table& lt = db_.TableOrDie(edge.left_table);
      const Table& rt = db_.TableOrDie(edge.right_table);
      const double ndv = std::max<double>(
          {1.0,
           static_cast<double>(
               lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column))
                   .num_distinct()),
           static_cast<double>(
               rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column))
                   .num_distinct())});
      card /= std::pow(ndv, damping_);  // damping < 1: milder shrinkage
    }
    return std::max(card, 1.0);
  }

 private:
  PostgresEstimator base_;
  const Database& db_;
  double damping_;
};

}  // namespace

int main() {
  StatsGenConfig config;
  config.scale = 0.2;
  auto db = GenerateStatsDatabase(config);
  TrueCardService truecard(*db);
  Optimizer optimizer(*db);

  // A small random evaluation workload with exact cardinalities.
  auto workload = GenerateTrainingQueries(*db, truecard, 150, 9);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload failed\n");
    return 1;
  }

  PostgresEstimator baseline(*db);
  DampedJoinEstimator custom(*db, 0.9);

  for (CardinalityEstimator* est :
       std::vector<CardinalityEstimator*>{&baseline, &custom}) {
    std::vector<double> qerrors;
    for (const auto& tq : *workload) {
      qerrors.push_back(QError(est->EstimateCard(tq.query), tq.cardinality));
    }
    const Percentiles p = ComputePercentiles(std::move(qerrors));
    std::printf("%-12s  Q-Error p50=%-8s p90=%-8s p99=%s\n",
                est->name().c_str(), FormatCount(p.p50).c_str(),
                FormatCount(p.p90).c_str(), FormatCount(p.p99).c_str());
  }

  // The estimator also drops straight into the optimizer.
  auto query = ParseSql(
      "SELECT COUNT(*) FROM users, posts, comments WHERE users.Id = "
      "posts.OwnerUserId AND posts.Id = comments.PostId AND posts.Score >= "
      "5;");
  auto plan = optimizer.Plan(*query, custom);
  if (plan.ok()) {
    std::printf("\nplan chosen with the custom estimator:\n%s\n",
                plan->plan->Explain().c_str());
  }
  return 0;
}
