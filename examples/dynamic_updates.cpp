// Demonstrates the paper's §6.3 dynamic-database scenario: a BayesCard
// model is trained on the rows created before the timestamp cutoff, new
// rows arrive, and the model incrementally updates (structure frozen,
// counts absorbed) in milliseconds while staying accurate — the behaviour
// that makes PGM-based data-driven estimators deployable in OLTP systems
// (O10).
//
// Build & run:  ./build/examples/dynamic_updates

#include <cstdio>

#include "cardest/bayescard_est.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "datagen/update_split.h"
#include "exec/true_card.h"
#include "query/parser.h"

int main() {
  using namespace cardbench;

  StatsGenConfig config;
  config.scale = 0.3;
  auto db = GenerateStatsDatabase(config);

  // Split the data at the median creation timestamp.
  TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  std::printf("stale rows: %zu, pending insertions: %zu (cutoff t=%lld)\n\n",
              split.stale_rows, split.inserted_rows,
              static_cast<long long>(split.cutoff));

  // Train on the stale half only.
  Stopwatch train_watch;
  BayesCardEstimator model(*split.stale);
  std::printf("trained BayesCard on stale data in %s (model %s)\n",
              FormatDuration(train_watch.ElapsedSeconds()).c_str(),
              FormatBytes(model.ModelBytes()).c_str());

  auto query = ParseSql(
      "SELECT COUNT(*) FROM users, comments WHERE users.Id = "
      "comments.UserId AND users.Reputation >= 20;");
  TrueCardService stale_truth(*split.stale);
  std::printf("\nbefore insertions: estimate %.0f, exact %.0f\n",
              model.EstimateCard(*query), *stale_truth.Card(*query));

  // New data arrives...
  Stopwatch insert_watch;
  if (!ApplyInsertions(*split.stale, split.insertions).ok()) {
    std::fprintf(stderr, "insertions failed\n");
    return 1;
  }
  std::printf("\ninserted %zu rows in %s\n", split.inserted_rows,
              FormatDuration(insert_watch.ElapsedSeconds()).c_str());

  // ...the stale model drifts until Update() absorbs the new rows.
  TrueCardService full_truth(*split.stale);
  const double exact_after = *full_truth.Card(*query);
  std::printf("stale model estimate:   %.0f (exact is now %.0f)\n",
              model.EstimateCard(*query), exact_after);

  Stopwatch update_watch;
  if (!model.Update().ok()) {
    std::fprintf(stderr, "update failed\n");
    return 1;
  }
  std::printf("updated model in %s\n",
              FormatDuration(update_watch.ElapsedSeconds()).c_str());
  std::printf("updated model estimate: %.0f (exact %.0f)\n",
              model.EstimateCard(*query), exact_after);
  return 0;
}
