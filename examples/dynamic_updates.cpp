// Demonstrates the paper's §6.3 dynamic-database scenario: a BayesCard
// model is trained on the rows created before the timestamp cutoff, new
// rows arrive, and the model incrementally updates (structure frozen,
// counts absorbed) in milliseconds while staying accurate — the behaviour
// that makes PGM-based data-driven estimators deployable in OLTP systems
// (O10).
//
// Build & run:  ./build/examples/dynamic_updates

#include <cstdio>

#include "cardest/bayescard_est.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "datagen/streaming_feed.h"
#include "datagen/update_split.h"
#include "exec/true_card.h"
#include "query/parser.h"

int main() {
  using namespace cardbench;

  StatsGenConfig config;
  config.scale = 0.3;
  auto db = GenerateStatsDatabase(config);

  // Split the data at the median creation timestamp.
  TimeSplit split = SplitDatabaseByTime(*db, StatsTimestampColumn, 0.5);
  std::printf("stale rows: %zu, pending insertions: %zu (cutoff t=%lld)\n\n",
              split.stale_rows, split.inserted_rows,
              static_cast<long long>(split.cutoff));

  // Train on the stale half only.
  Stopwatch train_watch;
  BayesCardEstimator model(*split.stale);
  std::printf("trained BayesCard on stale data in %s (model %s)\n",
              FormatDuration(train_watch.ElapsedSeconds()).c_str(),
              FormatBytes(model.ModelBytes()).c_str());

  auto query = ParseSql(
      "SELECT COUNT(*) FROM users, comments WHERE users.Id = "
      "comments.UserId AND users.Reputation >= 20;");
  TrueCardService stale_truth(*split.stale);
  std::printf("\nbefore insertions: estimate %.0f, exact %.0f\n",
              model.EstimateCard(*query), *stale_truth.Card(*query));

  // New data streams in as timestamp-ordered micro-batches; after each one
  // the model absorbs the delta through its incremental-update hook
  // (BayesCard: structure frozen, counts absorbed) instead of retraining.
  StreamingInsertFeed feed(*split.stale, std::move(split.insertions),
                           StatsTimestampColumn, 3);
  std::printf("\nstreaming %zu rows in %zu micro-batches:\n",
              feed.total_rows(), feed.num_batches());
  while (!feed.Done()) {
    auto batch = feed.ApplyNext(*split.stale);
    if (!batch.ok()) {
      std::fprintf(stderr, "insertion batch failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    TrueCardService truth_now(*split.stale);
    const double exact_now = *truth_now.Card(*query);
    const double stale_estimate = model.EstimateCard(*query);

    Stopwatch update_watch;
    if (!model.IncrementalUpdate(*batch).ok()) {
      std::fprintf(stderr, "update failed\n");
      return 1;
    }
    std::printf(
        "  v%llu: +%zu rows; stale estimate %.0f -> refreshed %.0f "
        "(exact %.0f, refresh %s)\n",
        static_cast<unsigned long long>(batch->data_version),
        batch->total_inserted_rows(), stale_estimate,
        model.EstimateCard(*query), exact_now,
        FormatDuration(update_watch.ElapsedSeconds()).c_str());
  }
  return 0;
}
