// Quickstart: the full cardbench pipeline in ~60 lines.
//
//   1. generate the synthetic STATS-like database,
//   2. parse a SQL join query,
//   3. build a cardinality estimator (the PostgreSQL-style baseline),
//   4. plan the query with the cost-based optimizer (which injects the
//      estimator's cardinalities for every sub-plan, exactly like the
//      paper's modified `calc_joinrel_size_estimate`),
//   5. execute the plan and compare against the exact count.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cardest/postgres_est.h"
#include "common/str_util.h"
#include "datagen/stats_gen.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"

int main() {
  using namespace cardbench;

  // 1. A STATS-like database (8 tables, 12 join relations, skewed and
  //    correlated attributes). scale=0.2 keeps this instant.
  StatsGenConfig config;
  config.scale = 0.2;
  auto db = GenerateStatsDatabase(config);

  // 2. A three-way join with filters.
  auto query = ParseSql(
      "SELECT COUNT(*) FROM users, posts, comments "
      "WHERE users.Id = posts.OwnerUserId AND posts.Id = comments.PostId "
      "AND posts.Score >= 10 AND users.Reputation >= 50;");
  if (!query.ok() || !ValidateQuery(*query, *db).ok()) {
    std::fprintf(stderr, "query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query->ToSql().c_str());

  // 3. The PostgreSQL-style estimator (1-D histograms + independence).
  PostgresEstimator estimator(*db);

  // 4. Cost-based planning with injected cardinalities.
  Optimizer optimizer(*db);
  auto plan = optimizer.Plan(*query, estimator);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("chosen plan (estimates shown per node):\n%s\n",
              plan->plan->Explain().c_str());
  std::printf("planning took %s (%zu sub-plan estimates, %s inside the "
              "estimator)\n\n",
              FormatDuration(plan->planning_seconds).c_str(),
              plan->num_estimates,
              FormatDuration(plan->estimation_seconds).c_str());

  // 5. Execute and check against the exact answer.
  Executor executor(*db);
  auto result = executor.ExecuteCount(*plan->plan);
  TrueCardService truth(*db);
  auto exact = truth.Card(*query);
  if (!result.ok() || !exact.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  std::printf("COUNT(*) = %llu (exact: %.0f) in %s\n",
              static_cast<unsigned long long>(result->count), *exact,
              FormatDuration(result->elapsed_seconds).c_str());
  std::printf("estimator's final estimate was %.0f (Q-Error %.2f)\n",
              plan->injected_cards.at(query->FullMask()),
              std::max(plan->injected_cards.at(query->FullMask()) / *exact,
                       *exact / plan->injected_cards.at(query->FullMask())));
  return 0;
}
