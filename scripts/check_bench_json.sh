#!/usr/bin/env bash
# Validates every bench artifact (bench_*.json) against the minimal schema
# enforced by tools/check_bench_json.cc. Registered with ctest as
# `check_bench_json`, so a bench binary that starts emitting malformed JSON
# fails the test suite.
#
# The script first self-tests the validator on a known-good and a
# known-broken document (so a validator that accepts everything also fails),
# then validates the artifacts found in the repo root and bench_logs/.
# Having no artifacts around is fine — the self-test alone must pass.
#
#   scripts/check_bench_json.sh                     # default build/ binary
#   BIN_DIR=build-asan/tools scripts/check_bench_json.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-build/tools}
CHECKER="$BIN_DIR/check_bench_json"
if [ ! -x "$CHECKER" ]; then
  echo "check_bench_json: missing binary $CHECKER (build the" \
       "'check_bench_json' target first)" >&2
  exit 1
fi

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

# Self-test: a well-formed artifact must pass...
cat > "$WORK_DIR/bench_good.json" <<'EOF'
{"bench": "bench_selftest", "scale": 0.5, "rows": [{"estimator": "UniSample", "p50": 1.25}]}
EOF
"$CHECKER" "$WORK_DIR/bench_good.json" > /dev/null

# ...and each flavor of breakage must be rejected: trailing garbage, a
# non-string "bench" field, and an empty top-level object.
for bad in '{"bench": "x"} trailing' '{"bench": 7}' '{}'; do
  echo "$bad" > "$WORK_DIR/bench_bad.json"
  if "$CHECKER" "$WORK_DIR/bench_bad.json" > /dev/null 2>&1; then
    echo "check_bench_json: validator accepted malformed input: $bad" >&2
    exit 1
  fi
done

# Validate whatever artifacts the benches have produced.
shopt -s nullglob
artifacts=(bench_*.json bench_logs/bench_*.json)
shopt -u nullglob
if [ "${#artifacts[@]}" -eq 0 ]; then
  echo "check_bench_json: validator self-test passed (no artifacts found)"
  exit 0
fi
"$CHECKER" "${artifacts[@]}"
echo "check_bench_json: ${#artifacts[@]} artifact(s) validated"
