#!/usr/bin/env bash
# Validates every bench artifact (bench_*.json) against the minimal schema
# enforced by tools/check_bench_json.cc. Registered with ctest as
# `check_bench_json`, so a bench binary that starts emitting malformed JSON
# fails the test suite.
#
# The script first self-tests the validator on a known-good and a
# known-broken document (so a validator that accepts everything also fails),
# then validates the artifacts found in the repo root and bench_logs/.
# Having no artifacts around is fine — the self-test alone must pass.
#
#   scripts/check_bench_json.sh                     # default build/ binary
#   BIN_DIR=build-asan/tools scripts/check_bench_json.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-build/tools}
CHECKER="$BIN_DIR/check_bench_json"
if [ ! -x "$CHECKER" ]; then
  echo "check_bench_json: missing binary $CHECKER (build the" \
       "'check_bench_json' target first)" >&2
  exit 1
fi

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

# Self-test: a well-formed artifact must pass...
cat > "$WORK_DIR/bench_good.json" <<'EOF'
{"bench": "bench_selftest", "cpu": {"model": "Test CPU", "simd": "avx2"}, "scale": 0.5, "rows": [{"estimator": "UniSample", "p50": 1.25}]}
EOF
"$CHECKER" "$WORK_DIR/bench_good.json" > /dev/null

# ...as must a perf-counter artifact with null counters (perf unavailable).
cat > "$WORK_DIR/bench_counters_null.json" <<'EOF'
{"bench": "bench_kernels_perf_counters", "cpu": {"model": "Test CPU", "simd": "avx512"}, "counters": null}
EOF
"$CHECKER" "$WORK_DIR/bench_counters_null.json" > /dev/null

# ...and each flavor of breakage must be rejected: trailing garbage, a
# non-string "bench" field, an empty top-level object, and a "cpu" stamp
# that is not an object or misses its model/simd strings.
for bad in '{"bench": "x"} trailing' '{"bench": 7}' '{}' \
           '{"bench": "x", "cpu": "avx2"}' \
           '{"bench": "x", "cpu": {"model": "y"}}' \
           '{"bench": "x", "cpu": {"model": "", "simd": "avx2"}}'; do
  echo "$bad" > "$WORK_DIR/bench_bad.json"
  if "$CHECKER" "$WORK_DIR/bench_bad.json" > /dev/null 2>&1; then
    echo "check_bench_json: validator accepted malformed input: $bad" >&2
    exit 1
  fi
done

# Validate whatever artifacts the benches have produced. bench_*.json also
# matches bench_perf_counters.json (scripts/perf_stat.sh) and the checked-in
# floor file is validated explicitly.
shopt -s nullglob
artifacts=(bench_*.json bench_logs/bench_*.json)
shopt -u nullglob
[ -f bench/perf_floor.json ] && artifacts+=(bench/perf_floor.json)
if [ "${#artifacts[@]}" -eq 0 ]; then
  echo "check_bench_json: validator self-test passed (no artifacts found)"
  exit 0
fi
"$CHECKER" "${artifacts[@]}"
echo "check_bench_json: ${#artifacts[@]} artifact(s) validated"
