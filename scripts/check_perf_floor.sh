#!/usr/bin/env bash
# Perf regression gate (registered with ctest as `check_perf_floor`): runs
# the bench_kernels micro-bench and the bench_micro_join --quick sweep, then
# compares per-tier kernel speedups and join build/probe throughput against
# the checked-in floors in bench/perf_floor.json. A change that silently
# drops a vector tier to scalar-level throughput, or the radix join below
# the legacy hash-map baseline, fails here instead of landing.
#
# If scripts/perf_stat.sh has left a bench_perf_counters.json around, its
# hardware counters (IPC, miss rates) are gated too; without one — perf is
# often unavailable in containers — the speedup floors alone are enforced.
#
#   scripts/check_perf_floor.sh                    # default build/ binaries
#   BIN_DIR=build/tools BENCH_DIR=build/bench scripts/check_perf_floor.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-build/tools}
BENCH_DIR=${BENCH_DIR:-build/bench}
FLOOR=bench/perf_floor.json

for bin in "$BIN_DIR/check_perf_floor" "$BENCH_DIR/bench_kernels" \
           "$BENCH_DIR/bench_micro_join"; do
  if [ ! -x "$bin" ]; then
    echo "check_perf_floor: missing binary $bin (build it first)" >&2
    exit 1
  fi
done

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

"$BENCH_DIR/bench_kernels" --reps=2000 --json="$WORK_DIR/bench_kernels.json" \
  > /dev/null
"$BENCH_DIR/bench_micro_join" --quick \
  --json="$WORK_DIR/bench_micro_join.json" > /dev/null

MEASURED=("$WORK_DIR/bench_kernels.json" "$WORK_DIR/bench_micro_join.json")
if [ -f bench_perf_counters.json ]; then
  MEASURED+=(bench_perf_counters.json)
fi
"$BIN_DIR/check_perf_floor" "$FLOOR" "${MEASURED[@]}"
