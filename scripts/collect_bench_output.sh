#!/usr/bin/env bash
# Assembles bench_output.txt from whatever bench logs exist, in paper order.
cd "$(dirname "$0")/.."
: > bench_output.txt
for name in bench_table1_datasets bench_table2_workloads \
            bench_table3_end_to_end bench_table4_join_tables \
            bench_table5_oltp_olap bench_table6_update \
            bench_table7_qerror_perror bench_figure2_case_study \
            bench_figure3_practicality bench_ablation_fanout \
            bench_sensitivity_noise bench_micro_inference; do
  if [ -f "bench_logs/$name.log" ]; then
    {
      echo "================================================================"
      echo "==== $name"
      echo "================================================================"
      cat "bench_logs/$name.log"
      echo
    } >> bench_output.txt
  fi
done
echo "collected $(grep -c '^==== ' bench_output.txt) bench sections"
