#!/usr/bin/env bash
# Records hardware perf counters (IPC, cache-miss rate, branch-miss rate)
# for the kernel micro-bench into bench_perf_counters.json, alongside the
# CPU model and SIMD capability, so perf trajectories are comparable across
# machines and over time. check_perf_floor picks the artifact up and gates
# the counter floors of bench/perf_floor.json against it.
#
# `perf` is frequently unavailable (containers without CAP_PERFMON,
# kernel.perf_event_paranoid, no linux-tools): the script then still writes
# the artifact with "counters": null — downstream consumers degrade
# gracefully rather than erroring on a missing file.
#
#   scripts/perf_stat.sh                 # default build/bench binary
#   BENCH_DIR=build-asan/bench scripts/perf_stat.sh
set -u
cd "$(dirname "$0")/.."

BENCH_DIR=${BENCH_DIR:-build/bench}
BENCH="$BENCH_DIR/bench_kernels"
OUT=bench_perf_counters.json

if [ ! -x "$BENCH" ]; then
  echo "perf_stat: missing binary $BENCH (build bench_kernels first)" >&2
  exit 1
fi

cpu_model=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null)
cpu_model=${cpu_model:-unknown}
flags=$(awk -F': ' '/^flags/ {print $2; exit}' /proc/cpuinfo 2>/dev/null)
simd=scalar
case " $flags " in *" sse2 "*) simd=sse2 ;; esac
case " $flags " in *" avx2 "*) simd=avx2 ;; esac
if [[ " $flags " == *" avx512f "* && " $flags " == *" avx512dq "* &&
      " $flags " == *" avx512bw "* && " $flags " == *" avx512vl "* ]]; then
  simd=avx512
fi

EVENTS="cycles,instructions,cache-references,cache-misses,branches,branch-misses"

# Probe: `perf stat` on a trivial command must work end to end, otherwise
# record null counters (perf missing, permissions, PMU hidden by the
# hypervisor, ...).
have_perf=0
if command -v perf > /dev/null 2>&1 &&
   perf stat -x, -e cycles true > /dev/null 2>&1; then
  have_perf=1
fi

counters_json=null
if [ "$have_perf" -eq 1 ]; then
  raw=$(perf stat -x, -e "$EVENTS" "$BENCH" --reps=2000 2>&1 > /dev/null) || raw=""
  # perf -x, CSV: value,unit,event,... ; "<not supported>" rows are skipped.
  counters_json=$(printf '%s\n' "$raw" | awk -F, '
    $1 !~ /^[0-9]/ { next }
    $3 == "cycles" { cycles = $1 }
    $3 == "instructions" { instructions = $1 }
    $3 == "cache-references" { cache_refs = $1 }
    $3 == "cache-misses" { cache_misses = $1 }
    $3 == "branches" { branches = $1 }
    $3 == "branch-misses" { branch_misses = $1 }
    END {
      if (cycles == "" || instructions == "") { print "null"; exit }
      ipc = instructions / cycles
      printf "{\n    \"cycles\": %s,\n    \"instructions\": %s,\n", cycles, instructions
      printf "    \"ipc\": %.4f", ipc
      if (cache_refs != "" && cache_refs > 0)
        printf ",\n    \"cache_miss_rate\": %.6f", cache_misses / cache_refs
      if (branches != "" && branches > 0)
        printf ",\n    \"branch_miss_rate\": %.6f", branch_misses / branches
      printf "\n  }"
    }')
  [ -z "$counters_json" ] && counters_json=null
fi

{
  echo '{'
  echo '  "bench": "bench_kernels_perf_counters",'
  printf '  "cpu": {"model": "%s", "simd": "%s"},\n' "$cpu_model" "$simd"
  printf '  "counters": %s\n' "$counters_json"
  echo '}'
} > "$OUT"

if [ "$counters_json" = null ]; then
  echo "perf_stat: perf unavailable; wrote $OUT with null counters"
else
  echo "perf_stat: wrote $OUT"
fi
