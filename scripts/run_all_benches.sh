#!/usr/bin/env bash
# Runs every bench binary and collects their output into bench_output.txt.
#
# The first phase runs bench_table2_workloads alone to populate the shared
# true-cardinality cache (bench_cache/); the remaining benches then run in
# parallel batches — they only read the cache (writes are atomic renames of
# identical content). Usage:
#
#   scripts/run_all_benches.sh [extra bench flags...]
#
# e.g. scripts/run_all_benches.sh --fast        # quick smoke sweep
#
# Every bench also shares a model store (MODEL_DIR, default bench_models/):
# the first sweep trains each estimator once and persists its artifact; a
# second sweep of the same configuration loads the artifacts instead of
# retraining (warm-store mode — bench_figure3_practicality's JSON then
# reports load times in place of build times). Set MODEL_DIR="" to disable
# and retrain everything.
set -u
cd "$(dirname "$0")/.."

BENCH=build/bench
LOGS=bench_logs
MODEL_DIR=${MODEL_DIR-bench_models}
mkdir -p "$LOGS"
FLAGS=("$@")
if [ -n "$MODEL_DIR" ]; then
  FLAGS+=("--model-dir=$MODEL_DIR")
fi

run() {
  local name=$1
  shift
  echo "[run_all_benches] $name starting"
  "$BENCH/$name" "${FLAGS[@]}" "$@" > "$LOGS/$name.log" 2>&1
  echo "[run_all_benches] $name done (rc=$?)"
}

# Phase 0: cheap, no timing involved.
run bench_table1_datasets

# Phase 1: populate the true-cardinality caches for both datasets.
run bench_table2_workloads

# Phase 2: timing benches run strictly sequentially — wall-clock execution
# times are the measurement, so no two benches may share the CPU.
run bench_table3_end_to_end
run bench_table4_join_tables
run bench_table5_oltp_olap
# NeuroCardE's update path (resample + fine-tune + two full AR-inference
# passes) is by far the slowest row; drop it from the default sweep and add
# it back explicitly when reproducing the full Table 6.
run bench_table6_update --estimators=BayesCard,DeepDB,FLAT
run bench_table7_qerror_perror
run bench_figure2_case_study
run bench_figure3_practicality
[ -f bench_figure3_practicality.json ] && mv bench_figure3_practicality.json "$LOGS/"
run bench_ablation_fanout
run bench_sensitivity_noise
# Also runs the EstimateCards batch-size sweep first and emits
# bench_micro_inference_batch.json (per-sub-plan latency and throughput at
# batch 1/8/32/128/all-subsets).
"$BENCH/bench_micro_inference" --benchmark_min_time=0.2s \
  > "$LOGS/bench_micro_inference.log" 2>&1
[ -f bench_micro_inference_batch.json ] && mv bench_micro_inference_batch.json "$LOGS/"
# Executor thread/batch sweep; emits bench_micro_executor.json alongside its
# table (the JSON artifact records the speedup-vs-serial curve).
run bench_micro_executor
[ -f bench_micro_executor.json ] && mv bench_micro_executor.json "$LOGS/"
# Planner path comparison (legacy strings vs compiled QueryGraph); emits
# bench_micro_planner.json with the plans/sec and dispatch-overhead numbers.
run bench_micro_planner
[ -f bench_micro_planner.json ] && mv bench_micro_planner.json "$LOGS/"
# Join-table micro-bench: radix-partitioned build/probe vs the legacy
# unordered_map across rows x radix_bits x threads; emits
# bench_micro_join.json with ns-per-row and speedup-vs-legacy per point.
"$BENCH/bench_micro_join" --json=bench_micro_join.json \
  > "$LOGS/bench_micro_join.log" 2>&1
[ -f bench_micro_join.json ] && mv bench_micro_join.json "$LOGS/"
# Network serving sweep: the workload over loopback TCP through cardserved
# (closed-loop concurrency levels + open-loop overload shedding); emits
# bench_server_throughput.json with the per-estimator latency curves.
run bench_server_throughput
[ -f bench_server_throughput.json ] && mv bench_server_throughput.json "$LOGS/"
# Online-refresh drift sweep: streaming micro-batch inserts against the
# serving stack under no-refresh / incremental-refresh / full-retrain
# policies; emits bench_drift.json with per-estimator Q-Error, latency and
# refresh-cost comparisons.
run bench_drift
[ -f bench_drift.json ] && mv bench_drift.json "$LOGS/"

# Kernel-layer micro-bench + perf-counter capture: bench_kernels' per-tier
# speedups, and hardware counters when perf is usable here (null otherwise).
"$BENCH/bench_kernels" --json=bench_kernels.json > "$LOGS/bench_kernels.log" 2>&1
bash scripts/perf_stat.sh >> "$LOGS/bench_kernels.log" 2>&1
[ -f bench_kernels.json ] && mv bench_kernels.json "$LOGS/"

# Gate: every collected bench artifact must satisfy the minimal JSON schema
# (same check ctest runs as `check_bench_json`), and the kernel tiers must
# clear the checked-in speedup floors (same check ctest runs as
# `check_perf_floor`).
bash scripts/check_bench_json.sh || echo "[run_all_benches] WARNING: bench JSON validation failed"
bash scripts/check_perf_floor.sh || echo "[run_all_benches] WARNING: perf floors violated"

# Collect in paper order.
: > bench_output.txt
for name in bench_table1_datasets bench_table2_workloads \
            bench_table3_end_to_end bench_table4_join_tables \
            bench_table5_oltp_olap bench_table6_update \
            bench_table7_qerror_perror bench_figure2_case_study \
            bench_figure3_practicality bench_ablation_fanout \
            bench_sensitivity_noise bench_micro_inference \
            bench_micro_executor bench_micro_planner bench_micro_join \
            bench_kernels bench_server_throughput bench_drift; do
  {
    echo "================================================================"
    echo "==== $name"
    echo "================================================================"
    cat "$LOGS/$name.log"
    echo
  } >> bench_output.txt
done
echo "[run_all_benches] all done -> bench_output.txt"
