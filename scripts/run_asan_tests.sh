#!/usr/bin/env bash
# Builds the repo with AddressSanitizer and runs the tests that pound the
# executor's raw-pointer batch kernels (selection vectors, key gathers,
# morsel buffers) plus the concurrency-sensitive binaries. Any out-of-bounds
# access or leak in the vectorized pipeline fails the run.
#
#   scripts/run_asan_tests.sh               # the default binary set
#   scripts/run_asan_tests.sh -R Parity     # forward extra args to ctest
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DCARDBENCH_ASAN=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target storage_test exec_test exec_parity_test thread_pool_test \
           service_test harness_test query_graph_test planner_parity_test \
           batch_parity_test serialization_test model_store_test \
           server_test server_metrics_test drift_test \
           kernel_parity_test arena_test join_hash_test

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
if [ "$#" -gt 0 ]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  for test in storage_test exec_test exec_parity_test thread_pool_test \
              service_test harness_test query_graph_test \
              planner_parity_test batch_parity_test serialization_test \
              model_store_test server_test server_metrics_test drift_test \
              kernel_parity_test arena_test join_hash_test; do
    echo "== $test (ASAN) =="
    "$BUILD_DIR/tests/$test"
  done
  # The parity binary once more with dispatch clamped to the scalar tier,
  # so the fallback path is ASAN-clean too.
  echo "== kernel_parity_test (ASAN, CARDBENCH_SIMD=scalar) =="
  CARDBENCH_SIMD=scalar "$BUILD_DIR/tests/kernel_parity_test"
fi
echo "ASAN run clean."
