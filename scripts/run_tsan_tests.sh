#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer and runs the concurrency-sensitive
# tests (thread pool, estimation service, harness fan-out). Any data race in
# the serving layer or in a shared estimator's EstimateCard path fails the
# run.
#
#   scripts/run_tsan_tests.sh              # the concurrency test binaries
#   scripts/run_tsan_tests.sh -R Service   # forward extra args to ctest
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DCARDBENCH_TSAN=ON >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target thread_pool_test service_test optimizer_test harness_test \
           exec_parity_test query_graph_test planner_parity_test \
           batch_parity_test server_test server_metrics_test drift_test \
           kernel_parity_test arena_test join_hash_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
if [ "$#" -gt 0 ]; then
  ctest --test-dir "$BUILD_DIR" --output-on-failure "$@"
else
  for test in thread_pool_test service_test optimizer_test harness_test \
              exec_parity_test query_graph_test planner_parity_test \
              batch_parity_test server_test server_metrics_test drift_test \
              kernel_parity_test arena_test join_hash_test; do
    echo "== $test (TSAN) =="
    "$BUILD_DIR/tests/$test"
  done
fi
echo "TSAN run clean."
