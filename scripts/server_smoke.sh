#!/usr/bin/env bash
# End-to-end smoke test of the network serving stack: starts cardserved on
# an ephemeral loopback port, fires a burst of queries through cardclient
# (including one with a deliberately unknown estimator to exercise the
# structured-error path), asserts non-zero completions on a parseable
# /metrics page, then SIGTERMs the server and requires a clean drain exit.
#
#   scripts/server_smoke.sh                # default build/ binaries
#   BIN_DIR=build-asan/tools scripts/server_smoke.sh
#
# Registered with ctest as `server_smoke`, so `ctest -R server_smoke` runs
# the whole loop from a fresh build.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-build/tools}
SERVED="$BIN_DIR/cardserved"
CLIENT="$BIN_DIR/cardclient"
for binary in "$SERVED" "$CLIENT"; do
  if [ ! -x "$binary" ]; then
    echo "server_smoke: missing binary $binary (build the 'cardserved' and" \
         "'cardclient' targets first)" >&2
    exit 1
  fi
done

WORK_DIR=$(mktemp -d)
SERVER_LOG="$WORK_DIR/cardserved.log"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# Ephemeral port (--port=0), tiny dataset, snapshot written fast so the
# JSON artifact also gets exercised.
"$SERVED" --port=0 --fast --scale=0.05 --threads=2 \
  --snapshot="$WORK_DIR/metrics.json" --snapshot-period=0.2 \
  > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# The startup line carries the resolved port:
#   cardserved: listening on 127.0.0.1:PORT (...)
PORT=""
for _ in $(seq 1 600); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server_smoke: cardserved exited during startup" >&2
    cat "$SERVER_LOG" >&2
    exit 1
  fi
  PORT=$(sed -n 's/^cardserved: listening on [0-9.]*:\([0-9]*\) .*/\1/p' \
         "$SERVER_LOG" | head -n1)
  [ -n "$PORT" ] && break
  sleep 0.5
done
if [ -z "$PORT" ]; then
  echo "server_smoke: no listening line after startup timeout" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
echo "server_smoke: cardserved up on port $PORT"

# Burst of well-formed queries; cardclient exits non-zero on any failure.
BURST="$WORK_DIR/burst.sql"
cat > "$BURST" <<'SQL'
SELECT COUNT(*) FROM users WHERE users.Reputation >= 100;
SELECT COUNT(*) FROM posts, comments WHERE posts.Id = comments.PostId AND comments.Score >= 1;
SELECT COUNT(*) FROM badges WHERE badges.UserId >= 1;
SQL
for _ in 1 2 3; do
  "$CLIENT" --port="$PORT" --estimator=PostgreSQL < "$BURST" > /dev/null
done

# A structured error must come back as a response, not a dropped connection.
if echo "SELECT COUNT(*) FROM users;" | \
   "$CLIENT" --port="$PORT" --estimator=NoSuchModel > "$WORK_DIR/err.out"; then
  echo "server_smoke: unknown estimator unexpectedly succeeded" >&2
  exit 1
fi
grep -q "NotFound" "$WORK_DIR/err.out"

# The metrics page is parseable and shows the completions we just made.
METRICS="$WORK_DIR/metrics.txt"
"$CLIENT" --port="$PORT" --metrics > "$METRICS"
COMPLETED=$(sed -n 's/^cardserved_completed_total \([0-9]*\)$/\1/p' \
            "$METRICS")
if [ -z "$COMPLETED" ] || [ "$COMPLETED" -lt 9 ]; then
  echo "server_smoke: expected >=9 completions, got '${COMPLETED:-none}'" >&2
  cat "$METRICS" >&2
  exit 1
fi
grep -q 'cardserved_latency_seconds{estimator="PostgreSQL",quantile="0.99"}' \
  "$METRICS"
grep -q '^cardserved_failed_total 1$' "$METRICS"  # the NoSuchModel request

# The periodic JSON snapshot landed on disk and is non-empty.
for _ in $(seq 1 20); do
  [ -s "$WORK_DIR/metrics.json" ] && break
  sleep 0.2
done
grep -q '"completed":' "$WORK_DIR/metrics.json"

# Graceful shutdown: SIGTERM drains and the process exits 0 on its own.
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
if [ "$EXIT_CODE" -ne 0 ]; then
  echo "server_smoke: cardserved exited $EXIT_CODE after SIGTERM" >&2
  cat "$SERVER_LOG" >&2
  exit 1
fi
grep -q "0 in flight at exit" "$SERVER_LOG"
SERVER_PID=""

echo "server_smoke: OK ($COMPLETED completions, clean SIGTERM drain)"
