#include "cardest/autoregressive_est.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "common/logging.h"
#include "common/serde.h"
#include "common/str_util.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {

Value ClampToValue(double v) {
  return static_cast<Value>(std::min(v, 4.0e18));
}

/// Packs an oriented (parent table, parent column, child table, child
/// column) id quadruple into one lookup key.
uint64_t PackTreeEdge(int ptid, int pcid, int ctid, int ccid) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(ptid)) << 48) |
         (static_cast<uint64_t>(static_cast<uint16_t>(pcid)) << 32) |
         (static_cast<uint64_t>(static_cast<uint16_t>(ctid)) << 16) |
         static_cast<uint16_t>(ccid);
}

/// Materializes a vector of doubles as a storage Column for binning.
Column DoubleColumn(const std::vector<double>& values) {
  Column col("tmp", ColumnKind::kNumeric);
  col.Reserve(values.size());
  for (double v : values) col.Append(ClampToValue(v));
  return col;
}

}  // namespace

AutoregressiveEstimator::AutoregressiveEstimator(
    const Database& db, ArTraining mode,
    const std::vector<TrainingQuery>* training_queries, ArOptions options)
    : db_(db),
      mode_(mode),
      training_queries_(training_queries),
      options_(options) {
  CARDBENCH_CHECK(
      mode_ == ArTraining::kData || training_queries_ != nullptr,
      "query-driven autoregressive estimators need training queries");
  Stopwatch watch;
  sampler_ = std::make_unique<FojSampler>(db_);
  RebuildIdMaps();
  BuildColumns();
  Train();
  train_seconds_ = watch.ElapsedSeconds();
}

void AutoregressiveEstimator::RebuildIdMaps() {
  std::unordered_map<std::string, int> name_to_tid;
  for (size_t t = 0; t < db_.table_names().size(); ++t) {
    name_to_tid[db_.table_names()[t]] = static_cast<int>(t);
  }
  sampler_idx_by_table_id_.assign(db_.table_names().size(), -1);
  for (size_t t = 0; t < db_.table_names().size(); ++t) {
    sampler_idx_by_table_id_[t] = sampler_->TableIndex(db_.table_names()[t]);
  }
  tree_edge_keys_.clear();
  for (const auto& tree_edge : sampler_->edges()) {
    const std::string& parent = sampler_->bfs_order()[tree_edge.parent_idx];
    const std::string& child = sampler_->bfs_order()[tree_edge.child_idx];
    const Table& pt = db_.TableOrDie(parent);
    const Table& ct = db_.TableOrDie(child);
    tree_edge_keys_.insert(PackTreeEdge(
        name_to_tid.at(parent),
        static_cast<int>(pt.ColumnIndexOrDie(tree_edge.parent_col)),
        name_to_tid.at(child),
        static_cast<int>(ct.ColumnIndexOrDie(tree_edge.child_col))));
  }
}

void AutoregressiveEstimator::BuildColumns() {
  columns_.clear();
  const auto& order = sampler_->bfs_order();
  for (size_t t = 0; t < order.size(); ++t) {
    const Table& table = db_.TableOrDie(order[t]);
    {
      ModelColumn presence;
      presence.kind = ModelColumn::Kind::kPresence;
      presence.table_idx = t;
      presence.domain = 2;
      columns_.push_back(std::move(presence));
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.kind() != ColumnKind::kNumeric &&
          col.kind() != ColumnKind::kCategorical) {
        continue;
      }
      ModelColumn attr;
      attr.kind = ModelColumn::Kind::kAttr;
      attr.table_idx = t;
      attr.attr = col.name();
      attr.attr_column_id = static_cast<int>(c);
      attr.binner =
          std::make_unique<ColumnBinner>(col, options_.bins_per_column);
      attr.domain = attr.binner->num_bins();
      columns_.push_back(std::move(attr));
    }
    {
      // Upward-duplication column U_t.
      std::vector<double> values;
      values.reserve(table.num_rows());
      for (size_t row = 0; row < table.num_rows(); ++row) {
        values.push_back(
            std::max(1.0, sampler_->Upward(t, static_cast<uint32_t>(row))));
      }
      ModelColumn up;
      up.kind = ModelColumn::Kind::kUpward;
      up.table_idx = t;
      const Column tmp = DoubleColumn(values);
      up.binner = std::make_unique<ColumnBinner>(tmp, options_.bins_per_column);
      up.domain = up.binner->num_bins();
      columns_.push_back(std::move(up));
    }
    // Edge-duplication columns D_e for edges whose parent is this table.
    for (size_t e = 0; e < sampler_->edges().size(); ++e) {
      if (sampler_->edges()[e].parent_idx != t) continue;
      const Table& parent = db_.TableOrDie(order[t]);
      std::vector<double> values;
      values.reserve(parent.num_rows());
      for (size_t row = 0; row < parent.num_rows(); ++row) {
        values.push_back(sampler_->EdgeDup(e, static_cast<uint32_t>(row)));
      }
      ModelColumn dup;
      dup.kind = ModelColumn::Kind::kEdgeDup;
      dup.table_idx = t;
      dup.edge_idx = static_cast<int>(e);
      const Column tmp = DoubleColumn(values);
      dup.binner =
          std::make_unique<ColumnBinner>(tmp, options_.bins_per_column);
      dup.domain = dup.binner->num_bins();
      columns_.push_back(std::move(dup));
    }
  }
}

std::vector<uint16_t> AutoregressiveEstimator::BinTuple(
    const std::vector<int64_t>& tuple) const {
  std::vector<uint16_t> binned(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ModelColumn& mc = columns_[i];
    const int64_t row = tuple[mc.table_idx];
    switch (mc.kind) {
      case ModelColumn::Kind::kPresence:
        binned[i] = row >= 0 ? 1 : 0;
        break;
      case ModelColumn::Kind::kAttr: {
        if (row < 0) {
          binned[i] = 0;  // absent -> NULL bin
        } else {
          const Column& col = db_.TableOrDie(sampler_->bfs_order()[mc.table_idx])
                                  .ColumnByName(mc.attr);
          binned[i] = mc.binner->BinOf(
              col.IsValid(static_cast<size_t>(row))
                  ? std::optional<Value>(col.Get(static_cast<size_t>(row)))
                  : std::nullopt);
        }
        break;
      }
      case ModelColumn::Kind::kUpward:
        binned[i] = mc.binner->BinOf(
            row >= 0 ? ClampToValue(std::max(
                           1.0, sampler_->Upward(mc.table_idx,
                                                 static_cast<uint32_t>(row))))
                     : Value{1});
        break;
      case ModelColumn::Kind::kEdgeDup:
        binned[i] = mc.binner->BinOf(
            row >= 0
                ? ClampToValue(sampler_->EdgeDup(
                      static_cast<size_t>(mc.edge_idx),
                      static_cast<uint32_t>(row)))
                : Value{1});
        break;
    }
  }
  return binned;
}

std::vector<std::vector<uint16_t>> AutoregressiveEstimator::DrawDataTuples(
    size_t count, Rng& rng) const {
  std::vector<std::vector<uint16_t>> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rows.push_back(BinTuple(sampler_->SampleTuple(rng)));
  }
  return rows;
}

std::vector<std::vector<uint16_t>> AutoregressiveEstimator::DrawQueryTuples(
    size_t count, Rng& rng) const {
  // Pseudo-tuples consistent with (query, cardinality) pairs: queries are
  // drawn with probability proportional to log2(1 + cardinality); within a
  // query, constrained attribute bins are drawn from the statistics-level
  // marginal restricted to the predicate region, everything else from the
  // marginal. A deliberately coarse reconstruction of the FOJ distribution
  // — the workload can only reveal so much (the paper's O1/O9 weaknesses).
  std::vector<std::vector<uint16_t>> rows;
  rows.reserve(count);
  const auto& queries = *training_queries_;
  std::vector<double> query_weight;
  query_weight.reserve(queries.size());
  for (const auto& tq : queries) {
    query_weight.push_back(std::log2(2.0 + tq.cardinality));
  }
  WeightedSampler query_sampler(query_weight);

  // Precomputed per-column marginal samplers.
  std::vector<std::unique_ptr<WeightedSampler>> marginals(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].binner == nullptr) continue;
    std::vector<double> mass(columns_[i].domain);
    for (uint16_t b = 0; b < columns_[i].domain; ++b) {
      mass[b] = columns_[i].binner->BinMass(b);
    }
    marginals[i] = std::make_unique<WeightedSampler>(mass);
  }

  for (size_t i = 0; i < count; ++i) {
    const Query& query = queries[query_sampler.Sample(rng)].query;
    std::vector<uint16_t> row(columns_.size(), 0);
    for (size_t c = 0; c < columns_.size(); ++c) {
      const ModelColumn& mc = columns_[c];
      const std::string& table = sampler_->bfs_order()[mc.table_idx];
      const bool in_query = query.TableIndex(table) >= 0;
      if (mc.kind == ModelColumn::Kind::kPresence) {
        row[c] = in_query ? 1 : 0;
        continue;
      }
      if (mc.binner == nullptr) continue;
      if (mc.kind == ModelColumn::Kind::kAttr && in_query) {
        std::vector<Predicate> preds;
        for (const auto& pred : query.predicates) {
          if (pred.table == table && pred.column == mc.attr) {
            preds.push_back(pred);
          }
        }
        if (!preds.empty()) {
          const std::vector<double> frac =
              mc.binner->PredicateFractions(preds);
          std::vector<double> mass(mc.domain);
          for (uint16_t b = 0; b < mc.domain; ++b) {
            mass[b] = mc.binner->BinMass(b) * frac[b];
          }
          WeightedSampler restricted(mass);
          row[c] = static_cast<uint16_t>(restricted.Sample(rng));
          continue;
        }
      }
      row[c] = static_cast<uint16_t>(marginals[c]->Sample(rng));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void AutoregressiveEstimator::Train() {
  Rng rng(options_.seed);
  std::vector<size_t> domains;
  domains.reserve(columns_.size());
  for (const auto& mc : columns_) domains.push_back(mc.domain);
  made_ = std::make_unique<MadeModel>(domains, options_.hidden_units,
                                      options_.hidden_layers, rng);

  std::vector<std::vector<uint16_t>> rows;
  switch (mode_) {
    case ArTraining::kData:
      rows = DrawDataTuples(options_.training_samples, rng);
      break;
    case ArTraining::kQuery:
      rows = DrawQueryTuples(options_.training_samples, rng);
      break;
    case ArTraining::kHybrid: {
      rows = DrawDataTuples(options_.training_samples / 2, rng);
      auto extra = DrawQueryTuples(options_.training_samples / 2, rng);
      rows.insert(rows.end(), extra.begin(), extra.end());
      break;
    }
  }
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double nll = made_->TrainEpoch(rows, options_.batch_size,
                                         options_.learning_rate, rng,
                                         options_.mask_prob);
    CARDBENCH_DLOG("%s epoch %zu nll %.3f", name().c_str(), epoch, nll);
  }
}

Status AutoregressiveEstimator::Update() {
  // Fanouts and FOJ weights changed: rebuild the sampler, draw fresh
  // samples (binned with the frozen binners) and fine-tune.
  Stopwatch watch;
  sampler_ = std::make_unique<FojSampler>(db_);
  RebuildIdMaps();
  Rng rng(options_.seed ^ 0x5555);
  const auto rows = DrawDataTuples(options_.training_samples, rng);
  for (size_t epoch = 0; epoch < std::max<size_t>(2, options_.epochs / 2);
       ++epoch) {
    made_->TrainEpoch(rows, options_.batch_size, options_.learning_rate, rng,
                      options_.mask_prob);
  }
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

bool AutoregressiveEstimator::MapToTree(const Query& query,
                                        std::vector<bool>* table_in_s) const {
  table_in_s->assign(sampler_->bfs_order().size(), false);
  for (const auto& table : query.tables) {
    const int idx = sampler_->TableIndex(table);
    if (idx < 0) return false;
    (*table_in_s)[static_cast<size_t>(idx)] = true;
  }
  for (const auto& edge : query.joins) {
    bool matched = false;
    for (const auto& tree_edge : sampler_->edges()) {
      const std::string& parent = sampler_->bfs_order()[tree_edge.parent_idx];
      const std::string& child = sampler_->bfs_order()[tree_edge.child_idx];
      const bool forward = edge.left_table == parent &&
                           edge.left_column == tree_edge.parent_col &&
                           edge.right_table == child &&
                           edge.right_column == tree_edge.child_col;
      const bool backward = edge.right_table == parent &&
                            edge.right_column == tree_edge.parent_col &&
                            edge.left_table == child &&
                            edge.left_column == tree_edge.child_col;
      if (forward || backward) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

double AutoregressiveEstimator::ProgressiveEstimate(
    const std::vector<std::pair<size_t, std::vector<double>>>& factors,
    Rng& rng) const {
  const size_t batch = options_.progressive_samples;
  Matrix encoded(batch, made_->input_dim());
  std::vector<double> weights(batch, 1.0);

  // Factors sorted by column order (the autoregressive order).
  std::vector<std::pair<size_t, const std::vector<double>*>> ordered;
  for (const auto& [col, per_bin] : factors) ordered.push_back({col, &per_bin});
  std::sort(ordered.begin(), ordered.end());

  for (const auto& [col, per_bin] : ordered) {
    const Matrix probs = made_->ConditionalProbs(encoded, col);
    const size_t offset = made_->ColumnOffset(col);
    for (size_t s = 0; s < batch; ++s) {
      if (weights[s] <= 0.0) continue;
      double mass = 0.0;
      for (size_t b = 0; b < columns_[col].domain; ++b) {
        mass += probs.At(s, b) * (*per_bin)[b];
      }
      weights[s] *= mass;
      if (mass <= 1e-300) {
        weights[s] = 0.0;
        continue;
      }
      // Sample the conditioning bin proportionally to prob * factor.
      double pick = rng.NextDouble() * mass;
      size_t chosen = columns_[col].domain - 1;
      for (size_t b = 0; b < columns_[col].domain; ++b) {
        pick -= probs.At(s, b) * (*per_bin)[b];
        if (pick <= 0) {
          chosen = b;
          break;
        }
      }
      encoded.At(s, offset + chosen) = 1.0;
    }
  }
  double mean = 0.0;
  for (double w : weights) mean += w;
  return mean / static_cast<double>(batch);
}

bool AutoregressiveEstimator::GraphMapToTree(
    const QueryGraph& graph, uint64_t mask, std::vector<bool>* table_in_s,
    std::vector<int>* local_of_sampler) const {
  table_in_s->assign(sampler_->bfs_order().size(), false);
  local_of_sampler->assign(sampler_->bfs_order().size(), -1);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    const int idx = sampler_idx_by_table_id_[graph.table(local).table_id];
    if (idx < 0) return false;
    (*table_in_s)[static_cast<size_t>(idx)] = true;
    (*local_of_sampler)[static_cast<size_t>(idx)] = local;
  }
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    const bool forward = tree_edge_keys_.count(
                             PackTreeEdge(edge.left_table_id,
                                          edge.left_column_id,
                                          edge.right_table_id,
                                          edge.right_column_id)) > 0;
    const bool backward = tree_edge_keys_.count(
                              PackTreeEdge(edge.right_table_id,
                                           edge.right_column_id,
                                           edge.left_table_id,
                                           edge.left_column_id)) > 0;
    if (!forward && !backward) return false;
  }
  return true;
}

double AutoregressiveEstimator::EstimateCard(const QueryGraph& graph,
                                             uint64_t mask) const {
  // Same per-sub-plan stream as the Query overload: the graph's canonical
  // key is byte-identical to the induced sub-query's.
  Rng rng(options_.seed ^ 0xABCDEF ^ Fnv1aHash(graph.CanonicalKey(mask)));
  std::vector<bool> in_s;
  std::vector<int> local_of_sampler;
  if (!GraphMapToTree(graph, mask, &in_s, &local_of_sampler)) {
    // Off-tree join (FK-FK shortcut): independence fallback — single-table
    // estimates combined with 1/max(ndv) per edge (tree-schema limitation).
    // Singleton masks recurse through this overload; their canonical keys
    // equal the per-table Query the legacy fallback materializes.
    double card = 1.0;
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      card *= EstimateCard(graph, rest & ~(rest - 1));
    }
    for (const auto& edge : graph.edges()) {
      if ((edge.mask & mask) != edge.mask) continue;
      const double lndv = std::max<double>(
          1.0, static_cast<double>(
                   edge.left_table->GetIndex(edge.left_column_id)
                       .num_distinct()));
      const double rndv = std::max<double>(
          1.0, static_cast<double>(
                   edge.right_table->GetIndex(edge.right_column_id)
                       .num_distinct()));
      card /= std::max(lndv, rndv);
    }
    return std::max(card, 1.0);
  }

  const std::vector<std::pair<size_t, std::vector<double>>> factors =
      BuildGraphFactors(graph, in_s, local_of_sampler);
  const double expectation = ProgressiveEstimate(factors, rng);
  return std::max(1.0, sampler_->foj_size() * expectation);
}

std::vector<std::pair<size_t, std::vector<double>>>
AutoregressiveEstimator::BuildGraphFactors(
    const QueryGraph& graph, const std::vector<bool>& in_s,
    const std::vector<int>& local_of_sampler) const {
  // Top of S: the BFS-shallowest table (parents precede children).
  size_t top = 0;
  for (size_t t = 0; t < in_s.size(); ++t) {
    if (in_s[t]) {
      top = t;
      break;
    }
  }

  std::vector<std::pair<size_t, std::vector<double>>> factors;
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ModelColumn& mc = columns_[c];
    const bool table_in_query = in_s[mc.table_idx];
    switch (mc.kind) {
      case ModelColumn::Kind::kPresence:
        if (table_in_query) factors.push_back({c, {0.0, 1.0}});
        break;
      case ModelColumn::Kind::kAttr: {
        if (!table_in_query) break;
        const QueryGraph::TableInfo& info =
            graph.table(local_of_sampler[mc.table_idx]);
        std::vector<Predicate> preds;
        for (size_t p = 0; p < info.preds.size(); ++p) {
          if (info.pred_column_ids[p] == mc.attr_column_id) {
            preds.push_back(info.preds[p]);
          }
        }
        if (!preds.empty()) {
          factors.push_back({c, mc.binner->PredicateFractions(preds)});
        }
        break;
      }
      case ModelColumn::Kind::kUpward: {
        if (mc.table_idx != top) break;
        std::vector<double> inv(mc.domain);
        for (uint16_t b = 0; b < mc.domain; ++b) {
          inv[b] = mc.binner->BinInverseMean(b);
        }
        factors.push_back({c, std::move(inv)});
        break;
      }
      case ModelColumn::Kind::kEdgeDup: {
        if (!table_in_query) break;
        const auto& edge = sampler_->edges()[static_cast<size_t>(mc.edge_idx)];
        if (in_s[edge.child_idx]) break;  // child joined: no duplication
        std::vector<double> inv(mc.domain);
        for (uint16_t b = 0; b < mc.domain; ++b) {
          inv[b] = mc.binner->BinInverseMean(b);
        }
        factors.push_back({c, std::move(inv)});
        break;
      }
    }
  }
  return factors;
}

std::vector<double> AutoregressiveEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  std::vector<double> out(masks.size(), 0.0);

  // Per-mask progressive-sampling state. Off-tree masks take the scalar
  // path immediately (the independence fallback draws no samples).
  struct Item {
    size_t out_idx = 0;
    Rng rng{0};
    std::vector<std::pair<size_t, std::vector<double>>> factors;
    size_t cursor = 0;  // next factor to process
    Matrix encoded;
    std::vector<double> weights;
  };
  std::vector<Item> items;
  const size_t batch = options_.progressive_samples;
  for (size_t i = 0; i < masks.size(); ++i) {
    Rng rng(options_.seed ^ 0xABCDEF ^ Fnv1aHash(graph.CanonicalKey(masks[i])));
    std::vector<bool> in_s;
    std::vector<int> local_of_sampler;
    if (!GraphMapToTree(graph, masks[i], &in_s, &local_of_sampler)) {
      out[i] = EstimateCard(graph, masks[i]);
      continue;
    }
    Item item;
    item.out_idx = i;
    item.rng = rng;
    item.factors = BuildGraphFactors(graph, in_s, local_of_sampler);
    item.encoded = Matrix(batch, made_->input_dim());
    item.weights.assign(batch, 1.0);
    items.push_back(std::move(item));
  }
  if (items.empty()) return out;

  // Constrained columns across the batch, ascending — each mask's factors
  // are already in ascending column order (ProgressiveEstimate's sort is a
  // stable no-op on them), so processing its subset of the union in that
  // order reproduces the scalar column order exactly.
  std::vector<size_t> union_cols;
  for (const Item& item : items) {
    for (const auto& [col, per_bin] : item.factors) union_cols.push_back(col);
  }
  std::sort(union_cols.begin(), union_cols.end());
  union_cols.erase(std::unique(union_cols.begin(), union_cols.end()),
                   union_cols.end());

  std::vector<Item*> active;
  for (size_t col : union_cols) {
    active.clear();
    for (Item& item : items) {
      if (item.cursor < item.factors.size() &&
          item.factors[item.cursor].first == col) {
        active.push_back(&item);
      }
    }
    if (active.empty()) continue;

    // One fused MADE forward over all active masks' sample rows; the
    // network is row-independent, so each mask's probability block equals
    // its scalar ConditionalProbs result.
    Matrix gathered(active.size() * batch, made_->input_dim());
    for (size_t k = 0; k < active.size(); ++k) {
      std::copy(active[k]->encoded.data().begin(),
                active[k]->encoded.data().end(),
                gathered.data().begin() +
                    static_cast<std::ptrdiff_t>(k * batch *
                                                made_->input_dim()));
    }
    const Matrix probs = made_->ConditionalProbs(gathered, col);
    const size_t offset = made_->ColumnOffset(col);
    const size_t domain = columns_[col].domain;
    for (size_t k = 0; k < active.size(); ++k) {
      Item& item = *active[k];
      const std::vector<double>& per_bin =
          item.factors[item.cursor].second;
      const size_t row0 = k * batch;
      for (size_t s = 0; s < batch; ++s) {
        if (item.weights[s] <= 0.0) continue;
        double mass = 0.0;
        for (size_t b = 0; b < domain; ++b) {
          mass += probs.At(row0 + s, b) * per_bin[b];
        }
        item.weights[s] *= mass;
        if (mass <= 1e-300) {
          item.weights[s] = 0.0;
          continue;
        }
        // Sample the conditioning bin proportionally to prob * factor.
        double pick = item.rng.NextDouble() * mass;
        size_t chosen = domain - 1;
        for (size_t b = 0; b < domain; ++b) {
          pick -= probs.At(row0 + s, b) * per_bin[b];
          if (pick <= 0) {
            chosen = b;
            break;
          }
        }
        item.encoded.At(s, offset + chosen) = 1.0;
      }
      ++item.cursor;
    }
  }

  for (const Item& item : items) {
    double mean = 0.0;
    for (double w : item.weights) mean += w;
    const double expectation = mean / static_cast<double>(batch);
    out[item.out_idx] =
        std::max(1.0, sampler_->foj_size() * expectation);
  }
  return out;
}

double AutoregressiveEstimator::EstimateCard(const Query& subquery) const {
  // Per-sub-plan progressive-sampling stream (see header).
  Rng rng(options_.seed ^ 0xABCDEF ^ Fnv1aHash(subquery.CanonicalKey()));
  std::vector<bool> in_s;
  if (!MapToTree(subquery, &in_s)) {
    // Off-tree join (FK-FK shortcut): independence fallback — single-table
    // estimates combined with 1/max(ndv) per edge (tree-schema limitation).
    double card = 1.0;
    for (const auto& table : subquery.tables) {
      Query single;
      single.tables = {table};
      for (const auto& pred : subquery.predicates) {
        if (pred.table == table) single.predicates.push_back(pred);
      }
      card *= EstimateCard(single);
    }
    for (const auto& edge : subquery.joins) {
      const Table& lt = db_.TableOrDie(edge.left_table);
      const Table& rt = db_.TableOrDie(edge.right_table);
      const double lndv = std::max<double>(
          1.0, static_cast<double>(
                   lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column))
                       .num_distinct()));
      const double rndv = std::max<double>(
          1.0, static_cast<double>(
                   rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column))
                       .num_distinct()));
      card /= std::max(lndv, rndv);
    }
    return std::max(card, 1.0);
  }

  // Top of S: the BFS-shallowest table (parents precede children).
  size_t top = 0;
  for (size_t t = 0; t < in_s.size(); ++t) {
    if (in_s[t]) {
      top = t;
      break;
    }
  }

  std::vector<std::pair<size_t, std::vector<double>>> factors;
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ModelColumn& mc = columns_[c];
    const bool table_in_query = in_s[mc.table_idx];
    switch (mc.kind) {
      case ModelColumn::Kind::kPresence:
        if (table_in_query) factors.push_back({c, {0.0, 1.0}});
        break;
      case ModelColumn::Kind::kAttr: {
        if (!table_in_query) break;
        std::vector<Predicate> preds;
        const std::string& table = sampler_->bfs_order()[mc.table_idx];
        for (const auto& pred : subquery.predicates) {
          if (pred.table == table && pred.column == mc.attr) {
            preds.push_back(pred);
          }
        }
        if (!preds.empty()) {
          factors.push_back({c, mc.binner->PredicateFractions(preds)});
        }
        break;
      }
      case ModelColumn::Kind::kUpward: {
        if (mc.table_idx != top) break;
        std::vector<double> inv(mc.domain);
        for (uint16_t b = 0; b < mc.domain; ++b) {
          inv[b] = mc.binner->BinInverseMean(b);
        }
        factors.push_back({c, std::move(inv)});
        break;
      }
      case ModelColumn::Kind::kEdgeDup: {
        if (!table_in_query) break;
        const auto& edge = sampler_->edges()[static_cast<size_t>(mc.edge_idx)];
        if (in_s[edge.child_idx]) break;  // child joined: no duplication
        std::vector<double> inv(mc.domain);
        for (uint16_t b = 0; b < mc.domain; ++b) {
          inv[b] = mc.binner->BinInverseMean(b);
        }
        factors.push_back({c, std::move(inv)});
        break;
      }
    }
  }
  const double expectation = ProgressiveEstimate(factors, rng);
  return std::max(1.0, sampler_->foj_size() * expectation);
}

AutoregressiveEstimator::AutoregressiveEstimator(const Database& db,
                                                 ArTraining mode,
                                                 ArOptions options,
                                                 DeferredInit)
    : db_(db), mode_(mode), training_queries_(nullptr), options_(options) {
  sampler_ = std::make_unique<FojSampler>(db_);
  RebuildIdMaps();
}

Status AutoregressiveEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("armade");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU32(static_cast<uint32_t>(mode_));
  meta.PutU64(options_.training_samples);
  meta.PutU64(options_.bins_per_column);
  meta.PutU64(options_.hidden_units);
  meta.PutU64(options_.hidden_layers);
  meta.PutU64(options_.epochs);
  meta.PutU64(options_.batch_size);
  meta.PutDouble(options_.learning_rate);
  meta.PutDouble(options_.mask_prob);
  meta.PutU64(options_.progressive_samples);
  meta.PutU64(options_.seed);
  meta.PutDouble(train_seconds_);

  SectionWriter& cols = writer.AddSection("columns");
  cols.PutU64(columns_.size());
  for (const auto& mc : columns_) {
    cols.PutU32(static_cast<uint32_t>(mc.kind));
    cols.PutU64(mc.table_idx);
    cols.PutString(mc.attr);
    cols.PutI64(mc.attr_column_id);
    cols.PutI64(mc.edge_idx);
    cols.PutU64(mc.domain);
    cols.PutBool(mc.binner != nullptr);
    if (mc.binner != nullptr) mc.binner->Serialize(cols);
  }

  SectionWriter& params = writer.AddSection("params");
  made_->SerializeParams(params);
  return writer.WriteTo(out);
}

Result<std::unique_ptr<AutoregressiveEstimator>>
AutoregressiveEstimator::Deserialize(const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "armade"));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  uint32_t mode_raw = 0;
  CARDBENCH_ASSIGN_OR_RETURN(mode_raw, meta.GetU32());
  if (mode_raw > static_cast<uint32_t>(ArTraining::kHybrid)) {
    return Status::InvalidArgument("unknown autoregressive training mode");
  }
  ArOptions options;
  CARDBENCH_ASSIGN_OR_RETURN(options.training_samples, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.bins_per_column, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.hidden_units, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.hidden_layers, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.epochs, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.batch_size, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.learning_rate, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(options.mask_prob, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(options.progressive_samples, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.seed, meta.GetU64());
  auto est = std::unique_ptr<AutoregressiveEstimator>(
      new AutoregressiveEstimator(db, static_cast<ArTraining>(mode_raw),
                                  options, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());

  CARDBENCH_ASSIGN_OR_RETURN(SectionReader cols, reader.Section("columns"));
  uint64_t num_columns = 0;
  CARDBENCH_ASSIGN_OR_RETURN(num_columns, cols.GetU64());
  est->columns_.reserve(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    ModelColumn mc;
    uint32_t kind_raw = 0;
    CARDBENCH_ASSIGN_OR_RETURN(kind_raw, cols.GetU32());
    if (kind_raw > static_cast<uint32_t>(ModelColumn::Kind::kEdgeDup)) {
      return Status::InvalidArgument("unknown autoregressive column kind");
    }
    mc.kind = static_cast<ModelColumn::Kind>(kind_raw);
    CARDBENCH_ASSIGN_OR_RETURN(mc.table_idx, cols.GetU64());
    if (mc.table_idx >= est->sampler_->bfs_order().size()) {
      return Status::InvalidArgument(
          "autoregressive column references unknown table slot");
    }
    CARDBENCH_ASSIGN_OR_RETURN(mc.attr, cols.GetString());
    int64_t attr_column_id = 0;
    CARDBENCH_ASSIGN_OR_RETURN(attr_column_id, cols.GetI64());
    mc.attr_column_id = static_cast<int>(attr_column_id);
    int64_t edge_idx = 0;
    CARDBENCH_ASSIGN_OR_RETURN(edge_idx, cols.GetI64());
    mc.edge_idx = static_cast<int>(edge_idx);
    CARDBENCH_ASSIGN_OR_RETURN(mc.domain, cols.GetU64());
    bool has_binner = false;
    CARDBENCH_ASSIGN_OR_RETURN(has_binner, cols.GetBool());
    if (has_binner) {
      CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                                 ColumnBinner::Deserialize(cols));
      mc.binner = std::make_unique<ColumnBinner>(std::move(binner));
    }
    est->columns_.push_back(std::move(mc));
  }

  std::vector<size_t> domains;
  domains.reserve(est->columns_.size());
  for (const auto& mc : est->columns_) domains.push_back(mc.domain);
  Rng rng(options.seed);
  est->made_ = std::make_unique<MadeModel>(domains, options.hidden_units,
                                           options.hidden_layers, rng);
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader params, reader.Section("params"));
  CARDBENCH_RETURN_IF_ERROR(est->made_->LoadParams(params));
  return est;
}

}  // namespace cardbench
