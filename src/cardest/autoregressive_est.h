#ifndef CARDBENCH_CARDEST_AUTOREGRESSIVE_EST_H_
#define CARDBENCH_CARDEST_AUTOREGRESSIVE_EST_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cardest/binner.h"
#include "cardest/estimator.h"
#include "cardest/foj_sampler.h"
#include "cardest/query_features.h"
#include "ml/made.h"

namespace cardbench {

/// What the autoregressive model is trained on.
enum class ArTraining {
  kData,    ///< uniform FOJ samples             -> NeuroCard^E
  kQuery,   ///< query-derived pseudo tuples     -> UAE-Q (simplified)
  kHybrid,  ///< half data, half query tuples    -> UAE   (simplified)
};

/// Hyper-parameters of the autoregressive (MADE) estimators. Defaults are
/// CPU-scale: the paper trained 4x128 networks with 8000 progressive
/// samples on a V100; we keep the architecture family and shrink widths
/// and sample counts (documented in DESIGN.md).
struct ArOptions {
  size_t training_samples = 6000;
  size_t bins_per_column = 12;
  size_t hidden_units = 72;
  size_t hidden_layers = 2;
  size_t epochs = 5;
  size_t batch_size = 128;
  double learning_rate = 2e-3;
  /// Wildcard-skipping mask probability during training.
  double mask_prob = 0.25;
  /// Progressive-sampling batch at inference (paper: 8000 on a V100; CPU
  /// default trades variance for tractable whole-workload planning time).
  size_t progressive_samples = 32;
  uint64_t seed = 23;
};

/// The NeuroCard^E / UAE family: one MADE over the spanning-tree full outer
/// join of the whole schema. Model columns per table: a presence bit, the
/// binned filterable attributes, the upward-duplication column U_t; plus
/// one edge-duplication column D_e per tree edge. A query on table set S is
/// answered as
///
///   Card = |FOJ| * E[ 1{S present, preds} / (U_top * Π_{t∈S, c∉S} D_{t→c}) ]
///
/// with the expectation evaluated by progressive sampling (constrained
/// columns only; unconstrained columns stay wildcard-masked). Queries whose
/// join edges leave the spanning tree (FK-FK shortcuts) fall back to an
/// independence combination of single-table estimates — reproducing the
/// tree-schema limitation that forced the paper to partition STATS for
/// NeuroCard (§6.2).
class AutoregressiveEstimator : public CardinalityEstimator {
 public:
  AutoregressiveEstimator(const Database& db, ArTraining mode,
                          const std::vector<TrainingQuery>* training_queries,
                          ArOptions options = ArOptions());

  std::string name() const override {
    switch (mode_) {
      case ArTraining::kData: return "NeuroCardE";
      case ArTraining::kQuery: return "UAE-Q";
      case ArTraining::kHybrid: return "UAE";
    }
    return "AR";
  }

  /// Progressive-sampling randomness is derived from a hash of the
  /// sub-plan's canonical key, so estimates are deterministic per sub-plan
  /// and safe under concurrent callers (thread-safety contract). The graph
  /// overload seeds from the precomputed canonical key and maps tables and
  /// join edges onto the FOJ spanning tree by resolved ids, so both paths
  /// draw identical progressive samples.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: every on-tree mask keeps its own progressive-sampling state
  /// (encoded matrix, weights, canonical-key-seeded RNG) but the MADE
  /// forward passes are fused — one ConditionalProbs call per constrained
  /// column over the concatenation of all active masks' sample rows. Each
  /// mask's arithmetic and RNG stream are untouched (the network is
  /// row-independent), so results are bit-identical to per-mask
  /// EstimateCard; off-tree masks take the scalar independence fallback.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  double TrainSeconds() const override { return train_seconds_; }
  bool SupportsUpdate() const override { return mode_ == ArTraining::kData; }
  /// Re-samples the FOJ (fanouts changed) and fine-tunes the net — the
  /// slowest update path of all methods, as in the paper's Table 6.
  Status Update() override;

  /// Persists mode + options, the model-column layout (including the
  /// binners over attributes and fanout columns) and the MADE parameters.
  /// The FOJ sampler is rebuilt deterministically from the database on
  /// load, so progressive-sampling streams match the trained instance.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<AutoregressiveEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: rebuilds sampler + id maps, leaves columns_ and made_ for
  /// Deserialize to restore from the artifact.
  AutoregressiveEstimator(const Database& db, ArTraining mode,
                          ArOptions options, DeferredInit);

  struct ModelColumn {
    enum class Kind : uint8_t { kPresence, kAttr, kUpward, kEdgeDup };
    Kind kind = Kind::kPresence;
    size_t table_idx = 0;
    std::string attr;                      // kAttr
    int attr_column_id = -1;               // kAttr: column index in the table
    int edge_idx = -1;                     // kEdgeDup
    std::unique_ptr<ColumnBinner> binner;  // null for presence
    size_t domain = 2;
  };

  void BuildColumns();
  std::vector<uint16_t> BinTuple(const std::vector<int64_t>& tuple) const;
  std::vector<std::vector<uint16_t>> DrawDataTuples(size_t count, Rng& rng)
      const;
  std::vector<std::vector<uint16_t>> DrawQueryTuples(size_t count, Rng& rng)
      const;
  void Train();

  /// Factor per constrained column (empty per_bin means unconstrained).
  double ProgressiveEstimate(
      const std::vector<std::pair<size_t, std::vector<double>>>& factors,
      Rng& rng) const;

  /// The per-column factors of an on-tree sub-plan (graph path), in model
  /// column order — the input of ProgressiveEstimate.
  std::vector<std::pair<size_t, std::vector<double>>> BuildGraphFactors(
      const QueryGraph& graph, const std::vector<bool>& table_in_s,
      const std::vector<int>& local_of_sampler) const;

  /// Maps query join edges onto tree edges; false if any edge leaves the
  /// tree.
  bool MapToTree(const Query& query, std::vector<bool>* table_in_s) const;

  /// Graph-path MapToTree: ids instead of names. Also records which local
  /// table occupies each sampler slot (-1 when absent from the mask).
  bool GraphMapToTree(const QueryGraph& graph, uint64_t mask,
                      std::vector<bool>* table_in_s,
                      std::vector<int>* local_of_sampler) const;

  /// Rebuilds the id-keyed views over the sampler's spanning tree (table id
  /// -> sampler slot; packed edge keys) — called whenever sampler_ is
  /// replaced (constructor, Update).
  void RebuildIdMaps();

  const Database& db_;
  ArTraining mode_;
  const std::vector<TrainingQuery>* training_queries_;
  ArOptions options_;
  std::unique_ptr<FojSampler> sampler_;
  // Global table id -> sampler BFS slot (-1 when the sampler's tree does
  // not cover the table).
  std::vector<int> sampler_idx_by_table_id_;
  // Parent-first packed (table_id, column_id, table_id, column_id) keys of
  // the spanning-tree edges.
  std::unordered_set<uint64_t> tree_edge_keys_;
  std::vector<ModelColumn> columns_;
  std::unique_ptr<MadeModel> made_;
  double train_seconds_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_AUTOREGRESSIVE_EST_H_
