#include "cardest/bayescard_est.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/serde.h"

namespace cardbench {

namespace {
constexpr double kLaplace = 0.1;
}  // namespace

ChowLiuTreeModel::ChowLiuTreeModel(const ExtendedTable& ext) {
  num_cols_ = ext.num_columns();
  domains_ = ext.BinDomains();
  total_rows_ = static_cast<double>(ext.num_rows());
  parent_.assign(num_cols_, -1);
  children_.assign(num_cols_, {});
  counts_.assign(num_cols_, {});
  if (num_cols_ == 0) return;

  // --- Pairwise mutual information over binned values. ---
  const size_t n = ext.num_rows();
  std::vector<std::vector<double>> mi(num_cols_,
                                      std::vector<double>(num_cols_, 0.0));
  for (size_t i = 0; i < num_cols_; ++i) {
    for (size_t j = i + 1; j < num_cols_; ++j) {
      const size_t di = domains_[i], dj = domains_[j];
      std::vector<double> joint(di * dj, 0.0), pi(di, 0.0), pj(dj, 0.0);
      for (size_t r = 0; r < n; ++r) {
        const uint16_t bi = ext.column(i).bins[r];
        const uint16_t bj = ext.column(j).bins[r];
        joint[bi * dj + bj] += 1.0;
        pi[bi] += 1.0;
        pj[bj] += 1.0;
      }
      double value = 0.0;
      const double dn = std::max(1.0, static_cast<double>(n));
      for (size_t a = 0; a < di; ++a) {
        for (size_t b = 0; b < dj; ++b) {
          const double pab = joint[a * dj + b] / dn;
          if (pab <= 0) continue;
          value += pab * std::log(pab / ((pi[a] / dn) * (pj[b] / dn)));
        }
      }
      mi[i][j] = mi[j][i] = value;
    }
  }

  // --- Maximum spanning tree (Prim). ---
  root_ = 0;
  std::vector<bool> in_tree(num_cols_, false);
  std::vector<double> best(num_cols_, -1.0);
  std::vector<int> best_from(num_cols_, -1);
  in_tree[root_] = true;
  for (size_t j = 0; j < num_cols_; ++j) {
    if (j != root_) {
      best[j] = mi[root_][j];
      best_from[j] = static_cast<int>(root_);
    }
  }
  for (size_t it = 1; it < num_cols_; ++it) {
    int pick = -1;
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!in_tree[j] && (pick < 0 || best[j] > best[static_cast<size_t>(pick)])) {
        pick = static_cast<int>(j);
      }
    }
    if (pick < 0) break;
    in_tree[static_cast<size_t>(pick)] = true;
    parent_[static_cast<size_t>(pick)] = best_from[static_cast<size_t>(pick)];
    children_[static_cast<size_t>(best_from[static_cast<size_t>(pick)])]
        .push_back(static_cast<size_t>(pick));
    for (size_t j = 0; j < num_cols_; ++j) {
      if (!in_tree[j] && mi[static_cast<size_t>(pick)][j] > best[j]) {
        best[j] = mi[static_cast<size_t>(pick)][j];
        best_from[j] = pick;
      }
    }
  }

  // Canonical child order (ascending column index). Inference multiplies
  // child messages in this order, and Deserialize rebuilds children_ from
  // parent_ in column order — keeping both identical makes a reloaded
  // model's floating-point products bit-identical to the trained one's.
  for (auto& kids : children_) std::sort(kids.begin(), kids.end());

  // --- CPT counts. ---
  for (size_t c = 0; c < num_cols_; ++c) {
    if (parent_[c] < 0) {
      counts_[c].assign(domains_[c], 0.0);
    } else {
      counts_[c].assign(domains_[static_cast<size_t>(parent_[c])] * domains_[c],
                        0.0);
    }
  }
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < num_cols_; ++c) {
      const uint16_t b = ext.column(c).bins[r];
      if (parent_[c] < 0) {
        counts_[c][b] += 1.0;
      } else {
        const uint16_t pb = ext.column(static_cast<size_t>(parent_[c])).bins[r];
        counts_[c][pb * domains_[c] + b] += 1.0;
      }
    }
  }
}

double ChowLiuTreeModel::NodeMessage(
    size_t node,
    const std::vector<const std::vector<double>*>& factor_of_col,
    std::vector<double>* out_msg) const {
  // Returns the message of `node` to its parent as a vector over the
  // parent's bins: m(b_p) = sum_b P(b|b_p) phi(b) prod child messages(b).
  // For the root (out_msg == nullptr) returns the scalar expectation.
  const size_t dom = domains_[node];

  // Subtree pruning: an all-ones subtree contributes exactly 1.
  std::vector<double> phi(dom, 1.0);
  bool has_factor = factor_of_col[node] != nullptr;
  if (has_factor) phi = *factor_of_col[node];
  std::vector<std::vector<double>> child_msgs;
  for (size_t child : children_[node]) {
    std::vector<double> msg;
    (void)NodeMessage(child, factor_of_col, &msg);
    if (!msg.empty()) {
      child_msgs.push_back(std::move(msg));
      has_factor = true;
    }
  }
  if (!has_factor) {
    if (out_msg != nullptr) out_msg->clear();  // identity message
    return 1.0;
  }
  for (const auto& msg : child_msgs) {
    for (size_t b = 0; b < dom; ++b) phi[b] *= msg[b];
  }

  if (parent_[node] < 0) {
    // Root: expectation under the smoothed marginal.
    double total = 0.0, mass = 0.0;
    for (size_t b = 0; b < dom; ++b) {
      const double c = counts_[node][b] + kLaplace;
      total += c * phi[b];
      mass += c;
    }
    return mass > 0 ? total / mass : 0.0;
  }

  const size_t pdom = domains_[static_cast<size_t>(parent_[node])];
  out_msg->assign(pdom, 0.0);
  for (size_t pb = 0; pb < pdom; ++pb) {
    double total = 0.0, mass = 0.0;
    for (size_t b = 0; b < dom; ++b) {
      const double c = counts_[node][pb * dom + b] + kLaplace;
      total += c * phi[b];
      mass += c;
    }
    (*out_msg)[pb] = mass > 0 ? total / mass : 1.0;
  }
  return 0.0;
}

double ChowLiuTreeModel::ExpectProduct(
    const std::vector<ColumnFactor>& factors) const {
  if (num_cols_ == 0) return 1.0;
  std::vector<const std::vector<double>*> factor_of_col(num_cols_, nullptr);
  for (const auto& factor : factors) {
    CARDBENCH_CHECK(factor.col_idx < num_cols_, "factor column out of range");
    factor_of_col[factor.col_idx] = &factor.per_bin;
  }
  return NodeMessage(root_, factor_of_col, nullptr);
}

size_t ChowLiuTreeModel::ModelBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& counts : counts_) bytes += counts.size() * sizeof(double);
  bytes += parent_.size() * sizeof(int);
  return bytes;
}

void ChowLiuTreeModel::Serialize(SectionWriter& out) const {
  out.PutU64(num_cols_);
  out.PutU64(root_);
  out.PutDouble(total_rows_);
  for (size_t c = 0; c < num_cols_; ++c) {
    out.PutU64(domains_[c]);
    out.PutI64(parent_[c]);
    out.PutDoubles(counts_[c]);
  }
}

Result<std::unique_ptr<ChowLiuTreeModel>> ChowLiuTreeModel::Deserialize(
    SectionReader& in) {
  auto model = std::unique_ptr<ChowLiuTreeModel>(new ChowLiuTreeModel());
  CARDBENCH_ASSIGN_OR_RETURN(model->num_cols_, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->root_, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->total_rows_, in.GetDouble());
  if (model->num_cols_ > 0 && model->root_ >= model->num_cols_) {
    return Status::InvalidArgument("Chow-Liu root out of range");
  }
  model->domains_.resize(model->num_cols_);
  model->parent_.resize(model->num_cols_);
  model->children_.assign(model->num_cols_, {});
  model->counts_.resize(model->num_cols_);
  for (size_t c = 0; c < model->num_cols_; ++c) {
    uint64_t domain = 0;
    CARDBENCH_ASSIGN_OR_RETURN(domain, in.GetU64());
    model->domains_[c] = domain;
    int64_t parent = 0;
    CARDBENCH_ASSIGN_OR_RETURN(parent, in.GetI64());
    if (parent >= static_cast<int64_t>(model->num_cols_)) {
      return Status::InvalidArgument("Chow-Liu parent out of range");
    }
    model->parent_[c] = static_cast<int>(parent);
    CARDBENCH_ASSIGN_OR_RETURN(model->counts_[c], in.GetDoubles());
    if (parent >= 0) {
      model->children_[static_cast<size_t>(parent)].push_back(c);
    }
  }
  return model;
}

Status BayesCardEstimator::Serialize(std::ostream& out) const {
  return SerializeFanout(out, "bayescard");
}

void BayesCardEstimator::SerializeModel(const TableDistribution& model,
                                        SectionWriter& out) const {
  const auto* bn = dynamic_cast<const ChowLiuTreeModel*>(&model);
  CARDBENCH_CHECK(bn != nullptr, "BayesCard model is not a Chow-Liu tree");
  bn->Serialize(out);
}

Result<std::unique_ptr<TableDistribution>> BayesCardEstimator::LoadModelPayload(
    SectionReader& in) const {
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ChowLiuTreeModel> bn,
                             ChowLiuTreeModel::Deserialize(in));
  return std::unique_ptr<TableDistribution>(std::move(bn));
}

Result<std::unique_ptr<BayesCardEstimator>> BayesCardEstimator::Deserialize(
    const Database& db, std::istream& in) {
  auto est = std::unique_ptr<BayesCardEstimator>(
      new BayesCardEstimator(db, /*max_bins=*/48, DeferredInit{}));
  CARDBENCH_RETURN_IF_ERROR(est->LoadFanout(in, "bayescard"));
  return est;
}

void ChowLiuTreeModel::UpdateWithRows(const ExtendedTable& ext,
                                      const std::vector<size_t>& new_rows) {
  // Structure preserved; only CPT counts absorb the inserted rows.
  for (size_t r : new_rows) {
    for (size_t c = 0; c < num_cols_; ++c) {
      const uint16_t b = ext.column(c).bins[r];
      if (parent_[c] < 0) {
        counts_[c][b] += 1.0;
      } else {
        const uint16_t pb = ext.column(static_cast<size_t>(parent_[c])).bins[r];
        counts_[c][pb * domains_[c] + b] += 1.0;
      }
    }
  }
  total_rows_ += static_cast<double>(new_rows.size());
}

}  // namespace cardbench
