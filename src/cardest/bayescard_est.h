#ifndef CARDBENCH_CARDEST_BAYESCARD_EST_H_
#define CARDBENCH_CARDEST_BAYESCARD_EST_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "cardest/fanout_estimator.h"

namespace cardbench {

/// Chow–Liu tree Bayesian network over one extended table: the dependence
/// structure is the maximum-spanning tree of pairwise mutual information
/// (the construction BayesCard uses, §4.1), parameters are Laplace-smoothed
/// conditional probability tables over bins. Expectation queries run as
/// exact bottom-up sum-product over the tree (compiled variable
/// elimination). Updates add counts without touching the structure — the
/// reason BayesCard's update is near-instant and accuracy-preserving (O10).
class ChowLiuTreeModel : public TableDistribution {
 public:
  explicit ChowLiuTreeModel(const ExtendedTable& ext);

  double ExpectProduct(const std::vector<ColumnFactor>& factors) const override;
  size_t ModelBytes() const override;
  void UpdateWithRows(const ExtendedTable& ext,
                      const std::vector<size_t>& new_rows) override;

  /// Parent column of each column in the learned tree (-1 for the root).
  const std::vector<int>& parents() const { return parent_; }

  /// Writes / restores the learned structure and CPT counts.
  void Serialize(SectionWriter& out) const;
  static Result<std::unique_ptr<ChowLiuTreeModel>> Deserialize(
      SectionReader& in);

 private:
  ChowLiuTreeModel() = default;  // for Deserialize

  double NodeMessage(size_t node, const std::vector<const std::vector<double>*>&
                                       factor_of_col,
                     std::vector<double>* out_msg) const;

  size_t num_cols_ = 0;
  std::vector<size_t> domains_;
  std::vector<int> parent_;                  // -1 = root
  std::vector<std::vector<size_t>> children_;
  size_t root_ = 0;
  // CPT counts with Laplace smoothing applied at query time:
  // root: counts_[root][b]; child c: counts_[c][parent_bin * domain + b].
  std::vector<std::vector<double>> counts_;
  double total_rows_ = 0.0;
};

/// The BayesCard estimator: one Chow–Liu BN per table + the shared fanout
/// join method.
class BayesCardEstimator : public FanoutModelEstimator {
 public:
  explicit BayesCardEstimator(const Database& db, size_t max_bins = 48)
      : FanoutModelEstimator(db, max_bins) {
    TrainAll();
  }

  std::string name() const override { return "BayesCard"; }

  /// Persists all per-table BNs plus the extended-table metadata, and
  /// restores a ready-to-serve estimator without retraining — the paper's
  /// model-transfer deployment path (§4.3). The loaded estimator still
  /// supports incremental Update() (bins are recomputed lazily).
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<BayesCardEstimator>> Deserialize(
      const Database& db, std::istream& in);

 protected:
  std::unique_ptr<TableDistribution> BuildModel(
      const ExtendedTable& ext) override {
    return std::make_unique<ChowLiuTreeModel>(ext);
  }
  void SerializeModel(const TableDistribution& model,
                      SectionWriter& out) const override;
  Result<std::unique_ptr<TableDistribution>> LoadModelPayload(
      SectionReader& in) const override;

 private:
  /// Load path: constructs without training; state restored by Deserialize.
  BayesCardEstimator(const Database& db, size_t max_bins, DeferredInit tag)
      : FanoutModelEstimator(db, max_bins, tag) {}
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_BAYESCARD_EST_H_
