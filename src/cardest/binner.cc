#include "cardest/binner.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/serde.h"

namespace cardbench {

ColumnBinner::ColumnBinner(const Column& column, size_t max_bins) {
  CARDBENCH_CHECK(max_bins >= 2, "need at least the NULL bin plus one");
  std::map<Value, size_t> freq;
  size_t non_null = 0;
  for (size_t row = 0; row < column.size(); ++row) {
    if (!column.IsValid(row)) continue;
    ++freq[column.Get(row)];
    ++non_null;
  }
  total_rows_ = static_cast<double>(column.size());

  // Greedy equi-depth partition of the sorted distinct values.
  const size_t value_bins =
      std::max<size_t>(1, std::min(max_bins - 1, freq.size()));
  const double target = static_cast<double>(non_null) /
                        static_cast<double>(value_bins);
  std::vector<std::vector<BinValue>> bins;
  std::vector<BinValue> current;
  double acc = 0.0;
  for (const auto& [value, count] : freq) {
    current.push_back({value, count});
    acc += static_cast<double>(count);
    if (acc >= target && bins.size() + 1 < value_bins) {
      bins.push_back(std::move(current));
      current.clear();
      acc = 0.0;
    }
  }
  if (!current.empty()) bins.push_back(std::move(current));
  if (bins.empty()) bins.push_back({});  // all-NULL column

  starts_.resize(bins.size());
  ends_.resize(bins.size());
  for (size_t i = 0; i < bins.size(); ++i) {
    starts_[i] = bins[i].empty() ? 0 : bins[i].front().value;
    ends_[i] = bins[i].empty() ? 0 : bins[i].back().value;
  }
  bin_values_ = std::move(bins);

  means_.assign(num_bins(), 0.0);
  masses_.assign(num_bins(), 0.0);
  masses_[0] = total_rows_ - static_cast<double>(non_null);
  for (size_t b = 0; b < bin_values_.size(); ++b) {
    double sum = 0.0, mass = 0.0;
    for (const auto& bv : bin_values_[b]) {
      sum += static_cast<double>(bv.value) * static_cast<double>(bv.count);
      mass += static_cast<double>(bv.count);
    }
    masses_[b + 1] = mass;
    means_[b + 1] = mass > 0 ? sum / mass : 0.0;
  }
}

uint16_t ColumnBinner::BinOf(std::optional<Value> v) const {
  if (!v.has_value()) return 0;
  // Last bin whose start is <= v (values below the first start clamp to
  // bin 1, above the last end to the last bin).
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), *v);
  const size_t idx =
      it == starts_.begin() ? 0 : static_cast<size_t>(it - starts_.begin()) - 1;
  return static_cast<uint16_t>(idx + 1);
}

double ColumnBinner::RangeOverlap(uint16_t bin, const ValueRange& range) const {
  if (bin == 0) return 0.0;
  const auto& values = bin_values_[bin - 1];
  if (masses_[bin] <= 0) return 0.0;
  double pass = 0.0;
  for (const auto& bv : values) {
    if (range.Contains(bv.value)) pass += static_cast<double>(bv.count);
  }
  return pass / masses_[bin];
}

double ColumnBinner::EqualFraction(uint16_t bin, Value v) const {
  if (bin == 0 || masses_[bin] <= 0) return 0.0;
  const auto& values = bin_values_[bin - 1];
  const auto it = std::lower_bound(
      values.begin(), values.end(), v,
      [](const BinValue& bv, Value target) { return bv.value < target; });
  if (it == values.end() || it->value != v) return 0.0;
  return static_cast<double>(it->count) / masses_[bin];
}

std::vector<double> ColumnBinner::PredicateFractions(
    const std::vector<Predicate>& preds) const {
  std::vector<double> fractions(num_bins(), 1.0);
  if (preds.empty()) return fractions;
  fractions[0] = 0.0;  // NULL satisfies nothing

  ValueRange range;
  std::vector<Value> excluded;
  for (const auto& pred : preds) {
    if (pred.op == CompareOp::kNeq) {
      excluded.push_back(pred.value);
    } else {
      range.Apply(pred.op, pred.value);
    }
  }
  for (uint16_t b = 1; b < num_bins(); ++b) {
    double frac = RangeOverlap(b, range);
    for (Value v : excluded) {
      if (range.Contains(v)) frac -= EqualFraction(b, v);
    }
    fractions[b] = std::max(0.0, frac);
  }
  return fractions;
}

double ColumnBinner::BinInverseMean(uint16_t bin) const {
  if (bin == 0 || masses_[bin] <= 0) return 1.0;
  double total = 0.0;
  for (const auto& bv : bin_values_[bin - 1]) {
    total += static_cast<double>(bv.count) /
             std::max<double>(1.0, static_cast<double>(bv.value));
  }
  return total / masses_[bin];
}

double ColumnBinner::BinMass(uint16_t bin) const {
  return total_rows_ > 0 ? masses_[bin] / total_rows_ : 0.0;
}

void ColumnBinner::Refresh(const Column& column) {
  // Fixed boundaries; recount masses, means and per-bin value counts.
  for (auto& bin : bin_values_) {
    for (auto& bv : bin) bv.count = 0;
  }
  std::vector<std::map<Value, size_t>> extras(bin_values_.size());
  std::fill(masses_.begin(), masses_.end(), 0.0);
  total_rows_ = static_cast<double>(column.size());
  for (size_t row = 0; row < column.size(); ++row) {
    if (!column.IsValid(row)) {
      masses_[0] += 1.0;
      continue;
    }
    const Value v = column.Get(row);
    const uint16_t bin = BinOf(v);
    masses_[bin] += 1.0;
    auto& values = bin_values_[bin - 1];
    const auto it = std::lower_bound(
        values.begin(), values.end(), v,
        [](const BinValue& bv, Value target) { return bv.value < target; });
    if (it != values.end() && it->value == v) {
      ++it->count;
    } else {
      ++extras[bin - 1][v];  // unseen value; merged below
    }
  }
  for (size_t b = 0; b < bin_values_.size(); ++b) {
    if (extras[b].empty()) continue;
    for (const auto& [value, count] : extras[b]) {
      bin_values_[b].push_back({value, count});
    }
    std::sort(bin_values_[b].begin(), bin_values_[b].end(),
              [](const BinValue& x, const BinValue& y) {
                return x.value < y.value;
              });
  }
  for (size_t b = 0; b < bin_values_.size(); ++b) {
    double sum = 0.0, mass = 0.0;
    for (const auto& bv : bin_values_[b]) {
      sum += static_cast<double>(bv.value) * static_cast<double>(bv.count);
      mass += static_cast<double>(bv.count);
    }
    means_[b + 1] = mass > 0 ? sum / mass : 0.0;
  }
}

void ColumnBinner::Serialize(SectionWriter& out) const {
  out.PutU64(bin_values_.size());
  out.PutDouble(total_rows_);
  out.PutDouble(masses_[0]);  // NULL-bin mass
  for (size_t b = 0; b < bin_values_.size(); ++b) {
    out.PutI64(starts_[b]);
    out.PutI64(ends_[b]);
    out.PutU64(bin_values_[b].size());
    for (const auto& bv : bin_values_[b]) {
      out.PutI64(bv.value);
      out.PutU64(bv.count);
    }
  }
}

Result<ColumnBinner> ColumnBinner::Deserialize(SectionReader& in) {
  ColumnBinner binner;
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_value_bins, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(binner.total_rows_, in.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(double null_mass, in.GetDouble());
  binner.starts_.resize(num_value_bins);
  binner.ends_.resize(num_value_bins);
  binner.bin_values_.resize(num_value_bins);
  binner.means_.assign(num_value_bins + 1, 0.0);
  binner.masses_.assign(num_value_bins + 1, 0.0);
  binner.masses_[0] = null_mass;
  for (size_t b = 0; b < num_value_bins; ++b) {
    CARDBENCH_ASSIGN_OR_RETURN(binner.starts_[b], in.GetI64());
    CARDBENCH_ASSIGN_OR_RETURN(binner.ends_[b], in.GetI64());
    CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_values, in.GetU64());
    binner.bin_values_[b].resize(num_values);
    // Masses and means are derived state; recomputing them from the stored
    // value counts keeps the payload minimal and cannot drift (counts are
    // integers, and the summation order below matches the builder's).
    double sum = 0.0, mass = 0.0;
    for (size_t v = 0; v < num_values; ++v) {
      CARDBENCH_ASSIGN_OR_RETURN(binner.bin_values_[b][v].value, in.GetI64());
      CARDBENCH_ASSIGN_OR_RETURN(uint64_t count, in.GetU64());
      binner.bin_values_[b][v].count = count;
      sum += static_cast<double>(binner.bin_values_[b][v].value) *
             static_cast<double>(count);
      mass += static_cast<double>(count);
    }
    binner.masses_[b + 1] = mass;
    binner.means_[b + 1] = mass > 0 ? sum / mass : 0.0;
  }
  return binner;
}

size_t ColumnBinner::MemoryBytes() const {
  size_t bytes = sizeof(*this) +
                 (starts_.size() + ends_.size()) * sizeof(Value) +
                 (means_.size() + masses_.size()) * sizeof(double);
  for (const auto& bin : bin_values_) bytes += bin.size() * sizeof(BinValue);
  return bytes;
}

}  // namespace cardbench
