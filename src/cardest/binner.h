#ifndef CARDBENCH_CARDEST_BINNER_H_
#define CARDBENCH_CARDEST_BINNER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "storage/column.h"

namespace cardbench {

class SectionWriter;
class SectionReader;

/// Equi-depth discretizer for one column. Bin 0 is reserved for NULL; bins
/// 1..num_bins-1 partition the sorted distinct values so each holds roughly
/// equal row mass. Every discrete model in the estimator zoo (Bayesian
/// networks, SPNs, FSPNs, autoregressive MADE) runs on these bins, and
/// selectivity math uses per-bin value counts for partial-overlap fractions.
class ColumnBinner {
 public:
  /// Builds at most `max_bins` bins (including the NULL bin) over `column`.
  ColumnBinner(const Column& column, size_t max_bins);

  size_t num_bins() const { return static_cast<size_t>(starts_.size()) + 1; }

  /// Bin of a value; nullopt (NULL) maps to bin 0.
  uint16_t BinOf(std::optional<Value> v) const;

  /// Mean value of bin b's rows (0 for the NULL bin). Used as the
  /// representative when a model needs E[column] per bin (fanout columns).
  double BinMean(uint16_t bin) const { return means_[bin]; }

  /// Mean of 1/max(1, value) over bin b's rows (1 for the NULL bin). The
  /// correct per-bin representative for inverse-fanout factors: using
  /// 1/BinMean instead would underestimate E[1/X] badly on skewed bins
  /// (Jensen), which is exactly what NeuroCard's scaling columns divide by.
  double BinInverseMean(uint16_t bin) const;

  /// Fraction of bin b's row mass admitted by `range` (0 for the NULL bin).
  double RangeOverlap(uint16_t bin, const ValueRange& range) const;

  /// Fraction of bin b's row mass equal to `v`.
  double EqualFraction(uint16_t bin, Value v) const;

  /// Per-bin fraction of row mass passing a predicate conjunction (folds
  /// ranges and <> predicates). Entry 0 (NULL bin) is 0 when any predicate
  /// exists, 1 otherwise.
  std::vector<double> PredicateFractions(
      const std::vector<Predicate>& preds) const;

  /// Fraction of the column's total row mass (including NULLs) in bin b.
  double BinMass(uint16_t bin) const;

  /// Incorporates newly appended rows of the same column without changing
  /// bin boundaries: updates per-bin masses and means (model-update path).
  void Refresh(const Column& column);

  size_t MemoryBytes() const;

  /// Appends the binner (bins, boundaries, per-bin value counts) to a serde
  /// section and restores it. Serialization covers everything EstimateCard
  /// needs, enabling model transfer without the source data (§4.3's
  /// "convenient to transfer and deploy").
  void Serialize(SectionWriter& out) const;
  static Result<ColumnBinner> Deserialize(SectionReader& in);

 private:
  ColumnBinner() = default;  // for Deserialize

  struct BinValue {
    Value value;
    size_t count;
  };

  // Boundary starts: bin i+1 covers values in [starts_[i], ends_[i]].
  std::vector<Value> starts_;
  std::vector<Value> ends_;
  // Sorted (value, count) per bin for overlap fractions.
  std::vector<std::vector<BinValue>> bin_values_;
  std::vector<double> means_;   // per bin (index 0 = NULL bin)
  std::vector<double> masses_;  // per bin row counts
  double total_rows_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_BINNER_H_
