#include "cardest/deepdb_est.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/serde.h"
#include "ml/clustering.h"

namespace cardbench {

namespace {
constexpr double kLeafSmoothing = 0.05;
}  // namespace

SpnModel::SpnModel(const ExtendedTable& ext, const SpnOptions& options)
    : options_(options), num_cols_(ext.num_columns()) {
  Rng rng(options_.seed);
  std::vector<size_t> rows(ext.num_rows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  std::vector<size_t> cols(num_cols_);
  for (size_t c = 0; c < cols.size(); ++c) cols[c] = c;
  if (ext.num_rows() == 0) {
    // Degenerate empty table: a single uniform leaf.
    root_ = MakeLeaf(ext, rows, 0, 0, 0);
    return;
  }
  root_ = Learn(ext, rows, 0, rows.size(), std::move(cols), rng, 0);
}

size_t SpnModel::MakeLeaf(const ExtendedTable& ext,
                          const std::vector<size_t>& rows, size_t begin,
                          size_t end, size_t col) {
  Node leaf;
  leaf.type = Node::Type::kLeaf;
  leaf.cols = {col};
  leaf.histogram.assign(ext.column(col).binner->num_bins(), 0.0);
  for (size_t i = begin; i < end; ++i) {
    leaf.histogram[ext.column(col).bins[rows[i]]] += 1.0;
  }
  leaf.total = static_cast<double>(end - begin);
  nodes_.push_back(std::move(leaf));
  return nodes_.size() - 1;
}

size_t SpnModel::MakeMultiLeaf(const ExtendedTable& ext,
                               const std::vector<size_t>& rows, size_t begin,
                               size_t end, std::vector<size_t> cols) {
  Node leaf;
  leaf.type = Node::Type::kMultiLeaf;
  leaf.cols = std::move(cols);
  for (size_t i = begin; i < end; ++i) {
    std::vector<uint16_t> key(leaf.cols.size());
    for (size_t k = 0; k < leaf.cols.size(); ++k) {
      key[k] = ext.column(leaf.cols[k]).bins[rows[i]];
    }
    leaf.joint[key] += 1.0;
  }
  leaf.total = static_cast<double>(end - begin);
  nodes_.push_back(std::move(leaf));
  return nodes_.size() - 1;
}

size_t SpnModel::Learn(const ExtendedTable& ext, std::vector<size_t>& rows,
                       size_t begin, size_t end, std::vector<size_t> cols,
                       Rng& rng, size_t depth) {
  const size_t n = end - begin;
  const size_t min_slice = std::max(
      options_.min_slice_rows,
      static_cast<size_t>(options_.min_slice_fraction *
                          static_cast<double>(ext.num_rows())));

  if (cols.size() == 1) return MakeLeaf(ext, rows, begin, end, cols[0]);

  // Too small to split further: assume independence (naive factorization).
  auto naive_product = [&]() {
    Node product;
    product.type = Node::Type::kProduct;
    std::vector<size_t> children;
    for (size_t col : cols) children.push_back(MakeLeaf(ext, rows, begin, end, col));
    product.children = std::move(children);
    nodes_.push_back(std::move(product));
    return nodes_.size() - 1;
  };
  if (n < 2 * min_slice || depth > 24) return naive_product();

  // Pairwise dependence on a row subsample.
  const size_t sample_n = std::min(n, options_.dependence_sample);
  std::vector<std::vector<double>> feature(cols.size(),
                                           std::vector<double>(sample_n));
  const size_t stride = std::max<size_t>(1, n / sample_n);
  for (size_t c = 0; c < cols.size(); ++c) {
    for (size_t s = 0; s < sample_n; ++s) {
      feature[c][s] = static_cast<double>(
          ext.column(cols[c]).bins[rows[begin + s * stride]]);
    }
  }
  std::vector<std::vector<double>> dep(cols.size(),
                                       std::vector<double>(cols.size(), 0.0));
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      dep[i][j] = dep[j][i] = DependenceScore(feature[i], feature[j]);
    }
  }

  // FSPN extension: carve out highly correlated groups as joint
  // multi-leaves (FLAT's factorize + multi-leaf, simplified).
  if (options_.enable_multi_leaf) {
    std::vector<bool> taken(cols.size(), false);
    std::vector<std::vector<size_t>> groups;  // indexes into cols
    for (size_t i = 0; i < cols.size(); ++i) {
      if (taken[i]) continue;
      std::vector<size_t> group = {i};
      for (size_t j = i + 1;
           j < cols.size() && group.size() < options_.max_multi_leaf_cols;
           ++j) {
        if (taken[j]) continue;
        bool high_with_all = true;
        for (size_t g : group) {
          if (dep[g][j] < options_.high_correlation_threshold) {
            high_with_all = false;
            break;
          }
        }
        if (high_with_all) group.push_back(j);
      }
      if (group.size() >= 2) {
        for (size_t g : group) taken[g] = true;
        groups.push_back(std::move(group));
      }
    }
    if (!groups.empty()) {
      std::vector<size_t> children;
      for (const auto& group : groups) {
        std::vector<size_t> group_cols;
        for (size_t g : group) group_cols.push_back(cols[g]);
        children.push_back(
            MakeMultiLeaf(ext, rows, begin, end, std::move(group_cols)));
      }
      std::vector<size_t> rest;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (!taken[i]) rest.push_back(cols[i]);
      }
      if (!rest.empty()) {
        if (rest.size() == 1) {
          children.push_back(MakeLeaf(ext, rows, begin, end, rest[0]));
        } else {
          children.push_back(
              Learn(ext, rows, begin, end, std::move(rest), rng, depth + 1));
        }
      }
      Node product;
      product.type = Node::Type::kProduct;
      product.children = std::move(children);
      nodes_.push_back(std::move(product));
      return nodes_.size() - 1;
    }
  }

  // Independence split: connected components under dep >= threshold.
  {
    std::vector<int> comp(cols.size(), -1);
    int num_comp = 0;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (comp[i] >= 0) continue;
      comp[i] = num_comp;
      std::vector<size_t> stack = {i};
      while (!stack.empty()) {
        const size_t at = stack.back();
        stack.pop_back();
        for (size_t j = 0; j < cols.size(); ++j) {
          if (comp[j] < 0 && dep[at][j] >= options_.independence_threshold) {
            comp[j] = num_comp;
            stack.push_back(j);
          }
        }
      }
      ++num_comp;
    }
    if (num_comp > 1) {
      Node product;
      product.type = Node::Type::kProduct;
      std::vector<size_t> children;
      for (int g = 0; g < num_comp; ++g) {
        std::vector<size_t> group;
        for (size_t i = 0; i < cols.size(); ++i) {
          if (comp[i] == g) group.push_back(cols[i]);
        }
        if (group.size() == 1) {
          children.push_back(MakeLeaf(ext, rows, begin, end, group[0]));
        } else {
          children.push_back(
              Learn(ext, rows, begin, end, std::move(group), rng, depth + 1));
        }
      }
      product.children = std::move(children);
      nodes_.push_back(std::move(product));
      return nodes_.size() - 1;
    }
  }

  // Sum split: two-means row clustering.
  {
    std::vector<std::vector<double>> points(n,
                                            std::vector<double>(cols.size()));
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < cols.size(); ++c) {
        points[i][c] =
            static_cast<double>(ext.column(cols[c]).bins[rows[begin + i]]);
      }
    }
    const std::vector<int> labels = TwoMeans(points, rng);
    // Partition rows[begin,end) stably by label.
    std::vector<size_t> left, right;
    for (size_t i = 0; i < n; ++i) {
      (labels[i] == 0 ? left : right).push_back(rows[begin + i]);
    }
    if (left.empty() || right.empty()) return naive_product();
    std::copy(left.begin(), left.end(), rows.begin() + static_cast<long>(begin));
    std::copy(right.begin(), right.end(),
              rows.begin() + static_cast<long>(begin + left.size()));
    const size_t mid = begin + left.size();
    Node sum;
    sum.type = Node::Type::kSum;
    sum.weights = {static_cast<double>(left.size()),
                   static_cast<double>(right.size())};
    const size_t a = Learn(ext, rows, begin, mid, cols, rng, depth + 1);
    const size_t b = Learn(ext, rows, mid, end, cols, rng, depth + 1);
    sum.children = {a, b};
    nodes_.push_back(std::move(sum));
    return nodes_.size() - 1;
  }
}

double SpnModel::Eval(
    size_t node,
    const std::vector<const std::vector<double>*>& factor_of_col) const {
  const Node& nd = nodes_[node];
  switch (nd.type) {
    case Node::Type::kLeaf: {
      const std::vector<double>* factor = factor_of_col[nd.cols[0]];
      if (factor == nullptr) return 1.0;
      const double denom =
          nd.total + kLeafSmoothing * static_cast<double>(nd.histogram.size());
      if (denom <= 0) return 0.0;
      double total = 0.0;
      for (size_t b = 0; b < nd.histogram.size(); ++b) {
        total += (nd.histogram[b] + kLeafSmoothing) * (*factor)[b];
      }
      return total / denom;
    }
    case Node::Type::kMultiLeaf: {
      bool any = false;
      for (size_t col : nd.cols) any |= factor_of_col[col] != nullptr;
      if (!any) return 1.0;
      if (nd.total <= 0) return 0.0;
      double total = 0.0;
      for (const auto& [key, count] : nd.joint) {
        double phi = 1.0;
        for (size_t k = 0; k < nd.cols.size(); ++k) {
          const std::vector<double>* factor = factor_of_col[nd.cols[k]];
          if (factor != nullptr) phi *= (*factor)[key[k]];
        }
        total += count * phi;
      }
      return total / nd.total;
    }
    case Node::Type::kProduct: {
      double product = 1.0;
      for (size_t child : nd.children) {
        product *= Eval(child, factor_of_col);
      }
      return product;
    }
    case Node::Type::kSum: {
      double total_weight = 0.0;
      for (double w : nd.weights) total_weight += w;
      if (total_weight <= 0) return 0.0;
      double total = 0.0;
      for (size_t i = 0; i < nd.children.size(); ++i) {
        total += nd.weights[i] * Eval(nd.children[i], factor_of_col);
      }
      return total / total_weight;
    }
  }
  return 0.0;
}

double SpnModel::ExpectProduct(const std::vector<ColumnFactor>& factors) const {
  std::vector<const std::vector<double>*> factor_of_col(num_cols_, nullptr);
  for (const auto& factor : factors) {
    CARDBENCH_CHECK(factor.col_idx < num_cols_, "factor column out of range");
    factor_of_col[factor.col_idx] = &factor.per_bin;
  }
  return Eval(root_, factor_of_col);
}

double SpnModel::PointLikelihood(size_t node,
                                 const std::vector<uint16_t>& row) const {
  const Node& nd = nodes_[node];
  switch (nd.type) {
    case Node::Type::kLeaf: {
      const double denom =
          nd.total + kLeafSmoothing * static_cast<double>(nd.histogram.size());
      return denom > 0 ? (nd.histogram[row[nd.cols[0]]] + kLeafSmoothing) / denom
                       : 0.0;
    }
    case Node::Type::kMultiLeaf: {
      if (nd.total <= 0) return 0.0;
      std::vector<uint16_t> key(nd.cols.size());
      for (size_t k = 0; k < nd.cols.size(); ++k) key[k] = row[nd.cols[k]];
      auto it = nd.joint.find(key);
      const double count = it == nd.joint.end() ? 0.0 : it->second;
      return (count + kLeafSmoothing) / (nd.total + kLeafSmoothing);
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (size_t child : nd.children) p *= PointLikelihood(child, row);
      return p;
    }
    case Node::Type::kSum: {
      double total_weight = 0.0;
      for (double w : nd.weights) total_weight += w;
      if (total_weight <= 0) return 0.0;
      double p = 0.0;
      for (size_t i = 0; i < nd.children.size(); ++i) {
        p += nd.weights[i] / total_weight *
             PointLikelihood(nd.children[i], row);
      }
      return p;
    }
  }
  return 0.0;
}

void SpnModel::Route(size_t node, const std::vector<uint16_t>& row) {
  Node& nd = nodes_[node];
  switch (nd.type) {
    case Node::Type::kLeaf:
      nd.histogram[row[nd.cols[0]]] += 1.0;
      nd.total += 1.0;
      return;
    case Node::Type::kMultiLeaf: {
      std::vector<uint16_t> key(nd.cols.size());
      for (size_t k = 0; k < nd.cols.size(); ++k) key[k] = row[nd.cols[k]];
      nd.joint[key] += 1.0;
      nd.total += 1.0;
      return;
    }
    case Node::Type::kProduct:
      for (size_t child : nd.children) Route(child, row);
      return;
    case Node::Type::kSum: {
      // Route to the child that explains the row best and grow its weight —
      // structure is frozen, so clusters drift and accuracy decays (the
      // update-accuracy drop the paper observes for SPN/FSPN, O10).
      size_t best = 0;
      double best_p = -1.0;
      for (size_t i = 0; i < nd.children.size(); ++i) {
        const double p = PointLikelihood(nd.children[i], row);
        if (p > best_p) {
          best_p = p;
          best = i;
        }
      }
      nd.weights[best] += 1.0;
      const size_t child = nd.children[best];
      Route(child, row);
      return;
    }
  }
}

void SpnModel::UpdateWithRows(const ExtendedTable& ext,
                              const std::vector<size_t>& new_rows) {
  for (size_t r : new_rows) {
    Route(root_, ext.BinnedRow(r));
  }
}

size_t SpnModel::ModelBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& nd : nodes_) {
    bytes += sizeof(nd);
    bytes += nd.children.size() * sizeof(size_t);
    bytes += nd.weights.size() * sizeof(double);
    bytes += nd.cols.size() * sizeof(size_t);
    bytes += nd.histogram.size() * sizeof(double);
    for (const auto& [key, count] : nd.joint) {
      bytes += key.size() * sizeof(uint16_t) + sizeof(double) + 32;
    }
  }
  return bytes;
}

void SpnModel::Serialize(SectionWriter& out) const {
  out.PutDouble(options_.independence_threshold);
  out.PutDouble(options_.high_correlation_threshold);
  out.PutDouble(options_.min_slice_fraction);
  out.PutU64(options_.min_slice_rows);
  out.PutU64(options_.dependence_sample);
  out.PutBool(options_.enable_multi_leaf);
  out.PutU64(options_.max_multi_leaf_cols);
  out.PutU64(options_.seed);
  out.PutU64(num_cols_);
  out.PutU64(root_);
  out.PutU64(nodes_.size());
  for (const auto& nd : nodes_) {
    out.PutU32(static_cast<uint32_t>(nd.type));
    out.PutU64s(std::vector<uint64_t>(nd.children.begin(), nd.children.end()));
    out.PutDoubles(nd.weights);
    out.PutU64s(std::vector<uint64_t>(nd.cols.begin(), nd.cols.end()));
    out.PutDoubles(nd.histogram);
    out.PutU64(nd.joint.size());
    for (const auto& [key, count] : nd.joint) {
      out.PutU16s(key);
      out.PutDouble(count);
    }
    out.PutDouble(nd.total);
  }
}

Result<std::unique_ptr<SpnModel>> SpnModel::Deserialize(SectionReader& in) {
  auto model = std::unique_ptr<SpnModel>(new SpnModel());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.independence_threshold,
                             in.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.high_correlation_threshold,
                             in.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.min_slice_fraction,
                             in.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.min_slice_rows, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.dependence_sample, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.enable_multi_leaf, in.GetBool());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.max_multi_leaf_cols, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->options_.seed, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->num_cols_, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(model->root_, in.GetU64());
  uint64_t num_nodes = 0;
  CARDBENCH_ASSIGN_OR_RETURN(num_nodes, in.GetU64());
  if (num_nodes == 0 || model->root_ >= num_nodes) {
    return Status::InvalidArgument("SPN root out of range");
  }
  model->nodes_.resize(num_nodes);
  for (auto& nd : model->nodes_) {
    uint32_t type_raw = 0;
    CARDBENCH_ASSIGN_OR_RETURN(type_raw, in.GetU32());
    if (type_raw > static_cast<uint32_t>(Node::Type::kMultiLeaf)) {
      return Status::InvalidArgument("unknown SPN node type");
    }
    nd.type = static_cast<Node::Type>(type_raw);
    std::vector<uint64_t> children;
    CARDBENCH_ASSIGN_OR_RETURN(children, in.GetU64s());
    nd.children.assign(children.begin(), children.end());
    for (size_t child : nd.children) {
      if (child >= num_nodes) {
        return Status::InvalidArgument("SPN child index out of range");
      }
    }
    CARDBENCH_ASSIGN_OR_RETURN(nd.weights, in.GetDoubles());
    std::vector<uint64_t> cols;
    CARDBENCH_ASSIGN_OR_RETURN(cols, in.GetU64s());
    nd.cols.assign(cols.begin(), cols.end());
    CARDBENCH_ASSIGN_OR_RETURN(nd.histogram, in.GetDoubles());
    uint64_t joint_size = 0;
    CARDBENCH_ASSIGN_OR_RETURN(joint_size, in.GetU64());
    for (uint64_t j = 0; j < joint_size; ++j) {
      std::vector<uint16_t> key;
      CARDBENCH_ASSIGN_OR_RETURN(key, in.GetU16s());
      double count = 0.0;
      CARDBENCH_ASSIGN_OR_RETURN(count, in.GetDouble());
      nd.joint[std::move(key)] = count;
    }
    CARDBENCH_ASSIGN_OR_RETURN(nd.total, in.GetDouble());
  }
  return model;
}

Status DeepDbEstimator::Serialize(std::ostream& out) const {
  return SerializeFanout(out, "deepdb");
}

void DeepDbEstimator::SerializeModel(const TableDistribution& model,
                                     SectionWriter& out) const {
  const auto* spn = dynamic_cast<const SpnModel*>(&model);
  CARDBENCH_CHECK(spn != nullptr, "DeepDB model is not an SPN");
  spn->Serialize(out);
}

Result<std::unique_ptr<TableDistribution>> DeepDbEstimator::LoadModelPayload(
    SectionReader& in) const {
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<SpnModel> spn,
                             SpnModel::Deserialize(in));
  return std::unique_ptr<TableDistribution>(std::move(spn));
}

Result<std::unique_ptr<DeepDbEstimator>> DeepDbEstimator::Deserialize(
    const Database& db, std::istream& in) {
  auto est = std::unique_ptr<DeepDbEstimator>(
      new DeepDbEstimator(db, /*max_bins=*/48, DeferredInit{}));
  CARDBENCH_RETURN_IF_ERROR(est->LoadFanout(in, "deepdb"));
  return est;
}

Status FlatEstimator::Serialize(std::ostream& out) const {
  return SerializeFanout(out, "flat");
}

void FlatEstimator::SerializeModel(const TableDistribution& model,
                                   SectionWriter& out) const {
  const auto* spn = dynamic_cast<const SpnModel*>(&model);
  CARDBENCH_CHECK(spn != nullptr, "FLAT model is not an FSPN");
  spn->Serialize(out);
}

Result<std::unique_ptr<TableDistribution>> FlatEstimator::LoadModelPayload(
    SectionReader& in) const {
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<SpnModel> spn,
                             SpnModel::Deserialize(in));
  return std::unique_ptr<TableDistribution>(std::move(spn));
}

Result<std::unique_ptr<FlatEstimator>> FlatEstimator::Deserialize(
    const Database& db, std::istream& in) {
  auto est = std::unique_ptr<FlatEstimator>(
      new FlatEstimator(db, /*max_bins=*/48, DeferredInit{}));
  CARDBENCH_RETURN_IF_ERROR(est->LoadFanout(in, "flat"));
  return est;
}

}  // namespace cardbench
