#ifndef CARDBENCH_CARDEST_DEEPDB_EST_H_
#define CARDBENCH_CARDEST_DEEPDB_EST_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "cardest/fanout_estimator.h"
#include "common/rng.h"

namespace cardbench {

/// Learning knobs shared by the SPN (DeepDB) and FSPN (FLAT) learners.
struct SpnOptions {
  /// RDC-style dependence threshold below which column groups are treated
  /// as independent (paper: 0.3).
  double independence_threshold = 0.3;
  /// Dependence threshold above which FLAT factorizes a group into a joint
  /// multi-leaf (paper: 0.7). Ignored by the plain SPN.
  double high_correlation_threshold = 0.7;
  /// Do not split a slice holding less than this fraction of the table
  /// (paper: 1%).
  double min_slice_fraction = 0.01;
  size_t min_slice_rows = 64;
  /// Rows subsampled for dependence tests (speed).
  size_t dependence_sample = 2000;
  /// Enables factorize/multi-leaf nodes (the FSPN extension).
  bool enable_multi_leaf = false;
  /// Cap on multi-leaf group size.
  size_t max_multi_leaf_cols = 4;
  uint64_t seed = 1234;
};

/// Sum-product network over one extended table, learned top-down à la
/// DeepDB: product nodes from independence tests, sum nodes from two-means
/// row clustering, histogram leaves. With `enable_multi_leaf` it becomes
/// the simplified FSPN of FLAT: highly correlated column groups are kept
/// joint in sparse multi-leaves instead of being split further.
class SpnModel : public TableDistribution {
 public:
  SpnModel(const ExtendedTable& ext, const SpnOptions& options);

  double ExpectProduct(const std::vector<ColumnFactor>& factors) const override;
  size_t ModelBytes() const override;
  void UpdateWithRows(const ExtendedTable& ext,
                      const std::vector<size_t>& new_rows) override;

  size_t num_nodes() const { return nodes_.size(); }

  /// Writes / restores the learned structure: options, node list (type,
  /// children, weights, scopes, histograms, multi-leaf joints).
  void Serialize(SectionWriter& out) const;
  static Result<std::unique_ptr<SpnModel>> Deserialize(SectionReader& in);

 private:
  SpnModel() = default;  // for Deserialize

  struct Node {
    enum class Type : uint8_t { kSum, kProduct, kLeaf, kMultiLeaf };
    Type type = Type::kLeaf;
    std::vector<size_t> children;
    std::vector<double> weights;  // sum node: child row counts
    std::vector<size_t> cols;     // column scope (leaf: 1; multi-leaf: >1)
    std::vector<double> histogram;          // leaf: counts per bin
    std::map<std::vector<uint16_t>, double> joint;  // multi-leaf counts
    double total = 0.0;
  };

  size_t Learn(const ExtendedTable& ext, std::vector<size_t>& rows,
               size_t begin, size_t end, std::vector<size_t> cols, Rng& rng,
               size_t depth);
  size_t MakeLeaf(const ExtendedTable& ext, const std::vector<size_t>& rows,
                  size_t begin, size_t end, size_t col);
  size_t MakeMultiLeaf(const ExtendedTable& ext,
                       const std::vector<size_t>& rows, size_t begin,
                       size_t end, std::vector<size_t> cols);
  double Eval(size_t node,
              const std::vector<const std::vector<double>*>& factor_of_col)
      const;
  double PointLikelihood(size_t node, const std::vector<uint16_t>& row) const;
  void Route(size_t node, const std::vector<uint16_t>& row);

  SpnOptions options_;
  std::vector<Node> nodes_;
  size_t root_ = 0;
  size_t num_cols_ = 0;
};

/// The DeepDB estimator: one SPN per table + the shared fanout join method.
class DeepDbEstimator : public FanoutModelEstimator {
 public:
  explicit DeepDbEstimator(const Database& db, size_t max_bins = 48,
                           SpnOptions options = SpnOptions())
      : FanoutModelEstimator(db, max_bins), options_(options) {
    options_.enable_multi_leaf = false;
    TrainAll();
  }

  std::string name() const override { return "DeepDB"; }

  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<DeepDbEstimator>> Deserialize(
      const Database& db, std::istream& in);

 protected:
  std::unique_ptr<TableDistribution> BuildModel(
      const ExtendedTable& ext) override {
    return std::make_unique<SpnModel>(ext, options_);
  }
  void SerializeModel(const TableDistribution& model,
                      SectionWriter& out) const override;
  Result<std::unique_ptr<TableDistribution>> LoadModelPayload(
      SectionReader& in) const override;

 private:
  /// Load path: constructs without training; state restored by Deserialize.
  DeepDbEstimator(const Database& db, size_t max_bins, DeferredInit tag)
      : FanoutModelEstimator(db, max_bins, tag) {
    options_.enable_multi_leaf = false;
  }

  SpnOptions options_;
};

/// The FLAT estimator: FSPN = SPN + factorize/multi-leaf handling of highly
/// correlated column groups.
class FlatEstimator : public FanoutModelEstimator {
 public:
  explicit FlatEstimator(const Database& db, size_t max_bins = 48,
                         SpnOptions options = SpnOptions())
      : FanoutModelEstimator(db, max_bins), options_(options) {
    options_.enable_multi_leaf = true;
    TrainAll();
  }

  std::string name() const override { return "FLAT"; }

  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<FlatEstimator>> Deserialize(
      const Database& db, std::istream& in);

 protected:
  std::unique_ptr<TableDistribution> BuildModel(
      const ExtendedTable& ext) override {
    return std::make_unique<SpnModel>(ext, options_);
  }
  void SerializeModel(const TableDistribution& model,
                      SectionWriter& out) const override;
  Result<std::unique_ptr<TableDistribution>> LoadModelPayload(
      SectionReader& in) const override;

 private:
  /// Load path: constructs without training; state restored by Deserialize.
  FlatEstimator(const Database& db, size_t max_bins, DeferredInit tag)
      : FanoutModelEstimator(db, max_bins, tag) {
    options_.enable_multi_leaf = true;
  }

  SpnOptions options_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_DEEPDB_EST_H_
