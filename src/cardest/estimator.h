#ifndef CARDBENCH_CARDEST_ESTIMATOR_H_
#define CARDBENCH_CARDEST_ESTIMATOR_H_

#include <string>

#include "common/status.h"
#include "query/query.h"
#include "query/query_graph.h"

namespace cardbench {

/// The cardinality-estimator interface, the reproduction of the paper's
/// PostgreSQL integration point (§4.2): the optimizer derives the sub-plan
/// query space of each query and calls EstimateCard for every sub-plan
/// exactly as the overwritten `calc_joinrel_size_estimate` injects
/// estimates into PostgreSQL's planner. Implementations range from the
/// built-in histogram baseline to learned data-driven models.
///
/// Thread-safety contract (required by `src/service` and the harness's
/// `--threads=N` fan-out): EstimateCard is const and must be safe to call
/// concurrently from many threads on one shared instance, and deterministic
/// — the same sub-plan query always receives the same estimate regardless
/// of call order or interleaving (samplers derive their randomness from a
/// hash of the sub-plan, never from shared mutable generator state).
/// Internal memo caches are allowed but must be internally synchronized.
/// Update() is exempt: it is an exclusive-access operation and callers must
/// quiesce all concurrent EstimateCard calls around it (EstimationService
/// enforces this with a shared/exclusive lock).
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Method name as it appears in the paper's tables ("PostgreSQL",
  /// "BayesCard", "FLAT", ...).
  virtual std::string name() const = 0;

  /// Estimated COUNT(*) of the sub-plan of `graph` selected by `mask` (a
  /// *connected* table subset, as enumerated by the optimizer's DP). This is
  /// the primary dispatch: the graph carries pre-resolved table/column ids,
  /// pre-bound predicate slots and precomputed canonical keys, so no name is
  /// re-resolved per sub-plan. Never executes the query; implementations
  /// should return a non-negative finite value (the optimizer clamps >= 1).
  /// Const and thread-safe per the class-level contract.
  ///
  /// The default adapter forwards to the string-based overload on the
  /// precomputed induced sub-query, so estimators that only implement the
  /// legacy overload keep working unchanged. Exactly one of the two
  /// overloads must be overridden (the migrated estimators override both:
  /// the graph overload is the serving path, the Query overload remains the
  /// reference implementation the parity suite compares against).
  virtual double EstimateCard(const QueryGraph& graph, uint64_t mask) const {
    return EstimateCard(graph.InducedRef(mask));
  }

  /// Estimated COUNT(*) of `subquery` (a sub-plan query: subset of tables,
  /// induced joins and predicates). Never executes the query. Implementations
  /// should return a non-negative finite value; the optimizer clamps to >= 1.
  /// Const and thread-safe per the class-level contract.
  virtual double EstimateCard(const Query& subquery) const = 0;

  /// Approximate in-memory model size in bytes (paper Figure 3). Model-free
  /// methods return 0.
  virtual size_t ModelBytes() const { return 0; }

  /// Offline training / construction time in seconds (paper Figure 3).
  virtual double TrainSeconds() const { return 0.0; }

  /// Whether the method supports incremental model updates after data
  /// insertions (paper Table 6). Query-driven methods return false — they
  /// would need to re-collect and re-execute a training workload (O9).
  virtual bool SupportsUpdate() const { return false; }

  /// Incrementally refreshes the model after rows were appended to the
  /// database the estimator was built on. Only called when SupportsUpdate().
  virtual Status Update() {
    return Status::Unsupported(name() + " does not support updates");
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_ESTIMATOR_H_
