#ifndef CARDBENCH_CARDEST_ESTIMATOR_H_
#define CARDBENCH_CARDEST_ESTIMATOR_H_

#include <ostream>
#include <span>
#include <streambuf>
#include <string>
#include <vector>

#include "cardest/insertion_batch.h"
#include "common/status.h"
#include "query/query.h"
#include "query/query_graph.h"

namespace cardbench {

/// The cardinality-estimator interface, the reproduction of the paper's
/// PostgreSQL integration point (§4.2): the optimizer derives the sub-plan
/// query space of each query and calls EstimateCard for every sub-plan
/// exactly as the overwritten `calc_joinrel_size_estimate` injects
/// estimates into PostgreSQL's planner. Implementations range from the
/// built-in histogram baseline to learned data-driven models.
///
/// Thread-safety contract (required by `src/service` and the harness's
/// `--threads=N` fan-out): EstimateCard is const and must be safe to call
/// concurrently from many threads on one shared instance, and deterministic
/// — the same sub-plan query always receives the same estimate regardless
/// of call order or interleaving (samplers derive their randomness from a
/// hash of the sub-plan, never from shared mutable generator state).
/// Internal memo caches are allowed but must be internally synchronized.
/// Update() is exempt: it is an exclusive-access operation and callers must
/// quiesce all concurrent EstimateCard calls around it (EstimationService
/// enforces this with a shared/exclusive lock).
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Method name as it appears in the paper's tables ("PostgreSQL",
  /// "BayesCard", "FLAT", ...).
  virtual std::string name() const = 0;

  /// Estimated COUNT(*) of the sub-plan of `graph` selected by `mask` (a
  /// *connected* table subset, as enumerated by the optimizer's DP). This is
  /// the primary dispatch: the graph carries pre-resolved table/column ids,
  /// pre-bound predicate slots and precomputed canonical keys, so no name is
  /// re-resolved per sub-plan. Never executes the query; implementations
  /// should return a non-negative finite value (the optimizer clamps >= 1).
  /// Const and thread-safe per the class-level contract.
  ///
  /// The default adapter forwards to the string-based overload on the
  /// precomputed induced sub-query, so estimators that only implement the
  /// legacy overload keep working unchanged. Exactly one of the two
  /// overloads must be overridden (the migrated estimators override both:
  /// the graph overload is the serving path, the Query overload remains the
  /// reference implementation the parity suite compares against).
  virtual double EstimateCard(const QueryGraph& graph, uint64_t mask) const {
    return EstimateCard(graph.InducedRef(mask));
  }

  /// Estimated COUNT(*) of `subquery` (a sub-plan query: subset of tables,
  /// induced joins and predicates). Never executes the query. Implementations
  /// should return a non-negative finite value; the optimizer clamps to >= 1.
  /// Const and thread-safe per the class-level contract.
  virtual double EstimateCard(const Query& subquery) const = 0;

  /// Batch estimation: the cardinalities of every sub-plan in `masks`, in
  /// order. This is the serving entry point — the optimizer issues one call
  /// per query over graph.connected_subsets() and the service layer forwards
  /// cache misses as one (smaller) batch — so learned estimators can
  /// featurize all masks into a single matrix and run one batched GEMM, and
  /// sampling estimators can materialize per-table probes once per query.
  ///
  /// Parity contract: overrides must be *bit-identical* to calling
  /// EstimateCard(graph, mask) per element — same doubles, byte for byte.
  /// Batching may only amortize work whose per-mask arithmetic order is
  /// unchanged (row-independent GEMMs, shared read-only factor caches,
  /// per-mask hash-seeded RNG streams). batch_parity_test enforces this for
  /// the whole zoo. Const and thread-safe per the class-level contract.
  virtual std::vector<double> EstimateCards(
      const QueryGraph& graph, std::span<const uint64_t> masks) const {
    std::vector<double> out;
    out.reserve(masks.size());
    for (uint64_t mask : masks) out.push_back(EstimateCard(graph, mask));
    return out;
  }

  /// Writes the trained model as a versioned CBMD artifact (common/serde.h)
  /// to `out`, covering everything EstimateCard needs: a deserialized twin
  /// (via the registry's DeserializeEstimator) must produce bit-identical
  /// estimates for every sub-plan. Oracle/model-free methods return
  /// Unsupported and are rebuilt from the database instead of persisted.
  virtual Status Serialize(std::ostream& out) const {
    (void)out;
    return Status::Unsupported(name() + " does not support serialization");
  }

  /// Model size in bytes, defined once for the whole zoo as the size of the
  /// serialized artifact — the thing that actually ships (paper Figure 3).
  /// Methods whose Serialize is unsupported report 0.
  size_t ModelBytes() const {
    // Discards everything written to it and counts the bytes: the exact
    // artifact size without materializing the payload.
    class CountingStreambuf : public std::streambuf {
     public:
      size_t count() const { return count_; }

     protected:
      int_type overflow(int_type ch) override {
        if (ch != traits_type::eof()) ++count_;
        return ch;
      }
      std::streamsize xsputn(const char*, std::streamsize n) override {
        count_ += static_cast<size_t>(n);
        return n;
      }

     private:
      size_t count_ = 0;
    };
    CountingStreambuf counter;
    std::ostream out(&counter);
    if (!Serialize(out).ok()) return 0;
    return counter.count();
  }

  /// Offline training / construction time in seconds (paper Figure 3).
  virtual double TrainSeconds() const { return 0.0; }

  /// Whether the method supports incremental model updates after data
  /// insertions (paper Table 6). Query-driven methods return false — they
  /// would need to re-collect and re-execute a training workload (O9).
  virtual bool SupportsUpdate() const { return false; }

  /// Whether IncrementalUpdate has a genuinely incremental path — one whose
  /// cost scales with the insertion delta (or a small refresh workload),
  /// not with the full data. Defaults to SupportsUpdate() because the
  /// Update() implementations of the data-driven zoo are delta-driven or
  /// cheap rebuilds; query-driven estimators that fine-tune from
  /// `InsertionBatch::refresh_training` override this to true while keeping
  /// SupportsUpdate() false (they still cannot refresh from data alone).
  virtual bool SupportsIncrementalUpdate() const { return SupportsUpdate(); }

  /// Incrementally refreshes the model after rows were appended to the
  /// database the estimator was built on. Only called when SupportsUpdate().
  virtual Status Update() {
    return Status::Unsupported(name() + " does not support updates");
  }

  /// Refreshes the model for one applied insertion batch — the primary
  /// update entry point of the online-refresh pipeline (EstimationService::
  /// RefreshIncremental, bench_drift, bench_table6_update all call this).
  /// Exclusive-access like Update(): callers quiesce concurrent
  /// EstimateCard calls first.
  ///
  /// Estimators with a delta-aware path (sampling re-reservoir, histogram
  /// merge, warm-start boosting, fine-tune epochs) override this; the
  /// default forwards to the legacy batch-oblivious Update() when
  /// SupportsUpdate(), and otherwise answers Unsupported — the "full
  /// retrain required" flag the refresh pipeline reports per estimator.
  virtual Status IncrementalUpdate(const InsertionBatch& batch) {
    (void)batch;
    if (SupportsUpdate()) return Update();
    return Status::Unsupported(name() +
                               ": no incremental path, full retrain required");
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_ESTIMATOR_H_
