#include "cardest/extended_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"

namespace cardbench {

namespace {

/// Union-find over join endpoints.
struct EndpointSets {
  std::map<JoinEndpoint, JoinEndpoint> parent;

  JoinEndpoint Find(JoinEndpoint e) {
    if (parent.find(e) == parent.end()) parent[e] = e;
    while (!(parent[e] == e)) {
      parent[e] = parent[parent[e]];
      e = parent[e];
    }
    return e;
  }
  void Union(const JoinEndpoint& a, const JoinEndpoint& b) {
    const JoinEndpoint ra = Find(a), rb = Find(b);
    if (!(ra == rb)) parent[ra] = rb;
  }
};

/// Materializes the fanout values of (table.my_column -> other) as a
/// storage Column so the shared ColumnBinner machinery applies.
Column BuildFanoutColumn(const Database& db, const std::string& table_name,
                         const std::string& my_column,
                         const JoinEndpoint& other) {
  const Table& table = db.TableOrDie(table_name);
  const Table& other_table = db.TableOrDie(other.table);
  const Column& my_col = table.ColumnByName(my_column);
  const HashIndex& index =
      other_table.GetIndex(other_table.ColumnIndexOrDie(other.column));
  Column fanout("fanout", ColumnKind::kNumeric);
  fanout.Reserve(table.num_rows());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!my_col.IsValid(row)) {
      fanout.Append(0);
    } else {
      fanout.Append(
          static_cast<Value>(index.Lookup(my_col.Get(row)).size()));
    }
  }
  return fanout;
}

}  // namespace

std::vector<std::vector<JoinEndpoint>> JoinColumnGroups(const Database& db) {
  EndpointSets sets;
  for (const auto& rel : db.join_relations()) {
    sets.Union({rel.left_table, rel.left_column},
               {rel.right_table, rel.right_column});
  }
  std::map<JoinEndpoint, std::vector<JoinEndpoint>> groups;
  for (const auto& [endpoint, unused] : sets.parent) {
    groups[sets.Find(endpoint)].push_back(endpoint);
  }
  std::vector<std::vector<JoinEndpoint>> out;
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  return out;
}

ExtendedTable::ExtendedTable(const Database& db, const std::string& table_name,
                             size_t max_bins)
    : table_name_(table_name), max_bins_(max_bins) {
  Build(db, /*initial=*/true);
}

void ExtendedTable::Build(const Database& db, bool initial) {
  const Table& table = db.TableOrDie(table_name_);
  num_rows_ = table.num_rows();

  if (initial) {
    columns_.clear();
    attr_index_.clear();
    fanout_index_.clear();
    // Filterable attributes.
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.kind() != ColumnKind::kNumeric &&
          col.kind() != ColumnKind::kCategorical) {
        continue;
      }
      ExtColumn ext;
      ext.name = col.name();
      ext.is_fanout = false;
      ext.binner = std::make_unique<ColumnBinner>(col, max_bins_);
      attr_index_[col.name()] = columns_.size();
      columns_.push_back(std::move(ext));
    }
    // Fanout columns for every join-compatible pair touching this table.
    for (const auto& group : JoinColumnGroups(db)) {
      for (const auto& mine : group) {
        if (mine.table != table_name_) continue;
        for (const auto& other : group) {
          if (other.table == table_name_) continue;
          ExtColumn ext;
          ext.name = "fanout:" + mine.column + "->" + other.table + "." +
                     other.column;
          ext.is_fanout = true;
          ext.fanout_my_column = mine.column;
          ext.fanout_other = other;
          Column fanout = BuildFanoutColumn(db, table_name_, mine.column, other);
          ext.binner = std::make_unique<ColumnBinner>(fanout, max_bins_);
          fanout_index_[{mine.column, other.table + "." + other.column}] =
              columns_.size();
          columns_.push_back(std::move(ext));
        }
      }
    }
  }

  // (Re)compute binned rows; on refresh also recount binner masses.
  for (auto& ext : columns_) {
    if (ext.is_fanout) {
      Column fanout = BuildFanoutColumn(db, table_name_, ext.fanout_my_column,
                                        ext.fanout_other);
      if (!initial) ext.binner->Refresh(fanout);
      ext.bins.resize(num_rows_);
      for (size_t row = 0; row < num_rows_; ++row) {
        ext.bins[row] = ext.binner->BinOf(fanout.Get(row));
      }
    } else {
      const Column& col = table.ColumnByName(ext.name);
      if (!initial) ext.binner->Refresh(col);
      ext.bins.resize(num_rows_);
      for (size_t row = 0; row < num_rows_; ++row) {
        ext.bins[row] = ext.binner->BinOf(
            col.IsValid(row) ? std::optional<Value>(col.Get(row))
                             : std::nullopt);
      }
    }
  }
}

int ExtendedTable::AttrIndex(const std::string& name) const {
  auto it = attr_index_.find(name);
  return it == attr_index_.end() ? -1 : static_cast<int>(it->second);
}

int ExtendedTable::FanoutIndex(const std::string& my_column,
                               const JoinEndpoint& other) const {
  auto it =
      fanout_index_.find({my_column, other.table + "." + other.column});
  return it == fanout_index_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<double> ExtendedTable::PredicateFactor(
    size_t col_idx, const std::vector<Predicate>& preds) const {
  return columns_[col_idx].binner->PredicateFractions(preds);
}

std::vector<double> ExtendedTable::FanoutMeanFactor(size_t col_idx) const {
  const ColumnBinner& binner = *columns_[col_idx].binner;
  std::vector<double> factor(binner.num_bins());
  for (uint16_t b = 0; b < binner.num_bins(); ++b) {
    factor[b] = binner.BinMean(b);
  }
  return factor;
}

std::vector<size_t> ExtendedTable::BinDomains() const {
  std::vector<size_t> domains;
  domains.reserve(columns_.size());
  for (const auto& ext : columns_) domains.push_back(ext.binner->num_bins());
  return domains;
}

std::vector<uint16_t> ExtendedTable::BinnedRow(size_t r) const {
  std::vector<uint16_t> row(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) row[c] = columns_[c].bins[r];
  return row;
}

std::vector<size_t> ExtendedTable::RefreshAfterInsert(const Database& db) {
  const size_t old_rows = num_rows_;
  Build(db, /*initial=*/false);
  std::vector<size_t> new_rows;
  for (size_t r = old_rows; r < num_rows_; ++r) new_rows.push_back(r);
  return new_rows;
}

void ExtendedTable::SerializeMeta(SectionWriter& out) const {
  out.PutString(table_name_);
  out.PutU64(max_bins_);
  out.PutU64(columns_.size());
  for (const auto& ext : columns_) {
    out.PutBool(ext.is_fanout);
    if (ext.is_fanout) {
      out.PutString(ext.fanout_my_column);
      out.PutString(ext.fanout_other.table);
      out.PutString(ext.fanout_other.column);
    } else {
      out.PutString(ext.name);
    }
    ext.binner->Serialize(out);
  }
}

Result<std::unique_ptr<ExtendedTable>> ExtendedTable::DeserializeMeta(
    const Database& db, SectionReader& in) {
  auto ext = std::unique_ptr<ExtendedTable>(new ExtendedTable());
  CARDBENCH_ASSIGN_OR_RETURN(ext->table_name_, in.GetString());
  CARDBENCH_ASSIGN_OR_RETURN(ext->max_bins_, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_columns, in.GetU64());
  if (db.FindTable(ext->table_name_) == nullptr) {
    return Status::NotFound("extended table for unknown table " +
                            ext->table_name_);
  }
  ext->num_rows_ = db.TableOrDie(ext->table_name_).num_rows();
  for (size_t c = 0; c < num_columns; ++c) {
    ExtColumn col;
    CARDBENCH_ASSIGN_OR_RETURN(col.is_fanout, in.GetBool());
    if (col.is_fanout) {
      CARDBENCH_ASSIGN_OR_RETURN(col.fanout_my_column, in.GetString());
      CARDBENCH_ASSIGN_OR_RETURN(col.fanout_other.table, in.GetString());
      CARDBENCH_ASSIGN_OR_RETURN(col.fanout_other.column, in.GetString());
      col.name = "fanout:" + col.fanout_my_column + "->" +
                 col.fanout_other.table + "." + col.fanout_other.column;
      ext->fanout_index_[{col.fanout_my_column,
                          col.fanout_other.table + "." +
                              col.fanout_other.column}] = c;
    } else {
      CARDBENCH_ASSIGN_OR_RETURN(col.name, in.GetString());
      ext->attr_index_[col.name] = c;
    }
    CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                               ColumnBinner::Deserialize(in));
    col.binner = std::make_unique<ColumnBinner>(std::move(binner));
    ext->columns_.push_back(std::move(col));
  }
  return ext;
}

size_t ExtendedTable::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& ext : columns_) {
    bytes += ext.binner->MemoryBytes() + ext.bins.size() * sizeof(uint16_t);
  }
  return bytes;
}

}  // namespace cardbench
