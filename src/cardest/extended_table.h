#ifndef CARDBENCH_CARDEST_EXTENDED_TABLE_H_
#define CARDBENCH_CARDEST_EXTENDED_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardest/binner.h"
#include "storage/catalog.h"

namespace cardbench {

/// A join endpoint: one column of one table.
struct JoinEndpoint {
  std::string table;
  std::string column;

  bool operator<(const JoinEndpoint& other) const {
    return std::tie(table, column) < std::tie(other.table, other.column);
  }
  bool operator==(const JoinEndpoint& other) const {
    return table == other.table && column == other.column;
  }
};

/// Groups all join columns of `db` by shared key domain (union-find over the
/// schema's join relations). Two columns from different groups can never be
/// equi-joined; two from the same group can (PK-FK or FK-FK).
std::vector<std::vector<JoinEndpoint>> JoinColumnGroups(const Database& db);

/// The "extended table" of the fanout method (DeepDB §4): the base table's
/// filterable attributes plus one fanout column per join-compatible
/// (my column, other table's column) pair, where fanout(row) = number of
/// rows in the other table whose column matches. Data-driven estimators
/// build their per-table distribution models over these binned columns, and
/// the shared FanoutJoinEstimator combines them across a join tree.
class ExtendedTable {
 public:
  /// Discretizes attributes and computes fanout columns. `max_bins` bounds
  /// every column's bin count (including the NULL bin).
  ExtendedTable(const Database& db, const std::string& table_name,
                size_t max_bins);

  struct ExtColumn {
    std::string name;  // attribute name, or "fanout:<col>-><t>.<c>"
    bool is_fanout = false;
    // For fanout columns: the pair of join endpoints this column counts.
    std::string fanout_my_column;
    JoinEndpoint fanout_other;
    std::unique_ptr<ColumnBinner> binner;
    std::vector<uint16_t> bins;  // per base-table row
  };

  const std::string& table_name() const { return table_name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ExtColumn& column(size_t idx) const { return columns_[idx]; }

  /// Index of the attribute column `name`, or -1.
  int AttrIndex(const std::string& name) const;

  /// Index of the fanout column counting matches of `my_column` against
  /// `other`, or -1 if the pair is not join-compatible.
  int FanoutIndex(const std::string& my_column,
                  const JoinEndpoint& other) const;

  /// Per-bin pass fraction of a predicate conjunction on attribute column
  /// `col_idx`.
  std::vector<double> PredicateFactor(size_t col_idx,
                                      const std::vector<Predicate>& preds) const;

  /// Per-bin mean fanout of fanout column `col_idx`.
  std::vector<double> FanoutMeanFactor(size_t col_idx) const;

  /// Bin domains of all columns (for model construction).
  std::vector<size_t> BinDomains() const;

  /// Binned row `r` across all columns.
  std::vector<uint16_t> BinnedRow(size_t r) const;

  /// Recomputes bins, masses and fanouts after rows were appended to the
  /// base tables (bin boundaries are kept — the incremental-update path).
  /// Returns the indexes of rows that are new since construction.
  std::vector<size_t> RefreshAfterInsert(const Database& db);

  size_t MemoryBytes() const;

  /// Appends the inference-relevant state (column metadata + binners) to a
  /// serde section. Per-row bin arrays are data-derived and are NOT
  /// written: a deserialized table answers factor queries immediately and
  /// lazily recomputes row bins (via RefreshAfterInsert) if a model update
  /// needs them.
  void SerializeMeta(SectionWriter& out) const;
  static Result<std::unique_ptr<ExtendedTable>> DeserializeMeta(
      const Database& db, SectionReader& in);

 private:
  ExtendedTable() = default;  // for DeserializeMeta
  void Build(const Database& db, bool initial);

  std::string table_name_;
  size_t max_bins_;
  size_t num_rows_ = 0;
  std::vector<ExtColumn> columns_;
  std::map<std::pair<std::string, std::string>, size_t> fanout_index_;
  std::map<std::string, size_t> attr_index_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_EXTENDED_TABLE_H_
