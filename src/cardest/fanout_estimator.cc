#include "cardest/fanout_estimator.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <queue>
#include <set>

#include "common/logging.h"
#include "common/serde.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {

/// Merges factors that target the same column by elementwise product.
std::vector<ColumnFactor> MergeFactors(std::vector<ColumnFactor> factors) {
  std::vector<ColumnFactor> merged;
  for (auto& factor : factors) {
    bool found = false;
    for (auto& m : merged) {
      if (m.col_idx == factor.col_idx) {
        for (size_t b = 0; b < m.per_bin.size(); ++b) {
          m.per_bin[b] *= factor.per_bin[b];
        }
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(factor));
  }
  return merged;
}

/// Predicates of `query` on `table`, grouped by column name.
std::map<std::string, std::vector<Predicate>> PredicatesByColumn(
    const Query& query, const std::string& table) {
  std::map<std::string, std::vector<Predicate>> by_column;
  for (const auto& pred : query.predicates) {
    if (pred.table == table) by_column[pred.column].push_back(pred);
  }
  return by_column;
}

}  // namespace

FanoutModelEstimator::FanoutModelEstimator(const Database& db, size_t max_bins)
    : db_(db), max_bins_(max_bins) {
  for (const auto& name : db_.table_names()) {
    ext_tables_[name] = std::make_unique<ExtendedTable>(db_, name, max_bins_);
  }
}

void FanoutModelEstimator::TrainAll() {
  Stopwatch watch;
  for (const auto& name : db_.table_names()) {
    models_[name] = BuildModel(*ext_tables_[name]);
  }
  train_seconds_ = watch.ElapsedSeconds();
}

Status FanoutModelEstimator::SerializeFanout(std::ostream& out,
                                             const std::string& tag) const {
  ModelWriter writer(tag);
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(max_bins_);
  meta.PutDouble(train_seconds_);
  SectionWriter& tables = writer.AddSection("tables");
  tables.PutU64(ext_tables_.size());
  for (const auto& [name, ext] : ext_tables_) {
    tables.PutString(name);
    ext->SerializeMeta(tables);
    SerializeModel(*models_.at(name), tables);
  }
  return writer.WriteTo(out);
}

Status FanoutModelEstimator::LoadFanout(std::istream& in,
                                        const std::string& tag) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader, ModelReader::Open(in, tag));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(max_bins_, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader tables, reader.Section("tables"));
  uint64_t num_tables = 0;
  CARDBENCH_ASSIGN_OR_RETURN(num_tables, tables.GetU64());
  std::map<std::string, std::unique_ptr<ExtendedTable>> ext_tables;
  std::map<std::string, std::unique_ptr<TableDistribution>> models;
  for (uint64_t t = 0; t < num_tables; ++t) {
    std::string name;
    CARDBENCH_ASSIGN_OR_RETURN(name, tables.GetString());
    CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<ExtendedTable> ext,
                               ExtendedTable::DeserializeMeta(db_, tables));
    CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<TableDistribution> model,
                               LoadModelPayload(tables));
    ext_tables[name] = std::move(ext);
    models[name] = std::move(model);
  }
  // Every base table needs a model for estimation to work.
  for (const auto& table : db_.table_names()) {
    if (models.count(table) == 0) {
      return Status::InvalidArgument("fanout artifact misses table " + table);
    }
  }
  ext_tables_ = std::move(ext_tables);
  models_ = std::move(models);
  return Status::OK();
}

Status FanoutModelEstimator::Update() {
  for (const auto& name : db_.table_names()) {
    const std::vector<size_t> new_rows =
        ext_tables_[name]->RefreshAfterInsert(db_);
    models_[name]->UpdateWithRows(*ext_tables_[name], new_rows);
  }
  return Status::OK();
}

double FanoutModelEstimator::ExpectWithFactors(
    const std::string& table, std::vector<ColumnFactor> factors) const {
  return models_.at(table)->ExpectProduct(MergeFactors(std::move(factors)));
}

double FanoutModelEstimator::SubtreeRho(
    const Query& query, const std::string& table,
    const std::string& parent_table, const JoinEdge& parent_edge,
    const std::map<std::string, std::vector<std::pair<JoinEdge, std::string>>>&
        tree_children) const {
  const ExtendedTable& ext = *ext_tables_.at(table);

  // Fanout column counting this table's matches in the parent.
  const std::string& my_col = parent_edge.left_table == table
                                  ? parent_edge.left_column
                                  : parent_edge.right_column;
  const std::string& parent_col = parent_edge.left_table == table
                                      ? parent_edge.right_column
                                      : parent_edge.left_column;
  const int up_idx = ext.FanoutIndex(my_col, {parent_table, parent_col});
  CARDBENCH_CHECK(up_idx >= 0, "no fanout column %s.%s -> %s.%s",
                  table.c_str(), my_col.c_str(), parent_table.c_str(),
                  parent_col.c_str());

  std::vector<ColumnFactor> numer;
  numer.push_back(
      {static_cast<size_t>(up_idx),
       ext.FanoutMeanFactor(static_cast<size_t>(up_idx))});
  for (const auto& [column, preds] : PredicatesByColumn(query, table)) {
    const int idx = ext.AttrIndex(column);
    if (idx < 0) continue;  // predicate on unmodeled column: ignore
    numer.push_back({static_cast<size_t>(idx),
                     ext.PredicateFactor(static_cast<size_t>(idx), preds)});
  }

  double child_scalars = 1.0;
  auto it = tree_children.find(table);
  if (it != tree_children.end()) {
    for (const auto& [edge, child] : it->second) {
      const std::string& down_col =
          edge.left_table == table ? edge.left_column : edge.right_column;
      const std::string& child_col =
          edge.left_table == table ? edge.right_column : edge.left_column;
      const int idx = ext.FanoutIndex(down_col, {child, child_col});
      CARDBENCH_CHECK(idx >= 0, "no fanout column for child edge");
      numer.push_back({static_cast<size_t>(idx),
                       ext.FanoutMeanFactor(static_cast<size_t>(idx))});
      child_scalars *=
          SubtreeRho(query, child, table, edge, tree_children);
    }
  }

  const double numer_e = ExpectWithFactors(table, std::move(numer));
  std::vector<ColumnFactor> denom;
  denom.push_back(
      {static_cast<size_t>(up_idx),
       ext.FanoutMeanFactor(static_cast<size_t>(up_idx))});
  const double denom_e = ExpectWithFactors(table, std::move(denom));
  if (denom_e <= 1e-12) return 0.0;
  return (numer_e / denom_e) * child_scalars;
}

const std::vector<ColumnFactor>& FanoutModelEstimator::PredFactorsFor(
    const QueryGraph& graph, int local, PredFactorCache* cache) const {
  std::unique_ptr<std::vector<ColumnFactor>>& slot =
      cache->by_local[static_cast<size_t>(local)];
  if (!slot) {
    const QueryGraph::TableInfo& info = graph.table(local);
    const ExtendedTable& ext = *ext_tables_.at(info.name);
    auto factors = std::make_unique<std::vector<ColumnFactor>>();
    for (const auto& group : info.pred_groups) {
      const int idx = ext.AttrIndex(group.column);
      if (idx < 0) continue;  // predicate on unmodeled column: ignore
      factors->push_back(
          {static_cast<size_t>(idx),
           ext.PredicateFactor(static_cast<size_t>(idx), group.preds)});
    }
    slot = std::move(factors);
  }
  return *slot;
}

double FanoutModelEstimator::GraphSubtreeRho(
    const QueryGraph& graph, int local, int parent_local,
    const QueryGraph::EdgeInfo& parent_edge,
    const std::map<int, std::vector<std::pair<const QueryGraph::EdgeInfo*,
                                              int>>>& tree_children,
    PredFactorCache* cache) const {
  const QueryGraph::TableInfo& info = graph.table(local);
  const ExtendedTable& ext = *ext_tables_.at(info.name);

  // Fanout column counting this table's matches in the parent. Orientation
  // comes from the resolved local ids; column/table names from the edge.
  const JoinEdge& je = *parent_edge.edge;
  const bool i_am_left = parent_edge.left_local == local;
  const std::string& my_col = i_am_left ? je.left_column : je.right_column;
  const std::string& parent_col = i_am_left ? je.right_column : je.left_column;
  const std::string& parent_name = graph.table(parent_local).name;
  const int up_idx = ext.FanoutIndex(my_col, {parent_name, parent_col});
  CARDBENCH_CHECK(up_idx >= 0, "no fanout column %s.%s -> %s.%s",
                  info.name.c_str(), my_col.c_str(), parent_name.c_str(),
                  parent_col.c_str());

  std::vector<ColumnFactor> numer;
  numer.push_back(
      {static_cast<size_t>(up_idx),
       ext.FanoutMeanFactor(static_cast<size_t>(up_idx))});
  for (const ColumnFactor& factor : PredFactorsFor(graph, local, cache)) {
    numer.push_back(factor);
  }

  double child_scalars = 1.0;
  auto it = tree_children.find(local);
  if (it != tree_children.end()) {
    for (const auto& [edge, child] : it->second) {
      const JoinEdge& ce = *edge->edge;
      const bool child_is_right = edge->left_local == local;
      const std::string& down_col =
          child_is_right ? ce.left_column : ce.right_column;
      const std::string& child_col =
          child_is_right ? ce.right_column : ce.left_column;
      const int idx = ext.FanoutIndex(
          down_col, {graph.table(child).name, child_col});
      CARDBENCH_CHECK(idx >= 0, "no fanout column for child edge");
      numer.push_back({static_cast<size_t>(idx),
                       ext.FanoutMeanFactor(static_cast<size_t>(idx))});
      child_scalars *=
          GraphSubtreeRho(graph, child, local, *edge, tree_children, cache);
    }
  }

  const double numer_e = ExpectWithFactors(info.name, std::move(numer));
  std::vector<ColumnFactor> denom;
  denom.push_back(
      {static_cast<size_t>(up_idx),
       ext.FanoutMeanFactor(static_cast<size_t>(up_idx))});
  const double denom_e = ExpectWithFactors(info.name, std::move(denom));
  if (denom_e <= 1e-12) return 0.0;
  return (numer_e / denom_e) * child_scalars;
}

double FanoutModelEstimator::EstimateCard(const QueryGraph& graph,
                                          uint64_t mask) const {
  PredFactorCache cache(graph.num_tables());
  return EstimateCardImpl(graph, mask, &cache);
}

std::vector<double> FanoutModelEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  PredFactorCache cache(graph.num_tables());
  std::vector<double> out;
  out.reserve(masks.size());
  for (uint64_t mask : masks) {
    out.push_back(EstimateCardImpl(graph, mask, &cache));
  }
  return out;
}

double FanoutModelEstimator::EstimateCardImpl(const QueryGraph& graph,
                                              uint64_t mask,
                                              PredFactorCache* cache) const {
  CARDBENCH_CHECK(mask != 0, "empty query");

  // Single table: |T| * E[predicate factors].
  if (std::popcount(mask) == 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(mask));
    std::vector<ColumnFactor> factors =
        PredFactorsFor(graph, std::countr_zero(mask), cache);
    const double rows = static_cast<double>(info.table->num_rows());
    return std::max(1.0,
                    rows * ExpectWithFactors(info.name, std::move(factors)));
  }

  // Ablation mode: join uniformity over single-table model estimates. The
  // single-table recursion takes the popcount==1 branch above, which folds
  // exactly like the legacy per-table Query materialization.
  if (!use_fanout_join_) {
    double card = 1.0;
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      card *= EstimateCardImpl(graph, rest & ~(rest - 1), cache);
    }
    for (const auto& edge : graph.edges()) {
      if ((edge.mask & mask) != edge.mask) continue;
      const double lndv = std::max<double>(
          1.0, static_cast<double>(
                   edge.left_table->GetIndex(edge.left_column_id)
                       .num_distinct()));
      const double rndv = std::max<double>(
          1.0, static_cast<double>(
                   edge.right_table->GetIndex(edge.right_column_id)
                       .num_distinct()));
      card /= std::max(lndv, rndv);
    }
    return std::max(card, 1e-6);
  }

  // Spanning tree of the query join graph rooted at the largest table;
  // non-tree (parallel) edges contribute independence selectivities.
  int root = std::countr_zero(mask);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    if (graph.table(local).table->num_rows() >
        graph.table(root).table->num_rows()) {
      root = local;
    }
  }
  std::map<int, std::vector<std::pair<const QueryGraph::EdgeInfo*, int>>>
      tree_children;
  std::vector<const QueryGraph::EdgeInfo*> non_tree;
  {
    uint64_t visited = uint64_t{1} << root;
    std::queue<int> frontier;
    frontier.push(root);
    std::vector<bool> used(graph.edges().size(), false);
    while (!frontier.empty()) {
      const int at = frontier.front();
      frontier.pop();
      for (size_t e = 0; e < graph.edges().size(); ++e) {
        if (used[e]) continue;
        const QueryGraph::EdgeInfo& edge = graph.edges()[e];
        if ((edge.mask & mask) != edge.mask) continue;
        int other;
        if (edge.left_local == at) {
          other = edge.right_local;
        } else if (edge.right_local == at) {
          other = edge.left_local;
        } else {
          continue;
        }
        if ((visited >> other) & 1) continue;
        used[e] = true;
        visited |= uint64_t{1} << other;
        tree_children[at].push_back({&edge, other});
        frontier.push(other);
      }
    }
    for (size_t e = 0; e < graph.edges().size(); ++e) {
      const QueryGraph::EdgeInfo& edge = graph.edges()[e];
      if ((edge.mask & mask) != edge.mask) continue;
      if (!used[e]) non_tree.push_back(&edge);
    }
  }

  const QueryGraph::TableInfo& root_info = graph.table(root);
  const ExtendedTable& root_ext = *ext_tables_.at(root_info.name);
  std::vector<ColumnFactor> factors = PredFactorsFor(graph, root, cache);
  double scalars = 1.0;
  auto it = tree_children.find(root);
  if (it != tree_children.end()) {
    for (const auto& [edge, child] : it->second) {
      const JoinEdge& je = *edge->edge;
      const bool child_is_right = edge->left_local == root;
      const std::string& my_col =
          child_is_right ? je.left_column : je.right_column;
      const std::string& child_col =
          child_is_right ? je.right_column : je.left_column;
      const int idx = root_ext.FanoutIndex(
          my_col, {graph.table(child).name, child_col});
      CARDBENCH_CHECK(idx >= 0, "no fanout column for root edge");
      factors.push_back({static_cast<size_t>(idx),
                         root_ext.FanoutMeanFactor(static_cast<size_t>(idx))});
      scalars *=
          GraphSubtreeRho(graph, child, root, *edge, tree_children, cache);
    }
  }

  double card = static_cast<double>(root_info.table->num_rows()) *
                ExpectWithFactors(root_info.name, std::move(factors)) *
                scalars;

  // Independence correction for parallel/non-tree edges (PostgreSQL's
  // 1/max(ndv) equi-join selectivity).
  for (const QueryGraph::EdgeInfo* edge : non_tree) {
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 edge->left_table->GetIndex(edge->left_column_id)
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 edge->right_table->GetIndex(edge->right_column_id)
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

double FanoutModelEstimator::EstimateCard(const Query& subquery) const {
  CARDBENCH_CHECK(!subquery.tables.empty(), "empty query");

  // Single table: |T| * E[predicate factors].
  if (subquery.tables.size() == 1) {
    const std::string& table = subquery.tables[0];
    const ExtendedTable& ext = *ext_tables_.at(table);
    std::vector<ColumnFactor> factors;
    for (const auto& [column, preds] : PredicatesByColumn(subquery, table)) {
      const int idx = ext.AttrIndex(column);
      if (idx < 0) continue;
      factors.push_back({static_cast<size_t>(idx),
                         ext.PredicateFactor(static_cast<size_t>(idx), preds)});
    }
    const double rows = static_cast<double>(db_.TableOrDie(table).num_rows());
    return std::max(1.0, rows * ExpectWithFactors(table, std::move(factors)));
  }

  // Ablation mode: join uniformity over single-table model estimates.
  if (!use_fanout_join_) {
    double card = 1.0;
    for (const auto& table : subquery.tables) {
      Query single;
      single.tables = {table};
      for (const auto& pred : subquery.predicates) {
        if (pred.table == table) single.predicates.push_back(pred);
      }
      card *= EstimateCard(single);
    }
    for (const auto& edge : subquery.joins) {
      const Table& lt = db_.TableOrDie(edge.left_table);
      const Table& rt = db_.TableOrDie(edge.right_table);
      const double lndv = std::max<double>(
          1.0, static_cast<double>(
                   lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column))
                       .num_distinct()));
      const double rndv = std::max<double>(
          1.0, static_cast<double>(
                   rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column))
                       .num_distinct()));
      card /= std::max(lndv, rndv);
    }
    return std::max(card, 1e-6);
  }

  // Spanning tree of the query join graph rooted at the largest table;
  // non-tree (parallel) edges contribute independence selectivities.
  std::string root = subquery.tables[0];
  for (const auto& t : subquery.tables) {
    if (db_.TableOrDie(t).num_rows() > db_.TableOrDie(root).num_rows()) {
      root = t;
    }
  }
  std::map<std::string, std::vector<std::pair<JoinEdge, std::string>>>
      tree_children;
  std::vector<const JoinEdge*> non_tree;
  {
    std::set<std::string> visited = {root};
    std::queue<std::string> frontier;
    frontier.push(root);
    std::vector<bool> used(subquery.joins.size(), false);
    while (!frontier.empty()) {
      const std::string at = frontier.front();
      frontier.pop();
      for (size_t e = 0; e < subquery.joins.size(); ++e) {
        if (used[e]) continue;
        const JoinEdge& edge = subquery.joins[e];
        std::string other;
        if (edge.left_table == at) {
          other = edge.right_table;
        } else if (edge.right_table == at) {
          other = edge.left_table;
        } else {
          continue;
        }
        if (visited.count(other) > 0) continue;
        used[e] = true;
        visited.insert(other);
        tree_children[at].push_back({edge, other});
        frontier.push(other);
      }
    }
    for (size_t e = 0; e < subquery.joins.size(); ++e) {
      if (!used[e]) non_tree.push_back(&subquery.joins[e]);
    }
  }

  const ExtendedTable& root_ext = *ext_tables_.at(root);
  std::vector<ColumnFactor> factors;
  for (const auto& [column, preds] : PredicatesByColumn(subquery, root)) {
    const int idx = root_ext.AttrIndex(column);
    if (idx < 0) continue;
    factors.push_back(
        {static_cast<size_t>(idx),
         root_ext.PredicateFactor(static_cast<size_t>(idx), preds)});
  }
  double scalars = 1.0;
  auto it = tree_children.find(root);
  if (it != tree_children.end()) {
    for (const auto& [edge, child] : it->second) {
      const std::string& my_col =
          edge.left_table == root ? edge.left_column : edge.right_column;
      const std::string& child_col =
          edge.left_table == root ? edge.right_column : edge.left_column;
      const int idx = root_ext.FanoutIndex(my_col, {child, child_col});
      CARDBENCH_CHECK(idx >= 0, "no fanout column for root edge");
      factors.push_back({static_cast<size_t>(idx),
                         root_ext.FanoutMeanFactor(static_cast<size_t>(idx))});
      scalars *= SubtreeRho(subquery, child, root, edge, tree_children);
    }
  }

  double card = static_cast<double>(db_.TableOrDie(root).num_rows()) *
                ExpectWithFactors(root, std::move(factors)) * scalars;

  // Independence correction for parallel/non-tree edges (PostgreSQL's
  // 1/max(ndv) equi-join selectivity).
  for (const JoinEdge* edge : non_tree) {
    const Table& lt = db_.TableOrDie(edge->left_table);
    const Table& rt = db_.TableOrDie(edge->right_table);
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 lt.GetIndex(lt.ColumnIndexOrDie(edge->left_column))
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 rt.GetIndex(rt.ColumnIndexOrDie(edge->right_column))
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

}  // namespace cardbench
