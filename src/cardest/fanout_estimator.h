#ifndef CARDBENCH_CARDEST_FANOUT_ESTIMATOR_H_
#define CARDBENCH_CARDEST_FANOUT_ESTIMATOR_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/extended_table.h"
#include "storage/catalog.h"

namespace cardbench {

/// One multiplicative factor on one extended-table column: per-bin values
/// (predicate pass fractions, or per-bin mean fanouts).
struct ColumnFactor {
  size_t col_idx = 0;
  std::vector<double> per_bin;
};

/// A distribution model over one extended table's binned columns. The only
/// query the join machinery needs is the expectation of a product of
/// per-column factors — exactly what BNs (variable elimination), SPNs and
/// FSPNs (bottom-up passes) evaluate efficiently.
class TableDistribution {
 public:
  virtual ~TableDistribution() = default;

  /// E[ Π_i factors[i].per_bin[bin(column factors[i].col_idx)] ] under the
  /// modeled joint distribution. Factors arrive merged (one per column).
  virtual double ExpectProduct(const std::vector<ColumnFactor>& factors)
      const = 0;

  virtual size_t ModelBytes() const = 0;

  /// Incremental parameter update after `ext` absorbed newly inserted rows
  /// (structure must be preserved — the paper's update protocol, §6.3).
  virtual void UpdateWithRows(const ExtendedTable& ext,
                              const std::vector<size_t>& new_rows) = 0;
};

/// Shared base for the ML data-driven estimators (BayesCard, DeepDB, FLAT):
/// builds one extended table + one TableDistribution per base table, and
/// answers multi-table queries with the fanout method over a spanning tree
/// of the query's join graph:
///
///   Card = |T_r| * E_r[pred_r * Π_c F_{r→c} * ρ(c)]
///   ρ(c) = E_c[F_{c→p} * pred_c * Π_{gc} F_{c→gc} ρ(gc)] / E_c[F_{c→p}]
///
/// which is exact when each per-table model captures its intra-table joint
/// and tables are conditionally independent given the join — the "right
/// balance of independence" the paper credits these methods with (§5.1).
class FanoutModelEstimator : public CardinalityEstimator {
 public:
  /// Builds extended tables and per-table models immediately (training time
  /// is recorded for Figure 3).
  FanoutModelEstimator(const Database& db, size_t max_bins);

  /// Mask-based dispatch: spanning tree built over local table ids and
  /// pre-resolved edges; predicate groups come from the graph (no per-call
  /// name grouping). Model lookups stay name-keyed — the per-table models
  /// are string-keyed internal state, untouched by the dispatch refactor.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: the per-table predicate ColumnFactors (the expensive
  /// PredicateFactor bin scans, mask-independent) are computed once per
  /// query and shared across all masks; each mask then runs the unchanged
  /// fanout recursion, pushing factors in the same order — bit-identical
  /// to per-mask EstimateCard.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  double TrainSeconds() const override { return train_seconds_; }
  bool SupportsUpdate() const override { return true; }
  Status Update() override;

  /// Ablation switch: when disabled, multi-table estimates fall back to the
  /// join-uniformity combination of single-table model estimates (the
  /// histogram/sampling methods' approach) instead of the fanout method —
  /// isolating how much of the data-driven methods' advantage comes from
  /// fanout-aware join handling.
  void set_use_fanout_join(bool enabled) { use_fanout_join_ = enabled; }

 protected:
  /// Deferred-initialization tag: constructs without building extended
  /// tables or models (used by subclass model-loading paths, which inject
  /// deserialized state via InjectState).
  struct DeferredInit {};
  FanoutModelEstimator(const Database& db, size_t max_bins, DeferredInit)
      : db_(db), max_bins_(max_bins) {}

  /// Installs deserialized per-table state (model-loading path).
  void InjectState(
      std::map<std::string, std::unique_ptr<ExtendedTable>> ext_tables,
      std::map<std::string, std::unique_ptr<TableDistribution>> models) {
    ext_tables_ = std::move(ext_tables);
    models_ = std::move(models);
  }

  const std::map<std::string, std::unique_ptr<ExtendedTable>>& ext_tables()
      const {
    return ext_tables_;
  }
  const std::map<std::string, std::unique_ptr<TableDistribution>>& models()
      const {
    return models_;
  }

  /// Subclasses create their model class (BN / SPN / FSPN) per table.
  virtual std::unique_ptr<TableDistribution> BuildModel(
      const ExtendedTable& ext) = 0;

  /// Shared artifact layout for the fanout family: a "meta" section
  /// (max_bins, train_seconds) plus one "tables" section holding, per base
  /// table, the extended-table metadata followed by the model payload
  /// (written by the subclass's SerializeModel). Subclasses expose this via
  /// their Serialize override with their own format tag.
  Status SerializeFanout(std::ostream& out, const std::string& tag) const;

  /// Restores state written by SerializeFanout into this (deferred-init)
  /// instance; model payloads are read back through LoadModelPayload.
  Status LoadFanout(std::istream& in, const std::string& tag);

  virtual void SerializeModel(const TableDistribution& model,
                              SectionWriter& out) const = 0;
  virtual Result<std::unique_ptr<TableDistribution>> LoadModelPayload(
      SectionReader& in) const = 0;

  /// Must be called at the end of the subclass constructor (virtual
  /// dispatch is not available during base construction).
  void TrainAll();

  const Database& db_;

 private:
  double ExpectWithFactors(const std::string& table,
                           std::vector<ColumnFactor> factors) const;

  /// Per-query memo of each local table's predicate ColumnFactors (built
  /// from the graph's pred_groups) — mask-independent, so a batch computes
  /// them once and every mask copies from the memo in the original push
  /// order.
  struct PredFactorCache {
    explicit PredFactorCache(size_t num_tables) : by_local(num_tables) {}
    std::vector<std::unique_ptr<std::vector<ColumnFactor>>> by_local;
  };

  const std::vector<ColumnFactor>& PredFactorsFor(const QueryGraph& graph,
                                                  int local,
                                                  PredFactorCache* cache) const;

  /// EstimateCard(graph, mask) with the predicate-factor memo threaded
  /// through (the scalar overload passes a fresh one).
  double EstimateCardImpl(const QueryGraph& graph, uint64_t mask,
                          PredFactorCache* cache) const;

  /// Recursive ρ computation for a child subtree.
  double SubtreeRho(const Query& query, const std::string& table,
                    const std::string& parent_table,
                    const JoinEdge& parent_edge,
                    const std::map<std::string, std::vector<std::pair<JoinEdge, std::string>>>&
                        tree_children) const;

  /// Graph-path ρ: same recursion keyed on local table ids.
  double GraphSubtreeRho(
      const QueryGraph& graph, int local, int parent_local,
      const QueryGraph::EdgeInfo& parent_edge,
      const std::map<int, std::vector<std::pair<const QueryGraph::EdgeInfo*,
                                                int>>>& tree_children,
      PredFactorCache* cache) const;

  size_t max_bins_;
  bool use_fanout_join_ = true;
  double train_seconds_ = 0.0;
  std::map<std::string, std::unique_ptr<ExtendedTable>> ext_tables_;
  std::map<std::string, std::unique_ptr<TableDistribution>> models_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_FANOUT_ESTIMATOR_H_
