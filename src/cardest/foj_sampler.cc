#include "cardest/foj_sampler.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace cardbench {

FojSampler::FojSampler(const Database& db) : db_(db) {
  // Root the BFS tree at the table with the most schema relations (the hub
  // — `users`/`title` in the benchmark schemas).
  std::map<std::string, size_t> degree;
  for (const auto& rel : db.join_relations()) {
    ++degree[rel.left_table];
    ++degree[rel.right_table];
  }
  std::string root = db.table_names()[0];
  for (const auto& name : db.table_names()) {
    if (degree[name] > degree[root]) root = name;
  }

  order_ = {root};
  std::set<std::string> visited = {root};
  std::queue<size_t> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const size_t at = frontier.front();
    frontier.pop();
    for (const auto& name : db.table_names()) {
      if (visited.count(name) > 0) continue;
      const auto rels = db.RelationsBetween(order_[at], name);
      if (rels.empty()) continue;
      TreeEdge edge;
      edge.parent_idx = at;
      edge.child_idx = order_.size();
      edge.parent_col = rels.front().left_column;   // normalized: left == parent
      edge.child_col = rels.front().right_column;
      edges_.push_back(edge);
      visited.insert(name);
      order_.push_back(name);
      frontier.push(order_.size() - 1);
    }
  }
  CARDBENCH_CHECK(order_.size() == db.num_tables(),
                  "schema join graph is disconnected");

  // --- Downward subtree weights (reverse BFS order). ---
  weight_.resize(order_.size());
  edge_dup_.resize(edges_.size());
  for (size_t t = 0; t < order_.size(); ++t) {
    weight_[t].assign(db.TableOrDie(order_[t]).num_rows(), 1.0);
  }
  for (size_t t = order_.size(); t-- > 0;) {
    const Table& table = db.TableOrDie(order_[t]);
    for (size_t e = 0; e < edges_.size(); ++e) {
      if (edges_[e].parent_idx != t) continue;
      const size_t c = edges_[e].child_idx;
      const Table& child = db.TableOrDie(order_[c]);
      const Column& child_key = child.ColumnByName(edges_[e].child_col);
      std::unordered_map<Value, double> sums;
      for (size_t row = 0; row < child.num_rows(); ++row) {
        if (child_key.IsValid(row)) {
          sums[child_key.Get(row)] += weight_[c][row];
        }
      }
      const Column& parent_key = table.ColumnByName(edges_[e].parent_col);
      edge_dup_[e].assign(table.num_rows(), 1.0);
      for (size_t row = 0; row < table.num_rows(); ++row) {
        double sum = 0.0;
        if (parent_key.IsValid(row)) {
          auto it = sums.find(parent_key.Get(row));
          if (it != sums.end()) sum = it->second;
        }
        edge_dup_[e][row] = std::max(1.0, sum);
        weight_[t][row] *= edge_dup_[e][row];
      }
    }
  }
  foj_size_ = 0.0;
  for (double w : weight_[0]) foj_size_ += w;

  // --- Upward duplication (forward BFS order). ---
  upward_.resize(order_.size());
  upward_[0].assign(weight_[0].size(), 1.0);
  for (size_t e = 0; e < edges_.size(); ++e) {
    const size_t p = edges_[e].parent_idx;
    const size_t c = edges_[e].child_idx;
    const Table& parent = db.TableOrDie(order_[p]);
    const Table& child = db.TableOrDie(order_[c]);
    const Column& parent_key = parent.ColumnByName(edges_[e].parent_col);
    // Sum over parents of U_p(rp) * w_p(rp) / D_e(rp), keyed by key value.
    std::unordered_map<Value, double> sums;
    for (size_t row = 0; row < parent.num_rows(); ++row) {
      if (!parent_key.IsValid(row)) continue;
      sums[parent_key.Get(row)] +=
          upward_[p][row] * weight_[p][row] / edge_dup_[e][row];
    }
    const Column& child_key = child.ColumnByName(edges_[e].child_col);
    upward_[c].assign(child.num_rows(), 0.0);
    for (size_t row = 0; row < child.num_rows(); ++row) {
      if (!child_key.IsValid(row)) continue;
      auto it = sums.find(child_key.Get(row));
      if (it != sums.end()) upward_[c][row] = it->second;
    }
  }
}

int FojSampler::TableIndex(const std::string& table) const {
  for (size_t t = 0; t < order_.size(); ++t) {
    if (order_[t] == table) return static_cast<int>(t);
  }
  return -1;
}

int FojSampler::EdgeToParent(size_t child_idx) const {
  for (size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].child_idx == child_idx) return static_cast<int>(e);
  }
  return -1;
}

std::vector<int64_t> FojSampler::SampleTuple(Rng& rng) const {
  std::vector<int64_t> tuple(order_.size(), -1);
  // Root row proportional to its subtree weight.
  const std::vector<double>& root_w = weight_[0];
  double total = foj_size_;
  CARDBENCH_CHECK(total > 0, "empty FOJ");
  double u = rng.NextDouble() * total;
  size_t root_row = 0;
  for (size_t row = 0; row < root_w.size(); ++row) {
    u -= root_w[row];
    if (u <= 0) {
      root_row = row;
      break;
    }
  }
  tuple[0] = static_cast<int64_t>(root_row);

  // Descend edge by edge (BFS order guarantees parents come first).
  for (size_t e = 0; e < edges_.size(); ++e) {
    const size_t p = edges_[e].parent_idx;
    const size_t c = edges_[e].child_idx;
    if (tuple[p] < 0) continue;  // parent absent -> whole subtree absent
    const Table& parent = db_.TableOrDie(order_[p]);
    const Table& child = db_.TableOrDie(order_[c]);
    const Column& parent_key = parent.ColumnByName(edges_[e].parent_col);
    const uint32_t prow = static_cast<uint32_t>(tuple[p]);
    if (!parent_key.IsValid(prow)) continue;  // no matches -> absent
    const HashIndex& index =
        child.GetIndex(child.ColumnIndexOrDie(edges_[e].child_col));
    const auto& matches = index.Lookup(parent_key.Get(prow));
    if (matches.empty()) continue;  // outer join keeps parent, child absent
    double mass = 0.0;
    for (uint32_t m : matches) mass += weight_[c][m];
    double pick = rng.NextDouble() * mass;
    uint32_t chosen = matches.back();
    for (uint32_t m : matches) {
      pick -= weight_[c][m];
      if (pick <= 0) {
        chosen = m;
        break;
      }
    }
    tuple[c] = static_cast<int64_t>(chosen);
  }
  return tuple;
}

}  // namespace cardbench
