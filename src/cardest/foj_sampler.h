#ifndef CARDBENCH_CARDEST_FOJ_SAMPLER_H_
#define CARDBENCH_CARDEST_FOJ_SAMPLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/catalog.h"

namespace cardbench {

/// Full-outer-join machinery behind the NeuroCard-style estimators.
///
/// The schema's join graph is reduced to a BFS spanning tree rooted at the
/// largest-degree hub; the sampler then supports *exact uniform* sampling
/// from the (root-anchored) full outer join of that tree by precomputing,
/// per row, the number of FOJ tuples flowing through it:
///
///   w_t(r)   — downward subtree weight: FOJ tuples of t's subtree rooted
///              at row r (product over child edges of max(1, sum of
///              matching child weights)),
///   U_t(r)   — upward duplication: FOJ tuples containing row r divided by
///              w_t(r),
///   D_e(r)   — per-edge duplication max(1, sum of matching child weights)
///              attached to the parent row.
///
/// These are exactly the scaling columns NeuroCard adds to its model to
/// down-weight tuple multiplicities when a query touches only a subset of
/// tables. Child rows with no matching parent never appear (the FOJ is
/// anchored at the root — a documented simplification; it reproduces the
/// paper's observation that NeuroCard's sample lacks tuples for some join
/// subsets).
class FojSampler {
 public:
  explicit FojSampler(const Database& db);

  struct TreeEdge {
    size_t parent_idx = 0;  // index into bfs_order()
    size_t child_idx = 0;
    std::string parent_col;
    std::string child_col;
  };

  /// Tables in BFS order (root first).
  const std::vector<std::string>& bfs_order() const { return order_; }
  /// One edge per non-root table, in BFS discovery order.
  const std::vector<TreeEdge>& edges() const { return edges_; }
  /// Exact size of the (root-anchored) spanning-tree full outer join.
  double foj_size() const { return foj_size_; }

  int TableIndex(const std::string& table) const;
  /// Tree edge whose child is `child_idx`, or -1 for the root.
  int EdgeToParent(size_t child_idx) const;

  double SubtreeWeight(size_t table_idx, uint32_t row) const {
    return weight_[table_idx][row];
  }
  double Upward(size_t table_idx, uint32_t row) const {
    return upward_[table_idx][row];
  }
  double EdgeDup(size_t edge_idx, uint32_t parent_row) const {
    return edge_dup_[edge_idx][parent_row];
  }

  /// Draws one uniform FOJ tuple: row id per table in bfs_order(), or -1
  /// where the tuple is NULL-extended.
  std::vector<int64_t> SampleTuple(Rng& rng) const;

 private:
  const Database& db_;
  std::vector<std::string> order_;
  std::vector<TreeEdge> edges_;
  std::vector<std::vector<double>> weight_;    // per table, per row
  std::vector<std::vector<double>> upward_;    // per table, per row
  std::vector<std::vector<double>> edge_dup_;  // per edge, per parent row
  double foj_size_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_FOJ_SAMPLER_H_
