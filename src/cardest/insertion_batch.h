#ifndef CARDBENCH_CARDEST_INSERTION_BATCH_H_
#define CARDBENCH_CARDEST_INSERTION_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cardbench {

struct TrainingQuery;

/// One table's share of an applied insertion batch: rows
/// [old_num_rows, new_num_rows) of the named table are the fresh ones.
/// Deltas describe data that is *already in* the database when the
/// estimator sees the batch — IncrementalUpdate reads the new rows straight
/// from the shared Database it was built on.
struct TableDelta {
  std::string table;
  size_t old_num_rows = 0;
  size_t new_num_rows = 0;

  size_t inserted_rows() const { return new_num_rows - old_num_rows; }
};

/// What an estimator is told about one applied micro-batch of streaming
/// inserts (the unit of the online-refresh pipeline). An empty `tables`
/// list means "full refresh": the deltas are unknown and the model should
/// rebuild whatever Update() used to rebuild — the legacy
/// NotifyDataUpdate/Update path is expressed as this degenerate batch.
struct InsertionBatch {
  /// Database::data_version after this batch was applied (0 for the legacy
  /// full-refresh batch). Refreshed models are stamped with it: a model at
  /// model_version == data_version is fully caught up.
  uint64_t data_version = 0;

  /// Per-table row ranges of the fresh data; empty = full refresh.
  std::vector<TableDelta> tables;

  /// Optional refresh workload for query-driven estimators (LW-XGB
  /// warm-start rounds, MSCN fine-tune epochs): queries labeled with true
  /// cardinalities on the *post-insert* data. Borrowed; must outlive the
  /// IncrementalUpdate call. Data-driven estimators ignore it.
  const std::vector<TrainingQuery>* refresh_training = nullptr;

  bool IsFullRefresh() const { return tables.empty(); }

  size_t total_inserted_rows() const {
    size_t total = 0;
    for (const TableDelta& delta : tables) total += delta.inserted_rows();
    return total;
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_INSERTION_BATCH_H_
