#include "cardest/lw_est.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {
double TargetOf(double cardinality) { return std::log2(1.0 + cardinality); }
double CardOf(double prediction) {
  return std::max(1.0, std::exp2(prediction) - 1.0);
}
}  // namespace

LwNnEstimator::LwNnEstimator(const Database& db,
                             const std::vector<TrainingQuery>& training,
                             LwNnOptions options)
    : featurizer_(db), options_(options) {
  CARDBENCH_CHECK(!training.empty(), "LW-NN requires training queries");
  Stopwatch watch;
  Rng rng(options.seed);
  net_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.flat_dim(), options.hidden_units,
                          options.hidden_units / 2, 1},
      rng);

  TrainEpochs(training, options.epochs, rng);
  train_seconds_ = watch.ElapsedSeconds();
}

void LwNnEstimator::TrainEpochs(const std::vector<TrainingQuery>& training,
                                size_t epochs, Rng& rng) {
  // Pre-featurize once.
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(training.size());
  for (const auto& example : training) {
    features.push_back(featurizer_.FlatFeatures(example.query));
    targets.push_back(TargetOf(example.cardinality));
  }

  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto order = rng.Permutation(training.size());
    for (size_t begin = 0; begin < order.size();
         begin += options_.batch_size) {
      const size_t end = std::min(order.size(), begin + options_.batch_size);
      Matrix x(end - begin, featurizer_.flat_dim());
      std::vector<double> batch_targets(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const size_t idx = order[i];
        for (size_t c = 0; c < features[idx].size(); ++c) {
          x.At(i - begin, c) = features[idx][c];
        }
        batch_targets[i - begin] = targets[idx];
      }
      const Matrix y = net_->Forward(x);
      Matrix grad;
      MseLoss(y, batch_targets, &grad);
      net_->Backward(grad);
      net_->Step(options_.learning_rate);
    }
  }
}

Status LwNnEstimator::IncrementalUpdate(const InsertionBatch& batch) {
  if (batch.refresh_training == nullptr || batch.refresh_training->empty()) {
    return Status::Unsupported(
        "LW-NN: incremental refresh needs re-labeled training queries "
        "(batch.refresh_training), full retrain required");
  }
  Stopwatch watch;
  // Derive the shuffle stream from (seed, data_version) so the same refresh
  // applied to the same parameters is reproducible, while successive
  // versions see different permutations.
  Rng rng(options_.seed ^ (batch.data_version * 0x9e3779b97f4a7c15ULL));
  const size_t epochs = std::max<size_t>(1, options_.epochs / 10);
  TrainEpochs(*batch.refresh_training, epochs, rng);
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double LwNnEstimator::EstimateCard(const QueryGraph& graph,
                                   uint64_t mask) const {
  const std::vector<double> features = featurizer_.FlatFeatures(graph, mask);
  Matrix x(1, features.size());
  for (size_t c = 0; c < features.size(); ++c) x.At(0, c) = features[c];
  return CardOf(net_->Infer(x).At(0, 0));
}

double LwNnEstimator::EstimateCard(const Query& subquery) const {
  const std::vector<double> features = featurizer_.FlatFeatures(subquery);
  Matrix x(1, features.size());
  for (size_t c = 0; c < features.size(); ++c) x.At(0, c) = features[c];
  return CardOf(net_->Infer(x).At(0, 0));
}

std::vector<double> LwNnEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  std::vector<double> out;
  if (masks.empty()) return out;
  // Vocabulary slots and predicate range folds resolved once for the whole
  // batch (FillRow emits the same doubles as FlatFeatures per mask), then
  // one multi-row GEMM through the net.
  const FlatFeaturePlan plan(featurizer_, graph);
  Matrix x(masks.size(), plan.dim());
  for (size_t r = 0; r < masks.size(); ++r) {
    plan.FillRow(graph, masks[r], x.Row(r));
  }
  const Matrix y = net_->Infer(x);
  out.reserve(masks.size());
  for (size_t r = 0; r < masks.size(); ++r) out.push_back(CardOf(y.At(r, 0)));
  return out;
}

LwXgbEstimator::LwXgbEstimator(const Database& db,
                               const std::vector<TrainingQuery>& training,
                               GbdtOptions options, uint64_t seed)
    : featurizer_(db), gbdt_(options) {
  CARDBENCH_CHECK(!training.empty(), "LW-XGB requires training queries");
  (void)seed;
  Stopwatch watch;
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(training.size());
  for (const auto& example : training) {
    features.push_back(featurizer_.FlatFeatures(example.query));
    targets.push_back(TargetOf(example.cardinality));
  }
  gbdt_.Fit(features, targets);
  train_seconds_ = watch.ElapsedSeconds();
}

Status LwXgbEstimator::IncrementalUpdate(const InsertionBatch& batch) {
  if (batch.refresh_training == nullptr || batch.refresh_training->empty()) {
    return Status::Unsupported(
        "LW-XGB: incremental refresh needs re-labeled training queries "
        "(batch.refresh_training), full retrain required");
  }
  Stopwatch watch;
  const std::vector<TrainingQuery>& training = *batch.refresh_training;
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(training.size());
  for (const auto& example : training) {
    features.push_back(featurizer_.FlatFeatures(example.query));
    targets.push_back(TargetOf(example.cardinality));
  }
  const size_t extra =
      std::max<size_t>(1, gbdt_.options().num_trees / 10);
  gbdt_.BoostMore(features, targets, extra);
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double LwXgbEstimator::EstimateCard(const QueryGraph& graph,
                                    uint64_t mask) const {
  return CardOf(gbdt_.Predict(featurizer_.FlatFeatures(graph, mask)));
}

double LwXgbEstimator::EstimateCard(const Query& subquery) const {
  return CardOf(gbdt_.Predict(featurizer_.FlatFeatures(subquery)));
}

std::vector<double> LwXgbEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  const FlatFeaturePlan plan(featurizer_, graph);
  std::vector<std::vector<double>> rows(
      masks.size(), std::vector<double>(plan.dim(), 0.0));
  for (size_t r = 0; r < masks.size(); ++r) {
    plan.FillRow(graph, masks[r], rows[r].data());
  }
  std::vector<double> out = gbdt_.PredictBatch(rows);
  for (double& v : out) v = CardOf(v);
  return out;
}

LwNnEstimator::LwNnEstimator(const Database& db, LwNnOptions options,
                             DeferredInit)
    : featurizer_(db), options_(options) {
  Rng rng(options_.seed);
  net_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.flat_dim(), options_.hidden_units,
                          options_.hidden_units / 2, 1},
      rng);
}

Status LwNnEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("lwnn");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(options_.hidden_units);
  meta.PutU64(options_.epochs);
  meta.PutU64(options_.batch_size);
  meta.PutDouble(options_.learning_rate);
  meta.PutU64(options_.seed);
  meta.PutDouble(train_seconds_);
  SectionWriter& params = writer.AddSection("params");
  net_->SerializeParams(params);
  return writer.WriteTo(out);
}

Result<std::unique_ptr<LwNnEstimator>> LwNnEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader, ModelReader::Open(in, "lwnn"));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  LwNnOptions options;
  CARDBENCH_ASSIGN_OR_RETURN(options.hidden_units, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.epochs, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.batch_size, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.learning_rate, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(options.seed, meta.GetU64());
  auto est = std::unique_ptr<LwNnEstimator>(
      new LwNnEstimator(db, options, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader params, reader.Section("params"));
  CARDBENCH_RETURN_IF_ERROR(est->net_->LoadParams(params));
  return est;
}

Status LwXgbEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("lwxgb");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutDouble(train_seconds_);
  SectionWriter& params = writer.AddSection("params");
  gbdt_.SerializeParams(params);
  return writer.WriteTo(out);
}

Result<std::unique_ptr<LwXgbEstimator>> LwXgbEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "lwxgb"));
  auto est =
      std::unique_ptr<LwXgbEstimator>(new LwXgbEstimator(db, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader params, reader.Section("params"));
  CARDBENCH_RETURN_IF_ERROR(est->gbdt_.LoadParams(params));
  return est;
}

}  // namespace cardbench
