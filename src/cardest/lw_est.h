#ifndef CARDBENCH_CARDEST_LW_EST_H_
#define CARDBENCH_CARDEST_LW_EST_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/query_features.h"
#include "common/rng.h"
#include "ml/gbdt.h"
#include "ml/nn.h"

namespace cardbench {

/// Training configuration for LW-NN.
struct LwNnOptions {
  size_t hidden_units = 128;
  size_t epochs = 40;
  size_t batch_size = 64;
  double learning_rate = 1e-3;
  uint64_t seed = 13;
};

/// LW-NN (§4.1 method 8, Dutt et al.): a lightweight fully connected
/// network regressing log2(cardinality) from flat query features
/// (tables + joins + normalized predicate ranges). Per the paper's setup,
/// the original single-table model is extended to joins by including the
/// join edges in the featurization.
class LwNnEstimator : public CardinalityEstimator {
 public:
  LwNnEstimator(const Database& db, const std::vector<TrainingQuery>& training,
                LwNnOptions options = LwNnOptions());

  std::string name() const override { return "LW-NN"; }
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: all masks featurized into one (N x flat_dim) matrix, one
  /// forward pass. Bit-identical per row (row-independent GEMM).
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  double TrainSeconds() const override { return train_seconds_; }

  /// Query-driven: refreshing needs re-labeled queries, not raw rows, so the
  /// incremental path requires `batch.refresh_training` to be populated.
  bool SupportsIncrementalUpdate() const override { return true; }
  /// Warm-start fine-tune: continues SGD from the current weights for
  /// ~epochs/10 passes over the refresh workload.
  Status IncrementalUpdate(const InsertionBatch& batch) override;

  /// Persists options + network parameters; the featurizer is rebuilt
  /// deterministically from the database on load.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<LwNnEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: seeded untrained topology, parameters injected afterwards.
  LwNnEstimator(const Database& db, LwNnOptions options, DeferredInit);
  /// Mini-batch SGD over `training`, continuing from the current weights.
  void TrainEpochs(const std::vector<TrainingQuery>& training, size_t epochs,
                   Rng& rng);

  QueryFeaturizer featurizer_;
  LwNnOptions options_;
  std::unique_ptr<Mlp> net_;
  double train_seconds_ = 0.0;
};

/// LW-XGB (§4.1 method 7): the same flat features fed to gradient boosted
/// regression trees (our from-scratch XGBoost-style GBDT).
class LwXgbEstimator : public CardinalityEstimator {
 public:
  LwXgbEstimator(const Database& db,
                 const std::vector<TrainingQuery>& training,
                 GbdtOptions options = GbdtOptions(), uint64_t seed = 17);

  std::string name() const override { return "LW-XGB"; }
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: one tree-major GBDT pass over all featurized masks.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  double TrainSeconds() const override { return train_seconds_; }

  /// Query-driven: refreshing needs re-labeled queries, not raw rows, so the
  /// incremental path requires `batch.refresh_training` to be populated.
  bool SupportsIncrementalUpdate() const override { return true; }
  /// Warm-start boosting: appends ~num_trees/10 rounds fitted to the current
  /// ensemble's residuals on the refresh workload — the existing trees are
  /// untouched, so the refresh costs a tenth of a retrain.
  Status IncrementalUpdate(const InsertionBatch& batch) override;

  /// Persists the fitted tree ensemble; the featurizer is rebuilt
  /// deterministically from the database on load.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<LwXgbEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: empty ensemble, parameters injected afterwards.
  LwXgbEstimator(const Database& db, DeferredInit) : featurizer_(db) {}

  QueryFeaturizer featurizer_;
  GbdtRegressor gbdt_;
  double train_seconds_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_LW_EST_H_
