#include "cardest/model_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "cardest/registry.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixBytes(uint64_t h, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t MixU64(uint64_t h, uint64_t v) { return MixBytes(h, &v, sizeof(v)); }

uint64_t MixString(uint64_t h, std::string_view s) {
  h = MixU64(h, s.size());
  return MixBytes(h, s.data(), s.size());
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

}  // namespace

ModelStore::ModelStore(std::string dir) : dir_(std::move(dir)) {}

std::string ModelStore::PathFor(const std::string& key) const {
  return dir_ + "/" + key + ".cbm";
}

uint64_t ModelStore::DatasetFingerprint(const Database& db) {
  uint64_t h = kFnvOffset;
  h = MixString(h, db.name());
  h = MixU64(h, db.table_names().size());
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    h = MixString(h, name);
    h = MixU64(h, table.num_rows());
    h = MixU64(h, table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      h = MixString(h, col.name());
      h = MixU64(h, static_cast<uint64_t>(col.kind()));
      // Strided value sample: cheap, but any bulk edit (scale change,
      // shuffled load, inserts) shifts it.
      const size_t rows = col.size();
      const size_t stride = rows > 64 ? rows / 64 : 1;
      for (size_t r = 0; r < rows; r += stride) {
        h = MixU64(h, col.IsValid(r)
                          ? static_cast<uint64_t>(col.Get(r)) + 1
                          : 0);
      }
    }
  }
  for (const auto& rel : db.join_relations()) {
    h = MixString(h, rel.left_table);
    h = MixString(h, rel.left_column);
    h = MixString(h, rel.right_table);
    h = MixString(h, rel.right_column);
  }
  return h;
}

uint64_t ModelStore::WorkloadFingerprint(
    const std::vector<TrainingQuery>& training) {
  uint64_t h = kFnvOffset;
  h = MixU64(h, training.size());
  for (const auto& example : training) {
    h = MixString(h, example.query.CanonicalKey());
    h = MixDouble(h, example.cardinality);
  }
  return h;
}

std::string ModelStore::MakeKey(const std::string& estimator,
                                uint64_t dataset_fingerprint,
                                const EstimatorConfig& config,
                                uint64_t workload_fingerprint) {
  uint64_t h = dataset_fingerprint;
  h = MixU64(h, config.fast ? 1 : 0);
  h = MixU64(h, workload_fingerprint);
  std::string key;
  key.reserve(estimator.size() + 17);
  for (char c : estimator) {
    key.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  key.push_back('-');
  key.append(hex);
  return key;
}

std::string ModelStore::MakeLineageKey(const std::string& estimator,
                                       const EstimatorConfig& config) {
  uint64_t h = kFnvOffset;
  h = MixU64(h, config.fast ? 1 : 0);
  std::string key;
  key.reserve(estimator.size() + 17);
  for (char c : estimator) {
    key.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  key.push_back('-');
  key.append(hex);
  return key;
}

std::string ModelStore::VersionPathFor(const std::string& lineage,
                                       uint64_t version) const {
  return dir_ + "/" + lineage + "@v" + std::to_string(version) + ".cbm";
}

namespace {

std::string LatestPointerPath(const std::string& dir,
                              const std::string& lineage) {
  return dir + "/" + lineage + ".latest";
}

// Atomic small-file write: temp in the same directory, then rename.
Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out << contents;
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IOError("short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot install " + path);
  }
  return Status::OK();
}

}  // namespace

Status ModelStore::PersistVersion(const std::string& lineage, uint64_t version,
                                  const CardinalityEstimator& est) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string path = VersionPathFor(lineage, version);
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    const Status serialized = est.Serialize(out);
    if (!serialized.ok()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      // Oracles (TrueCard) have nothing to persist; that is not a failure
      // of the refresh pipeline.
      if (serialized.code() == StatusCode::kUnsupported) return Status::OK();
      return serialized;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot install " + path);
  }
  return AtomicWriteFile(LatestPointerPath(dir_, lineage),
                         std::to_string(version) + "\n");
}

Result<uint64_t> ModelStore::LatestVersion(const std::string& lineage) const {
  std::ifstream in(LatestPointerPath(dir_, lineage));
  if (!in) return Status::NotFound("no latest pointer for " + lineage);
  uint64_t version = 0;
  in >> version;
  if (in.fail()) {
    return Status::IOError("malformed latest pointer for " + lineage);
  }
  return version;
}

Result<std::unique_ptr<CardinalityEstimator>> ModelStore::LoadVersion(
    const std::string& lineage, uint64_t version, const Loader& loader) const {
  const std::string path = VersionPathFor(lineage, version);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no artifact at " + path);
  return loader(in);
}

std::vector<uint64_t> ModelStore::ListVersions(
    const std::string& lineage) const {
  std::vector<uint64_t> versions;
  const std::string prefix = lineage + "@v";
  const std::string suffix = ".cbm";
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return versions;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    versions.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<std::unique_ptr<CardinalityEstimator>> ModelStore::BuildOrLoad(
    const std::string& key, const Builder& builder, const Loader& loader,
    ModelStoreStats* stats) {
  ModelStoreStats local;
  ModelStoreStats& s = stats != nullptr ? *stats : local;
  s = ModelStoreStats();
  s.path = PathFor(key);

  std::error_code ec;
  if (std::filesystem::exists(s.path, ec)) {
    std::ifstream in(s.path, std::ios::binary);
    if (in) {
      Stopwatch watch;
      auto loaded = loader(in);
      if (loaded.ok()) {
        s.loaded = true;
        s.load_seconds = watch.ElapsedSeconds();
        return std::move(loaded).value();
      }
      // Corruption (or stale format) fallback: retrain and rewrite below.
      CARDBENCH_LOG("model store: rejected %s (%s); retraining", s.path.c_str(),
                    loaded.status().ToString().c_str());
      s.rebuilt_after_corruption = true;
    }
  }

  Stopwatch watch;
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<CardinalityEstimator> est,
                             builder());
  s.build_seconds = watch.ElapsedSeconds();

  // Best-effort persist; a failure here leaves the freshly built estimator
  // usable and the previous artifact (if any) untouched.
  std::filesystem::create_directories(dir_, ec);
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp = s.path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      CARDBENCH_LOG("model store: cannot write %s", tmp.c_str());
      return est;
    }
    const Status serialized = est->Serialize(out);
    if (!serialized.ok()) {
      out.close();
      std::filesystem::remove(tmp, ec);
      // Oracle estimators (TrueCard) have nothing to persist; anything else
      // failing to serialize is worth a log line.
      if (serialized.code() != StatusCode::kUnsupported) {
        CARDBENCH_LOG("model store: serialize failed for %s (%s)", key.c_str(),
                      serialized.ToString().c_str());
      }
      return est;
    }
  }
  std::filesystem::rename(tmp, s.path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    CARDBENCH_LOG("model store: cannot install %s", s.path.c_str());
  }
  return est;
}

}  // namespace cardbench
