#ifndef CARDBENCH_CARDEST_MODEL_STORE_H_
#define CARDBENCH_CARDEST_MODEL_STORE_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/query_features.h"
#include "storage/catalog.h"

namespace cardbench {

struct EstimatorConfig;

/// Outcome of one ModelStore::BuildOrLoad call, for Figure-3 style
/// train-vs-load reporting and for tests asserting cache behavior.
struct ModelStoreStats {
  /// True when the estimator came from an on-disk artifact (no training).
  bool loaded = false;
  /// True when an artifact existed but failed validation and the estimator
  /// was retrained (and the artifact rewritten).
  bool rebuilt_after_corruption = false;
  double load_seconds = 0.0;
  double build_seconds = 0.0;
  /// Artifact path for this key (whether or not it existed).
  std::string path;
};

/// Content-addressed store of serialized estimator artifacts. Artifacts are
/// keyed by (estimator name, dataset fingerprint, config, and — for
/// query-driven methods — training-workload fingerprint), so a store
/// directory can safely be shared across datasets and configurations:
/// a key only ever resolves to a model trained under identical inputs.
///
/// Persistence is atomic (temp file + rename), so a crashed or concurrent
/// writer can never leave a half-written artifact under a live key; a
/// corrupted artifact (validated by the CBMD checksums on load) falls back
/// to retraining and is rewritten in place.
class ModelStore {
 public:
  /// `dir` is created on first persist if it does not exist.
  explicit ModelStore(std::string dir);

  const std::string& dir() const { return dir_; }

  using Builder =
      std::function<Result<std::unique_ptr<CardinalityEstimator>>()>;
  using Loader = std::function<Result<std::unique_ptr<CardinalityEstimator>>(
      std::istream&)>;

  /// Returns the artifact for `key` if present and intact (via `loader`);
  /// otherwise invokes `builder`, persists its result and returns it.
  /// Builders whose estimator does not support serialization (TrueCard)
  /// still work — the model is simply never persisted.
  Result<std::unique_ptr<CardinalityEstimator>> BuildOrLoad(
      const std::string& key, const Builder& builder, const Loader& loader,
      ModelStoreStats* stats = nullptr);

  /// Artifact path for a key: <dir>/<key>.cbm.
  std::string PathFor(const std::string& key) const;

  /// FNV-1a over schema and data: table names, row counts, column
  /// names/kinds, and strided value samples. Any dataset edit (scale,
  /// insert, different benchmark) changes the fingerprint.
  static uint64_t DatasetFingerprint(const Database& db);

  /// FNV-1a over the canonical keys and labels of a training workload, so
  /// query-driven models are keyed to what they were trained on.
  static uint64_t WorkloadFingerprint(
      const std::vector<TrainingQuery>& training);

  /// Builds the store key for an estimator instance. `workload_fp` is 0 for
  /// data-driven methods.
  static std::string MakeKey(const std::string& estimator,
                             uint64_t dataset_fingerprint,
                             const EstimatorConfig& config,
                             uint64_t workload_fingerprint = 0);

  // ---- Versioned lineage store (online refresh pipeline) ----
  //
  // A lineage names an estimator's refresh stream independent of the data
  // it was last (re)trained on: key = (estimator name, config). Each
  // refresh persists a new immutable artifact `<lineage>@v<N>.cbm` and
  // atomically repoints the `<lineage>.latest` file at it, so a reader
  // always resolves either the previous complete version or the new
  // complete version — never a torn artifact. Old versions stay on disk
  // for rollback and provenance (ListVersions).

  /// Lineage key: sanitized estimator name + config hash (no dataset or
  /// workload fingerprint — those change on every refresh by design).
  static std::string MakeLineageKey(const std::string& estimator,
                                    const EstimatorConfig& config);

  /// Artifact path of one version: <dir>/<lineage>@v<N>.cbm.
  std::string VersionPathFor(const std::string& lineage,
                             uint64_t version) const;

  /// Persists `est` as `version` of `lineage` (atomic temp + rename), then
  /// atomically rewrites the `.latest` pointer. Estimators that do not
  /// support serialization succeed as a no-op.
  Status PersistVersion(const std::string& lineage, uint64_t version,
                        const CardinalityEstimator& est);

  /// The version the `.latest` pointer names, or NotFound.
  Result<uint64_t> LatestVersion(const std::string& lineage) const;

  /// Loads one persisted version via `loader`.
  Result<std::unique_ptr<CardinalityEstimator>> LoadVersion(
      const std::string& lineage, uint64_t version,
      const Loader& loader) const;

  /// Every persisted version of `lineage`, ascending.
  std::vector<uint64_t> ListVersions(const std::string& lineage) const;

 private:
  std::string dir_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_MODEL_STORE_H_
