#include "cardest/mscn_est.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/simd.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {

Matrix ToMatrix(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows.empty() ? 0 : rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix MeanPool(const Matrix& h) {
  Matrix pooled(1, h.cols());
  const simd::KernelTable& kt = simd::Active();
  for (size_t r = 0; r < h.rows(); ++r) {
    kt.vec_add(pooled.Row(0), h.Row(r), h.cols());
  }
  const double inv = h.rows() > 0 ? 1.0 / static_cast<double>(h.rows()) : 0.0;
  kt.vec_scale(pooled.Row(0), inv, h.cols());
  return pooled;
}

double TargetOf(double cardinality) { return std::log2(1.0 + cardinality); }

}  // namespace

MscnEstimator::MscnEstimator(const Database& db,
                             const std::vector<TrainingQuery>& training,
                             MscnOptions options)
    : featurizer_(db), options_(options) {
  Stopwatch watch;
  Rng rng(options_.seed);
  const size_t h = options_.hidden_units;
  table_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.table_element_dim(), h, h}, rng);
  join_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.join_element_dim(), h, h}, rng);
  pred_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.predicate_element_dim(), h, h}, rng);
  head_ = std::make_unique<Mlp>(std::vector<size_t>{3 * h, 2 * h, 1}, rng);

  CARDBENCH_CHECK(!training.empty(), "MSCN requires training queries");
  TrainEpochs(training, options_.epochs, rng);
  train_seconds_ = watch.ElapsedSeconds();
}

void MscnEstimator::TrainEpochs(const std::vector<TrainingQuery>& training,
                                size_t epochs, Rng& rng) {
  const size_t h = options_.hidden_units;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto order = rng.Permutation(training.size());
    double loss_sum = 0.0;
    for (size_t idx : order) {
      const TrainingQuery& example = training[idx];
      const auto features = featurizer_.MscnFeatures(example.query);
      const Matrix xt = ToMatrix(features.tables);
      const Matrix xj = ToMatrix(features.joins);
      const Matrix xp = ToMatrix(features.predicates);
      const Matrix ht = table_module_->Forward(xt);
      const Matrix hj = join_module_->Forward(xj);
      const Matrix hp = pred_module_->Forward(xp);
      const Matrix pt = MeanPool(ht);
      const Matrix pj = MeanPool(hj);
      const Matrix pp = MeanPool(hp);
      Matrix concat(1, 3 * h);
      for (size_t c = 0; c < h; ++c) {
        concat.At(0, c) = pt.At(0, c);
        concat.At(0, h + c) = pj.At(0, c);
        concat.At(0, 2 * h + c) = pp.At(0, c);
      }
      const Matrix y = head_->Forward(concat);
      const double target = TargetOf(example.cardinality);
      const double diff = y.At(0, 0) - target;
      loss_sum += diff * diff;

      Matrix dy(1, 1);
      dy.At(0, 0) = 2.0 * diff;
      const Matrix dconcat = head_->Backward(dy);
      auto backprop_module = [&](Mlp& module, const Matrix& hidden,
                                 size_t offset) {
        Matrix dh(hidden.rows(), h);
        const double inv =
            hidden.rows() > 0 ? 1.0 / static_cast<double>(hidden.rows()) : 0.0;
        for (size_t r = 0; r < hidden.rows(); ++r) {
          for (size_t c = 0; c < h; ++c) {
            dh.At(r, c) = dconcat.At(0, offset + c) * inv;
          }
        }
        module.Backward(dh);
        module.Step(options_.learning_rate);
      };
      // Backward order mirrors forward caches (one Forward per module).
      backprop_module(*pred_module_, hp, 2 * h);
      backprop_module(*join_module_, hj, h);
      backprop_module(*table_module_, ht, 0);
      head_->Step(options_.learning_rate);
    }
    CARDBENCH_DLOG("MSCN epoch %zu loss %.4f", epoch,
                   loss_sum / static_cast<double>(training.size()));
  }
}

Status MscnEstimator::IncrementalUpdate(const InsertionBatch& batch) {
  if (batch.refresh_training == nullptr || batch.refresh_training->empty()) {
    return Status::Unsupported(
        "MSCN: incremental refresh needs re-labeled training queries "
        "(batch.refresh_training), full retrain required");
  }
  Stopwatch watch;
  // Derive the shuffle stream from (seed, data_version) so the same refresh
  // applied to the same parameters is reproducible, while successive
  // versions see different permutations.
  Rng rng(options_.seed ^ (batch.data_version * 0x9e3779b97f4a7c15ULL));
  const size_t epochs = std::max<size_t>(1, options_.epochs / 10);
  TrainEpochs(*batch.refresh_training, epochs, rng);
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double MscnEstimator::Predict(const Query& query) const {
  return Forward(featurizer_.MscnFeatures(query));
}

double MscnEstimator::Forward(
    const QueryFeaturizer::SetFeatures& features) const {
  const size_t h = options_.hidden_units;
  const Matrix pt = MeanPool(table_module_->Infer(ToMatrix(features.tables)));
  const Matrix pj = MeanPool(join_module_->Infer(ToMatrix(features.joins)));
  const Matrix pp =
      MeanPool(pred_module_->Infer(ToMatrix(features.predicates)));
  Matrix concat(1, 3 * h);
  for (size_t c = 0; c < h; ++c) {
    concat.At(0, c) = pt.At(0, c);
    concat.At(0, h + c) = pj.At(0, c);
    concat.At(0, 2 * h + c) = pp.At(0, c);
  }
  const Matrix y = head_->Infer(concat);
  return std::max(1.0, std::exp2(y.At(0, 0)) - 1.0);
}

double MscnEstimator::EstimateCard(const QueryGraph& graph,
                                   uint64_t mask) const {
  return Forward(featurizer_.MscnFeatures(graph, mask));
}

double MscnEstimator::EstimateCard(const Query& subquery) const {
  return Predict(subquery);
}

std::vector<double> MscnEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  std::vector<double> out;
  if (masks.empty()) return out;
  const size_t h = options_.hidden_units;

  // MSCN's set elements are mask-independent (a table's one-hot + bitmap,
  // an edge's one-hot, a predicate's encoding), so the batch featurizes
  // each distinct element of the masks' union once and runs each module
  // once over those rows. A mask's pooled vector is then a segment mean of
  // its elements' hidden rows — summed in the same order MeanPool sums them
  // and scaled by the same 1/count, and hidden rows don't depend on which
  // batch computed them (row-independent GEMM) — so every mask's forward is
  // bit-identical to its scalar EstimateCard.
  uint64_t union_mask = 0;
  for (uint64_t mask : masks) union_mask |= mask;

  // Element rows are featurized straight into zero-initialized module input
  // matrices through the *ElementInto builders — no per-element vectors on
  // the hot path.
  std::vector<int> table_row(graph.num_tables(), -1);
  Matrix xt(static_cast<size_t>(std::popcount(union_mask)),
            featurizer_.table_element_dim());
  {
    size_t r = 0;
    for (uint64_t rest = union_mask; rest != 0; rest &= rest - 1) {
      const int local = std::countr_zero(rest);
      table_row[local] = static_cast<int>(r);
      featurizer_.MscnTableElementInto(graph.table(local), xt.Row(r));
      ++r;
    }
  }
  const Matrix ht = table_module_->Infer(xt);

  // The trailing all-zero element backs masks with no edge (no predicate):
  // the scalar path pools exactly one zero element there. Zero rows need no
  // writes — Matrix zero-initializes.
  std::vector<int> edge_row(graph.edges().size(), -1);
  size_t num_joins = 0;
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & union_mask) == edge.mask) ++num_joins;
  }
  Matrix xj(num_joins + 1, featurizer_.join_element_dim());
  {
    size_t r = 0;
    for (size_t e = 0; e < graph.edges().size(); ++e) {
      const auto& edge = graph.edges()[e];
      if ((edge.mask & union_mask) != edge.mask) continue;
      edge_row[e] = static_cast<int>(r);
      featurizer_.MscnJoinElementInto(edge, xj.Row(r));
      ++r;
    }
  }
  const size_t zero_join = num_joins;
  const Matrix hj = join_module_->Infer(xj);

  std::vector<int> pred_row(graph.predicates().size(), -1);
  size_t num_preds = 0;
  for (const auto& pred : graph.predicates()) {
    if (((union_mask >> pred.local_table) & 1) != 0) ++num_preds;
  }
  Matrix xp(num_preds + 1, featurizer_.predicate_element_dim());
  {
    size_t r = 0;
    for (size_t p = 0; p < graph.predicates().size(); ++p) {
      const auto& pred = graph.predicates()[p];
      if (((union_mask >> pred.local_table) & 1) == 0) continue;
      pred_row[p] = static_cast<int>(r);
      featurizer_.MscnPredElementInto(pred, xp.Row(r));
      ++r;
    }
  }
  const size_t zero_pred = num_preds;
  const Matrix hp = pred_module_->Infer(xp);

  Matrix concat(masks.size(), 3 * h);
  const simd::KernelTable& kt = simd::Active();
  auto pool_rows = [&](size_t i, size_t offset, const Matrix& hidden,
                       const std::vector<int>& rows_used) {
    // Same additions in the same order as MeanPool (vec_add is elementwise),
    // same 1/count scale — segment pooling stays bit-identical to the
    // scalar path.
    double* dst = concat.Row(i) + offset;
    for (const int r : rows_used) {
      kt.vec_add(dst, hidden.Row(static_cast<size_t>(r)), h);
    }
    const double inv = rows_used.empty()
                           ? 0.0
                           : 1.0 / static_cast<double>(rows_used.size());
    kt.vec_scale(dst, inv, h);
  };
  std::vector<int> rows_used;
  for (size_t i = 0; i < masks.size(); ++i) {
    const uint64_t mask = masks[i];
    rows_used.clear();
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      rows_used.push_back(table_row[std::countr_zero(rest)]);
    }
    pool_rows(i, 0, ht, rows_used);

    rows_used.clear();
    for (size_t e = 0; e < graph.edges().size(); ++e) {
      const auto& edge = graph.edges()[e];
      if ((edge.mask & mask) == edge.mask) rows_used.push_back(edge_row[e]);
    }
    if (rows_used.empty()) rows_used.push_back(static_cast<int>(zero_join));
    pool_rows(i, h, hj, rows_used);

    rows_used.clear();
    for (size_t p = 0; p < graph.predicates().size(); ++p) {
      if (((mask >> graph.predicates()[p].local_table) & 1) != 0) {
        rows_used.push_back(pred_row[p]);
      }
    }
    if (rows_used.empty()) rows_used.push_back(static_cast<int>(zero_pred));
    pool_rows(i, 2 * h, hp, rows_used);
  }

  const Matrix y = head_->Infer(concat);
  out.reserve(masks.size());
  for (size_t r = 0; r < masks.size(); ++r) {
    out.push_back(std::max(1.0, std::exp2(y.At(r, 0)) - 1.0));
  }
  return out;
}

MscnEstimator::MscnEstimator(const Database& db, MscnOptions options,
                             DeferredInit)
    : featurizer_(db), options_(options) {
  Rng rng(options_.seed);
  const size_t h = options_.hidden_units;
  table_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.table_element_dim(), h, h}, rng);
  join_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.join_element_dim(), h, h}, rng);
  pred_module_ = std::make_unique<Mlp>(
      std::vector<size_t>{featurizer_.predicate_element_dim(), h, h}, rng);
  head_ = std::make_unique<Mlp>(std::vector<size_t>{3 * h, 2 * h, 1}, rng);
}

Status MscnEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("mscn");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(options_.hidden_units);
  meta.PutU64(options_.epochs);
  meta.PutDouble(options_.learning_rate);
  meta.PutU64(options_.seed);
  meta.PutDouble(train_seconds_);
  SectionWriter& params = writer.AddSection("params");
  table_module_->SerializeParams(params);
  join_module_->SerializeParams(params);
  pred_module_->SerializeParams(params);
  head_->SerializeParams(params);
  return writer.WriteTo(out);
}

Result<std::unique_ptr<MscnEstimator>> MscnEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader, ModelReader::Open(in, "mscn"));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  MscnOptions options;
  CARDBENCH_ASSIGN_OR_RETURN(options.hidden_units, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.epochs, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(options.learning_rate, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(options.seed, meta.GetU64());
  auto est = std::unique_ptr<MscnEstimator>(
      new MscnEstimator(db, options, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader params, reader.Section("params"));
  CARDBENCH_RETURN_IF_ERROR(est->table_module_->LoadParams(params));
  CARDBENCH_RETURN_IF_ERROR(est->join_module_->LoadParams(params));
  CARDBENCH_RETURN_IF_ERROR(est->pred_module_->LoadParams(params));
  CARDBENCH_RETURN_IF_ERROR(est->head_->LoadParams(params));
  return est;
}

}  // namespace cardbench
