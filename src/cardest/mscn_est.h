#ifndef CARDBENCH_CARDEST_MSCN_EST_H_
#define CARDBENCH_CARDEST_MSCN_EST_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/query_features.h"
#include "ml/nn.h"

namespace cardbench {

class Rng;

/// Training configuration for MSCN.
struct MscnOptions {
  size_t hidden_units = 64;
  size_t epochs = 30;
  double learning_rate = 1e-3;
  uint64_t seed = 11;
};

/// MSCN (§4.1 method 6, Kipf et al.): a multi-set convolutional network —
/// three per-element two-layer MLP modules (table set with sample bitmaps,
/// join set, predicate set), mean-pooled, concatenated into a final MLP
/// that regresses log2(cardinality). Query-driven: trained purely on
/// executed (query, cardinality) pairs.
class MscnEstimator : public CardinalityEstimator {
 public:
  MscnEstimator(const Database& db,
                const std::vector<TrainingQuery>& training,
                MscnOptions options = MscnOptions());

  std::string name() const override { return "MSCN"; }
  /// Mask-based dispatch: features come from the featurizer's graph
  /// overload (dense id-resolved vocabularies), then the same forward pass.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: every mask's set elements are concatenated into one matrix
  /// per module (tables/joins/predicates), each module runs a single
  /// forward pass, per-mask segments are mean-pooled (same summation order
  /// as the scalar path) and the pooled rows feed one head forward pass.
  /// Bit-identical to per-mask EstimateCard: the GEMM is row-independent.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  double TrainSeconds() const override { return train_seconds_; }
  // Query-driven: SupportsUpdate stays false (a plain Update() would need
  // the original training set), but a fine-tune path exists when the caller
  // supplies re-labeled queries alongside the insertion batch.
  /// Requires `batch.refresh_training`; see IncrementalUpdate.
  bool SupportsIncrementalUpdate() const override { return true; }
  /// Fine-tune: runs ~epochs/10 SGD epochs over the refresh workload from
  /// the current parameters (no re-init), shuffled by an RNG derived from
  /// (seed, data_version) so refreshes are deterministic per version.
  Status IncrementalUpdate(const InsertionBatch& batch) override;

  /// Persists options + the four modules' parameters. The featurizer is
  /// rebuilt deterministically from the database on load, so vocabularies
  /// (and therefore feature vectors) match the training-time ones exactly.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<MscnEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: builds the featurizer and untrained module topology (same
  /// seeded init as training), then Deserialize overwrites the parameters.
  MscnEstimator(const Database& db, MscnOptions options, DeferredInit);

  /// Runs `epochs` epochs of per-example SGD over `training`, continuing
  /// from the current parameters (shared by the ctor and IncrementalUpdate).
  void TrainEpochs(const std::vector<TrainingQuery>& training, size_t epochs,
                   Rng& rng);

  /// Forward through one module + mean pooling; returns (1 × hidden).
  Matrix ModuleForward(Mlp& module,
                       const std::vector<std::vector<double>>& elements,
                       Matrix* cache_in) const;
  double Predict(const Query& query) const;
  double Forward(const QueryFeaturizer::SetFeatures& features) const;

  QueryFeaturizer featurizer_;
  MscnOptions options_;
  std::unique_ptr<Mlp> table_module_;
  std::unique_ptr<Mlp> join_module_;
  std::unique_ptr<Mlp> pred_module_;
  std::unique_ptr<Mlp> head_;
  double train_seconds_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_MSCN_EST_H_
