#include "cardest/multihist_est.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>

#include "common/serde.h"
#include "common/stopwatch.h"
#include "ml/clustering.h"

namespace cardbench {

MultiHistEstimator::MultiHistEstimator(const Database& db,
                                       size_t dims_per_group,
                                       size_t bins_per_dim,
                                       double correlation_threshold)
    : db_(db),
      dims_per_group_(dims_per_group),
      bins_per_dim_(bins_per_dim),
      correlation_threshold_(correlation_threshold) {
  Stopwatch watch;
  Build(db);
  train_seconds_ = watch.ElapsedSeconds();
}

void MultiHistEstimator::Build(const Database& db) {
  for (const auto& table_name : db.table_names()) {
    const Table& table = db.TableOrDie(table_name);
    std::vector<size_t> filterable;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnKind kind = table.column(c).kind();
      if (kind == ColumnKind::kNumeric || kind == ColumnKind::kCategorical) {
        filterable.push_back(c);
      }
    }

    // Greedy correlated grouping: a column joins a group if it correlates
    // above threshold with the group's seed.
    const size_t n = table.num_rows();
    const size_t sample = std::min<size_t>(n, 2000);
    const size_t stride = std::max<size_t>(1, n / std::max<size_t>(1, sample));
    auto column_sample = [&](size_t c) {
      std::vector<double> values;
      values.reserve(sample);
      const Column& col = table.column(c);
      for (size_t i = 0; i < n && values.size() < sample; i += stride) {
        values.push_back(col.IsValid(i) ? static_cast<double>(col.Get(i))
                                        : -1e18);
      }
      return values;
    };
    std::vector<std::vector<double>> samples;
    samples.reserve(filterable.size());
    for (size_t c : filterable) samples.push_back(column_sample(c));

    std::vector<bool> taken(filterable.size(), false);
    std::vector<std::vector<size_t>> members;
    for (size_t i = 0; i < filterable.size(); ++i) {
      if (taken[i]) continue;
      taken[i] = true;
      std::vector<size_t> group = {i};
      for (size_t j = i + 1;
           j < filterable.size() && group.size() < dims_per_group_; ++j) {
        if (taken[j]) continue;
        if (DependenceScore(samples[i], samples[j]) >=
            correlation_threshold_) {
          taken[j] = true;
          group.push_back(j);
        }
      }
      members.push_back(std::move(group));
    }

    for (const auto& member : members) {
      Group group;
      const bool multi = member.size() > 1;
      // Multi-dimensional buckets are coarse; single columns keep fine
      // 1-D histograms.
      const size_t bins = multi ? bins_per_dim_ : 100;
      for (size_t m : member) {
        const Column& col = table.column(filterable[m]);
        group.columns.push_back(col.name());
        group.column_ids.push_back(static_cast<int>(filterable[m]));
        group.binners.push_back(std::make_unique<ColumnBinner>(col, bins));
      }
      for (size_t row = 0; row < n; ++row) {
        std::vector<uint16_t> key(member.size());
        for (size_t k = 0; k < member.size(); ++k) {
          const Column& col = table.column(filterable[member[k]]);
          key[k] = group.binners[k]->BinOf(
              col.IsValid(row) ? std::optional<Value>(col.Get(row))
                               : std::nullopt);
        }
        group.joint[key] += 1.0;
      }
      group.total = static_cast<double>(n);
      groups_[table_name].push_back(std::move(group));
    }
  }
  groups_by_id_.clear();
  for (const auto& table_name : db.table_names()) {
    groups_by_id_.push_back(&groups_.at(table_name));
  }
}

Status MultiHistEstimator::Update() {
  Stopwatch watch;
  groups_.clear();
  groups_by_id_.clear();
  Build(db_);
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

Status MultiHistEstimator::IncrementalUpdate(const InsertionBatch& batch) {
  if (batch.IsFullRefresh()) return Update();
  for (const TableDelta& delta : batch.tables) {
    auto it = groups_.find(delta.table);
    if (it == groups_.end()) {
      return Status::NotFound("MultiHist: unknown table " + delta.table);
    }
    const Table& table = db_.TableOrDie(delta.table);
    if (delta.new_num_rows > table.num_rows()) {
      return Status::InvalidArgument(
          "MultiHist: delta row range exceeds table " + delta.table);
    }
    for (Group& group : it->second) {
      std::vector<uint16_t> key(group.column_ids.size());
      for (size_t row = delta.old_num_rows; row < delta.new_num_rows; ++row) {
        for (size_t k = 0; k < group.column_ids.size(); ++k) {
          const Column& col =
              table.column(static_cast<size_t>(group.column_ids[k]));
          key[k] = group.binners[k]->BinOf(
              col.IsValid(row) ? std::optional<Value>(col.Get(row))
                               : std::nullopt);
        }
        group.joint[key] += 1.0;
      }
      group.total += static_cast<double>(delta.inserted_rows());
    }
  }
  return Status::OK();
}

double MultiHistEstimator::GroupSelectivity(
    const Group& group,
    const std::vector<std::vector<Predicate>>& preds) const {
  bool any = false;
  for (const auto& p : preds) any |= !p.empty();
  if (!any) return 1.0;
  if (group.total <= 0) return 0.0;

  std::vector<std::vector<double>> fractions(group.columns.size());
  for (size_t k = 0; k < group.columns.size(); ++k) {
    fractions[k] = group.binners[k]->PredicateFractions(preds[k]);
  }
  double pass = 0.0;
  for (const auto& [key, count] : group.joint) {
    double phi = 1.0;
    for (size_t k = 0; k < key.size(); ++k) phi *= fractions[k][key[k]];
    pass += count * phi;
  }
  return pass / group.total;
}

double MultiHistEstimator::EstimateCard(const QueryGraph& graph,
                                        uint64_t mask) const {
  double card = 1.0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(rest));
    double selectivity = 1.0;
    for (const auto& group : *groups_by_id_[info.table_id]) {
      std::vector<std::vector<Predicate>> preds(group.columns.size());
      for (size_t p = 0; p < info.preds.size(); ++p) {
        for (size_t k = 0; k < group.column_ids.size(); ++k) {
          if (group.column_ids[k] == info.pred_column_ids[p]) {
            preds[k].push_back(info.preds[p]);
          }
        }
      }
      selectivity *= GroupSelectivity(group, preds);
    }
    card *= static_cast<double>(info.table->num_rows()) * selectivity;
  }
  // Join uniformity, like the other histogram methods.
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 edge.left_table->GetIndex(edge.left_column_id)
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 edge.right_table->GetIndex(edge.right_column_id)
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

double MultiHistEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table_name : subquery.tables) {
    const Table& table = db_.TableOrDie(table_name);
    double selectivity = 1.0;
    for (const auto& group : groups_.at(table_name)) {
      std::vector<std::vector<Predicate>> preds(group.columns.size());
      for (const auto& pred : subquery.predicates) {
        if (pred.table != table_name) continue;
        for (size_t k = 0; k < group.columns.size(); ++k) {
          if (group.columns[k] == pred.column) preds[k].push_back(pred);
        }
      }
      selectivity *= GroupSelectivity(group, preds);
    }
    card *= static_cast<double>(table.num_rows()) * selectivity;
  }
  // Join uniformity, like the other histogram methods.
  for (const auto& edge : subquery.joins) {
    const Table& lt = db_.TableOrDie(edge.left_table);
    const Table& rt = db_.TableOrDie(edge.right_table);
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column))
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column))
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

Status MultiHistEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("multihist");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(dims_per_group_);
  meta.PutU64(bins_per_dim_);
  meta.PutDouble(correlation_threshold_);
  meta.PutDouble(train_seconds_);
  SectionWriter& hist = writer.AddSection("groups");
  hist.PutU64(groups_.size());
  for (const auto& [table, groups] : groups_) {
    hist.PutString(table);
    hist.PutU64(groups.size());
    for (const auto& group : groups) {
      hist.PutU64(group.columns.size());
      for (size_t k = 0; k < group.columns.size(); ++k) {
        hist.PutString(group.columns[k]);
        hist.PutI64(group.column_ids[k]);
        group.binners[k]->Serialize(hist);
      }
      hist.PutU64(group.joint.size());
      for (const auto& [key, count] : group.joint) {
        hist.PutU16s(key);
        hist.PutDouble(count);
      }
      hist.PutDouble(group.total);
    }
  }
  return writer.WriteTo(out);
}

Result<std::unique_ptr<MultiHistEstimator>> MultiHistEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "multihist"));
  auto est = std::unique_ptr<MultiHistEstimator>(
      new MultiHistEstimator(db, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(est->dims_per_group_, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(est->bins_per_dim_, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(est->correlation_threshold_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader hist, reader.Section("groups"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_tables, hist.GetU64());
  for (size_t t = 0; t < num_tables; ++t) {
    CARDBENCH_ASSIGN_OR_RETURN(std::string table, hist.GetString());
    if (db.FindTable(table) == nullptr) {
      return Status::NotFound("multihist groups for unknown table " + table);
    }
    CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_groups, hist.GetU64());
    std::vector<Group>& groups = est->groups_[table];
    for (size_t g = 0; g < num_groups; ++g) {
      Group group;
      CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_cols, hist.GetU64());
      for (size_t k = 0; k < num_cols; ++k) {
        CARDBENCH_ASSIGN_OR_RETURN(std::string column, hist.GetString());
        group.columns.push_back(std::move(column));
        CARDBENCH_ASSIGN_OR_RETURN(int64_t column_id, hist.GetI64());
        group.column_ids.push_back(static_cast<int>(column_id));
        CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                                   ColumnBinner::Deserialize(hist));
        group.binners.push_back(
            std::make_unique<ColumnBinner>(std::move(binner)));
      }
      CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_buckets, hist.GetU64());
      for (size_t b = 0; b < num_buckets; ++b) {
        CARDBENCH_ASSIGN_OR_RETURN(std::vector<uint16_t> key, hist.GetU16s());
        CARDBENCH_ASSIGN_OR_RETURN(double count, hist.GetDouble());
        group.joint[std::move(key)] = count;
      }
      CARDBENCH_ASSIGN_OR_RETURN(group.total, hist.GetDouble());
      groups.push_back(std::move(group));
    }
  }
  est->groups_by_id_.clear();
  for (const auto& table_name : db.table_names()) {
    est->groups_by_id_.push_back(&est->groups_[table_name]);
  }
  return est;
}

}  // namespace cardbench
