#include "cardest/multihist_est.h"

#include <algorithm>
#include <bit>

#include "common/stopwatch.h"
#include "ml/clustering.h"

namespace cardbench {

MultiHistEstimator::MultiHistEstimator(const Database& db,
                                       size_t dims_per_group,
                                       size_t bins_per_dim,
                                       double correlation_threshold)
    : db_(db),
      dims_per_group_(dims_per_group),
      bins_per_dim_(bins_per_dim),
      correlation_threshold_(correlation_threshold) {
  Stopwatch watch;
  Build(db);
  train_seconds_ = watch.ElapsedSeconds();
}

void MultiHistEstimator::Build(const Database& db) {
  for (const auto& table_name : db.table_names()) {
    const Table& table = db.TableOrDie(table_name);
    std::vector<size_t> filterable;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnKind kind = table.column(c).kind();
      if (kind == ColumnKind::kNumeric || kind == ColumnKind::kCategorical) {
        filterable.push_back(c);
      }
    }

    // Greedy correlated grouping: a column joins a group if it correlates
    // above threshold with the group's seed.
    const size_t n = table.num_rows();
    const size_t sample = std::min<size_t>(n, 2000);
    const size_t stride = std::max<size_t>(1, n / std::max<size_t>(1, sample));
    auto column_sample = [&](size_t c) {
      std::vector<double> values;
      values.reserve(sample);
      const Column& col = table.column(c);
      for (size_t i = 0; i < n && values.size() < sample; i += stride) {
        values.push_back(col.IsValid(i) ? static_cast<double>(col.Get(i))
                                        : -1e18);
      }
      return values;
    };
    std::vector<std::vector<double>> samples;
    samples.reserve(filterable.size());
    for (size_t c : filterable) samples.push_back(column_sample(c));

    std::vector<bool> taken(filterable.size(), false);
    std::vector<std::vector<size_t>> members;
    for (size_t i = 0; i < filterable.size(); ++i) {
      if (taken[i]) continue;
      taken[i] = true;
      std::vector<size_t> group = {i};
      for (size_t j = i + 1;
           j < filterable.size() && group.size() < dims_per_group_; ++j) {
        if (taken[j]) continue;
        if (DependenceScore(samples[i], samples[j]) >=
            correlation_threshold_) {
          taken[j] = true;
          group.push_back(j);
        }
      }
      members.push_back(std::move(group));
    }

    for (const auto& member : members) {
      Group group;
      const bool multi = member.size() > 1;
      // Multi-dimensional buckets are coarse; single columns keep fine
      // 1-D histograms.
      const size_t bins = multi ? bins_per_dim_ : 100;
      for (size_t m : member) {
        const Column& col = table.column(filterable[m]);
        group.columns.push_back(col.name());
        group.column_ids.push_back(static_cast<int>(filterable[m]));
        group.binners.push_back(std::make_unique<ColumnBinner>(col, bins));
      }
      for (size_t row = 0; row < n; ++row) {
        std::vector<uint16_t> key(member.size());
        for (size_t k = 0; k < member.size(); ++k) {
          const Column& col = table.column(filterable[member[k]]);
          key[k] = group.binners[k]->BinOf(
              col.IsValid(row) ? std::optional<Value>(col.Get(row))
                               : std::nullopt);
        }
        group.joint[key] += 1.0;
      }
      group.total = static_cast<double>(n);
      groups_[table_name].push_back(std::move(group));
    }
  }
  groups_by_id_.clear();
  for (const auto& table_name : db.table_names()) {
    groups_by_id_.push_back(&groups_.at(table_name));
  }
}

double MultiHistEstimator::GroupSelectivity(
    const Group& group,
    const std::vector<std::vector<Predicate>>& preds) const {
  bool any = false;
  for (const auto& p : preds) any |= !p.empty();
  if (!any) return 1.0;
  if (group.total <= 0) return 0.0;

  std::vector<std::vector<double>> fractions(group.columns.size());
  for (size_t k = 0; k < group.columns.size(); ++k) {
    fractions[k] = group.binners[k]->PredicateFractions(preds[k]);
  }
  double pass = 0.0;
  for (const auto& [key, count] : group.joint) {
    double phi = 1.0;
    for (size_t k = 0; k < key.size(); ++k) phi *= fractions[k][key[k]];
    pass += count * phi;
  }
  return pass / group.total;
}

double MultiHistEstimator::EstimateCard(const QueryGraph& graph,
                                        uint64_t mask) const {
  double card = 1.0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(rest));
    double selectivity = 1.0;
    for (const auto& group : *groups_by_id_[info.table_id]) {
      std::vector<std::vector<Predicate>> preds(group.columns.size());
      for (size_t p = 0; p < info.preds.size(); ++p) {
        for (size_t k = 0; k < group.column_ids.size(); ++k) {
          if (group.column_ids[k] == info.pred_column_ids[p]) {
            preds[k].push_back(info.preds[p]);
          }
        }
      }
      selectivity *= GroupSelectivity(group, preds);
    }
    card *= static_cast<double>(info.table->num_rows()) * selectivity;
  }
  // Join uniformity, like the other histogram methods.
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 edge.left_table->GetIndex(edge.left_column_id)
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 edge.right_table->GetIndex(edge.right_column_id)
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

double MultiHistEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table_name : subquery.tables) {
    const Table& table = db_.TableOrDie(table_name);
    double selectivity = 1.0;
    for (const auto& group : groups_.at(table_name)) {
      std::vector<std::vector<Predicate>> preds(group.columns.size());
      for (const auto& pred : subquery.predicates) {
        if (pred.table != table_name) continue;
        for (size_t k = 0; k < group.columns.size(); ++k) {
          if (group.columns[k] == pred.column) preds[k].push_back(pred);
        }
      }
      selectivity *= GroupSelectivity(group, preds);
    }
    card *= static_cast<double>(table.num_rows()) * selectivity;
  }
  // Join uniformity, like the other histogram methods.
  for (const auto& edge : subquery.joins) {
    const Table& lt = db_.TableOrDie(edge.left_table);
    const Table& rt = db_.TableOrDie(edge.right_table);
    const double lndv = std::max<double>(
        1.0, static_cast<double>(
                 lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column))
                     .num_distinct()));
    const double rndv = std::max<double>(
        1.0, static_cast<double>(
                 rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column))
                     .num_distinct()));
    card /= std::max(lndv, rndv);
  }
  return std::max(card, 1e-6);
}

size_t MultiHistEstimator::ModelBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [table, groups] : groups_) {
    for (const auto& group : groups) {
      for (const auto& binner : group.binners) bytes += binner->MemoryBytes();
      for (const auto& [key, count] : group.joint) {
        bytes += key.size() * sizeof(uint16_t) + sizeof(double) + 32;
      }
    }
  }
  return bytes;
}

}  // namespace cardbench
