#ifndef CARDBENCH_CARDEST_MULTIHIST_EST_H_
#define CARDBENCH_CARDEST_MULTIHIST_EST_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardest/binner.h"
#include "cardest/estimator.h"
#include "storage/catalog.h"

namespace cardbench {

/// MultiHist (§4.1 method 2, Poosala & Ioannidis): identifies correlated
/// attribute subsets per table and models each with a multi-dimensional
/// equi-depth histogram (coarse per-dimension bins, sparse joint counts);
/// remaining attributes keep 1-D histograms. Joins use the uniformity
/// assumption, so multi-join error still grows quickly (Table 3's -28%).
class MultiHistEstimator : public CardinalityEstimator {
 public:
  /// `dims_per_group` caps group size; `bins_per_dim` the per-dimension
  /// resolution (multi-dimensional buckets are necessarily coarse — the
  /// classic space tradeoff of this method).
  MultiHistEstimator(const Database& db, size_t dims_per_group = 4,
                     size_t bins_per_dim = 8,
                     double correlation_threshold = 0.3);

  std::string name() const override { return "MultiHist"; }
  /// Mask-based dispatch: groups looked up by table id, predicates matched
  /// to group dimensions by resolved column id.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  double TrainSeconds() const override { return train_seconds_; }

  bool SupportsUpdate() const override { return true; }
  /// Full rebuild: re-derives groupings, binners and joint counts from the
  /// current data (the "full retrain" arm of the drift bench).
  Status Update() override;
  /// Binner merge: the inserted rows of each delta are binned through the
  /// *frozen* per-group binners and added to the joint counts — cost is
  /// O(inserted rows x groups), no re-clustering, no binner rebuild. Bucket
  /// boundaries stay where training put them, so heavy distribution shift
  /// eventually needs the full rebuild; the drift bench measures exactly
  /// that gap.
  Status IncrementalUpdate(const InsertionBatch& batch) override;

  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<MultiHistEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: constructs without building; state injected by Deserialize.
  MultiHistEstimator(const Database& db, DeferredInit)
      : db_(db), dims_per_group_(0), bins_per_dim_(0),
        correlation_threshold_(0.0) {}

  struct Group {
    std::vector<std::string> columns;
    std::vector<int> column_ids;  // resolved at Build, parallel to columns
    std::vector<std::unique_ptr<ColumnBinner>> binners;
    std::map<std::vector<uint16_t>, double> joint;  // bucket counts
    double total = 0.0;
  };

  void Build(const Database& db);
  double GroupSelectivity(const Group& group,
                          const std::vector<std::vector<Predicate>>& preds)
      const;

  const Database& db_;
  size_t dims_per_group_;
  size_t bins_per_dim_;
  double correlation_threshold_;
  double train_seconds_ = 0.0;
  std::map<std::string, std::vector<Group>> groups_;  // per table
  // groups_ entries indexed by global table id (database table order).
  std::vector<const std::vector<Group>*> groups_by_id_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_MULTIHIST_EST_H_
