#ifndef CARDBENCH_CARDEST_NOISY_ORACLE_EST_H_
#define CARDBENCH_CARDEST_NOISY_ORACLE_EST_H_

#include <cmath>
#include <string>

#include "cardest/estimator.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "exec/true_card.h"

namespace cardbench {

/// Sensitivity probe: the exact cardinalities perturbed by log-normal
/// multiplicative noise of a controlled magnitude. Sweeping `sigma` answers
/// the question underlying the paper's O5/O11 analysis — how much
/// estimation error can the optimizer absorb before plans degrade — and
/// grounds the P-Error metric: plans should degrade smoothly in sigma,
/// and P-Error should track that degradation while Q-Error (which grows
/// mechanically with sigma) cannot distinguish harmless from harmful
/// errors.
///
/// Noise is deterministic per sub-plan: the same sub-plan query always
/// receives the same perturbation (a hash of its canonical key seeds the
/// draw), so the optimizer sees a consistent, reproducible "estimator".
class NoisyOracleEstimator : public CardinalityEstimator {
 public:
  /// `sigma` is the standard deviation of the log2-scale noise: sigma = 1
  /// means estimates are typically off by ~2x, sigma = 3 by ~8x.
  NoisyOracleEstimator(TrueCardService& service, double sigma,
                       uint64_t seed = 77)
      : service_(service), sigma_(sigma), seed_(seed) {}

  std::string name() const override {
    return StrFormat("NoisyOracle(%.1f)", sigma_);
  }

  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override {
    auto card = service_.Card(graph, mask);
    if (!card.ok()) return 1.0;
    // Same deterministic draw as the Query overload: the graph's canonical
    // key is byte-identical to the induced sub-query's.
    Rng rng(seed_ ^ Fnv1aHash(graph.CanonicalKey(mask)));
    const double noise = std::exp2(sigma_ * rng.NextGaussian());
    return std::max(1.0, *card * noise);
  }

  double EstimateCard(const Query& subquery) const override {
    auto card = service_.Card(subquery);
    if (!card.ok()) return 1.0;
    // Deterministic per-sub-plan draw.
    Rng rng(seed_ ^ Fnv1aHash(subquery.CanonicalKey()));
    const double noise = std::exp2(sigma_ * rng.NextGaussian());
    return std::max(1.0, *card * noise);
  }

 private:
  TrueCardService& service_;
  double sigma_;
  uint64_t seed_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_NOISY_ORACLE_EST_H_
