#include "cardest/postgres_est.h"

#include <algorithm>
#include <bit>

#include <fstream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/stats.h"

namespace cardbench {

PostgresEstimator::PostgresEstimator(const Database& db, size_t stats_target)
    : db_(db), stats_target_(stats_target) {
  Stopwatch watch;
  Analyze();
  train_seconds_ = watch.ElapsedSeconds();
}

void PostgresEstimator::Analyze() {
  stats_.clear();
  for (const auto& table_name : db_.table_names()) {
    const Table& table = db_.TableOrDie(table_name);
    const double rows = std::max<double>(1.0, static_cast<double>(table.num_rows()));
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      ColumnStatsEntry entry;
      entry.binner = std::make_unique<ColumnBinner>(col, stats_target_);
      entry.null_frac = static_cast<double>(col.null_count()) / rows;
      entry.ndv = std::max<double>(
          1.0, static_cast<double>(ValueFrequencies(col).size()));
      stats_[{table_name, col.name()}] = std::move(entry);
    }
  }
  RebuildIdIndex();
}

void PostgresEstimator::RebuildIdIndex() {
  stats_by_id_.assign(db_.num_tables(), {});
  for (size_t t = 0; t < db_.table_names().size(); ++t) {
    const Table& table = db_.TableOrDie(db_.table_names()[t]);
    stats_by_id_[t].assign(table.num_columns(), nullptr);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      auto it = stats_.find({db_.table_names()[t], table.column(c).name()});
      if (it != stats_.end()) stats_by_id_[t][c] = &it->second;
    }
  }
}

Status PostgresEstimator::Update() {
  Stopwatch watch;
  Analyze();
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double PostgresEstimator::TableSelectivity(const Query& subquery,
                                           const std::string& table) const {
  // Group predicates by column, fold each group through the column's
  // histogram, multiply groups under the attribute-independence assumption.
  std::map<std::string, std::vector<Predicate>> by_column;
  for (const auto& pred : subquery.predicates) {
    if (pred.table == table) by_column[pred.column].push_back(pred);
  }
  double selectivity = 1.0;
  for (const auto& [column, preds] : by_column) {
    auto it = stats_.find({table, column});
    if (it == stats_.end()) continue;
    const ColumnBinner& binner = *it->second.binner;
    const std::vector<double> fractions = binner.PredicateFractions(preds);
    double sel = 0.0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    selectivity *= sel;
  }
  return selectivity;
}

double PostgresEstimator::GraphTableSelectivity(
    const QueryGraph::TableInfo& info) const {
  // Same fold as TableSelectivity: the graph's predicate groups come
  // pre-sorted by column name, matching the std::map iteration order of
  // the string path, so the product accumulates identically.
  double selectivity = 1.0;
  for (const auto& group : info.pred_groups) {
    const ColumnStatsEntry* entry = StatsById(info.table_id, group.column_id);
    if (entry == nullptr) continue;
    const ColumnBinner& binner = *entry->binner;
    const std::vector<double> fractions = binner.PredicateFractions(group.preds);
    double sel = 0.0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    selectivity *= sel;
  }
  return selectivity;
}

double PostgresEstimator::EstimateCard(const QueryGraph& graph,
                                       uint64_t mask) const {
  double card = 1.0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(rest));
    card *= static_cast<double>(info.table->num_rows()) *
            GraphTableSelectivity(info);
  }
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    const ColumnStatsEntry* left =
        StatsById(edge.left_table_id, edge.left_column_id);
    const ColumnStatsEntry* right =
        StatsById(edge.right_table_id, edge.right_column_id);
    CARDBENCH_CHECK(left != nullptr && right != nullptr,
                    "missing join-column statistics");
    card *= (1.0 - left->null_frac) * (1.0 - right->null_frac) /
            std::max(left->ndv, right->ndv);
  }
  return std::max(card, 1e-6);
}

double PostgresEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table : subquery.tables) {
    card *= static_cast<double>(db_.TableOrDie(table).num_rows()) *
            TableSelectivity(subquery, table);
  }
  for (const auto& edge : subquery.joins) {
    const auto& left = stats_.at({edge.left_table, edge.left_column});
    const auto& right = stats_.at({edge.right_table, edge.right_column});
    card *= (1.0 - left.null_frac) * (1.0 - right.null_frac) /
            std::max(left.ndv, right.ndv);
  }
  return std::max(card, 1e-6);
}

Status PostgresEstimator::SaveModel(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "pgstats " << stats_.size() << '\n';
  for (const auto& [key, entry] : stats_) {
    out << key.first << ' ' << key.second << ' ' << entry.ndv << ' '
        << entry.null_frac << '\n';
    entry.binner->Serialize(out);
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::unique_ptr<PostgresEstimator>> PostgresEstimator::LoadModel(
    const Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string tag;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "pgstats") {
    return Status::InvalidArgument("bad model header in " + path);
  }
  // Private-ish construction: build an empty estimator then replace stats.
  auto est = std::unique_ptr<PostgresEstimator>(new PostgresEstimator(db, 2));
  est->stats_.clear();
  for (size_t i = 0; i < count; ++i) {
    std::string table, column;
    ColumnStatsEntry entry;
    if (!(in >> table >> column >> entry.ndv >> entry.null_frac)) {
      return Status::InvalidArgument("bad model entry in " + path);
    }
    CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                               ColumnBinner::Deserialize(in));
    entry.binner = std::make_unique<ColumnBinner>(std::move(binner));
    est->stats_[{table, column}] = std::move(entry);
  }
  est->RebuildIdIndex();
  return est;
}

size_t PostgresEstimator::ModelBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, entry] : stats_) bytes += entry.binner->MemoryBytes();
  return bytes;
}

}  // namespace cardbench
