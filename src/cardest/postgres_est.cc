#include "cardest/postgres_est.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "storage/stats.h"

namespace cardbench {

PostgresEstimator::PostgresEstimator(const Database& db, size_t stats_target)
    : db_(db), stats_target_(stats_target) {
  Stopwatch watch;
  Analyze();
  train_seconds_ = watch.ElapsedSeconds();
}

void PostgresEstimator::Analyze() {
  stats_.clear();
  for (const auto& table_name : db_.table_names()) {
    const Table& table = db_.TableOrDie(table_name);
    const double rows = std::max<double>(1.0, static_cast<double>(table.num_rows()));
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      ColumnStatsEntry entry;
      entry.binner = std::make_unique<ColumnBinner>(col, stats_target_);
      entry.null_frac = static_cast<double>(col.null_count()) / rows;
      entry.ndv = std::max<double>(
          1.0, static_cast<double>(ValueFrequencies(col).size()));
      stats_[{table_name, col.name()}] = std::move(entry);
    }
  }
  RebuildIdIndex();
}

void PostgresEstimator::RebuildIdIndex() {
  stats_by_id_.assign(db_.num_tables(), {});
  for (size_t t = 0; t < db_.table_names().size(); ++t) {
    const Table& table = db_.TableOrDie(db_.table_names()[t]);
    stats_by_id_[t].assign(table.num_columns(), nullptr);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      auto it = stats_.find({db_.table_names()[t], table.column(c).name()});
      if (it != stats_.end()) stats_by_id_[t][c] = &it->second;
    }
  }
}

Status PostgresEstimator::Update() {
  Stopwatch watch;
  Analyze();
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double PostgresEstimator::TableSelectivity(const Query& subquery,
                                           const std::string& table) const {
  // Group predicates by column, fold each group through the column's
  // histogram, multiply groups under the attribute-independence assumption.
  std::map<std::string, std::vector<Predicate>> by_column;
  for (const auto& pred : subquery.predicates) {
    if (pred.table == table) by_column[pred.column].push_back(pred);
  }
  double selectivity = 1.0;
  for (const auto& [column, preds] : by_column) {
    auto it = stats_.find({table, column});
    if (it == stats_.end()) continue;
    const ColumnBinner& binner = *it->second.binner;
    const std::vector<double> fractions = binner.PredicateFractions(preds);
    double sel = 0.0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    selectivity *= sel;
  }
  return selectivity;
}

double PostgresEstimator::GraphTableSelectivity(
    const QueryGraph::TableInfo& info) const {
  // Same fold as TableSelectivity: the graph's predicate groups come
  // pre-sorted by column name, matching the std::map iteration order of
  // the string path, so the product accumulates identically.
  double selectivity = 1.0;
  for (const auto& group : info.pred_groups) {
    const ColumnStatsEntry* entry = StatsById(info.table_id, group.column_id);
    if (entry == nullptr) continue;
    const ColumnBinner& binner = *entry->binner;
    const std::vector<double> fractions = binner.PredicateFractions(group.preds);
    double sel = 0.0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    selectivity *= sel;
  }
  return selectivity;
}

double PostgresEstimator::EstimateCard(const QueryGraph& graph,
                                       uint64_t mask) const {
  double card = 1.0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(rest));
    card *= static_cast<double>(info.table->num_rows()) *
            GraphTableSelectivity(info);
  }
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    const ColumnStatsEntry* left =
        StatsById(edge.left_table_id, edge.left_column_id);
    const ColumnStatsEntry* right =
        StatsById(edge.right_table_id, edge.right_column_id);
    CARDBENCH_CHECK(left != nullptr && right != nullptr,
                    "missing join-column statistics");
    card *= (1.0 - left->null_frac) * (1.0 - right->null_frac) /
            std::max(left->ndv, right->ndv);
  }
  return std::max(card, 1e-6);
}

double PostgresEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table : subquery.tables) {
    card *= static_cast<double>(db_.TableOrDie(table).num_rows()) *
            TableSelectivity(subquery, table);
  }
  for (const auto& edge : subquery.joins) {
    const auto& left = stats_.at({edge.left_table, edge.left_column});
    const auto& right = stats_.at({edge.right_table, edge.right_column});
    card *= (1.0 - left.null_frac) * (1.0 - right.null_frac) /
            std::max(left.ndv, right.ndv);
  }
  return std::max(card, 1e-6);
}

Status PostgresEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("pgstats");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(stats_target_);
  meta.PutDouble(train_seconds_);
  SectionWriter& stats = writer.AddSection("stats");
  stats.PutU64(stats_.size());
  for (const auto& [key, entry] : stats_) {
    stats.PutString(key.first);
    stats.PutString(key.second);
    stats.PutDouble(entry.ndv);
    stats.PutDouble(entry.null_frac);
    entry.binner->Serialize(stats);
  }
  return writer.WriteTo(out);
}

Result<std::unique_ptr<PostgresEstimator>> PostgresEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "pgstats"));
  auto est = std::unique_ptr<PostgresEstimator>(
      new PostgresEstimator(db, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t stats_target, meta.GetU64());
  est->stats_target_ = stats_target;
  CARDBENCH_ASSIGN_OR_RETURN(est->train_seconds_, meta.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader stats, reader.Section("stats"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t count, stats.GetU64());
  for (size_t i = 0; i < count; ++i) {
    CARDBENCH_ASSIGN_OR_RETURN(std::string table, stats.GetString());
    CARDBENCH_ASSIGN_OR_RETURN(std::string column, stats.GetString());
    ColumnStatsEntry entry;
    CARDBENCH_ASSIGN_OR_RETURN(entry.ndv, stats.GetDouble());
    CARDBENCH_ASSIGN_OR_RETURN(entry.null_frac, stats.GetDouble());
    CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                               ColumnBinner::Deserialize(stats));
    entry.binner = std::make_unique<ColumnBinner>(std::move(binner));
    est->stats_[{table, column}] = std::move(entry);
  }
  est->RebuildIdIndex();
  return est;
}

}  // namespace cardbench
