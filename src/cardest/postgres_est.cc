#include "cardest/postgres_est.h"

#include <algorithm>

#include <fstream>

#include "common/stopwatch.h"
#include "storage/stats.h"

namespace cardbench {

PostgresEstimator::PostgresEstimator(const Database& db, size_t stats_target)
    : db_(db), stats_target_(stats_target) {
  Stopwatch watch;
  Analyze();
  train_seconds_ = watch.ElapsedSeconds();
}

void PostgresEstimator::Analyze() {
  stats_.clear();
  for (const auto& table_name : db_.table_names()) {
    const Table& table = db_.TableOrDie(table_name);
    const double rows = std::max<double>(1.0, static_cast<double>(table.num_rows()));
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      ColumnStatsEntry entry;
      entry.binner = std::make_unique<ColumnBinner>(col, stats_target_);
      entry.null_frac = static_cast<double>(col.null_count()) / rows;
      entry.ndv = std::max<double>(
          1.0, static_cast<double>(ValueFrequencies(col).size()));
      stats_[{table_name, col.name()}] = std::move(entry);
    }
  }
}

Status PostgresEstimator::Update() {
  Stopwatch watch;
  Analyze();
  train_seconds_ += watch.ElapsedSeconds();
  return Status::OK();
}

double PostgresEstimator::TableSelectivity(const Query& subquery,
                                           const std::string& table) const {
  // Group predicates by column, fold each group through the column's
  // histogram, multiply groups under the attribute-independence assumption.
  std::map<std::string, std::vector<Predicate>> by_column;
  for (const auto& pred : subquery.predicates) {
    if (pred.table == table) by_column[pred.column].push_back(pred);
  }
  double selectivity = 1.0;
  for (const auto& [column, preds] : by_column) {
    auto it = stats_.find({table, column});
    if (it == stats_.end()) continue;
    const ColumnBinner& binner = *it->second.binner;
    const std::vector<double> fractions = binner.PredicateFractions(preds);
    double sel = 0.0;
    for (uint16_t b = 0; b < binner.num_bins(); ++b) {
      sel += binner.BinMass(b) * fractions[b];
    }
    selectivity *= sel;
  }
  return selectivity;
}

double PostgresEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table : subquery.tables) {
    card *= static_cast<double>(db_.TableOrDie(table).num_rows()) *
            TableSelectivity(subquery, table);
  }
  for (const auto& edge : subquery.joins) {
    const auto& left = stats_.at({edge.left_table, edge.left_column});
    const auto& right = stats_.at({edge.right_table, edge.right_column});
    card *= (1.0 - left.null_frac) * (1.0 - right.null_frac) /
            std::max(left.ndv, right.ndv);
  }
  return std::max(card, 1e-6);
}

Status PostgresEstimator::SaveModel(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "pgstats " << stats_.size() << '\n';
  for (const auto& [key, entry] : stats_) {
    out << key.first << ' ' << key.second << ' ' << entry.ndv << ' '
        << entry.null_frac << '\n';
    entry.binner->Serialize(out);
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::unique_ptr<PostgresEstimator>> PostgresEstimator::LoadModel(
    const Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string tag;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "pgstats") {
    return Status::InvalidArgument("bad model header in " + path);
  }
  // Private-ish construction: build an empty estimator then replace stats.
  auto est = std::unique_ptr<PostgresEstimator>(new PostgresEstimator(db, 2));
  est->stats_.clear();
  for (size_t i = 0; i < count; ++i) {
    std::string table, column;
    ColumnStatsEntry entry;
    if (!(in >> table >> column >> entry.ndv >> entry.null_frac)) {
      return Status::InvalidArgument("bad model entry in " + path);
    }
    CARDBENCH_ASSIGN_OR_RETURN(ColumnBinner binner,
                               ColumnBinner::Deserialize(in));
    entry.binner = std::make_unique<ColumnBinner>(std::move(binner));
    est->stats_[{table, column}] = std::move(entry);
  }
  return est;
}

size_t PostgresEstimator::ModelBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, entry] : stats_) bytes += entry.binner->MemoryBytes();
  return bytes;
}

}  // namespace cardbench
