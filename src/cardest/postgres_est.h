#ifndef CARDBENCH_CARDEST_POSTGRES_EST_H_
#define CARDBENCH_CARDEST_POSTGRES_EST_H_

#include <map>
#include <memory>
#include <string>

#include "cardest/binner.h"
#include "cardest/estimator.h"
#include "storage/catalog.h"

namespace cardbench {

/// The PostgreSQL baseline (§4.1 method 1): per-attribute 1-D statistics
/// (equi-depth histogram with per-value counts, playing the role of
/// pg_stats' MCV list + histogram), attribute-independence multiplication
/// of clause selectivities, and the eqjoinsel formula
/// (1-nullfrac_l)(1-nullfrac_r)/max(ndv_l, ndv_r) per join edge.
class PostgresEstimator : public CardinalityEstimator {
 public:
  /// `stats_target` bounds histogram resolution, like PostgreSQL's
  /// default_statistics_target (default 100).
  explicit PostgresEstimator(const Database& db, size_t stats_target = 100);

  std::string name() const override { return "PostgreSQL"; }
  double EstimateCard(const Query& subquery) const override;
  size_t ModelBytes() const override;
  double TrainSeconds() const override { return train_seconds_; }
  bool SupportsUpdate() const override { return true; }
  /// Re-ANALYZE: rebuilds all per-column statistics.
  Status Update() override;

  /// Selectivity of the predicate conjunction on one table (exposed for
  /// reuse by the sampling/bound estimators that share PostgreSQL's
  /// single-table machinery, and for tests).
  double TableSelectivity(const Query& subquery,
                          const std::string& table) const;

  /// Persists the collected statistics (the "model") to a file and restores
  /// an estimator from one — deployment without re-ANALYZE (§4.3's model
  /// transfer aspect). The database is still needed for table row counts.
  Status SaveModel(const std::string& path) const;
  static Result<std::unique_ptr<PostgresEstimator>> LoadModel(
      const Database& db, const std::string& path);

 private:
  void Analyze();

  struct ColumnStatsEntry {
    std::unique_ptr<ColumnBinner> binner;
    double ndv = 1.0;
    double null_frac = 0.0;
  };

  const Database& db_;
  size_t stats_target_;
  double train_seconds_ = 0.0;
  // (table, column) -> stats for every column (join keys included: joins
  // need ndv/nullfrac).
  std::map<std::pair<std::string, std::string>, ColumnStatsEntry> stats_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_POSTGRES_EST_H_
