#ifndef CARDBENCH_CARDEST_POSTGRES_EST_H_
#define CARDBENCH_CARDEST_POSTGRES_EST_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cardest/binner.h"
#include "cardest/estimator.h"
#include "storage/catalog.h"

namespace cardbench {

/// The PostgreSQL baseline (§4.1 method 1): per-attribute 1-D statistics
/// (equi-depth histogram with per-value counts, playing the role of
/// pg_stats' MCV list + histogram), attribute-independence multiplication
/// of clause selectivities, and the eqjoinsel formula
/// (1-nullfrac_l)(1-nullfrac_r)/max(ndv_l, ndv_r) per join edge.
class PostgresEstimator : public CardinalityEstimator {
 public:
  /// `stats_target` bounds histogram resolution, like PostgreSQL's
  /// default_statistics_target (default 100).
  explicit PostgresEstimator(const Database& db, size_t stats_target = 100);

  std::string name() const override { return "PostgreSQL"; }
  /// Mask-based dispatch: per-table selectivities from the graph's
  /// pre-resolved predicate groups, eqjoinsel per in-mask edge through a
  /// dense (table_id, column_id) statistics index — no name lookups.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  double TrainSeconds() const override { return train_seconds_; }
  bool SupportsUpdate() const override { return true; }
  /// Re-ANALYZE: rebuilds all per-column statistics.
  Status Update() override;

  /// Selectivity of the predicate conjunction on one table (exposed for
  /// reuse by the sampling/bound estimators that share PostgreSQL's
  /// single-table machinery, and for tests).
  double TableSelectivity(const Query& subquery,
                          const std::string& table) const;

  /// Persists the collected statistics (the "model") as a CBMD artifact and
  /// restores an estimator from one — deployment without re-ANALYZE (§4.3's
  /// model transfer aspect). The database is still needed for table row
  /// counts.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<PostgresEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: constructs without ANALYZE; state injected by Deserialize.
  PostgresEstimator(const Database& db, DeferredInit)
      : db_(db), stats_target_(0) {}

  void Analyze();

  struct ColumnStatsEntry {
    std::unique_ptr<ColumnBinner> binner;
    double ndv = 1.0;
    double null_frac = 0.0;
  };

  /// Rebuilds the dense (table_id, column_id) view over stats_ — called
  /// whenever stats_ is replaced (Analyze, LoadModel).
  void RebuildIdIndex();
  const ColumnStatsEntry* StatsById(int table_id, int column_id) const {
    return stats_by_id_[table_id][column_id];
  }
  double GraphTableSelectivity(const QueryGraph::TableInfo& info) const;

  const Database& db_;
  size_t stats_target_;
  double train_seconds_ = 0.0;
  // (table, column) -> stats for every column (join keys included: joins
  // need ndv/nullfrac).
  std::map<std::pair<std::string, std::string>, ColumnStatsEntry> stats_;
  // Dense id-indexed pointers into stats_ (nullptr where absent), indexed
  // [table_id][column_id] in database order.
  std::vector<std::vector<const ColumnStatsEntry*>> stats_by_id_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_POSTGRES_EST_H_
