#include "cardest/query_features.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/arena.h"
#include "common/logging.h"
#include "storage/filter.h"
#include "storage/stats.h"

namespace cardbench {

std::string QueryFeaturizer::EdgeKey(const JoinEdge& edge) {
  const std::string a = edge.left_table + "." + edge.left_column;
  const std::string b = edge.right_table + "." + edge.right_column;
  return a < b ? a + "=" + b : b + "=" + a;
}

QueryFeaturizer::QueryFeaturizer(const Database& db, uint64_t seed,
                                 size_t bitmap_size)
    : db_(db), bitmap_size_(bitmap_size) {
  Rng rng(seed);
  for (const auto& name : db.table_names()) {
    table_index_[name] = table_index_.size();
    const Table& table = db.TableOrDie(name);
    std::vector<uint32_t>& rows = bitmap_rows_[name];
    for (size_t i = 0; i < bitmap_size_; ++i) {
      if (table.num_rows() == 0) {
        rows.push_back(0);
      } else {
        rows.push_back(static_cast<uint32_t>(rng.NextUint64(table.num_rows())));
      }
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.kind() != ColumnKind::kNumeric &&
          col.kind() != ColumnKind::kCategorical) {
        continue;
      }
      column_index_[{name, col.name()}] = column_index_.size();
      const ColumnStats stats = ComputeColumnStats(col);
      ColumnInfo info;
      info.min = static_cast<double>(stats.min);
      info.max = std::max(static_cast<double>(stats.max), info.min + 1.0);
      column_info_[{name, col.name()}] = info;
    }
  }
  // Dense id-indexed views for the graph path.
  table_slot_.clear();
  bitmap_by_id_.clear();
  column_slot_.clear();
  column_info_by_id_.clear();
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    table_slot_.push_back(table_index_.at(name));
    bitmap_by_id_.push_back(&bitmap_rows_.at(name));
    std::vector<int> slots(table.num_columns(), -1);
    std::vector<const ColumnInfo*> infos(table.num_columns(), nullptr);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      auto it = column_index_.find({name, table.column(c).name()});
      if (it == column_index_.end()) continue;
      slots[c] = static_cast<int>(it->second);
      infos[c] = &column_info_.at({name, table.column(c).name()});
    }
    column_slot_.push_back(std::move(slots));
    column_info_by_id_.push_back(std::move(infos));
  }
  // Join vocabulary: all join-compatible unordered column pairs.
  for (const auto& group : JoinColumnGroups(db)) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (group[i].table == group[j].table) continue;
        JoinEdge edge{group[i].table, group[i].column, group[j].table,
                      group[j].column};
        const std::string key = EdgeKey(edge);
        if (join_index_.count(key) == 0) {
          join_index_[key] = join_index_.size();
        }
      }
    }
  }
}

size_t QueryFeaturizer::flat_dim() const {
  return table_index_.size() + join_index_.size() + 3 * column_index_.size();
}

std::vector<double> QueryFeaturizer::FlatFeatures(const Query& query) const {
  std::vector<double> features(flat_dim(), 0.0);
  for (const auto& table : query.tables) {
    auto it = table_index_.find(table);
    if (it != table_index_.end()) features[it->second] = 1.0;
  }
  const size_t join_base = table_index_.size();
  for (const auto& edge : query.joins) {
    auto it = join_index_.find(EdgeKey(edge));
    if (it != join_index_.end()) features[join_base + it->second] = 1.0;
  }
  const size_t col_base = join_base + join_index_.size();
  // Fold predicates per column into a normalized range.
  std::map<std::pair<std::string, std::string>, ValueRange> ranges;
  for (const auto& pred : query.predicates) {
    if (pred.op == CompareOp::kNeq) {
      // Represent <> as "has predicate" with the full range.
      ranges.try_emplace({pred.table, pred.column});
      continue;
    }
    ranges[{pred.table, pred.column}].Apply(pred.op, pred.value);
  }
  // Default encoding for unconstrained columns: has_pred=0, lo=0, hi=1.
  for (const auto& [key, idx] : column_index_) {
    features[col_base + 3 * idx + 1] = 0.0;
    features[col_base + 3 * idx + 2] = 1.0;
  }
  for (const auto& [key, range] : ranges) {
    auto it = column_index_.find(key);
    if (it == column_index_.end()) continue;
    const ColumnInfo& info = column_info_.at(key);
    auto norm = [&](double v) {
      return std::clamp((v - info.min) / (info.max - info.min), 0.0, 1.0);
    };
    features[col_base + 3 * it->second] = 1.0;
    features[col_base + 3 * it->second + 1] =
        norm(static_cast<double>(range.lo));
    features[col_base + 3 * it->second + 2] =
        norm(static_cast<double>(range.hi));
  }
  return features;
}

std::vector<double> QueryFeaturizer::FlatFeatures(const QueryGraph& graph,
                                                  uint64_t mask) const {
  std::vector<double> features(flat_dim(), 0.0);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    features[table_slot_[graph.table(std::countr_zero(rest)).table_id]] = 1.0;
  }
  const size_t join_base = table_index_.size();
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    auto it = join_index_.find(edge.canonical);
    if (it != join_index_.end()) features[join_base + it->second] = 1.0;
  }
  const size_t col_base = join_base + join_index_.size();
  // Fold predicates per column into a normalized range (resolved ids; same
  // per-column Apply order as the name-keyed path).
  std::map<std::pair<int, int>, ValueRange> ranges;
  for (const auto& pred : graph.predicates()) {
    if (((mask >> pred.local_table) & 1) == 0) continue;
    if (pred.pred.op == CompareOp::kNeq) {
      // Represent <> as "has predicate" with the full range.
      ranges.try_emplace({pred.table_id, pred.column_id});
      continue;
    }
    ranges[{pred.table_id, pred.column_id}].Apply(pred.pred.op,
                                                  pred.pred.value);
  }
  // Default encoding for unconstrained columns: has_pred=0, lo=0, hi=1.
  for (const auto& [key, idx] : column_index_) {
    features[col_base + 3 * idx + 1] = 0.0;
    features[col_base + 3 * idx + 2] = 1.0;
  }
  for (const auto& [key, range] : ranges) {
    const int slot = column_slot_[key.first][key.second];
    if (slot < 0) continue;
    const ColumnInfo& info = *column_info_by_id_[key.first][key.second];
    auto norm = [&](double v) {
      return std::clamp((v - info.min) / (info.max - info.min), 0.0, 1.0);
    };
    features[col_base + 3 * slot] = 1.0;
    features[col_base + 3 * slot + 1] = norm(static_cast<double>(range.lo));
    features[col_base + 3 * slot + 2] = norm(static_cast<double>(range.hi));
  }
  return features;
}

std::vector<double> QueryFeaturizer::MscnTableElement(
    const QueryGraph::TableInfo& info) const {
  std::vector<double> element(table_element_dim(), 0.0);
  MscnTableElementInto(info, element.data());
  return element;
}

std::vector<double> QueryFeaturizer::MscnJoinElement(
    const QueryGraph::EdgeInfo& edge) const {
  std::vector<double> element(join_element_dim(), 0.0);
  MscnJoinElementInto(edge, element.data());
  return element;
}

std::vector<double> QueryFeaturizer::MscnPredElement(
    const QueryGraph::PredInfo& pred) const {
  std::vector<double> element(predicate_element_dim(), 0.0);
  MscnPredElementInto(pred, element.data());
  return element;
}

void QueryFeaturizer::MscnTableElementInto(const QueryGraph::TableInfo& info,
                                           double* out) const {
  // One-hot table plus predicate-satisfaction bitmap over the table's
  // materialized sample, evaluated through the graph's pre-bound compiled
  // predicates. The sample is refined as one batch through the storage
  // filter kernels (arena scratch, unwound on return); a two-pointer walk
  // over the surviving subsequence then sets the per-sample bits —
  // duplicate sampled rows are unambiguous because equal row ids always
  // share one pass/fail outcome.
  out[table_slot_[info.table_id]] = 1.0;
  const auto& rows = *bitmap_by_id_[info.table_id];
  if (info.table->num_rows() == 0 || rows.empty()) return;
  double* bits = out + table_index_.size();
  if (info.compiled.empty()) {
    for (size_t i = 0; i < rows.size(); ++i) bits[i] = 1.0;
    return;
  }
  ArenaFrame frame(&ThreadLocalArena());
  uint32_t* passing = frame.arena()->AllocateArray<uint32_t>(rows.size());
  std::memcpy(passing, rows.data(), rows.size() * sizeof(uint32_t));
  const size_t count =
      FilterRowsConjunction(info.compiled, passing, rows.size());
  size_t j = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (j < count && passing[j] == rows[i]) {
      bits[i] = 1.0;
      ++j;
    }
  }
}

void QueryFeaturizer::MscnJoinElementInto(const QueryGraph::EdgeInfo& edge,
                                          double* out) const {
  auto it = join_index_.find(edge.canonical);
  if (it != join_index_.end()) out[it->second] = 1.0;
}

void QueryFeaturizer::MscnPredElementInto(const QueryGraph::PredInfo& pred,
                                          double* out) const {
  const int slot = column_slot_[pred.table_id][pred.column_id];
  if (slot >= 0) out[static_cast<size_t>(slot)] = 1.0;
  out[column_index_.size() + static_cast<size_t>(pred.pred.op)] = 1.0;
  const ColumnInfo* info = column_info_by_id_[pred.table_id][pred.column_id];
  if (info != nullptr) {
    out[column_index_.size() + 6] =
        std::clamp((static_cast<double>(pred.pred.value) - info->min) /
                       (info->max - info->min),
                   0.0, 1.0);
  }
}

QueryFeaturizer::SetFeatures QueryFeaturizer::MscnFeatures(
    const QueryGraph& graph, uint64_t mask) const {
  SetFeatures out;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    out.tables.push_back(
        MscnTableElement(graph.table(std::countr_zero(rest))));
  }
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    out.joins.push_back(MscnJoinElement(edge));
  }
  if (out.joins.empty()) {
    out.joins.push_back(std::vector<double>(join_element_dim(), 0.0));
  }
  for (const auto& pred : graph.predicates()) {
    if (((mask >> pred.local_table) & 1) == 0) continue;
    out.predicates.push_back(MscnPredElement(pred));
  }
  if (out.predicates.empty()) {
    out.predicates.push_back(
        std::vector<double>(predicate_element_dim(), 0.0));
  }
  return out;
}

FlatFeaturePlan::FlatFeaturePlan(const QueryFeaturizer& featurizer,
                                 const QueryGraph& graph) {
  // The default row: no tables, no joins, every column unconstrained
  // (has_pred=0, lo=0, hi=1) — exactly what FlatFeatures writes before the
  // range overrides.
  base_.assign(featurizer.flat_dim(), 0.0);
  const size_t join_base = featurizer.table_index_.size();
  const size_t col_base = join_base + featurizer.join_index_.size();
  for (const auto& [key, idx] : featurizer.column_index_) {
    base_[col_base + 3 * idx + 1] = 0.0;
    base_[col_base + 3 * idx + 2] = 1.0;
  }

  // Per local table: the one-hot slot plus the folded ranges of its
  // predicated columns. A column's range only folds predicates of its own
  // table, in query order — the same fold FlatFeatures runs per mask.
  table_patches_.resize(graph.num_tables());
  for (size_t local = 0; local < graph.num_tables(); ++local) {
    auto& patches = table_patches_[local];
    patches.emplace_back(
        featurizer.table_slot_[graph.table(local).table_id], 1.0);
    std::map<std::pair<int, int>, ValueRange> ranges;
    for (const auto& pred : graph.predicates()) {
      if (pred.local_table != static_cast<int>(local)) continue;
      if (pred.pred.op == CompareOp::kNeq) {
        ranges.try_emplace({pred.table_id, pred.column_id});
        continue;
      }
      ranges[{pred.table_id, pred.column_id}].Apply(pred.pred.op,
                                                    pred.pred.value);
    }
    for (const auto& [key, range] : ranges) {
      const int slot = featurizer.column_slot_[key.first][key.second];
      if (slot < 0) continue;
      const QueryFeaturizer::ColumnInfo& info =
          *featurizer.column_info_by_id_[key.first][key.second];
      auto norm = [&](double v) {
        return std::clamp((v - info.min) / (info.max - info.min), 0.0, 1.0);
      };
      patches.emplace_back(col_base + 3 * slot, 1.0);
      patches.emplace_back(col_base + 3 * slot + 1,
                           norm(static_cast<double>(range.lo)));
      patches.emplace_back(col_base + 3 * slot + 2,
                           norm(static_cast<double>(range.hi)));
    }
  }

  edge_slots_.reserve(graph.edges().size());
  for (const auto& edge : graph.edges()) {
    auto it = featurizer.join_index_.find(edge.canonical);
    edge_slots_.push_back(
        it == featurizer.join_index_.end()
            ? -1
            : static_cast<int>(join_base + it->second));
  }
}

void FlatFeaturePlan::FillRow(const QueryGraph& graph, uint64_t mask,
                              double* row) const {
  std::copy(base_.begin(), base_.end(), row);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    for (const auto& [idx, value] : table_patches_[std::countr_zero(rest)]) {
      row[idx] = value;
    }
  }
  const auto& edges = graph.edges();
  for (size_t e = 0; e < edges.size(); ++e) {
    if ((edges[e].mask & mask) != edges[e].mask) continue;
    if (edge_slots_[e] >= 0) row[edge_slots_[e]] = 1.0;
  }
}

QueryFeaturizer::SetFeatures QueryFeaturizer::MscnFeatures(
    const Query& query) const {
  SetFeatures out;

  // Table elements: one-hot table plus predicate-satisfaction bitmap over
  // the table's materialized sample (MSCN's signature feature).
  for (const auto& table_name : query.tables) {
    std::vector<double> element(table_element_dim(), 0.0);
    auto it = table_index_.find(table_name);
    if (it != table_index_.end()) element[it->second] = 1.0;
    const Table& table = db_.TableOrDie(table_name);
    const auto& rows = bitmap_rows_.at(table_name);
    const auto compiled =
        CompilePredicatesFor(table, table_name, query.predicates);
    for (size_t i = 0; i < rows.size(); ++i) {
      const bool pass =
          table.num_rows() > 0 && RowPassesCompiled(compiled, rows[i]);
      element[table_index_.size() + i] = pass ? 1.0 : 0.0;
    }
    out.tables.push_back(std::move(element));
  }

  for (const auto& edge : query.joins) {
    std::vector<double> element(join_element_dim(), 0.0);
    auto it = join_index_.find(EdgeKey(edge));
    if (it != join_index_.end()) element[it->second] = 1.0;
    out.joins.push_back(std::move(element));
  }
  if (out.joins.empty()) {
    out.joins.push_back(std::vector<double>(join_element_dim(), 0.0));
  }

  for (const auto& pred : query.predicates) {
    std::vector<double> element(predicate_element_dim(), 0.0);
    auto it = column_index_.find({pred.table, pred.column});
    if (it != column_index_.end()) element[it->second] = 1.0;
    element[column_index_.size() + static_cast<size_t>(pred.op)] = 1.0;
    const auto info_it = column_info_.find({pred.table, pred.column});
    if (info_it != column_info_.end()) {
      const ColumnInfo& info = info_it->second;
      element[column_index_.size() + 6] =
          std::clamp((static_cast<double>(pred.value) - info.min) /
                         (info.max - info.min),
                     0.0, 1.0);
    }
    out.predicates.push_back(std::move(element));
  }
  if (out.predicates.empty()) {
    out.predicates.push_back(
        std::vector<double>(predicate_element_dim(), 0.0));
  }
  return out;
}

}  // namespace cardbench
