#ifndef CARDBENCH_CARDEST_QUERY_FEATURES_H_
#define CARDBENCH_CARDEST_QUERY_FEATURES_H_

#include <map>
#include <string>
#include <vector>

#include "cardest/extended_table.h"
#include "common/rng.h"
#include "query/query.h"
#include "query/query_graph.h"
#include "storage/catalog.h"

namespace cardbench {

/// A training example for query-driven estimators: a query and its true
/// cardinality (the paper's executed-query training data, §4.1).
struct TrainingQuery {
  Query query;
  double cardinality = 0.0;
};

/// Shared featurization for the query-driven estimators (MSCN, LW-NN,
/// LW-XGB), built once per database:
///  - table vocabulary (one-hot),
///  - join vocabulary: every join-compatible column pair of the schema,
///  - per filterable column: [has predicate, normalized lo, normalized hi],
///  - per table: a small materialized row sample for MSCN's bitmap feature.
class QueryFeaturizer {
 public:
  explicit QueryFeaturizer(const Database& db, uint64_t seed = 3,
                           size_t bitmap_size = 64);

  /// Flat feature vector for LW-style regressors.
  std::vector<double> FlatFeatures(const Query& query) const;
  /// Mask-based variant: vocabulary slots resolved through dense
  /// (table_id, column_id) tables and the graph's precomputed canonical
  /// edge keys; element values and orders match the Query path exactly.
  std::vector<double> FlatFeatures(const QueryGraph& graph,
                                   uint64_t mask) const;
  size_t flat_dim() const;

  /// Per-set element features for MSCN's three modules. Empty sets are
  /// represented by one all-zero element so pooling stays defined.
  struct SetFeatures {
    std::vector<std::vector<double>> tables;
    std::vector<std::vector<double>> joins;
    std::vector<std::vector<double>> predicates;
  };
  SetFeatures MscnFeatures(const Query& query) const;
  SetFeatures MscnFeatures(const QueryGraph& graph, uint64_t mask) const;

  /// Per-element builders of the graph path. A sub-plan's MSCN element
  /// vectors are mask-independent — a table's one-hot + bitmap, an edge's
  /// one-hot, a predicate's encoding never change across the sub-plans of
  /// one query — so batch callers featurize each distinct element once and
  /// gather. MscnFeatures(graph, mask) is defined in terms of these, which
  /// is what keeps the batched path bit-identical.
  std::vector<double> MscnTableElement(const QueryGraph::TableInfo& info) const;
  std::vector<double> MscnJoinElement(const QueryGraph::EdgeInfo& edge) const;
  std::vector<double> MscnPredElement(const QueryGraph::PredInfo& pred) const;

  /// Raw-row variants writing into `out[0..*_element_dim())`, which must be
  /// zero-initialized (only the non-zero entries are written — batch callers
  /// featurize straight into zero-initialized Matrix rows, no copies). The
  /// vector builders above delegate here. The table variant evaluates the
  /// sample bitmap through the batched storage filter kernels on the
  /// thread's arena instead of row-at-a-time predicate evaluation.
  void MscnTableElementInto(const QueryGraph::TableInfo& info,
                            double* out) const;
  void MscnJoinElementInto(const QueryGraph::EdgeInfo& edge, double* out) const;
  void MscnPredElementInto(const QueryGraph::PredInfo& pred, double* out) const;
  size_t table_element_dim() const { return table_index_.size() + bitmap_size_; }
  size_t join_element_dim() const { return join_index_.size(); }
  size_t predicate_element_dim() const { return column_index_.size() + 6 + 1; }

 private:
  friend class FlatFeaturePlan;

  /// Canonical key of a join edge (endpoint-sorted).
  static std::string EdgeKey(const JoinEdge& edge);

  struct ColumnInfo {
    double min = 0.0;
    double max = 1.0;
  };

  const Database& db_;
  size_t bitmap_size_;
  std::map<std::string, size_t> table_index_;
  std::map<std::string, size_t> join_index_;
  std::map<std::pair<std::string, std::string>, size_t> column_index_;
  std::map<std::pair<std::string, std::string>, ColumnInfo> column_info_;
  // Per table: sampled row ids for the bitmap feature.
  std::map<std::string, std::vector<uint32_t>> bitmap_rows_;
  // Dense views over the vocabularies for the graph path, indexed by global
  // table id (and column id), built alongside the maps above.
  std::vector<size_t> table_slot_;
  std::vector<const std::vector<uint32_t>*> bitmap_by_id_;
  std::vector<std::vector<int>> column_slot_;  // -1: not in the vocabulary
  std::vector<std::vector<const ColumnInfo*>> column_info_by_id_;
};

/// Resolve-once flat featurization for one query: vocabulary lookups and
/// the per-table predicate range folds happen once at construction, and
/// each mask's feature row is then the default row plus the sparse patches
/// of the mask's tables and edges. FillRow produces the same doubles as
/// QueryFeaturizer::FlatFeatures(graph, mask) — the batched LW estimators
/// depend on that for batch-vs-scalar parity.
class FlatFeaturePlan {
 public:
  FlatFeaturePlan(const QueryFeaturizer& featurizer, const QueryGraph& graph);

  size_t dim() const { return base_.size(); }

  /// Writes the mask's flat feature vector over row[0..dim()).
  void FillRow(const QueryGraph& graph, uint64_t mask, double* row) const;

 private:
  std::vector<double> base_;  ///< all-unconstrained defaults
  /// Per local table: (flat index, value) writes covering its one-hot slot
  /// and the folded ranges of its predicated columns.
  std::vector<std::vector<std::pair<size_t, double>>> table_patches_;
  std::vector<int> edge_slots_;  ///< per edge: flat index, -1 if unknown
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_QUERY_FEATURES_H_
