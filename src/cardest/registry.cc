#include "cardest/registry.h"

#include <istream>

#include "cardest/autoregressive_est.h"
#include "cardest/bayescard_est.h"
#include "cardest/deepdb_est.h"
#include "cardest/lw_est.h"
#include "cardest/model_store.h"
#include "cardest/mscn_est.h"
#include "cardest/multihist_est.h"
#include "cardest/postgres_est.h"
#include "cardest/sampling_est.h"
#include "cardest/truecard_est.h"

namespace cardbench {

namespace {

/// Upcasts a typed Deserialize result to the base-class Result.
template <typename T>
Result<std::unique_ptr<CardinalityEstimator>> AsBase(
    Result<std::unique_ptr<T>> result) {
  CARDBENCH_RETURN_IF_ERROR(result.status());
  return std::unique_ptr<CardinalityEstimator>(std::move(result).value());
}

}  // namespace

const std::vector<std::string>& AllEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "PostgreSQL", "TrueCard",  "MultiHist", "UniSample", "WJSample",
      "PessEst",    "MSCN",      "LW-XGB",    "LW-NN",     "UAE-Q",
      "NeuroCardE", "BayesCard", "DeepDB",    "FLAT",      "UAE",
  };
  return *names;
}

bool EstimatorNeedsTraining(const std::string& name) {
  return name == "MSCN" || name == "LW-NN" || name == "LW-XGB" ||
         name == "UAE-Q" || name == "UAE";
}

/// The training/construction paths, shared by the direct and store-backed
/// entry points.
static Result<std::unique_ptr<CardinalityEstimator>> BuildEstimator(
    const std::string& name, const Database& db, TrueCardService& truecard,
    const std::vector<TrainingQuery>* training,
    const EstimatorConfig& config) {
  auto require_training = [&]() -> Status {
    if (training == nullptr || training->empty()) {
      return Status::InvalidArgument(name + " needs a training workload");
    }
    return Status::OK();
  };

  if (name == "TrueCard") {
    return std::unique_ptr<CardinalityEstimator>(
        new TrueCardEstimator(truecard));
  }
  if (name == "PostgreSQL") {
    return std::unique_ptr<CardinalityEstimator>(new PostgresEstimator(db));
  }
  if (name == "MultiHist") {
    return std::unique_ptr<CardinalityEstimator>(new MultiHistEstimator(db));
  }
  if (name == "UniSample") {
    return std::unique_ptr<CardinalityEstimator>(
        new UniSampleEstimator(db, config.fast ? 1000 : 10000));
  }
  if (name == "WJSample") {
    return std::unique_ptr<CardinalityEstimator>(
        new WjSampleEstimator(db, config.fast ? 100 : 600));
  }
  if (name == "PessEst") {
    return std::unique_ptr<CardinalityEstimator>(new PessEstEstimator(db));
  }
  if (name == "MSCN") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    MscnOptions options;
    if (config.fast) options.epochs = 3;
    return std::unique_ptr<CardinalityEstimator>(
        new MscnEstimator(db, *training, options));
  }
  if (name == "LW-NN") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    LwNnOptions options;
    if (config.fast) options.epochs = 5;
    return std::unique_ptr<CardinalityEstimator>(
        new LwNnEstimator(db, *training, options));
  }
  if (name == "LW-XGB") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    GbdtOptions options;
    if (config.fast) options.num_trees = 20;
    return std::unique_ptr<CardinalityEstimator>(
        new LwXgbEstimator(db, *training, options));
  }
  if (name == "BayesCard") {
    return std::unique_ptr<CardinalityEstimator>(new BayesCardEstimator(db));
  }
  if (name == "DeepDB") {
    return std::unique_ptr<CardinalityEstimator>(new DeepDbEstimator(db));
  }
  if (name == "FLAT") {
    return std::unique_ptr<CardinalityEstimator>(new FlatEstimator(db));
  }
  if (name == "NeuroCardE" || name == "UAE-Q" || name == "UAE") {
    ArOptions options;
    if (config.fast) {
      options.training_samples = 1500;
      options.epochs = 2;
      options.hidden_units = 48;
      options.progressive_samples = 64;
    }
    ArTraining mode = ArTraining::kData;
    if (name == "UAE-Q") mode = ArTraining::kQuery;
    if (name == "UAE") mode = ArTraining::kHybrid;
    if (mode != ArTraining::kData) {
      CARDBENCH_RETURN_IF_ERROR(require_training());
    }
    return std::unique_ptr<CardinalityEstimator>(
        new AutoregressiveEstimator(db, mode, training, options));
  }
  return Status::NotFound("unknown estimator: " + name);
}

Result<std::unique_ptr<CardinalityEstimator>> DeserializeEstimator(
    const std::string& name, const Database& db, std::istream& in) {
  Result<std::unique_ptr<CardinalityEstimator>> result =
      Status::Unsupported(name + " does not support serialization");
  if (name == "PostgreSQL") {
    result = AsBase(PostgresEstimator::Deserialize(db, in));
  } else if (name == "MultiHist") {
    result = AsBase(MultiHistEstimator::Deserialize(db, in));
  } else if (name == "UniSample") {
    result = AsBase(UniSampleEstimator::Deserialize(db, in));
  } else if (name == "WJSample") {
    result = AsBase(WjSampleEstimator::Deserialize(db, in));
  } else if (name == "PessEst") {
    result = AsBase(PessEstEstimator::Deserialize(db, in));
  } else if (name == "MSCN") {
    result = AsBase(MscnEstimator::Deserialize(db, in));
  } else if (name == "LW-NN") {
    result = AsBase(LwNnEstimator::Deserialize(db, in));
  } else if (name == "LW-XGB") {
    result = AsBase(LwXgbEstimator::Deserialize(db, in));
  } else if (name == "BayesCard") {
    result = AsBase(BayesCardEstimator::Deserialize(db, in));
  } else if (name == "DeepDB") {
    result = AsBase(DeepDbEstimator::Deserialize(db, in));
  } else if (name == "FLAT") {
    result = AsBase(FlatEstimator::Deserialize(db, in));
  } else if (name == "NeuroCardE" || name == "UAE-Q" || name == "UAE") {
    result = AsBase(AutoregressiveEstimator::Deserialize(db, in));
  } else if (name != "TrueCard") {
    return Status::NotFound("unknown estimator: " + name);
  }
  CARDBENCH_RETURN_IF_ERROR(result.status());
  // The AR family shares one tag; a UAE artifact must not serve NeuroCardE.
  if ((*result)->name() != name) {
    return Status::InvalidArgument("artifact holds " + (*result)->name() +
                                   ", expected " + name);
  }
  return result;
}

Result<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const Database& db, TrueCardService& truecard,
    const std::vector<TrainingQuery>* training, const EstimatorConfig& config,
    ModelStore* store, ModelStoreStats* stats) {
  if (store == nullptr || name == "TrueCard") {
    return BuildEstimator(name, db, truecard, training, config);
  }
  const uint64_t dataset_fp = ModelStore::DatasetFingerprint(db);
  const uint64_t workload_fp =
      EstimatorNeedsTraining(name) && training != nullptr
          ? ModelStore::WorkloadFingerprint(*training)
          : 0;
  const std::string key =
      ModelStore::MakeKey(name, dataset_fp, config, workload_fp);
  return store->BuildOrLoad(
      key,
      [&] { return BuildEstimator(name, db, truecard, training, config); },
      [&](std::istream& in) { return DeserializeEstimator(name, db, in); },
      stats);
}

}  // namespace cardbench
