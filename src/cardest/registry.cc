#include "cardest/registry.h"

#include "cardest/autoregressive_est.h"
#include "cardest/bayescard_est.h"
#include "cardest/deepdb_est.h"
#include "cardest/lw_est.h"
#include "cardest/mscn_est.h"
#include "cardest/multihist_est.h"
#include "cardest/postgres_est.h"
#include "cardest/sampling_est.h"
#include "cardest/truecard_est.h"

namespace cardbench {

const std::vector<std::string>& AllEstimatorNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "PostgreSQL", "TrueCard",  "MultiHist", "UniSample", "WJSample",
      "PessEst",    "MSCN",      "LW-XGB",    "LW-NN",     "UAE-Q",
      "NeuroCardE", "BayesCard", "DeepDB",    "FLAT",      "UAE",
  };
  return *names;
}

Result<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const Database& db, TrueCardService& truecard,
    const std::vector<TrainingQuery>* training,
    const EstimatorConfig& config) {
  auto require_training = [&]() -> Status {
    if (training == nullptr || training->empty()) {
      return Status::InvalidArgument(name + " needs a training workload");
    }
    return Status::OK();
  };

  if (name == "TrueCard") {
    return std::unique_ptr<CardinalityEstimator>(
        new TrueCardEstimator(truecard));
  }
  if (name == "PostgreSQL") {
    return std::unique_ptr<CardinalityEstimator>(new PostgresEstimator(db));
  }
  if (name == "MultiHist") {
    return std::unique_ptr<CardinalityEstimator>(new MultiHistEstimator(db));
  }
  if (name == "UniSample") {
    return std::unique_ptr<CardinalityEstimator>(
        new UniSampleEstimator(db, config.fast ? 1000 : 10000));
  }
  if (name == "WJSample") {
    return std::unique_ptr<CardinalityEstimator>(
        new WjSampleEstimator(db, config.fast ? 100 : 600));
  }
  if (name == "PessEst") {
    return std::unique_ptr<CardinalityEstimator>(new PessEstEstimator(db));
  }
  if (name == "MSCN") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    MscnOptions options;
    if (config.fast) options.epochs = 3;
    return std::unique_ptr<CardinalityEstimator>(
        new MscnEstimator(db, *training, options));
  }
  if (name == "LW-NN") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    LwNnOptions options;
    if (config.fast) options.epochs = 5;
    return std::unique_ptr<CardinalityEstimator>(
        new LwNnEstimator(db, *training, options));
  }
  if (name == "LW-XGB") {
    CARDBENCH_RETURN_IF_ERROR(require_training());
    GbdtOptions options;
    if (config.fast) options.num_trees = 20;
    return std::unique_ptr<CardinalityEstimator>(
        new LwXgbEstimator(db, *training, options));
  }
  if (name == "BayesCard") {
    return std::unique_ptr<CardinalityEstimator>(new BayesCardEstimator(db));
  }
  if (name == "DeepDB") {
    return std::unique_ptr<CardinalityEstimator>(new DeepDbEstimator(db));
  }
  if (name == "FLAT") {
    return std::unique_ptr<CardinalityEstimator>(new FlatEstimator(db));
  }
  if (name == "NeuroCardE" || name == "UAE-Q" || name == "UAE") {
    ArOptions options;
    if (config.fast) {
      options.training_samples = 1500;
      options.epochs = 2;
      options.hidden_units = 48;
      options.progressive_samples = 64;
    }
    ArTraining mode = ArTraining::kData;
    if (name == "UAE-Q") mode = ArTraining::kQuery;
    if (name == "UAE") mode = ArTraining::kHybrid;
    if (mode != ArTraining::kData) {
      CARDBENCH_RETURN_IF_ERROR(require_training());
    }
    return std::unique_ptr<CardinalityEstimator>(
        new AutoregressiveEstimator(db, mode, training, options));
  }
  return Status::NotFound("unknown estimator: " + name);
}

}  // namespace cardbench
