#ifndef CARDBENCH_CARDEST_REGISTRY_H_
#define CARDBENCH_CARDEST_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/query_features.h"
#include "exec/true_card.h"
#include "storage/catalog.h"

namespace cardbench {

/// Construction-time knobs shared across the zoo.
struct EstimatorConfig {
  /// Shrinks learned models (fewer epochs/samples) for tests and smoke
  /// runs; benches default to false.
  bool fast = false;
};

/// All method names in the paper's Table 3 order.
const std::vector<std::string>& AllEstimatorNames();

/// Instantiates (and trains, where applicable) the named estimator.
/// `truecard` backs the TrueCard oracle; `training` supplies the executed
/// query workload for the query-driven methods (may be null for the rest).
Result<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const Database& db, TrueCardService& truecard,
    const std::vector<TrainingQuery>* training,
    const EstimatorConfig& config = EstimatorConfig());

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_REGISTRY_H_
