#ifndef CARDBENCH_CARDEST_REGISTRY_H_
#define CARDBENCH_CARDEST_REGISTRY_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cardest/estimator.h"
#include "cardest/query_features.h"
#include "exec/true_card.h"
#include "storage/catalog.h"

namespace cardbench {

class ModelStore;
struct ModelStoreStats;

/// Construction-time knobs shared across the zoo.
struct EstimatorConfig {
  /// Shrinks learned models (fewer epochs/samples) for tests and smoke
  /// runs; benches default to false.
  bool fast = false;
};

/// All method names in the paper's Table 3 order.
const std::vector<std::string>& AllEstimatorNames();

/// True for methods trained on executed (query, cardinality) pairs — their
/// model artifacts are additionally keyed by the training workload.
bool EstimatorNeedsTraining(const std::string& name);

/// Instantiates (and trains, where applicable) the named estimator.
/// `truecard` backs the TrueCard oracle; `training` supplies the executed
/// query workload for the query-driven methods (may be null for the rest).
///
/// With a non-null `store`, construction goes through
/// ModelStore::BuildOrLoad: an intact artifact for this (name, dataset,
/// config, workload) is deserialized instead of trained, and freshly
/// trained models are persisted for the next run. `stats`, when non-null,
/// reports which path was taken and how long it took.
Result<std::unique_ptr<CardinalityEstimator>> MakeEstimator(
    const std::string& name, const Database& db, TrueCardService& truecard,
    const std::vector<TrainingQuery>* training,
    const EstimatorConfig& config = EstimatorConfig(),
    ModelStore* store = nullptr, ModelStoreStats* stats = nullptr);

/// Restores the named estimator from a CBMD artifact stream (the inverse of
/// CardinalityEstimator::Serialize). Fails with Unsupported for the oracle,
/// and with InvalidArgument/IOError on mismatched or mutilated artifacts.
Result<std::unique_ptr<CardinalityEstimator>> DeserializeEstimator(
    const std::string& name, const Database& db, std::istream& in);

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_REGISTRY_H_
