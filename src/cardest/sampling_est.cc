#include "cardest/sampling_est.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <queue>
#include <set>

#include "cardest/extended_table.h"
#include "common/arena.h"
#include "common/logging.h"
#include "common/serde.h"
#include "common/str_util.h"
#include "storage/filter.h"

namespace cardbench {

namespace {

double JoinUniformitySelectivity(const Database& db, const JoinEdge& edge) {
  const Table& lt = db.TableOrDie(edge.left_table);
  const Table& rt = db.TableOrDie(edge.right_table);
  const double lndv = std::max<double>(
      1.0,
      static_cast<double>(
          lt.GetIndex(lt.ColumnIndexOrDie(edge.left_column)).num_distinct()));
  const double rndv = std::max<double>(
      1.0,
      static_cast<double>(
          rt.GetIndex(rt.ColumnIndexOrDie(edge.right_column)).num_distinct()));
  return 1.0 / std::max(lndv, rndv);
}

/// BFS spanning tree of the query graph rooted at `root`: returns edges in
/// visit order as (edge, new table) pairs plus the unused (non-tree) edges.
struct QueryTree {
  std::vector<std::pair<JoinEdge, std::string>> steps;
  std::vector<JoinEdge> non_tree;
};

QueryTree BuildQueryTree(const Query& query, const std::string& root) {
  QueryTree tree;
  std::set<std::string> visited = {root};
  std::queue<std::string> frontier;
  frontier.push(root);
  std::vector<bool> used(query.joins.size(), false);
  while (!frontier.empty()) {
    const std::string at = frontier.front();
    frontier.pop();
    for (size_t e = 0; e < query.joins.size(); ++e) {
      if (used[e]) continue;
      const JoinEdge& edge = query.joins[e];
      std::string other;
      if (edge.left_table == at) {
        other = edge.right_table;
      } else if (edge.right_table == at) {
        other = edge.left_table;
      } else {
        continue;
      }
      if (visited.count(other) > 0) continue;
      used[e] = true;
      visited.insert(other);
      tree.steps.push_back({edge, other});
      frontier.push(other);
    }
  }
  for (size_t e = 0; e < query.joins.size(); ++e) {
    if (!used[e]) tree.non_tree.push_back(query.joins[e]);
  }
  return tree;
}

double GraphJoinUniformitySelectivity(const QueryGraph::EdgeInfo& edge) {
  const double lndv = std::max<double>(
      1.0, static_cast<double>(
               edge.left_table->GetIndex(edge.left_column_id).num_distinct()));
  const double rndv = std::max<double>(
      1.0, static_cast<double>(
               edge.right_table->GetIndex(edge.right_column_id).num_distinct()));
  return 1.0 / std::max(lndv, rndv);
}

/// BuildQueryTree over a compiled graph restricted to `mask`: BFS in the
/// same visit order as the string version runs on the induced sub-query
/// (edges considered in query order per frontier table), but over local
/// table ids with no name comparisons.
struct GraphQueryTree {
  struct Step {
    const QueryGraph::EdgeInfo* edge;
    int next_local;
  };
  std::vector<Step> steps;
  std::vector<const QueryGraph::EdgeInfo*> non_tree;
};

GraphQueryTree BuildGraphQueryTree(const QueryGraph& graph, uint64_t mask,
                                   int root_local) {
  GraphQueryTree tree;
  uint64_t visited = uint64_t{1} << root_local;
  std::queue<int> frontier;
  frontier.push(root_local);
  std::vector<bool> used(graph.edges().size(), false);
  while (!frontier.empty()) {
    const int at = frontier.front();
    frontier.pop();
    for (size_t e = 0; e < graph.edges().size(); ++e) {
      if (used[e]) continue;
      const QueryGraph::EdgeInfo& edge = graph.edges()[e];
      if ((edge.mask & mask) != edge.mask) continue;  // not in the sub-plan
      int other;
      if (edge.left_local == at) {
        other = edge.right_local;
      } else if (edge.right_local == at) {
        other = edge.left_local;
      } else {
        continue;
      }
      if (visited & (uint64_t{1} << other)) continue;
      used[e] = true;
      visited |= uint64_t{1} << other;
      tree.steps.push_back({&edge, other});
      frontier.push(other);
    }
  }
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    const QueryGraph::EdgeInfo& edge = graph.edges()[e];
    if (!used[e] && (edge.mask & mask) == edge.mask) {
      tree.non_tree.push_back(&edge);
    }
  }
  return tree;
}

}  // namespace

// ----------------------------------------------------------- UniSample

UniSampleEstimator::UniSampleEstimator(const Database& db, size_t sample_size,
                                       uint64_t seed)
    : db_(db), sample_size_(sample_size), seed_(seed), rng_(seed) {
  Resample();
}

void UniSampleEstimator::Resample() {
  samples_.clear();
  for (const auto& name : db_.table_names()) {
    const size_t n = db_.TableOrDie(name).num_rows();
    std::vector<uint32_t>& sample = samples_[name];
    if (n <= sample_size_) {
      sample.resize(n);
      for (size_t i = 0; i < n; ++i) sample[i] = static_cast<uint32_t>(i);
    } else {
      sample.reserve(sample_size_);
      for (size_t i = 0; i < sample_size_; ++i) {
        sample.push_back(static_cast<uint32_t>(rng_.NextUint64(n)));
      }
    }
  }
  // Id-indexed view for mask-based dispatch (map nodes are stable).
  samples_by_id_.clear();
  samples_by_id_.reserve(db_.num_tables());
  for (const auto& name : db_.table_names()) {
    samples_by_id_.push_back(&samples_.at(name));
  }
}

double UniSampleEstimator::EstimateCard(const QueryGraph& graph,
                                        uint64_t mask) const {
  double card = 1.0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const QueryGraph::TableInfo& info = graph.table(std::countr_zero(rest));
    const std::vector<uint32_t>& sample = *samples_by_id_[info.table_id];
    // Probe scratch lives on the thread's arena: the sample copy is released
    // when the frame unwinds, so repeated probes allocate zero heap.
    ArenaFrame frame(&ThreadLocalArena());
    uint32_t* passing = frame.arena()->AllocateArray<uint32_t>(sample.size());
    std::memcpy(passing, sample.data(), sample.size() * sizeof(uint32_t));
    const size_t pass =
        FilterRowsConjunction(info.compiled, passing, sample.size());
    const double sel = sample.empty()
                           ? 1.0
                           : static_cast<double>(pass) /
                                 static_cast<double>(sample.size());
    card *= static_cast<double>(info.table->num_rows()) * sel;
  }
  for (const auto& edge : graph.edges()) {
    if ((edge.mask & mask) != edge.mask) continue;
    card *= GraphJoinUniformitySelectivity(edge);
  }
  return std::max(card, 1e-6);
}

std::vector<double> UniSampleEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  std::vector<double> out;
  out.reserve(masks.size());
  uint64_t union_mask = 0;
  for (uint64_t mask : masks) union_mask |= mask;

  // One sample probe per table of the batch: rows x sampled selectivity,
  // exactly the factor the scalar path multiplies in per table.
  std::vector<double> contribution(graph.num_tables(), 1.0);
  for (uint64_t rest = union_mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    const QueryGraph::TableInfo& info = graph.table(local);
    const std::vector<uint32_t>& sample = *samples_by_id_[info.table_id];
    ArenaFrame frame(&ThreadLocalArena());
    uint32_t* passing = frame.arena()->AllocateArray<uint32_t>(sample.size());
    std::memcpy(passing, sample.data(), sample.size() * sizeof(uint32_t));
    const size_t pass =
        FilterRowsConjunction(info.compiled, passing, sample.size());
    const double sel = sample.empty()
                           ? 1.0
                           : static_cast<double>(pass) /
                                 static_cast<double>(sample.size());
    contribution[local] = static_cast<double>(info.table->num_rows()) * sel;
  }
  // One uniformity selectivity per edge of the query.
  std::vector<double> edge_sel;
  edge_sel.reserve(graph.edges().size());
  for (const auto& edge : graph.edges()) {
    edge_sel.push_back(GraphJoinUniformitySelectivity(edge));
  }

  for (uint64_t mask : masks) {
    double card = 1.0;
    for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
      card *= contribution[std::countr_zero(rest)];
    }
    for (size_t e = 0; e < graph.edges().size(); ++e) {
      if ((graph.edges()[e].mask & mask) != graph.edges()[e].mask) continue;
      card *= edge_sel[e];
    }
    out.push_back(std::max(card, 1e-6));
  }
  return out;
}

Status UniSampleEstimator::Update() {
  Resample();
  return Status::OK();
}

Status UniSampleEstimator::IncrementalUpdate(const InsertionBatch& batch) {
  if (batch.IsFullRefresh()) {
    Resample();
    return Status::OK();
  }
  for (const TableDelta& delta : batch.tables) {
    auto it = samples_.find(delta.table);
    if (it == samples_.end()) {
      return Status::NotFound("UniSample: unknown table " + delta.table);
    }
    std::vector<uint32_t>& sample = it->second;
    const size_t n0 = delta.old_num_rows;
    const size_t n1 = delta.new_num_rows;
    if (n1 <= n0) continue;
    if (n1 <= sample_size_) {
      // Still below the sample budget: the sample is the identity map and
      // simply absorbs every inserted row id.
      for (size_t r = sample.size(); r < n1; ++r) {
        sample.push_back(static_cast<uint32_t>(r));
      }
      continue;
    }
    if (n0 <= sample_size_) {
      // Identity -> sampled transition (rare, once per table): redraw.
      sample.clear();
      sample.reserve(sample_size_);
      for (size_t i = 0; i < sample_size_; ++i) {
        sample.push_back(static_cast<uint32_t>(rng_.NextUint64(n1)));
      }
      continue;
    }
    // The sample is sample_size_ iid draws from [0, n0). U[0, n1) is the
    // mixture (n0/n1) * U[0, n0) + p * U[n0, n1) with p = (n1-n0)/n1, so
    // keeping each slot with probability n0/n1 and redrawing the rest
    // uniformly from the *inserted* range [n0, n1) yields iid draws from
    // [0, n1) — exactly the distribution a full Resample produces.
    // Geometric skips visit only the ~s * p slots that redraw, so the
    // refresh cost tracks the insertion fraction instead of the sample
    // size.
    const double p =
        static_cast<double>(n1 - n0) / static_cast<double>(n1);
    if (p <= 0.0) continue;
    const double inv_log1mp = 1.0 / std::log1p(-p);
    size_t idx = 0;
    while (idx < sample.size()) {
      const double u = std::max(rng_.NextDouble(), 1e-18);
      const double skip = std::floor(std::log(u) * inv_log1mp);
      if (skip >= static_cast<double>(sample.size() - idx)) break;
      idx += static_cast<size_t>(skip);
      sample[idx] =
          static_cast<uint32_t>(n0 + rng_.NextUint64(n1 - n0));
      ++idx;
    }
  }
  // samples_by_id_ points at map nodes (stable under in-place mutation);
  // nothing to rebuild.
  return Status::OK();
}

double UniSampleEstimator::EstimateCard(const Query& subquery) const {
  double card = 1.0;
  for (const auto& table_name : subquery.tables) {
    const Table& table = db_.TableOrDie(table_name);
    const auto& sample = samples_.at(table_name);
    const auto compiled =
        CompilePredicatesFor(table, table_name, subquery.predicates);
    ArenaFrame frame(&ThreadLocalArena());
    uint32_t* passing = frame.arena()->AllocateArray<uint32_t>(sample.size());
    std::memcpy(passing, sample.data(), sample.size() * sizeof(uint32_t));
    const size_t pass = FilterRowsConjunction(compiled, passing, sample.size());
    const double sel = sample.empty()
                           ? 1.0
                           : static_cast<double>(pass) /
                                 static_cast<double>(sample.size());
    card *= static_cast<double>(table.num_rows()) * sel;
  }
  for (const auto& edge : subquery.joins) {
    card *= JoinUniformitySelectivity(db_, edge);
  }
  return std::max(card, 1e-6);
}

Status UniSampleEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("unisample");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(sample_size_);
  meta.PutU64(seed_);
  SectionWriter& samples = writer.AddSection("samples");
  samples.PutU64(samples_.size());
  for (const auto& [name, sample] : samples_) {
    samples.PutString(name);
    samples.PutU32s(sample);
  }
  return writer.WriteTo(out);
}

Result<std::unique_ptr<UniSampleEstimator>> UniSampleEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "unisample"));
  auto est = std::unique_ptr<UniSampleEstimator>(
      new UniSampleEstimator(db, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(est->sample_size_, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(est->seed_, meta.GetU64());
  est->rng_ = Rng(est->seed_);
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader samples, reader.Section("samples"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_tables, samples.GetU64());
  for (size_t t = 0; t < num_tables; ++t) {
    CARDBENCH_ASSIGN_OR_RETURN(std::string name, samples.GetString());
    const Table* table = db.FindTable(name);
    if (table == nullptr) {
      return Status::NotFound("sample for unknown table " + name);
    }
    CARDBENCH_ASSIGN_OR_RETURN(std::vector<uint32_t> sample,
                               samples.GetU32s());
    for (uint32_t row : sample) {
      if (row >= table->num_rows()) {
        return Status::InvalidArgument("sample row id out of range for " +
                                       name);
      }
    }
    est->samples_[name] = std::move(sample);
  }
  est->samples_by_id_.clear();
  est->samples_by_id_.reserve(db.num_tables());
  for (const auto& name : db.table_names()) {
    if (est->samples_.find(name) == est->samples_.end()) {
      return Status::InvalidArgument("artifact is missing a sample for " +
                                     name);
    }
    est->samples_by_id_.push_back(&est->samples_.at(name));
  }
  return est;
}

// ------------------------------------------------------------ WJSample

WjSampleEstimator::WjSampleEstimator(const Database& db, size_t num_walks,
                                     uint64_t seed)
    : db_(db), num_walks_(num_walks), seed_(seed) {}

Status WjSampleEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("wjsample");
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutU64(num_walks_);
  meta.PutU64(seed_);
  return writer.WriteTo(out);
}

Result<std::unique_ptr<WjSampleEstimator>> WjSampleEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "wjsample"));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_walks, meta.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t seed, meta.GetU64());
  return std::make_unique<WjSampleEstimator>(db, num_walks, seed);
}

double WjSampleEstimator::EstimateCard(const QueryGraph& graph,
                                       uint64_t mask) const {
  // Same per-sub-plan generator as the string path: the graph's canonical
  // key is byte-identical to the induced sub-query's, so the walks (and
  // therefore the estimate) match exactly.
  Rng rng(seed_ ^ Fnv1aHash(graph.CanonicalKey(mask)));
  // Root the walk at the smallest table (fewer wasted walks).
  int root = std::countr_zero(mask);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    if (graph.table(local).table->num_rows() <
        graph.table(root).table->num_rows()) {
      root = local;
    }
  }
  const GraphQueryTree tree = BuildGraphQueryTree(graph, mask, root);
  const Table& root_table = *graph.table(root).table;
  if (root_table.num_rows() == 0) return 1e-6;

  // Filter conjunctions come pre-compiled from the graph; walks check
  // single rows against them.
  double total = 0.0;
  std::vector<uint32_t> walk_rows(graph.num_tables(), 0);
  for (size_t w = 0; w < num_walks_; ++w) {
    const uint32_t start =
        static_cast<uint32_t>(rng.NextUint64(root_table.num_rows()));
    if (!RowPassesCompiled(graph.table(root).compiled, start)) continue;
    walk_rows[root] = start;
    double weight = static_cast<double>(root_table.num_rows());
    bool dead = false;
    for (const auto& step : tree.steps) {
      const QueryGraph::EdgeInfo& edge = *step.edge;
      const bool next_is_left = edge.left_local == step.next_local;
      const int prev_local = next_is_left ? edge.right_local : edge.left_local;
      const Column& key =
          *(next_is_left ? edge.right_column : edge.left_column);
      const Table& next = *(next_is_left ? edge.left_table : edge.right_table);
      const int next_col =
          next_is_left ? edge.left_column_id : edge.right_column_id;
      const uint32_t prev_row = walk_rows[prev_local];
      if (!key.IsValid(prev_row)) {
        dead = true;
        break;
      }
      const auto& matches = next.GetIndex(next_col).Lookup(key.Get(prev_row));
      if (matches.empty()) {
        dead = true;
        break;
      }
      const uint32_t pick = matches[rng.NextUint64(matches.size())];
      if (!RowPassesCompiled(graph.table(step.next_local).compiled, pick)) {
        dead = true;
        break;
      }
      walk_rows[step.next_local] = pick;
      weight *= static_cast<double>(matches.size());
    }
    if (dead) continue;
    // Non-tree edges act as rejection filters on the completed walk.
    bool pass = true;
    for (const QueryGraph::EdgeInfo* edge : tree.non_tree) {
      const Column& lcol = *edge->left_column;
      const Column& rcol = *edge->right_column;
      const uint32_t lrow = walk_rows[edge->left_local];
      const uint32_t rrow = walk_rows[edge->right_local];
      if (!lcol.IsValid(lrow) || !rcol.IsValid(rrow) ||
          lcol.Get(lrow) != rcol.Get(rrow)) {
        pass = false;
        break;
      }
    }
    if (pass) total += weight;
  }
  const double estimate = total / static_cast<double>(num_walks_);
  return std::max(estimate, 1e-6);
}

double WjSampleEstimator::EstimateCard(const Query& subquery) const {
  // Per-sub-plan generator: seeding from the canonical key makes the walks
  // deterministic for a given sub-plan and keeps concurrent estimates from
  // sharing (and racing on) one generator stream.
  Rng rng(seed_ ^ Fnv1aHash(subquery.CanonicalKey()));
  // Root the walk at the smallest table (fewer wasted walks).
  std::string root = subquery.tables[0];
  for (const auto& t : subquery.tables) {
    if (db_.TableOrDie(t).num_rows() < db_.TableOrDie(root).num_rows()) {
      root = t;
    }
  }
  const QueryTree tree = BuildQueryTree(subquery, root);
  const Table& root_table = db_.TableOrDie(root);
  if (root_table.num_rows() == 0) return 1e-6;

  // Compile each table's filter conjunction once; walks check single rows
  // against the compiled form.
  std::map<std::string, std::vector<CompiledPredicate>> compiled;
  for (const auto& t : subquery.tables) {
    compiled[t] =
        CompilePredicatesFor(db_.TableOrDie(t), t, subquery.predicates);
  }

  double total = 0.0;
  for (size_t w = 0; w < num_walks_; ++w) {
    std::map<std::string, uint32_t> walk_rows;
    const uint32_t start =
        static_cast<uint32_t>(rng.NextUint64(root_table.num_rows()));
    if (!RowPassesCompiled(compiled.at(root), start)) continue;
    walk_rows[root] = start;
    double weight = static_cast<double>(root_table.num_rows());
    bool dead = false;
    for (const auto& [edge, next_table] : tree.steps) {
      const bool next_is_left = edge.left_table == next_table;
      const std::string& prev_table =
          next_is_left ? edge.right_table : edge.left_table;
      const std::string& prev_col =
          next_is_left ? edge.right_column : edge.left_column;
      const std::string& next_col =
          next_is_left ? edge.left_column : edge.right_column;
      const Table& prev = db_.TableOrDie(prev_table);
      const Table& next = db_.TableOrDie(next_table);
      const Column& key = prev.ColumnByName(prev_col);
      const uint32_t prev_row = walk_rows.at(prev_table);
      if (!key.IsValid(prev_row)) {
        dead = true;
        break;
      }
      const auto& matches =
          next.GetIndex(next.ColumnIndexOrDie(next_col)).Lookup(key.Get(prev_row));
      if (matches.empty()) {
        dead = true;
        break;
      }
      const uint32_t pick = matches[rng.NextUint64(matches.size())];
      if (!RowPassesCompiled(compiled.at(next_table), pick)) {
        dead = true;
        break;
      }
      walk_rows[next_table] = pick;
      weight *= static_cast<double>(matches.size());
    }
    if (dead) continue;
    // Non-tree edges act as rejection filters on the completed walk.
    bool pass = true;
    for (const auto& edge : tree.non_tree) {
      const Column& lcol =
          db_.TableOrDie(edge.left_table).ColumnByName(edge.left_column);
      const Column& rcol =
          db_.TableOrDie(edge.right_table).ColumnByName(edge.right_column);
      const uint32_t lrow = walk_rows.at(edge.left_table);
      const uint32_t rrow = walk_rows.at(edge.right_table);
      if (!lcol.IsValid(lrow) || !rcol.IsValid(rrow) ||
          lcol.Get(lrow) != rcol.Get(rrow)) {
        pass = false;
        break;
      }
    }
    if (pass) total += weight;
  }
  const double estimate = total / static_cast<double>(num_walks_);
  return std::max(estimate, 1e-6);
}

// ------------------------------------------------------------- PessEst

PessEstEstimator::PessEstEstimator(const Database& db) : db_(db) {
  for (size_t i = 0; i < db.table_names().size(); ++i) {
    table_ids_[db.table_names()[i]] = static_cast<int>(i);
  }
  BuildDegreeSketches();
}

PessEstEstimator::PessEstEstimator(const Database& db, DeferredInit)
    : db_(db) {
  for (size_t i = 0; i < db.table_names().size(); ++i) {
    table_ids_[db.table_names()[i]] = static_cast<int>(i);
  }
}

double PessEstEstimator::MaxDegreeOf(int table_id, int column_id,
                                     const Table& table) const {
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(table_id)) << 32) |
      static_cast<uint32_t>(column_id);
  {
    std::lock_guard<std::mutex> lock(degree_mu_);
    auto it = max_degree_.find(key);
    if (it != max_degree_.end()) return it->second;
  }
  double max_deg = 0.0;
  const HashIndex& index = table.GetIndex(column_id);
  for (const auto& [value, rows] : index.entries()) {
    max_deg = std::max(max_deg, static_cast<double>(rows.size()));
  }
  std::lock_guard<std::mutex> lock(degree_mu_);
  max_degree_[key] = max_deg;
  return max_deg;
}

void PessEstEstimator::BuildDegreeSketches() {
  // Degrees are computed lazily per (table, column) on first use and cached
  // here; an update simply drops the cache.
  max_degree_.clear();
}

Status PessEstEstimator::Update() {
  BuildDegreeSketches();
  return Status::OK();
}

double PessEstEstimator::FilteredCard(const Query& subquery,
                                      const std::string& table_name) const {
  const Table& table = db_.TableOrDie(table_name);
  const auto compiled =
      CompilePredicatesFor(table, table_name, subquery.predicates);
  return static_cast<double>(
      CountRangeConjunction(compiled, 0, table.num_rows()));
}

double PessEstEstimator::EstimateCard(const QueryGraph& graph,
                                      uint64_t mask) const {
  // Exact filtered base cardinalities (the bound must hold), through the
  // graph's pre-bound compiled predicates.
  std::vector<double> base(graph.num_tables(), 0.0);
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    const QueryGraph::TableInfo& info = graph.table(local);
    base[local] = static_cast<double>(
        CountRangeConjunction(info.compiled, 0, info.table->num_rows()));
  }
  return BoundWithBase(graph, mask, base);
}

std::vector<double> PessEstEstimator::EstimateCards(
    const QueryGraph& graph, std::span<const uint64_t> masks) const {
  // The filtered base cardinalities are mask-independent — count each table
  // of the batch once instead of once per sub-plan containing it.
  uint64_t union_mask = 0;
  for (uint64_t mask : masks) union_mask |= mask;
  std::vector<double> base(graph.num_tables(), 0.0);
  for (uint64_t rest = union_mask; rest != 0; rest &= rest - 1) {
    const int local = std::countr_zero(rest);
    const QueryGraph::TableInfo& info = graph.table(local);
    base[local] = static_cast<double>(
        CountRangeConjunction(info.compiled, 0, info.table->num_rows()));
  }
  std::vector<double> out;
  out.reserve(masks.size());
  for (uint64_t mask : masks) {
    out.push_back(BoundWithBase(graph, mask, base));
  }
  return out;
}

double PessEstEstimator::BoundWithBase(const QueryGraph& graph, uint64_t mask,
                                       const std::vector<double>& base) const {
  if (std::popcount(mask) == 1) {
    return std::max(base[std::countr_zero(mask)], 1e-6);
  }

  // Tightest bound over root choices: |σT_r| × Π max-degree of each tree
  // step's target column (unfiltered degrees keep it a true upper bound).
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const int root = std::countr_zero(rest);
    const GraphQueryTree tree = BuildGraphQueryTree(graph, mask, root);
    double bound = base[root];
    for (const auto& step : tree.steps) {
      const QueryGraph::EdgeInfo& edge = *step.edge;
      const bool next_is_left = edge.left_local == step.next_local;
      const QueryGraph::TableInfo& next = graph.table(step.next_local);
      const int next_col =
          next_is_left ? edge.left_column_id : edge.right_column_id;
      bound *= std::max(
          1.0, MaxDegreeOf(next.table_id, next_col, *next.table));
    }
    best = std::min(best, bound);
  }
  return std::max(best, 1e-6);
}

Status PessEstEstimator::Serialize(std::ostream& out) const {
  ModelWriter writer("pessest");
  SectionWriter& sketches = writer.AddSection("sketches");
  // One sketch per join-key column of the schema (the columns bounds can
  // traverse): max degree plus the degree histogram over distinct key
  // values. The histogram is what makes the sketch a real, scale-dependent
  // model artifact rather than a constant-size memo.
  std::vector<JoinEndpoint> endpoints;
  for (const auto& group : JoinColumnGroups(db_)) {
    for (const auto& endpoint : group) endpoints.push_back(endpoint);
  }
  std::sort(endpoints.begin(), endpoints.end());
  sketches.PutU64(endpoints.size());
  for (const auto& endpoint : endpoints) {
    const Table& table = db_.TableOrDie(endpoint.table);
    const int column_id =
        static_cast<int>(table.ColumnIndexOrDie(endpoint.column));
    std::map<uint64_t, uint64_t> degree_histogram;
    for (const auto& [value, rows] : table.GetIndex(column_id).entries()) {
      ++degree_histogram[rows.size()];
    }
    sketches.PutString(endpoint.table);
    sketches.PutString(endpoint.column);
    sketches.PutU64(degree_histogram.size());
    for (const auto& [degree, count] : degree_histogram) {
      sketches.PutU64(degree);
      sketches.PutU64(count);
    }
  }
  return writer.WriteTo(out);
}

Result<std::unique_ptr<PessEstEstimator>> PessEstEstimator::Deserialize(
    const Database& db, std::istream& in) {
  CARDBENCH_ASSIGN_OR_RETURN(ModelReader reader,
                             ModelReader::Open(in, "pessest"));
  auto est = std::unique_ptr<PessEstEstimator>(
      new PessEstEstimator(db, DeferredInit()));
  CARDBENCH_ASSIGN_OR_RETURN(SectionReader sketches,
                             reader.Section("sketches"));
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_sketches, sketches.GetU64());
  for (size_t s = 0; s < num_sketches; ++s) {
    CARDBENCH_ASSIGN_OR_RETURN(std::string table_name, sketches.GetString());
    CARDBENCH_ASSIGN_OR_RETURN(std::string column_name, sketches.GetString());
    // Degrees are written in ascending order, so the bound the estimator
    // memoizes (the max degree) is the last histogram entry.
    CARDBENCH_ASSIGN_OR_RETURN(uint64_t histogram_size, sketches.GetU64());
    double max_deg = 0.0;
    for (size_t h = 0; h < histogram_size; ++h) {
      CARDBENCH_ASSIGN_OR_RETURN(uint64_t degree, sketches.GetU64());
      CARDBENCH_ASSIGN_OR_RETURN(uint64_t count, sketches.GetU64());
      (void)count;
      max_deg = static_cast<double>(degree);
    }
    const Table* table = db.FindTable(table_name);
    if (table == nullptr) {
      return Status::NotFound("degree sketch for unknown table " + table_name);
    }
    auto tid = est->table_ids_.find(table_name);
    CARDBENCH_CHECK(tid != est->table_ids_.end(), "unknown table '%s'",
                    table_name.c_str());
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(tid->second)) << 32) |
        static_cast<uint32_t>(table->ColumnIndexOrDie(column_name));
    est->max_degree_[key] = max_deg;
  }
  return est;
}

double PessEstEstimator::EstimateCard(const Query& subquery) const {
  // Exact filtered base cardinalities (the bound must hold).
  std::map<std::string, double> base;
  for (const auto& table : subquery.tables) {
    base[table] = FilteredCard(subquery, table);
  }
  if (subquery.tables.size() == 1) {
    return std::max(base.begin()->second, 1e-6);
  }

  // Tightest bound over root choices: |σT_r| × Π max-degree of each tree
  // step's target column (unfiltered degrees keep it a true upper bound).
  double best = std::numeric_limits<double>::infinity();
  for (const auto& root : subquery.tables) {
    const QueryTree tree = BuildQueryTree(subquery, root);
    double bound = base.at(root);
    for (const auto& [edge, next_table] : tree.steps) {
      const bool next_is_left = edge.left_table == next_table;
      const std::string& next_col =
          next_is_left ? edge.left_column : edge.right_column;
      const Table& next = db_.TableOrDie(next_table);
      auto tid = table_ids_.find(next_table);
      CARDBENCH_CHECK(tid != table_ids_.end(), "unknown table '%s'",
                      next_table.c_str());
      bound *= std::max(
          1.0, MaxDegreeOf(tid->second,
                           static_cast<int>(next.ColumnIndexOrDie(next_col)),
                           next));
    }
    best = std::min(best, bound);
  }
  return std::max(best, 1e-6);
}

}  // namespace cardbench
