#ifndef CARDBENCH_CARDEST_SAMPLING_EST_H_
#define CARDBENCH_CARDEST_SAMPLING_EST_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cardest/estimator.h"
#include "common/rng.h"
#include "storage/catalog.h"

namespace cardbench {

/// UniSample (§4.1 method 3): per-table uniform row samples estimate the
/// filter selectivities; joins fall back to the join-uniformity assumption
/// (1/max(ndv) per edge), the combination used by MySQL/MariaDB-style
/// sampling estimators. Its error explodes with the number of joined
/// tables — the behaviour Table 3 shows.
class UniSampleEstimator : public CardinalityEstimator {
 public:
  UniSampleEstimator(const Database& db, size_t sample_size = 10000,
                     uint64_t seed = 101);

  std::string name() const override { return "UniSample"; }
  /// Mask-based dispatch: samples looked up by table id, filters evaluated
  /// through the graph's pre-bound compiled predicates.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: each table's sample probe (rows x selectivity) and each
  /// edge's uniformity selectivity are materialized once per query and
  /// reused across all masks, multiplied per mask in the scalar path's
  /// order — bit-identical to per-mask EstimateCard.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  bool SupportsUpdate() const override { return true; }
  /// Resamples (cheap: sampling is the whole model). Exclusive-access:
  /// concurrent EstimateCard calls must be quiesced first.
  Status Update() override;
  /// Delta-aware re-reservoir: each existing draw survives with probability
  /// old_rows/new_rows, otherwise it is redrawn from the inserted range —
  /// the resulting sample is iid uniform over the grown table, the same
  /// distribution a full Resample draws, at cost proportional to the
  /// insertion fraction (geometric skips, no per-slot coin flip).
  Status IncrementalUpdate(const InsertionBatch& batch) override;

  /// The "model" is the drawn row-id sample; persisting it keeps the
  /// deployed estimator's draws (and estimates) identical to training.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<UniSampleEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: constructs without sampling; state injected by Deserialize.
  UniSampleEstimator(const Database& db, DeferredInit)
      : db_(db), sample_size_(0), seed_(0), rng_(0) {}

  void Resample();

  const Database& db_;
  size_t sample_size_;
  uint64_t seed_;
  Rng rng_;
  std::map<std::string, std::vector<uint32_t>> samples_;
  /// samples_ entries indexed by global table id (database table order);
  /// rebuilt by Resample.
  std::vector<const std::vector<uint32_t>*> samples_by_id_;
};

/// WJSample (§4.1 method 4): wander join — random walks along the query's
/// join tree through key indexes, each walk contributing the product of the
/// branch counts it traversed (Horvitz–Thompson). Zero successful walks
/// yield an estimate of 0 (clamped by the optimizer), the failure mode that
/// hurts it on large joins with selective predicates.
class WjSampleEstimator : public CardinalityEstimator {
 public:
  WjSampleEstimator(const Database& db, size_t num_walks = 600,
                    uint64_t seed = 202);

  std::string name() const override { return "WJSample"; }
  /// Walk randomness is derived from a hash of the sub-plan's canonical
  /// key (never from shared generator state), so the estimate for a given
  /// sub-plan is deterministic and concurrent calls never interleave draws.
  /// The graph overload seeds from the precomputed canonical key (byte-
  /// identical to the induced sub-query's) and walks the spanning tree over
  /// local table ids, so both paths draw identical walks.
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;

  /// Wander join has no trained state beyond its configuration: walks are
  /// re-drawn per sub-plan from (seed, canonical key), so persisting the
  /// two knobs reproduces every estimate exactly.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<WjSampleEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  const Database& db_;
  size_t num_walks_;
  uint64_t seed_;
};

/// PessEst (§4.1 method 5, Cai et al.): pessimistic bound estimation —
/// exact filtered base cardinalities combined with per-edge maximum join
/// degrees give an upper bound on the join cardinality; the tightest bound
/// over all root choices is returned. Never underestimates, which avoids
/// the catastrophic nested-loop plans underestimation causes.
class PessEstEstimator : public CardinalityEstimator {
 public:
  explicit PessEstEstimator(const Database& db);

  std::string name() const override { return "PessEst"; }
  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override;
  double EstimateCard(const Query& subquery) const override;
  /// Batched: the exact filtered base cardinality of every table in the
  /// batch (the expensive full-table predicate count, mask-independent) is
  /// computed once per query; each mask then runs the unchanged bound
  /// search over it — bit-identical to per-mask EstimateCard.
  std::vector<double> EstimateCards(
      const QueryGraph& graph,
      std::span<const uint64_t> masks) const override;
  bool SupportsUpdate() const override { return true; }
  /// Refreshes the degree sketches.
  Status Update() override;

  /// Persists per-join-column degree sketches (max degree + the full degree
  /// histogram over distinct key values), computed eagerly over the schema's
  /// join columns. ModelBytes therefore reports real sketch storage that
  /// grows with data scale, and a deserialized estimator answers bounds
  /// without re-scanning any index.
  Status Serialize(std::ostream& out) const override;
  static Result<std::unique_ptr<PessEstEstimator>> Deserialize(
      const Database& db, std::istream& in);

 private:
  struct DeferredInit {};
  /// Load path: table ids are schema-derived; the degree memo is injected
  /// by Deserialize instead of being scanned lazily.
  PessEstEstimator(const Database& db, DeferredInit);

  void BuildDegreeSketches();
  double FilteredCard(const Query& subquery, const std::string& table) const;
  double MaxDegreeOf(int table_id, int column_id, const Table& table) const;
  /// The bound search of EstimateCard(graph, mask) over precomputed
  /// filtered base cardinalities (indexed by local table id).
  double BoundWithBase(const QueryGraph& graph, uint64_t mask,
                       const std::vector<double>& base) const;

  const Database& db_;
  std::unordered_map<std::string, int> table_ids_;
  // (table_id << 32 | column_id) -> maximum join degree of any key value.
  // A lazily filled memo, synchronized so concurrent EstimateCard calls can
  // share it; both dispatch paths key it on ids (no heap string keys).
  mutable std::mutex degree_mu_;
  mutable std::unordered_map<uint64_t, double> max_degree_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_SAMPLING_EST_H_
