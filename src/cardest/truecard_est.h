#ifndef CARDBENCH_CARDEST_TRUECARD_EST_H_
#define CARDBENCH_CARDEST_TRUECARD_EST_H_

#include <string>
#include <unordered_map>

#include "cardest/estimator.h"
#include "exec/true_card.h"

namespace cardbench {

/// The TrueCard oracle baseline (§4.3): answers every sub-plan query with
/// its exact cardinality. With an accurate cost model this produces the
/// optimal plan; the paper uses it as the gold standard.
class TrueCardEstimator : public CardinalityEstimator {
 public:
  explicit TrueCardEstimator(TrueCardService& service) : service_(service) {}

  std::string name() const override { return "TrueCard"; }

  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override {
    auto card = service_.Card(graph, mask);
    return card.ok() ? *card : 1.0;
  }

  double EstimateCard(const Query& subquery) const override {
    auto card = service_.Card(subquery);
    // Sub-plans whose exact count exceeded execution limits fall back to 1;
    // the harness precomputes all workload sub-plans so this is unreachable
    // in the benches.
    return card.ok() ? *card : 1.0;
  }

 private:
  TrueCardService& service_;
};

/// Injects a fixed set of cardinalities (keyed by canonical sub-plan query
/// key) and delegates the rest to a fallback estimator. This mirrors the
/// paper's injection experiments, e.g. §7.1's "replace the root estimate
/// with a 7x overestimation" case study.
class InjectedCardEstimator : public CardinalityEstimator {
 public:
  InjectedCardEstimator(CardinalityEstimator& fallback,
                        std::unordered_map<std::string, double> overrides)
      : fallback_(fallback), overrides_(std::move(overrides)) {}

  std::string name() const override {
    return fallback_.name() + "+injected";
  }

  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override {
    auto it = overrides_.find(graph.CanonicalKey(mask));
    if (it != overrides_.end()) return it->second;
    return fallback_.EstimateCard(graph, mask);
  }

  double EstimateCard(const Query& subquery) const override {
    auto it = overrides_.find(subquery.CanonicalKey());
    if (it != overrides_.end()) return it->second;
    return fallback_.EstimateCard(subquery);
  }

 private:
  CardinalityEstimator& fallback_;
  std::unordered_map<std::string, double> overrides_;
};

}  // namespace cardbench

#endif  // CARDBENCH_CARDEST_TRUECARD_EST_H_
