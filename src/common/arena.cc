#include "common/arena.h"

#include <algorithm>
#include <cassert>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define CARDBENCH_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CARDBENCH_ASAN 1
#endif
#endif

#if defined(CARDBENCH_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace cardbench {

namespace {

#if defined(CARDBENCH_ASAN)
// Poisoned gap after each allocation so off-by-one writes trip ASAN instead
// of silently corrupting the next allocation.
constexpr size_t kRedzone = 8;
void PoisonRange(void* p, size_t n) { ASAN_POISON_MEMORY_REGION(p, n); }
void UnpoisonRange(void* p, size_t n) { ASAN_UNPOISON_MEMORY_REGION(p, n); }
#else
constexpr size_t kRedzone = 0;
void PoisonRange(void*, size_t) {}
void UnpoisonRange(void*, size_t) {}
#endif

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

Arena::Arena(size_t initial_capacity)
    : initial_capacity_(std::max<size_t>(initial_capacity, 1024)) {}

Arena::~Arena() {
  for (Block& b : blocks_) {
    UnpoisonRange(b.data, b.capacity);
    ::operator delete[](b.data, std::align_val_t{kDefaultAlignment});
  }
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
  alignment = std::min(alignment, kDefaultAlignment);
  Block* b = blocks_.empty() ? nullptr : &blocks_[current_];
  size_t offset = b ? AlignUp(b->used, alignment) : 0;
  if (b == nullptr || offset + bytes + kRedzone > b->capacity) {
    b = GrowAndAlign(bytes, alignment);
    offset = AlignUp(b->used, alignment);
  }
  char* p = b->data + offset;
  b->used = offset + bytes + kRedzone;
  UnpoisonRange(p, bytes);
  return p;
}

Arena::Block* Arena::GrowAndAlign(size_t bytes, size_t alignment) {
  // Try the already-grown blocks after current_ first (post-Reset reuse).
  const size_t needed = AlignUp(bytes, alignment) + kRedzone;
  while (current_ + 1 < blocks_.size()) {
    Block& next = blocks_[++current_];
    if (needed <= next.capacity) return &next;
  }
  size_t capacity = std::max(needed, initial_capacity_);
  if (!blocks_.empty()) {
    capacity = std::max(capacity, blocks_.back().capacity * 2);
  }
  capacity = AlignUp(capacity, kDefaultAlignment);
  Block b;
  b.data = static_cast<char*>(
      ::operator new[](capacity, std::align_val_t{kDefaultAlignment}));
  b.capacity = capacity;
  PoisonRange(b.data, b.capacity);
  blocks_.push_back(b);
  current_ = blocks_.size() - 1;
  return &blocks_.back();
}

Arena::Mark Arena::Position() const {
  if (blocks_.empty()) return Mark{};
  return Mark{current_, blocks_[current_].used};
}

void Arena::Rewind(Mark mark) {
  if (blocks_.empty()) return;
  for (size_t i = mark.block_index + 1; i <= current_; ++i) {
    PoisonRange(blocks_[i].data, blocks_[i].used);
    blocks_[i].used = 0;
  }
  Block& b = blocks_[mark.block_index];
  PoisonRange(b.data + mark.used, b.used - mark.used);
  b.used = mark.used;
  current_ = mark.block_index;
}

void Arena::Reset() { Rewind(Mark{}); }

size_t Arena::bytes_used() const {
  size_t total = 0;
  for (size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
    total += blocks_[i].used;
  }
  return total;
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

Arena& ThreadLocalArena() {
  static thread_local Arena arena(1 << 18);
  return arena;
}

}  // namespace cardbench
