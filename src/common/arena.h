#ifndef CARDBENCH_COMMON_ARENA_H_
#define CARDBENCH_COMMON_ARENA_H_

#include <cstddef>
#include <vector>

namespace cardbench {

/// Bump-pointer allocator for per-query / per-batch scratch memory.
///
/// Ownership rules (see DESIGN.md "Kernel & memory layer"):
///  - An arena owns its blocks; Allocate() returns raw storage that is valid
///    until the enclosing frame is popped or the arena is Reset(). Nothing
///    allocated from an arena is individually freed, and no destructors run —
///    only trivially-destructible payloads belong here.
///  - Hot paths borrow an arena (usually ThreadLocalArena()) and bracket
///    their usage with an ArenaFrame so nested callers can stack allocations
///    without coordinating.
///  - Under ASAN, freed regions (after Reset/Rewind) and the gaps between
///    allocations are poisoned, so use-after-reset and overflow into a
///    neighbouring allocation are caught like heap bugs.
class Arena {
 public:
  /// Alignment of every allocation and block start; also the cap for the
  /// `alignment` argument of Allocate.
  static constexpr size_t kDefaultAlignment = 64;

  /// `initial_capacity` sizes the first block (allocated lazily).
  explicit Arena(size_t initial_capacity = 1 << 16);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (power of two,
  /// <= kDefaultAlignment). bytes == 0 returns a valid non-null pointer.
  void* Allocate(size_t bytes, size_t alignment = alignof(double));

  /// Typed convenience: `count` default-uninitialized Ts.
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// A rewind point for frame-scoped usage (see ArenaFrame).
  struct Mark {
    size_t block_index = 0;
    size_t used = 0;
  };

  Mark Position() const;

  /// Releases everything allocated after `mark` (blocks stay owned for
  /// reuse; ASAN re-poisons the released range).
  void Rewind(Mark mark);

  /// Releases everything; keeps the blocks for reuse.
  void Reset();

  /// Bytes handed out since the last Reset (excludes block slack).
  size_t bytes_used() const;

  /// Total capacity of all blocks ever grown.
  size_t bytes_reserved() const;

 private:
  struct Block {
    char* data = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  Block* GrowAndAlign(size_t bytes, size_t alignment);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // blocks_[current_] receives allocations.
  size_t initial_capacity_;
};

/// RAII frame: rewinds the arena to its construction point on destruction.
/// Accepts nullptr and becomes inert — callers with an optional arena can
/// always open a frame.
class ArenaFrame {
 public:
  explicit ArenaFrame(Arena* arena)
      : arena_(arena), mark_(arena ? arena->Position() : Arena::Mark{}) {}
  ~ArenaFrame() {
    if (arena_ != nullptr) arena_->Rewind(mark_);
  }

  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// The calling thread's scratch arena. Executor morsels, featurization and
/// sampling buffers allocate here inside an ArenaFrame; the arena lives for
/// the thread, so steady-state queries allocate zero heap.
Arena& ThreadLocalArena();

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_ARENA_H_
