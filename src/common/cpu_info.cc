#include "common/cpu_info.h"

#include <fstream>

#include "common/json.h"
#include "common/simd.h"

namespace cardbench {

namespace {

std::string ReadModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string model = line.substr(colon + 1);
    // Trim and collapse the tab/space padding cpuinfo uses.
    size_t b = model.find_first_not_of(" \t");
    size_t e = model.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    return model.substr(b, e - b + 1);
  }
  return "unknown";
}

}  // namespace

const std::string& CpuModelName() {
  static const std::string model = ReadModelName();
  return model;
}

const char* CpuSimdCapability() {
  return simd::LevelName(simd::DetectLevel());
}

std::string CpuInfoJson() {
  std::string out = "\"cpu\": {\"model\": ";
  AppendJsonString(CpuModelName(), &out);
  out += ", \"simd\": ";
  AppendJsonString(CpuSimdCapability(), &out);
  out += "}";
  return out;
}

}  // namespace cardbench
