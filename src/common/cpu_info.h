#ifndef CARDBENCH_COMMON_CPU_INFO_H_
#define CARDBENCH_COMMON_CPU_INFO_H_

#include <string>

namespace cardbench {

/// CPU model name from /proc/cpuinfo ("model name" line), or "unknown" when
/// unavailable. Cached after the first read.
const std::string& CpuModelName();

/// Best SIMD tier this host + build can dispatch to ("scalar", "sse2",
/// "avx2", "avx512"); simd::LevelName(simd::DetectLevel()).
const char* CpuSimdCapability();

/// JSON object fragment `"cpu": {"model": ..., "simd": ...}` recorded in
/// every bench JSON so perf trajectories are comparable across machines.
std::string CpuInfoJson();

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_CPU_INFO_H_
