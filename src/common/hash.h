#ifndef CARDBENCH_COMMON_HASH_H_
#define CARDBENCH_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace cardbench {

/// Shared 64-bit integer hash of the storage and execution layers: the
/// splitmix64 finalizer (Stafford variant 13). Full-width mixing means any
/// bit window of the result is usable — the radix join takes its partition
/// id from the low bits, its bucket slot from the next bits and its 1-byte
/// tag from the top bits, all from one hash; HashIndex uses the same
/// function so a value hashes identically in every table of the system.
/// Cheap enough (2 multiplies, 3 shifts) to recompute rather than cache.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hasher for Value (int64_t) keyed hash maps — HashIndex and any other
/// value-keyed container that should agree with the join layer's hash.
/// std::hash<int64_t> is the identity on most standard libraries, which
/// makes sequential keys collide into sequential buckets; the finalizer
/// spreads them.
struct ValueHash64 {
  size_t operator()(int64_t v) const noexcept {
    return static_cast<size_t>(HashMix64(static_cast<uint64_t>(v)));
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_HASH_H_
