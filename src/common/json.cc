#include "common/json.h"

#include <cstdio>
#include <cstdlib>

namespace cardbench {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double value, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

double JsonNumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kNumber
             ? value->number
             : fallback;
}

std::string JsonStringOr(const JsonValue* value, std::string fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kString
             ? value->string
             : fallback;
}

Result<JsonValue> JsonParser::Parse() {
  JsonValue value;
  CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, 0));
  SkipSpace();
  if (pos_ != text_.size()) {
    return Status::InvalidArgument("trailing bytes after JSON value");
  }
  return value;
}

Status JsonParser::ParseValue(JsonValue* out, int depth) {
  if (depth > kMaxDepth) {
    return Status::InvalidArgument("JSON nesting too deep");
  }
  SkipSpace();
  if (pos_ >= text_.size()) {
    return Status::InvalidArgument("unexpected end of JSON");
  }
  const char c = text_[pos_];
  if (c == '{') return ParseObject(out, depth);
  if (c == '[') return ParseArray(out, depth);
  if (c == '"') {
    out->kind = JsonValue::Kind::kString;
    return ParseString(&out->string);
  }
  if (c == 't' || c == 'f') return ParseKeyword(c == 't', out);
  if (c == 'n') return ParseNull(out);
  return ParseNumber(out);
}

Status JsonParser::ParseObject(JsonValue* out, int depth) {
  out->kind = JsonValue::Kind::kObject;
  ++pos_;  // '{'
  SkipSpace();
  if (Peek() == '}') {
    ++pos_;
    return Status::OK();
  }
  for (;;) {
    SkipSpace();
    std::string key;
    CARDBENCH_RETURN_IF_ERROR(ParseString(&key));
    SkipSpace();
    if (Peek() != ':') return Status::InvalidArgument("expected ':'");
    ++pos_;
    JsonValue value;
    CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
    out->object.emplace_back(std::move(key), std::move(value));
    SkipSpace();
    if (Peek() == ',') {
      ++pos_;
      continue;
    }
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    return Status::InvalidArgument("expected ',' or '}' in object");
  }
}

Status JsonParser::ParseArray(JsonValue* out, int depth) {
  out->kind = JsonValue::Kind::kArray;
  ++pos_;  // '['
  SkipSpace();
  if (Peek() == ']') {
    ++pos_;
    return Status::OK();
  }
  for (;;) {
    JsonValue value;
    CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
    out->array.push_back(std::move(value));
    SkipSpace();
    if (Peek() == ',') {
      ++pos_;
      continue;
    }
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    return Status::InvalidArgument("expected ',' or ']' in array");
  }
}

Status JsonParser::ParseString(std::string* out) {
  if (Peek() != '"') return Status::InvalidArgument("expected string");
  ++pos_;
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return Status::OK();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (pos_ >= text_.size()) break;
    const char esc = text_[pos_++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (pos_ + 4 > text_.size()) {
          return Status::InvalidArgument("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return Status::InvalidArgument("bad \\u escape");
        }
        // Only BMP code points are emitted by the writers; decode as UTF-8.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return Status::InvalidArgument("unknown escape in string");
    }
  }
  return Status::InvalidArgument("unterminated string");
}

Status JsonParser::ParseKeyword(bool value, JsonValue* out) {
  const char* word = value ? "true" : "false";
  const size_t len = value ? 4 : 5;
  if (text_.compare(pos_, len, word) != 0) {
    return Status::InvalidArgument("bad JSON keyword");
  }
  pos_ += len;
  out->kind = JsonValue::Kind::kBool;
  out->boolean = value;
  return Status::OK();
}

Status JsonParser::ParseNull(JsonValue* out) {
  if (text_.compare(pos_, 4, "null") != 0) {
    return Status::InvalidArgument("bad JSON keyword");
  }
  pos_ += 4;
  out->kind = JsonValue::Kind::kNull;
  return Status::OK();
}

Status JsonParser::ParseNumber(JsonValue* out) {
  const char* begin = text_.c_str() + pos_;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return Status::InvalidArgument("expected JSON number");
  pos_ += static_cast<size_t>(end - begin);
  out->kind = JsonValue::Kind::kNumber;
  out->number = value;
  return Status::OK();
}

void JsonParser::SkipSpace() {
  while (pos_ < text_.size() &&
         (text_[pos_] == ' ' || text_[pos_] == '\t' ||
          text_[pos_] == '\n' || text_[pos_] == '\r')) {
    ++pos_;
  }
}

}  // namespace cardbench
