#ifndef CARDBENCH_COMMON_JSON_H_
#define CARDBENCH_COMMON_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cardbench {

/// Minimal JSON document model shared by the wire protocol, the metrics
/// renderer and the bench-artifact validator. The repo's JSON surface is
/// deliberately small — flat objects, numeric maps, arrays of numbers — so
/// a tiny strict parser plus two append helpers beat a general library.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// First value under `key` (insertion order); nullptr if absent or not an
  /// object.
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Strict recursive-descent parser: depth-capped, trailing garbage is an
/// error, \u escapes decode as UTF-8 BMP code points.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse();

 private:
  static constexpr int kMaxDepth = 16;

  Status ParseValue(JsonValue* out, int depth);
  Status ParseObject(JsonValue* out, int depth);
  Status ParseArray(JsonValue* out, int depth);
  Status ParseString(std::string* out);
  Status ParseKeyword(bool value, JsonValue* out);
  Status ParseNull(JsonValue* out);
  Status ParseNumber(JsonValue* out);

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace();

  const std::string& text_;
  size_t pos_ = 0;
};

/// Appends `text` as a quoted, escaped JSON string.
void AppendJsonString(const std::string& text, std::string* out);

/// Appends `value` in %.17g form — round-trips every finite double, so the
/// repo's bit-identical-estimate discipline extends to the wire.
void AppendJsonDouble(double value, std::string* out);

/// Typed field access with fallbacks (absent or wrong-kind -> fallback).
double JsonNumberOr(const JsonValue* value, double fallback);
std::string JsonStringOr(const JsonValue* value, std::string fallback);

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_JSON_H_
