#include "common/logging.h"

namespace cardbench {

int& LogLevel() {
  static int level = 1;
  return level;
}

}  // namespace cardbench
