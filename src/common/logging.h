#ifndef CARDBENCH_COMMON_LOGGING_H_
#define CARDBENCH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace cardbench {

/// Global log verbosity: 0 = silent, 1 = info (default), 2 = debug.
/// Benches set this from --verbose flags.
int& LogLevel();

}  // namespace cardbench

/// Informational progress message (model training epochs, bench phases).
#define CARDBENCH_LOG(...)                          \
  do {                                              \
    if (::cardbench::LogLevel() >= 1) {             \
      std::fprintf(stderr, "[cardbench] ");         \
      std::fprintf(stderr, __VA_ARGS__);            \
      std::fprintf(stderr, "\n");                   \
    }                                               \
  } while (0)

/// Detailed debug message, off by default.
#define CARDBENCH_DLOG(...)                         \
  do {                                              \
    if (::cardbench::LogLevel() >= 2) {             \
      std::fprintf(stderr, "[cardbench:dbg] ");     \
      std::fprintf(stderr, __VA_ARGS__);            \
      std::fprintf(stderr, "\n");                   \
    }                                               \
  } while (0)

/// Invariant check that stays on in release builds: these guard internal
/// consistency of the optimizer/executor where silent corruption would
/// invalidate benchmark results.
#define CARDBENCH_CHECK(cond, ...)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CARDBENCH_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #cond);                            \
      std::fprintf(stderr, "  " __VA_ARGS__);                             \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // CARDBENCH_COMMON_LOGGING_H_
