#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace cardbench {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

int64_t Rng::NextZipf(int64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
  }
  const double u = NextDouble();
  // Binary search over the cached CDF.
  size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return NextUint64(weights.size());
  double u = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextUint64(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  const size_t n = weights.empty() ? 1 : weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (weights.empty()) return;

  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  std::vector<double> scaled(n, 1.0);
  if (total > 0) {
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = (weights[i] > 0 ? weights[i] : 0) * n / total;
    }
  }
  std::vector<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (size_t i : large) prob_[i] = 1.0;
  for (size_t i : small) prob_[i] = 1.0;
}

size_t WeightedSampler::Sample(Rng& rng) const {
  const size_t i = rng.NextUint64(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace cardbench
