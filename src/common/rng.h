#ifndef CARDBENCH_COMMON_RNG_H_
#define CARDBENCH_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cardbench {

/// Deterministic, seedable pseudo-random number generator used everywhere in
/// the library so that datasets, workloads and model training are fully
/// reproducible across runs. The core generator is xoshiro256**, seeded via
/// SplitMix64 (public-domain algorithms by Blackman & Vigna).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box–Muller).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p = 0.5);

  /// Zipf-distributed rank in [0, n) with exponent s (s = 0 is uniform).
  /// Uses inverse-CDF on a precomputable harmonic table for small n and
  /// rejection-inversion for large n; here we keep the simple cached-CDF
  /// variant since our domains are bounded.
  int64_t NextZipf(int64_t n, double s);

  /// Samples an index from an explicit (unnormalized, non-negative) weight
  /// vector. Linear scan; use WeightedSampler for repeated draws.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of the index range [0, n); returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Forks an independent stream (e.g. one per table/model) so that adding a
  /// consumer does not perturb the draws of existing consumers.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cache for NextZipf: rebuilt when (n, s) changes.
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
  // Spare Gaussian from Box–Muller.
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Alias-method sampler for repeated draws from a fixed discrete
/// distribution in O(1) per draw. Used by the data generators and by
/// progressive sampling in the autoregressive estimators.
class WeightedSampler {
 public:
  /// Builds the alias table from unnormalized non-negative weights.
  /// An all-zero weight vector degenerates to uniform.
  explicit WeightedSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_RNG_H_
