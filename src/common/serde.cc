#include "common/serde.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/str_util.h"

namespace cardbench {

namespace {

template <typename T>
void AppendRaw(std::string& buf, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  buf.append(bytes, sizeof(T));
}

template <typename T>
T ReadRaw(std::string_view bytes, size_t pos) {
  T v;
  std::memcpy(&v, bytes.data() + pos, sizeof(T));
  return v;
}

void AppendString(std::string& buf, std::string_view s) {
  AppendRaw<uint64_t>(buf, s.size());
  buf.append(s.data(), s.size());
}

}  // namespace

void SectionWriter::PutU32(uint32_t v) { AppendRaw(buf_, v); }
void SectionWriter::PutU64(uint64_t v) { AppendRaw(buf_, v); }
void SectionWriter::PutI64(int64_t v) { AppendRaw(buf_, v); }
void SectionWriter::PutDouble(double v) { AppendRaw(buf_, v); }

void SectionWriter::PutString(std::string_view s) { AppendString(buf_, s); }

void SectionWriter::PutDoubles(const std::vector<double>& v) {
  PutU64(v.size());
  for (double x : v) PutDouble(x);
}

void SectionWriter::PutI64s(const std::vector<int64_t>& v) {
  PutU64(v.size());
  for (int64_t x : v) PutI64(x);
}

void SectionWriter::PutU64s(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t x : v) PutU64(x);
}

void SectionWriter::PutU32s(const std::vector<uint32_t>& v) {
  PutU64(v.size());
  for (uint32_t x : v) PutU32(x);
}

void SectionWriter::PutU16s(const std::vector<uint16_t>& v) {
  PutU64(v.size());
  for (uint16_t x : v) AppendRaw(buf_, x);
}

Status SectionReader::Need(size_t n) const {
  if (pos_ + n > bytes_.size()) {
    return Status::OutOfRange("section payload truncated: need " +
                              std::to_string(n) + " bytes at offset " +
                              std::to_string(pos_) + " of " +
                              std::to_string(bytes_.size()));
  }
  return Status::OK();
}

Result<uint32_t> SectionReader::GetU32() {
  CARDBENCH_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
  uint32_t v = ReadRaw<uint32_t>(bytes_, pos_);
  pos_ += sizeof(uint32_t);
  return v;
}

Result<uint64_t> SectionReader::GetU64() {
  CARDBENCH_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
  uint64_t v = ReadRaw<uint64_t>(bytes_, pos_);
  pos_ += sizeof(uint64_t);
  return v;
}

Result<int64_t> SectionReader::GetI64() {
  CARDBENCH_RETURN_IF_ERROR(Need(sizeof(int64_t)));
  int64_t v = ReadRaw<int64_t>(bytes_, pos_);
  pos_ += sizeof(int64_t);
  return v;
}

Result<double> SectionReader::GetDouble() {
  CARDBENCH_RETURN_IF_ERROR(Need(sizeof(double)));
  double v = ReadRaw<double>(bytes_, pos_);
  pos_ += sizeof(double);
  return v;
}

Result<bool> SectionReader::GetBool() {
  CARDBENCH_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return v != 0;
}

Result<std::string> SectionReader::GetString() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n));
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

Result<std::vector<double>> SectionReader::GetDoubles() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n * sizeof(double)));
  std::vector<double> out(n);
  if (n > 0) std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(double));
  pos_ += n * sizeof(double);
  return out;
}

Result<std::vector<int64_t>> SectionReader::GetI64s() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n * sizeof(int64_t)));
  std::vector<int64_t> out(n);
  if (n > 0) std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(int64_t));
  pos_ += n * sizeof(int64_t);
  return out;
}

Result<std::vector<uint64_t>> SectionReader::GetU64s() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n * sizeof(uint64_t)));
  std::vector<uint64_t> out(n);
  if (n > 0) {
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(uint64_t));
  }
  pos_ += n * sizeof(uint64_t);
  return out;
}

Result<std::vector<uint32_t>> SectionReader::GetU32s() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n * sizeof(uint32_t)));
  std::vector<uint32_t> out(n);
  if (n > 0) {
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(uint32_t));
  }
  pos_ += n * sizeof(uint32_t);
  return out;
}

Result<std::vector<uint16_t>> SectionReader::GetU16s() {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  CARDBENCH_RETURN_IF_ERROR(Need(n * sizeof(uint16_t)));
  std::vector<uint16_t> out(n);
  if (n > 0) {
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(uint16_t));
  }
  pos_ += n * sizeof(uint16_t);
  return out;
}

SectionWriter& ModelWriter::AddSection(std::string name) {
  sections_.emplace_back(std::move(name), std::make_unique<SectionWriter>());
  return *sections_.back().second;
}

Status ModelWriter::WriteTo(std::ostream& out) const {
  std::string framed;
  framed.append(kModelMagic, sizeof(kModelMagic));
  AppendRaw<uint32_t>(framed, kModelFormatVersion);
  AppendString(framed, tag_);
  AppendRaw<uint32_t>(framed, static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, section] : sections_) {
    const std::string& payload = section->bytes();
    AppendString(framed, name);
    AppendRaw<uint64_t>(framed, payload.size());
    AppendRaw<uint64_t>(framed, Fnv1aHash(payload));
    framed.append(payload);
  }
  out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out.good()) return Status::IOError("model stream write failed");
  return Status::OK();
}

Result<ModelReader> ModelReader::Open(std::istream& in,
                                      std::string_view tag) {
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("model stream read failed");

  size_t pos = 0;
  auto read_u32 = [&](uint32_t* v) -> bool {
    if (pos + sizeof(uint32_t) > raw.size()) return false;
    *v = ReadRaw<uint32_t>(raw, pos);
    pos += sizeof(uint32_t);
    return true;
  };
  auto read_u64 = [&](uint64_t* v) -> bool {
    if (pos + sizeof(uint64_t) > raw.size()) return false;
    *v = ReadRaw<uint64_t>(raw, pos);
    pos += sizeof(uint64_t);
    return true;
  };
  auto read_string = [&](std::string* s) -> bool {
    uint64_t n = 0;
    if (!read_u64(&n)) return false;
    if (pos + n > raw.size()) return false;
    s->assign(raw, pos, n);
    pos += n;
    return true;
  };

  if (raw.size() < sizeof(kModelMagic)) {
    return Status::IOError("model artifact truncated: no magic");
  }
  if (std::memcmp(raw.data(), kModelMagic, sizeof(kModelMagic)) != 0) {
    return Status::InvalidArgument("bad model magic (not a CBMD artifact)");
  }
  pos += sizeof(kModelMagic);

  uint32_t version = 0;
  if (!read_u32(&version)) {
    return Status::IOError("model artifact truncated in header");
  }
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument(
        "model format version skew: artifact v" + std::to_string(version) +
        ", reader v" + std::to_string(kModelFormatVersion));
  }

  std::string got_tag;
  uint32_t section_count = 0;
  if (!read_string(&got_tag) || !read_u32(&section_count)) {
    return Status::IOError("model artifact truncated in header");
  }
  if (got_tag != tag) {
    return Status::InvalidArgument("model tag mismatch: artifact \"" +
                                   got_tag + "\", expected \"" +
                                   std::string(tag) + "\"");
  }

  ModelReader reader;
  for (uint32_t i = 0; i < section_count; ++i) {
    std::string name;
    uint64_t size = 0, checksum = 0;
    if (!read_string(&name) || !read_u64(&size) || !read_u64(&checksum)) {
      return Status::IOError("model artifact truncated in section header");
    }
    if (pos + size > raw.size()) {
      return Status::IOError("model artifact truncated in section \"" + name +
                             "\" payload");
    }
    std::string payload = raw.substr(pos, size);
    pos += size;
    if (Fnv1aHash(payload) != checksum) {
      return Status::InvalidArgument("checksum mismatch in section \"" + name +
                                     "\"");
    }
    if (!reader.sections_.emplace(std::move(name), std::move(payload))
             .second) {
      return Status::InvalidArgument("duplicate section in model artifact");
    }
  }
  return reader;
}

Result<SectionReader> ModelReader::Section(std::string_view name) const {
  auto it = sections_.find(std::string(name));
  if (it == sections_.end()) {
    return Status::NotFound("model artifact has no section \"" +
                            std::string(name) + "\"");
  }
  return SectionReader(it->second);
}

}  // namespace cardbench
