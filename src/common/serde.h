#ifndef CARDBENCH_COMMON_SERDE_H_
#define CARDBENCH_COMMON_SERDE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cardbench {

/// Versioned tagged-section binary model format. One idiom serves every
/// serializable artifact in the repo (binners, extended tables, estimator
/// models): a writer collects named sections of little-endian primitives,
/// then emits
///
///   magic "CBMD" | u32 format version | model tag | u32 section count |
///   per section: name | u64 payload size | u64 FNV-1a checksum | payload
///
/// (strings are u64 length + bytes). The reader validates magic, version,
/// tag and every checksum up front, so a consumer that reaches its payload
/// knows the bytes are intact; any mutilation (truncation, bit flips,
/// version skew) surfaces as a non-OK Status, never as a mis-parsed model.

inline constexpr char kModelMagic[4] = {'C', 'B', 'M', 'D'};
inline constexpr uint32_t kModelFormatVersion = 1;

/// Append-only byte buffer of fixed-width little-endian primitives. One
/// section holds one logical chunk of a model (e.g. a binner, a layer's
/// weights); readers must consume fields in the exact order written.
class SectionWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  void PutString(std::string_view s);
  void PutDoubles(const std::vector<double>& v);
  void PutI64s(const std::vector<int64_t>& v);
  void PutU64s(const std::vector<uint64_t>& v);
  void PutU32s(const std::vector<uint32_t>& v);
  void PutU16s(const std::vector<uint16_t>& v);

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over one section's payload. Every getter returns
/// OutOfRange past the end instead of reading garbage, so a truncated or
/// reordered payload fails loudly.
class SectionReader {
 public:
  explicit SectionReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<bool> GetBool();
  Result<std::string> GetString();
  Result<std::vector<double>> GetDoubles();
  Result<std::vector<int64_t>> GetI64s();
  Result<std::vector<uint64_t>> GetU64s();
  Result<std::vector<uint32_t>> GetU32s();
  Result<std::vector<uint16_t>> GetU16s();

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n) const;

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Collects named sections for one model artifact and writes the framed,
/// checksummed container. Section order is preserved; names must be unique.
class ModelWriter {
 public:
  /// `tag` identifies the model kind (e.g. "pgstats", "mscn"); readers
  /// refuse artifacts whose tag does not match what they expect.
  explicit ModelWriter(std::string tag) : tag_(std::move(tag)) {}

  /// Returns the section to append fields to. The reference stays valid
  /// until WriteTo.
  SectionWriter& AddSection(std::string name);

  /// Frames and flushes all sections. Returns IOError if the stream fails.
  Status WriteTo(std::ostream& out) const;

 private:
  std::string tag_;
  std::vector<std::pair<std::string, std::unique_ptr<SectionWriter>>>
      sections_;
};

/// Parses and validates a framed model artifact. All sections are read and
/// checksum-verified by Open; Section() then hands out in-memory cursors.
class ModelReader {
 public:
  /// Reads the whole container from `in`. Fails with InvalidArgument on bad
  /// magic / version skew / tag mismatch / checksum mismatch, and IOError
  /// on truncation.
  static Result<ModelReader> Open(std::istream& in, std::string_view tag);

  /// Cursor over a named section's payload; NotFound if absent.
  Result<SectionReader> Section(std::string_view name) const;

  bool HasSection(std::string_view name) const {
    return sections_.count(std::string(name)) > 0;
  }

 private:
  ModelReader() = default;

  std::map<std::string, std::string> sections_;
};

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_SERDE_H_
