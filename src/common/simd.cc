#include "common/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/simd_internal.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cardbench::simd {

namespace {

using internal::CmpApply;
using internal::ReduceDotLanes;

// ----------------------------------------------------------- scalar tier
//
// The scalar kernels fix the reference semantics: elementwise loops in
// ascending index order, the 16-lane striped dot, and branchless selection
// compaction. Every vector tier reproduces these bit-for-bit.

void AxpyScalar(double* dst, const double* x, double a, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += a * x[i];
}

void VecAddScalar(double* dst, const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += x[i];
}

void VecScaleScalar(double* x, double a, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= a;
}

void AddBiasScalar(double* x, const double* bias, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] += bias[i];
}

void ReluScalar(double* x, size_t n) {
  // std::max(0.0, v) returns the first argument on ties and when the
  // comparison is unordered — exactly maxpd(v, 0)'s second-operand rule —
  // so -0.0 and NaN both map to +0.0 in every tier.
  for (size_t i = 0; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

double DotScalar(const double* a, const double* b, size_t n) {
  double lanes[kDotLanes] = {0.0};
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  for (; i < n; ++i) lanes[i % kDotLanes] += a[i] * b[i];
  return ReduceDotLanes(lanes);
}

template <Cmp kOp>
size_t FilterRangeScalarT(const int64_t* values, const uint8_t* valid,
                          size_t begin, size_t end, int64_t rhs,
                          uint32_t* out) {
  size_t count = 0;
  for (size_t row = begin; row < end; ++row) {
    out[count] = static_cast<uint32_t>(row);
    count += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return count;
}

template <Cmp kOp>
size_t FilterRowsScalarT(const int64_t* values, const uint8_t* valid,
                         uint32_t* rows, size_t n, int64_t rhs) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t row = rows[i];
    rows[out] = row;
    out += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return out;
}

/// Dispatches the comparison once, outside the row loop.
template <template <Cmp> class FnSelector, typename... Args>
auto WithCmp(Cmp op, Args... args) {
  switch (op) {
    case Cmp::kEq: return FnSelector<Cmp::kEq>::Run(args...);
    case Cmp::kNeq: return FnSelector<Cmp::kNeq>::Run(args...);
    case Cmp::kLt: return FnSelector<Cmp::kLt>::Run(args...);
    case Cmp::kLe: return FnSelector<Cmp::kLe>::Run(args...);
    case Cmp::kGt: return FnSelector<Cmp::kGt>::Run(args...);
    case Cmp::kGe: return FnSelector<Cmp::kGe>::Run(args...);
  }
  return FnSelector<Cmp::kEq>::Run(args...);
}

template <Cmp kOp>
struct FilterRangeScalarSel {
  static size_t Run(const int64_t* values, const uint8_t* valid, size_t begin,
                    size_t end, int64_t rhs, uint32_t* out) {
    return FilterRangeScalarT<kOp>(values, valid, begin, end, rhs, out);
  }
};

template <Cmp kOp>
struct FilterRowsScalarSel {
  static size_t Run(const int64_t* values, const uint8_t* valid,
                    uint32_t* rows, size_t n, int64_t rhs) {
    return FilterRowsScalarT<kOp>(values, valid, rows, n, rhs);
  }
};

size_t FilterRangeScalar(const int64_t* values, const uint8_t* valid,
                         size_t begin, size_t end, Cmp op, int64_t rhs,
                         uint32_t* out) {
  return WithCmp<FilterRangeScalarSel>(op, values, valid, begin, end, rhs,
                                       out);
}

size_t FilterRowsScalar(const int64_t* values, const uint8_t* valid,
                        uint32_t* rows, size_t n, Cmp op, int64_t rhs) {
  return WithCmp<FilterRowsScalarSel>(op, values, valid, rows, n, rhs);
}

void GatherScalar(const int64_t* values, const uint8_t* valid,
                  const uint32_t* rows, size_t n, int64_t* keys,
                  uint8_t* valid_out) {
  for (size_t i = 0; i < n; ++i) {
    keys[i] = values[rows[i]];
    valid_out[i] = valid[rows[i]];
  }
}

constexpr KernelTable kScalarKernels = {
    AxpyScalar,       VecAddScalar,    VecScaleScalar,
    AddBiasScalar,    ReluScalar,      DotScalar,
    FilterRangeScalar, FilterRowsScalar, GatherScalar,
};

// ------------------------------------------------------------- SSE2 tier
//
// Baseline on x86-64, so no separate TU or runtime check is needed. The
// SSE2 tier vectorizes the double kernels (2 lanes); the integer selection
// kernels need SSE4.2 compares and stay scalar at this tier.

#if defined(__SSE2__)

void AxpySse2(double* dst, const double* x, double a, size_t n) {
  const __m128d va = _mm_set1_pd(a);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d r = _mm_add_pd(_mm_loadu_pd(dst + i),
                                 _mm_mul_pd(va, _mm_loadu_pd(x + i)));
    _mm_storeu_pd(dst + i, r);
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void VecAddSse2(double* dst, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_add_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(x + i)));
  }
  for (; i < n; ++i) dst[i] += x[i];
}

void VecScaleSse2(double* x, double a, size_t n) {
  const __m128d va = _mm_set1_pd(a);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void AddBiasSse2(double* x, const double* bias, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i,
                  _mm_add_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(bias + i)));
  }
  for (; i < n; ++i) x[i] += bias[i];
}

void ReluSse2(double* x, size_t n) {
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // max(x, 0): ties and NaN resolve to the second operand (+0.0),
    // matching the scalar tier.
    _mm_storeu_pd(x + i, _mm_max_pd(_mm_loadu_pd(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

double DotSse2(const double* a, const double* b, size_t n) {
  __m128d acc[kDotLanes / 2];
  for (auto& v : acc) v = _mm_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t j = 0; j < kDotLanes / 2; ++j) {
      acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(_mm_loadu_pd(a + i + 2 * j),
                                             _mm_loadu_pd(b + i + 2 * j)));
    }
  }
  alignas(16) double lanes[kDotLanes];
  for (size_t j = 0; j < kDotLanes / 2; ++j) {
    _mm_store_pd(lanes + 2 * j, acc[j]);
  }
  for (; i < n; ++i) lanes[i % kDotLanes] += a[i] * b[i];
  return ReduceDotLanes(lanes);
}

constexpr KernelTable kSse2Kernels = {
    AxpySse2,         VecAddSse2,      VecScaleSse2,
    AddBiasSse2,      ReluSse2,        DotSse2,
    FilterRangeScalar, FilterRowsScalar, GatherScalar,
};

#endif  // __SSE2__

// -------------------------------------------------------------- dispatch

Level ClampToBuild(Level level) {
#if !defined(__SSE2__)
  if (level > Level::kScalar) level = Level::kScalar;
#endif
  if (level >= Level::kAvx512 && internal::GetAvx512Kernels() == nullptr) {
    level = Level::kAvx2;
  }
  if (level >= Level::kAvx2 && internal::GetAvx2Kernels() == nullptr) {
    level = Level::kSse2;
  }
#if !defined(__SSE2__)
  if (level > Level::kScalar) level = Level::kScalar;
#endif
  return level;
}

Level DetectImpl() {
  Level best = Level::kScalar;
#if defined(__SSE2__)
  best = Level::kSse2;
#endif
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) best = Level::kAvx2;
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    best = Level::kAvx512;
  }
#endif
  return ClampToBuild(best);
}

/// ForceLevel state; plain (non-atomic) by contract — test/bench only,
/// mutated before workers exist.
bool g_forced = false;
Level g_forced_level = Level::kScalar;

Level EnvLevel() {
  const char* env = std::getenv("CARDBENCH_SIMD");
  Level level = DetectLevel();
  if (env != nullptr && *env != '\0') {
    Level parsed;
    if (ParseLevelName(env, &parsed)) {
      level = std::min(level, parsed);
    }
  }
  return level;
}

}  // namespace

#if !defined(CARDBENCH_NATIVE_KERNELS)
namespace internal {
const KernelTable* GetAvx2Kernels() { return nullptr; }
const KernelTable* GetAvx512Kernels() { return nullptr; }
}  // namespace internal
#endif

Level DetectLevel() {
  static const Level detected = DetectImpl();
  return detected;
}

Level ActiveLevel() {
  if (g_forced) return g_forced_level;
  static const Level env_level = EnvLevel();
  return env_level;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ParseLevelName(const char* name, Level* out) {
  if (name == nullptr) return false;
  for (Level level : {Level::kScalar, Level::kSse2, Level::kAvx2,
                      Level::kAvx512}) {
    if (std::strcmp(name, LevelName(level)) == 0) {
      *out = level;
      return true;
    }
  }
  return false;
}

const KernelTable& KernelsFor(Level level) {
  level = std::min(level, DetectLevel());
  switch (level) {
    case Level::kAvx512: {
      const KernelTable* t = internal::GetAvx512Kernels();
      if (t != nullptr) return *t;
      [[fallthrough]];
    }
    case Level::kAvx2: {
      const KernelTable* t = internal::GetAvx2Kernels();
      if (t != nullptr) return *t;
      [[fallthrough]];
    }
    case Level::kSse2:
#if defined(__SSE2__)
      return kSse2Kernels;
#else
      [[fallthrough]];
#endif
    case Level::kScalar:
      return kScalarKernels;
  }
  return kScalarKernels;
}

const KernelTable& Active() { return KernelsFor(ActiveLevel()); }

void ForceLevel(Level level) {
  g_forced_level = std::min(level, DetectLevel());
  g_forced = true;
}

void ClearForcedLevel() { g_forced = false; }

}  // namespace cardbench::simd
