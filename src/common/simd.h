#ifndef CARDBENCH_COMMON_SIMD_H_
#define CARDBENCH_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace cardbench::simd {

/// Dispatch tiers of the shared kernel layer. Every tier implements the same
/// kernel table; DetectLevel() picks the best one the host CPU and the build
/// (CARDBENCH_NATIVE) support, and the CARDBENCH_SIMD environment variable
/// ("scalar", "sse2", "avx2", "avx512") clamps it down for testing the
/// fallback paths.
enum class Level : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Comparison operator of the integer filter kernels. Mirrors the numeric
/// values of query/predicate.h's CompareOp so storage can cast between them
/// without depending on this header's ordering by accident (column.cc
/// static_asserts the correspondence).
enum class Cmp : uint8_t {
  kEq = 0,
  kNeq = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

/// Accumulator lanes of the dot-product contract. `dot` sums products into
/// 16 logical lanes — lane l accumulates the products of elements with
/// index ≡ l (mod 16), in ascending index order — and reduces them in a
/// fixed binary tree: g_i = (l_{4i} + l_{4i+1}) + (l_{4i+2} + l_{4i+3}),
/// result = (g_0 + g_1) + (g_2 + g_3). Every tier implements exactly this
/// structure (scalar keeps 16 independent accumulators; AVX2 four 4-wide
/// vectors; AVX-512 two 8-wide vectors), no tier uses FMA, and the build
/// disables FP contraction, so all tiers are bit-identical.
inline constexpr size_t kDotLanes = 16;

/// One tier's kernel implementations. The double kernels other than `dot`
/// are elementwise (no cross-element reduction), so bit-identity across
/// tiers is structural; `dot` follows the kDotLanes contract above; the
/// int64 filter/gather kernels are exact.
struct KernelTable {
  /// dst[i] += a * x[i] for i in [0, n).
  void (*axpy)(double* dst, const double* x, double a, size_t n);
  /// dst[i] += x[i] for i in [0, n).
  void (*vec_add)(double* dst, const double* x, size_t n);
  /// x[i] *= a for i in [0, n).
  void (*vec_scale)(double* x, double a, size_t n);
  /// x[i] += bias[i] for i in [0, n).
  void (*add_bias)(double* x, const double* bias, size_t n);
  /// x[i] = max(+0.0, x[i]); -0.0 maps to +0.0 and NaN to +0.0 in every
  /// tier (the scalar tier mirrors maxpd's second-operand-on-tie rule).
  void (*relu)(double* x, size_t n);
  /// 16-lane striped dot product of a[0..n) and b[0..n); see kDotLanes.
  double (*dot)(const double* a, const double* b, size_t n);
  /// Writes to out[] the ids of rows in [begin, end) whose value is valid
  /// (valid[row] != 0) and satisfies `op rhs`, ascending. Returns the count.
  /// `out` must have capacity for end - begin entries; vector tiers may
  /// store up to one full vector past the final count (never past the
  /// capacity).
  size_t (*filter_range)(const int64_t* values, const uint8_t* valid,
                         size_t begin, size_t end, Cmp op, int64_t rhs,
                         uint32_t* out);
  /// Compacts rows[0, n) in place, keeping (in order) ids whose value is
  /// valid and satisfies `op rhs`. Returns the new count. Row ids must be
  /// < 2^31 (they index the gather kernels' signed-int32 lanes).
  size_t (*filter_rows)(const int64_t* values, const uint8_t* valid,
                        uint32_t* rows, size_t n, Cmp op, int64_t rhs);
  /// keys[i] = values[rows[i]], valid_out[i] = valid[rows[i]] for [0, n).
  void (*gather)(const int64_t* values, const uint8_t* valid,
                 const uint32_t* rows, size_t n, int64_t* keys,
                 uint8_t* valid_out);
};

/// Best tier supported by this CPU and build. Stable for the process.
Level DetectLevel();

/// The dispatch decision: DetectLevel() clamped by CARDBENCH_SIMD and by
/// ForceLevel(). Reads the environment once.
Level ActiveLevel();

/// "scalar", "sse2", "avx2" or "avx512".
const char* LevelName(Level level);

/// Parses a level name; false on unknown names.
bool ParseLevelName(const char* name, Level* out);

/// Kernel table of `level`, clamped to DetectLevel() so the returned
/// kernels are always executable on this host.
const KernelTable& KernelsFor(Level level);

/// Kernel table of ActiveLevel() — what the hot paths dispatch through.
const KernelTable& Active();

/// Test/bench-only override of ActiveLevel(), clamped to DetectLevel().
/// Not thread-safe; call before spawning workers.
void ForceLevel(Level level);
void ClearForcedLevel();

}  // namespace cardbench::simd

#endif  // CARDBENCH_COMMON_SIMD_H_
