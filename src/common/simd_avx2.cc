// AVX2 kernel tier. Compiled with -mavx2 (and nothing wider) in its own
// translation unit; the dispatcher only hands these kernels out after
// __builtin_cpu_supports("avx2"), so nothing here runs on older hosts.
// No FMA: fused multiply-add rounds once where mul+add round twice, which
// would break the bit-identity contract with the scalar tier.

#include "common/simd_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace cardbench::simd {

namespace {

using internal::CmpApply;
using internal::kCompress4;
using internal::ReduceDotLanes;
using internal::ValidMask4;

void AxpyAvx2(double* dst, const double* x, double a, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_add_pd(
        _mm256_loadu_pd(dst + i), _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(dst + i, r);
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void VecAddAvx2(double* dst, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) dst[i] += x[i];
}

void VecScaleAvx2(double* x, double a, size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void AddBiasAvx2(double* x, const double* bias, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_loadu_pd(x + i),
                                          _mm256_loadu_pd(bias + i)));
  }
  for (; i < n; ++i) x[i] += bias[i];
}

void ReluAvx2(double* x, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // max(x, 0): ties and NaN resolve to the second operand (+0.0).
    _mm256_storeu_pd(x + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc[kDotLanes / 4];
  for (auto& v : acc) v = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (size_t j = 0; j < kDotLanes / 4; ++j) {
      acc[j] = _mm256_add_pd(
          acc[j], _mm256_mul_pd(_mm256_loadu_pd(a + i + 4 * j),
                                _mm256_loadu_pd(b + i + 4 * j)));
    }
  }
  alignas(32) double lanes[kDotLanes];
  for (size_t j = 0; j < kDotLanes / 4; ++j) {
    _mm256_store_pd(lanes + 4 * j, acc[j]);
  }
  for (; i < n; ++i) lanes[i % kDotLanes] += a[i] * b[i];
  return ReduceDotLanes(lanes);
}

/// 4-bit keep mask of `op` over four packed int64 values. Only eq/gt
/// compares exist pre-AVX-512; the other four are derived by swapping
/// operands and inverting.
template <Cmp kOp>
uint32_t CmpMask4x64(__m256i v, __m256i rhs) {
  __m256i m;
  if constexpr (kOp == Cmp::kEq || kOp == Cmp::kNeq) {
    m = _mm256_cmpeq_epi64(v, rhs);
  } else if constexpr (kOp == Cmp::kGt || kOp == Cmp::kLe) {
    m = _mm256_cmpgt_epi64(v, rhs);
  } else {  // kLt, kGe
    m = _mm256_cmpgt_epi64(rhs, v);
  }
  uint32_t bits =
      static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
  if constexpr (kOp == Cmp::kNeq || kOp == Cmp::kLe || kOp == Cmp::kGe) {
    bits ^= 0xFu;
  }
  return bits;
}

/// Compresses the 4 uint32 lanes of `v` by `mask` to the front.
inline __m128i Compress4(__m128i v, uint32_t mask) {
  return _mm_shuffle_epi8(
      v, _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress4.b[mask])));
}

template <Cmp kOp>
size_t FilterRangeAvx2T(const int64_t* values, const uint8_t* valid,
                        size_t begin, size_t end, int64_t rhs, uint32_t* out) {
  size_t count = 0;
  size_t row = begin;
  const __m256i vrhs = _mm256_set1_epi64x(rhs);
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  for (; row + 4 <= end; row += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(values + row));
    const uint32_t m = CmpMask4x64<kOp>(v, vrhs) & ValidMask4(valid + row);
    const __m128i idx =
        _mm_add_epi32(_mm_set1_epi32(static_cast<int>(row)), iota);
    // Full-vector store: count <= row - begin, so count + 4 <= end - begin
    // stays inside the caller-guaranteed capacity; the lanes past the new
    // count are overwritten by the next iteration or discarded.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count),
                     Compress4(idx, m));
    count += static_cast<size_t>(__builtin_popcount(m));
  }
  for (; row < end; ++row) {
    out[count] = static_cast<uint32_t>(row);
    count += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return count;
}

template <Cmp kOp>
size_t FilterRowsAvx2T(const int64_t* values, const uint8_t* valid,
                       uint32_t* rows, size_t n, int64_t rhs) {
  // 8 elements per iteration: two 4-wide vpgatherqq for the values (the
  // wider batch amortizes the gather's micro-coded startup, which made the
  // 4-wide version lose to branchless scalar), a pinsrb-built vector for
  // the valid bytes (movemask beats the scalar shift-or chain), and a
  // shuffle-table compaction per half.
  size_t out = 0;
  size_t i = 0;
  const __m256i vrhs = _mm256_set1_epi64x(rhs);
  for (; i + 8 <= n; i += 8) {
    const __m128i rid_lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    const __m128i rid_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i + 4));
    const __m256i v_lo = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(values), rid_lo, 8);
    const __m256i v_hi = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(values), rid_hi, 8);
    __m128i vbytes = _mm_setzero_si128();
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 0]], 0);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 1]], 1);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 2]], 2);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 3]], 3);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 4]], 4);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 5]], 5);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 6]], 6);
    vbytes = _mm_insert_epi8(vbytes, valid[rows[i + 7]], 7);
    const uint32_t vm = static_cast<uint32_t>(_mm_movemask_epi8(
        _mm_cmpgt_epi8(vbytes, _mm_setzero_si128())));
    const uint32_t m =
        (CmpMask4x64<kOp>(v_lo, vrhs) | (CmpMask4x64<kOp>(v_hi, vrhs) << 4)) &
        vm;
    // In-place compaction: out <= i, and rows[i..i+7] are already loaded,
    // so the (full-vector) stores never clobber unread input.
    const uint32_t m_lo = m & 0xFu;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(rows + out),
                     Compress4(rid_lo, m_lo));
    out += static_cast<size_t>(__builtin_popcount(m_lo));
    const uint32_t m_hi = m >> 4;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(rows + out),
                     Compress4(rid_hi, m_hi));
    out += static_cast<size_t>(__builtin_popcount(m_hi));
  }
  for (; i < n; ++i) {
    const uint32_t row = rows[i];
    rows[out] = row;
    out += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return out;
}

size_t FilterRangeAvx2(const int64_t* values, const uint8_t* valid,
                       size_t begin, size_t end, Cmp op, int64_t rhs,
                       uint32_t* out) {
  switch (op) {
    case Cmp::kEq:
      return FilterRangeAvx2T<Cmp::kEq>(values, valid, begin, end, rhs, out);
    case Cmp::kNeq:
      return FilterRangeAvx2T<Cmp::kNeq>(values, valid, begin, end, rhs, out);
    case Cmp::kLt:
      return FilterRangeAvx2T<Cmp::kLt>(values, valid, begin, end, rhs, out);
    case Cmp::kLe:
      return FilterRangeAvx2T<Cmp::kLe>(values, valid, begin, end, rhs, out);
    case Cmp::kGt:
      return FilterRangeAvx2T<Cmp::kGt>(values, valid, begin, end, rhs, out);
    case Cmp::kGe:
      return FilterRangeAvx2T<Cmp::kGe>(values, valid, begin, end, rhs, out);
  }
  return 0;
}

size_t FilterRowsAvx2(const int64_t* values, const uint8_t* valid,
                      uint32_t* rows, size_t n, Cmp op, int64_t rhs) {
  switch (op) {
    case Cmp::kEq:
      return FilterRowsAvx2T<Cmp::kEq>(values, valid, rows, n, rhs);
    case Cmp::kNeq:
      return FilterRowsAvx2T<Cmp::kNeq>(values, valid, rows, n, rhs);
    case Cmp::kLt:
      return FilterRowsAvx2T<Cmp::kLt>(values, valid, rows, n, rhs);
    case Cmp::kLe:
      return FilterRowsAvx2T<Cmp::kLe>(values, valid, rows, n, rhs);
    case Cmp::kGt:
      return FilterRowsAvx2T<Cmp::kGt>(values, valid, rows, n, rhs);
    case Cmp::kGe:
      return FilterRowsAvx2T<Cmp::kGe>(values, valid, rows, n, rhs);
  }
  return 0;
}

void GatherAvx2(const int64_t* values, const uint8_t* valid,
                const uint32_t* rows, size_t n, int64_t* keys,
                uint8_t* valid_out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i rid =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(keys + i),
        _mm256_i32gather_epi64(reinterpret_cast<const long long*>(values),
                               rid, 8));
    valid_out[i] = valid[rows[i]];
    valid_out[i + 1] = valid[rows[i + 1]];
    valid_out[i + 2] = valid[rows[i + 2]];
    valid_out[i + 3] = valid[rows[i + 3]];
  }
  for (; i < n; ++i) {
    keys[i] = values[rows[i]];
    valid_out[i] = valid[rows[i]];
  }
}

constexpr KernelTable kAvx2Kernels = {
    AxpyAvx2,        VecAddAvx2,     VecScaleAvx2,
    AddBiasAvx2,     ReluAvx2,       DotAvx2,
    FilterRangeAvx2, FilterRowsAvx2, GatherAvx2,
};

}  // namespace

namespace internal {
const KernelTable* GetAvx2Kernels() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace cardbench::simd

#else  // !__AVX2__

namespace cardbench::simd::internal {
const KernelTable* GetAvx2Kernels() { return nullptr; }
}  // namespace cardbench::simd::internal

#endif  // __AVX2__
