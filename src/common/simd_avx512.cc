// AVX-512 kernel tier (F+DQ+BW+VL). Compiled with the matching -mavx512*
// flags in its own translation unit; the dispatcher requires all four
// features before handing these kernels out. No FMA intrinsics — the
// bit-identity contract forbids fused rounding.

#include "common/simd_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>

namespace cardbench::simd {

namespace {

using internal::CmpApply;
using internal::ReduceDotLanes;

void AxpyAvx512(double* dst, const double* x, double a, size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d r = _mm512_add_pd(
        _mm512_loadu_pd(dst + i), _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(dst + i, r);
  }
  for (; i < n; ++i) dst[i] += a * x[i];
}

void VecAddAvx512(double* dst, const double* x, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) dst[i] += x[i];
}

void VecScaleAvx512(double* x, double a, size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void AddBiasAvx512(double* x, const double* bias, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_add_pd(_mm512_loadu_pd(x + i),
                                          _mm512_loadu_pd(bias + i)));
  }
  for (; i < n; ++i) x[i] += bias[i];
}

void ReluAvx512(double* x, size_t n) {
  const __m512d zero = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // max(x, 0): ties and NaN resolve to the second operand (+0.0).
    _mm512_storeu_pd(x + i, _mm512_max_pd(_mm512_loadu_pd(x + i), zero));
  }
  for (; i < n; ++i) x[i] = std::max(0.0, x[i]);
}

double DotAvx512(const double* a, const double* b, size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(_mm512_loadu_pd(a + i),
                                             _mm512_loadu_pd(b + i)));
    acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(_mm512_loadu_pd(a + i + 8),
                                             _mm512_loadu_pd(b + i + 8)));
  }
  alignas(64) double lanes[kDotLanes];
  _mm512_store_pd(lanes, acc0);
  _mm512_store_pd(lanes + 8, acc1);
  for (; i < n; ++i) lanes[i % kDotLanes] += a[i] * b[i];
  return ReduceDotLanes(lanes);
}

/// _MM_CMPINT predicate matching `kOp` for signed 64-bit compares.
template <Cmp kOp>
constexpr int CmpImm() {
  if constexpr (kOp == Cmp::kEq) return _MM_CMPINT_EQ;
  if constexpr (kOp == Cmp::kNeq) return _MM_CMPINT_NE;
  if constexpr (kOp == Cmp::kLt) return _MM_CMPINT_LT;
  if constexpr (kOp == Cmp::kLe) return _MM_CMPINT_LE;
  if constexpr (kOp == Cmp::kGt) return _MM_CMPINT_NLE;
  return _MM_CMPINT_NLT;  // kGe
}

/// 8-bit keep mask of non-zero validity bytes at v[0..8).
inline __mmask8 ValidMask8(const uint8_t* v) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(v));
  return static_cast<__mmask8>(_mm_test_epi8_mask(bytes, bytes));
}

template <Cmp kOp>
size_t FilterRangeAvx512T(const int64_t* values, const uint8_t* valid,
                          size_t begin, size_t end, int64_t rhs,
                          uint32_t* out) {
  size_t count = 0;
  size_t row = begin;
  const __m512i vrhs = _mm512_set1_epi64(rhs);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (; row + 8 <= end; row += 8) {
    const __m512i v = _mm512_loadu_si512(values + row);
    const __mmask8 m = _mm512_cmp_epi64_mask(v, vrhs, CmpImm<kOp>()) &
                       ValidMask8(valid + row);
    const __m256i idx =
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(row)), iota);
    // Compress-store writes exactly popcount(m) lanes — no slack needed.
    _mm256_mask_compressstoreu_epi32(out + count, m, idx);
    count += static_cast<size_t>(__builtin_popcount(m));
  }
  for (; row < end; ++row) {
    out[count] = static_cast<uint32_t>(row);
    count += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return count;
}

template <Cmp kOp>
size_t FilterRowsAvx512T(const int64_t* values, const uint8_t* valid,
                         uint32_t* rows, size_t n, int64_t rhs) {
  size_t out = 0;
  size_t i = 0;
  const __m512i vrhs = _mm512_set1_epi64(rhs);
  for (; i + 8 <= n; i += 8) {
    const __m256i rid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m512i v = _mm512_i32gather_epi64(rid, values, 8);
    __mmask8 m = _mm512_cmp_epi64_mask(v, vrhs, CmpImm<kOp>());
    __mmask8 vm = 0;
    for (int k = 0; k < 8; ++k) {
      vm = static_cast<__mmask8>(vm |
                                 ((valid[rows[i + k]] ? 1u : 0u) << k));
    }
    m &= vm;
    // In-place compaction: out <= i and rows[i..i+7] are already loaded.
    _mm256_mask_compressstoreu_epi32(rows + out, m, rid);
    out += static_cast<size_t>(__builtin_popcount(m));
  }
  for (; i < n; ++i) {
    const uint32_t row = rows[i];
    rows[out] = row;
    out += (valid[row] && CmpApply(kOp, values[row], rhs)) ? 1 : 0;
  }
  return out;
}

size_t FilterRangeAvx512(const int64_t* values, const uint8_t* valid,
                         size_t begin, size_t end, Cmp op, int64_t rhs,
                         uint32_t* out) {
  switch (op) {
    case Cmp::kEq:
      return FilterRangeAvx512T<Cmp::kEq>(values, valid, begin, end, rhs, out);
    case Cmp::kNeq:
      return FilterRangeAvx512T<Cmp::kNeq>(values, valid, begin, end, rhs,
                                           out);
    case Cmp::kLt:
      return FilterRangeAvx512T<Cmp::kLt>(values, valid, begin, end, rhs, out);
    case Cmp::kLe:
      return FilterRangeAvx512T<Cmp::kLe>(values, valid, begin, end, rhs, out);
    case Cmp::kGt:
      return FilterRangeAvx512T<Cmp::kGt>(values, valid, begin, end, rhs, out);
    case Cmp::kGe:
      return FilterRangeAvx512T<Cmp::kGe>(values, valid, begin, end, rhs, out);
  }
  return 0;
}

size_t FilterRowsAvx512(const int64_t* values, const uint8_t* valid,
                        uint32_t* rows, size_t n, Cmp op, int64_t rhs) {
  switch (op) {
    case Cmp::kEq:
      return FilterRowsAvx512T<Cmp::kEq>(values, valid, rows, n, rhs);
    case Cmp::kNeq:
      return FilterRowsAvx512T<Cmp::kNeq>(values, valid, rows, n, rhs);
    case Cmp::kLt:
      return FilterRowsAvx512T<Cmp::kLt>(values, valid, rows, n, rhs);
    case Cmp::kLe:
      return FilterRowsAvx512T<Cmp::kLe>(values, valid, rows, n, rhs);
    case Cmp::kGt:
      return FilterRowsAvx512T<Cmp::kGt>(values, valid, rows, n, rhs);
    case Cmp::kGe:
      return FilterRowsAvx512T<Cmp::kGe>(values, valid, rows, n, rhs);
  }
  return 0;
}

void GatherAvx512(const int64_t* values, const uint8_t* valid,
                  const uint32_t* rows, size_t n, int64_t* keys,
                  uint8_t* valid_out) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    _mm512_storeu_si512(keys + i, _mm512_i32gather_epi64(rid, values, 8));
    for (int k = 0; k < 8; ++k) valid_out[i + k] = valid[rows[i + k]];
  }
  for (; i < n; ++i) {
    keys[i] = values[rows[i]];
    valid_out[i] = valid[rows[i]];
  }
}

constexpr KernelTable kAvx512Kernels = {
    AxpyAvx512,        VecAddAvx512,     VecScaleAvx512,
    AddBiasAvx512,     ReluAvx512,       DotAvx512,
    FilterRangeAvx512, FilterRowsAvx512, GatherAvx512,
};

}  // namespace

namespace internal {
const KernelTable* GetAvx512Kernels() { return &kAvx512Kernels; }
}  // namespace internal

}  // namespace cardbench::simd

#else  // !AVX-512 F+DQ+BW+VL

namespace cardbench::simd::internal {
const KernelTable* GetAvx512Kernels() { return nullptr; }
}  // namespace cardbench::simd::internal

#endif
