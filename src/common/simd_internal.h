#ifndef CARDBENCH_COMMON_SIMD_INTERNAL_H_
#define CARDBENCH_COMMON_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

/// Shared between simd.cc (dispatch + scalar/SSE2 tiers) and the
/// ISA-specific translation units (simd_avx2.cc / simd_avx512.cc, compiled
/// with their own -m flags when CARDBENCH_NATIVE is on). Nothing here is
/// part of the public kernel API.

namespace cardbench::simd::internal {

/// Scalar comparator used by every tier's tail loop.
inline bool CmpApply(Cmp op, int64_t a, int64_t b) {
  switch (op) {
    case Cmp::kEq: return a == b;
    case Cmp::kNeq: return a != b;
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
  }
  return false;
}

/// The fixed lane-reduction tree of the dot contract (see simd.h). Every
/// tier materializes its accumulators into 16 doubles and reduces here, so
/// the final rounding sequence is identical by construction.
inline double ReduceDotLanes(const double* lanes) {
  const double g0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  const double g1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
  const double g2 = (lanes[8] + lanes[9]) + (lanes[10] + lanes[11]);
  const double g3 = (lanes[12] + lanes[13]) + (lanes[14] + lanes[15]);
  return (g0 + g1) + (g2 + g3);
}

/// Byte-shuffle table compressing 4 uint32 lanes by a 4-bit keep mask:
/// row m moves the kept lanes to the front (0x80 zeroes the rest). Drives
/// the AVX2 filter kernels' compress-store.
struct Compress4Lut {
  alignas(16) uint8_t b[16][16];
};

constexpr Compress4Lut MakeCompress4Lut() {
  Compress4Lut lut{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int p = 0; p < 4; ++p) {
      if ((m >> p) & 1) {
        for (int k = 0; k < 4; ++k) {
          lut.b[m][4 * out + k] = static_cast<uint8_t>(4 * p + k);
        }
        ++out;
      }
    }
    for (; out < 4; ++out) {
      for (int k = 0; k < 4; ++k) lut.b[m][4 * out + k] = 0x80;
    }
  }
  return lut;
}

inline constexpr Compress4Lut kCompress4 = MakeCompress4Lut();

/// Validity bytes -> keep-mask bits (bit i set iff v[i] != 0).
inline uint32_t ValidMask4(const uint8_t* v) {
  return (v[0] ? 1u : 0u) | (v[1] ? 2u : 0u) | (v[2] ? 4u : 0u) |
         (v[3] ? 8u : 0u);
}

/// Tier tables provided by the ISA-specific TUs; nullptr when the build
/// does not include them (CARDBENCH_NATIVE=OFF or non-x86 target).
const KernelTable* GetAvx2Kernels();
const KernelTable* GetAvx512Kernels();

}  // namespace cardbench::simd::internal

#endif  // CARDBENCH_COMMON_SIMD_INTERNAL_H_
