#ifndef CARDBENCH_COMMON_STATUS_H_
#define CARDBENCH_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cardbench {

/// Error-code taxonomy used across the library. We follow the RocksDB idiom:
/// no exceptions cross library boundaries; fallible functions return a
/// Status (or Result<T> below) that the caller must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kIOError,
  /// A bounded resource (request queue, admission budget) is full; the
  /// caller should shed load or retry later. Used by the serving layer's
  /// backpressure path.
  kResourceExhausted,
  /// A per-request wall-clock deadline expired before the work finished.
  /// The serving layer aborts the remaining estimation and returns this
  /// instead of partial results.
  kDeadlineExceeded,
  /// The service is shutting down (or otherwise not accepting work); unlike
  /// kResourceExhausted, retrying against the same endpoint will not help.
  kUnavailable,
};

/// Stable code spelling used in logs and on the wire (src/server/protocol).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

/// Lightweight status object carrying a code and a human-readable message.
/// Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type. Holds either a T or a non-OK Status.
/// Accessing value() on an error aborts in debug builds (callers must check
/// ok() first), mirroring absl::StatusOr semantics without the dependency.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>, mirroring absl::StatusOr ergonomics.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; an OK status is a programming error and is
  /// converted to an Internal error to keep the invariant "holds T xor error".
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status to the caller.
#define CARDBENCH_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::cardbench::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define CARDBENCH_CONCAT_INNER_(a, b) a##b
#define CARDBENCH_CONCAT_(a, b) CARDBENCH_CONCAT_INNER_(a, b)
#define CARDBENCH_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto CARDBENCH_CONCAT_(_cardbench_res_, __LINE__) = (expr);             \
  if (!CARDBENCH_CONCAT_(_cardbench_res_, __LINE__).ok())                 \
    return CARDBENCH_CONCAT_(_cardbench_res_, __LINE__).status();         \
  lhs = std::move(CARDBENCH_CONCAT_(_cardbench_res_, __LINE__)).value()

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_STATUS_H_
