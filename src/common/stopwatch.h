#ifndef CARDBENCH_COMMON_STOPWATCH_H_
#define CARDBENCH_COMMON_STOPWATCH_H_

#include <chrono>

namespace cardbench {

/// Monotonic wall-clock stopwatch used to time planning, inference,
/// training and execution phases. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_STOPWATCH_H_
