#include "common/str_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace cardbench {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDuration(double seconds) {
  if (seconds >= 3600.0) return StrFormat("%.2fh", seconds / 3600.0);
  if (seconds >= 60.0) return StrFormat("%.1fmin", seconds / 60.0);
  if (seconds >= 1.0) return StrFormat("%.2fs", seconds);
  if (seconds >= 1e-3) return StrFormat("%.2fms", seconds * 1e3);
  return StrFormat("%.1fus", seconds * 1e6);
}

std::string FormatBytes(size_t bytes) {
  const double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024.0 * 1024.0) return StrFormat("%.2fGB", b / (1024.0 * 1024.0 * 1024.0));
  if (b >= 1024.0 * 1024.0) return StrFormat("%.2fMB", b / (1024.0 * 1024.0));
  if (b >= 1024.0) return StrFormat("%.1fKB", b / 1024.0);
  return StrFormat("%zuB", bytes);
}

std::string FormatCount(double count) {
  if (count < 0) return "-" + FormatCount(-count);
  if (count < 1e6) return StrFormat("%.0f", count);
  const int exp = static_cast<int>(std::floor(std::log10(count)));
  const double mant = count / std::pow(10.0, exp);
  return StrFormat("%.1fe%d", mant, exp);
}

}  // namespace cardbench
