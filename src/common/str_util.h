#ifndef CARDBENCH_COMMON_STR_UTIL_H_
#define CARDBENCH_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cardbench {

/// Splits `text` on `sep`, keeping empty fields. Split("a,,b", ',') yields
/// {"a", "", "b"}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// FNV-1a 64-bit hash. Stable across platforms and runs — used to derive
/// per-sub-plan RNG seeds (sampling estimators) and cache shard choices,
/// where std::hash's unspecified stability would break reproducibility.
uint64_t Fnv1aHash(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable duration: picks s / ms / h formatting as the paper's
/// tables do (e.g. "3.67h", "25s", "4.3ms").
std::string FormatDuration(double seconds);

/// Human-readable byte count ("1.2MB", "340KB").
std::string FormatBytes(size_t bytes);

/// Compact scientific-ish count formatting for large cardinalities
/// ("2.0e12", "146").
std::string FormatCount(double count);

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_STR_UTIL_H_
