#include "common/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cardbench {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // Resolve the future with an error instead of deadlocking the caller
      // on a task no worker will ever run.
      std::packaged_task<void()> reject(
          [] { throw std::runtime_error("ThreadPool is shut down"); });
      std::future<void> rejected = reject.get_future();
      reject();
      return rejected;
    }
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool.Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cardbench
