#ifndef CARDBENCH_COMMON_THREAD_POOL_H_
#define CARDBENCH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cardbench {

/// Fixed-size worker-thread pool. The architectural seam for every
/// concurrent path in the repo: the estimation serving layer
/// (`src/service`) runs its request-drain loops on one, and the harness's
/// `--threads=N` fan-out submits one task per workload query.
///
/// Semantics:
///  - Submit enqueues a task and returns a future that resolves when the
///    task finishes. Exceptions thrown by the task are captured into the
///    future (std::future::get rethrows) rather than crossing thread
///    boundaries unhandled — workers never die from a throwing task.
///  - The internal task queue is unbounded; admission control belongs to
///    the caller (the service layer bounds its own request queue and
///    rejects with a Status instead of blocking — see
///    service/request_queue.h).
///  - Shutdown drains already-queued tasks, then joins the workers.
///    Submit after Shutdown returns an already-resolved future carrying a
///    std::runtime_error. The destructor calls Shutdown.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the returned future resolves on completion and
  /// rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  /// Drains queued tasks and joins all workers. Idempotent; safe to call
  /// concurrently with Submit (late submissions are rejected, see above).
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Queued-but-not-started task count (diagnostics).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, count) across `pool`, blocking until all
/// iterations finish. The first exception any iteration threw is rethrown
/// after every iteration has completed (matching serial fail-fast semantics
/// closely enough for CHECK-style fatal paths, which abort regardless).
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace cardbench

#endif  // CARDBENCH_COMMON_THREAD_POOL_H_
