#include "datagen/distributions.h"

#include <cmath>

namespace cardbench {

Value HeavyTailValue(Rng& rng, int64_t n, double s, double alpha,
                     double base) {
  const int64_t rank = rng.NextZipf(n, s) + 1;
  const double v = base * std::pow(static_cast<double>(rank), alpha) *
                   LogNoise(rng, 0.3);
  return static_cast<Value>(v);
}

double LogNoise(Rng& rng, double sigma) {
  return std::exp(sigma * rng.NextGaussian());
}

std::vector<Value> SkewedForeignKeys(Rng& rng,
                                     const std::vector<Value>& parent_ids,
                                     const std::vector<double>& parent_weights,
                                     size_t count) {
  WeightedSampler sampler(parent_weights);
  std::vector<Value> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(parent_ids[sampler.Sample(rng)]);
  }
  return out;
}

Value ZipfCategory(Rng& rng, int64_t domain, double s) {
  return rng.NextZipf(domain, s) + 1;
}

}  // namespace cardbench
