#ifndef CARDBENCH_DATAGEN_DISTRIBUTIONS_H_
#define CARDBENCH_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/value.h"

namespace cardbench {

/// Building blocks for the synthetic dataset generators. All functions are
/// deterministic given the Rng state, so datasets are reproducible from the
/// generator seed.

/// Heavy-tailed positive value: floor(base * rank^alpha * lognoise) where
/// rank is Zipf(n, s). Produces the skewed marginals (reputation, view
/// counts, scores) that make STATS hard for independence-based estimators.
Value HeavyTailValue(Rng& rng, int64_t n, double s, double alpha, double base);

/// Multiplicative log-normal noise factor exp(sigma * N(0,1)).
double LogNoise(Rng& rng, double sigma);

/// Assigns `count` foreign-key references over `parent_ids`, weighted by
/// `parent_weights` (heavier parents get more children — the skewed join-key
/// degree distribution that the paper identifies as a NeuroCard failure
/// mode). Some parents receive zero children. Returns one parent id per
/// child.
std::vector<Value> SkewedForeignKeys(Rng& rng,
                                     const std::vector<Value>& parent_ids,
                                     const std::vector<double>& parent_weights,
                                     size_t count);

/// Zipf-weighted categorical value in [1, domain]: value 1 is the most
/// common, mimicking type-id columns (PostTypeId, VoteTypeId, ...).
Value ZipfCategory(Rng& rng, int64_t domain, double s);

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_DISTRIBUTIONS_H_
