#ifndef CARDBENCH_DATAGEN_GEN_UTIL_H_
#define CARDBENCH_DATAGEN_GEN_UTIL_H_

#include <string>

#include "common/logging.h"
#include "storage/catalog.h"

namespace cardbench {

/// Creates a table in `db`, aborting on schema errors — generator schemas
/// are static, so a failure is a programming error, not a runtime condition.
inline Table* AddTableOrDie(Database& db, const std::string& name) {
  auto result = db.AddTable(name);
  CARDBENCH_CHECK(result.ok(), "AddTable(%s): %s", name.c_str(),
                  result.status().ToString().c_str());
  return result.value();
}

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_GEN_UTIL_H_
