#include "datagen/imdb_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "datagen/distributions.h"
#include "datagen/gen_util.h"

namespace cardbench {

namespace {

size_t Scaled(double scale, size_t base) {
  return std::max<size_t>(8, static_cast<size_t>(base * scale));
}

}  // namespace

std::unique_ptr<Database> GenerateImdbDatabase(const ImdbGenConfig& config) {
  auto db = std::make_unique<Database>("imdb");
  Rng rng(config.seed);

  const size_t n_title = Scaled(config.scale, 25000);
  const size_t n_cast = Scaled(config.scale, 60000);
  const size_t n_info = Scaled(config.scale, 45000);
  const size_t n_keyword = Scaled(config.scale, 30000);
  const size_t n_companies = Scaled(config.scale, 20000);
  const size_t n_info_idx = Scaled(config.scale, 12000);

  // ----------------------------------------------------------------- title
  // Central table of the star. production_year mildly skewed toward recent
  // years, kind_id a small categorical domain.
  Table* title = AddTableOrDie(*db, "title");
  CARDBENCH_CHECK(title->AddColumn("id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(title->AddColumn("kind_id", ColumnKind::kCategorical).ok(), "schema");
  CARDBENCH_CHECK(title->AddColumn("production_year", ColumnKind::kNumeric).ok(), "schema");

  Rng title_rng = rng.Fork();
  std::vector<Value> title_ids(n_title);
  std::vector<double> title_weight(n_title);
  for (size_t i = 0; i < n_title; ++i) {
    title_ids[i] = static_cast<Value>(i + 1);
    // Popularity drives FK degree; milder skew than STATS.
    title_weight[i] = static_cast<double>(title_rng.NextZipf(400, 0.8) + 1);
    const Value kind = ZipfCategory(title_rng, 7, 1.0);
    const Value year = 2020 - title_rng.NextZipf(110, 0.6);
    CARDBENCH_CHECK(title->AppendRow({title_ids[i], kind, year}).ok(),
                    "title row");
  }

  struct SatelliteSpec {
    const char* table;
    const char* fk;
    const char* attr1;
    int64_t domain1;
    double skew1;
    const char* attr2;  // nullptr if single-attribute table
    int64_t domain2;
    double skew2;
    size_t rows;
  };
  const SatelliteSpec satellites[] = {
      {"cast_info", "movie_id", "role_id", 11, 0.5, nullptr, 0, 0, n_cast},
      {"movie_info", "movie_id", "info_type_id", 110, 0.3, nullptr, 0, 0,
       n_info},
      {"movie_keyword", "movie_id", "keyword_id", 8000, 0.25, nullptr, 0, 0,
       n_keyword},
      {"movie_companies", "movie_id", "company_id", 5000, 0.3,
       "company_type_id", 2, 0.5, n_companies},
      {"movie_info_idx", "movie_id", "info_type_id", 5, 0.5, nullptr, 0, 0,
       n_info_idx},
  };

  for (const auto& spec : satellites) {
    Table* table = AddTableOrDie(*db, spec.table);
    CARDBENCH_CHECK(table->AddColumn("id", ColumnKind::kKey).ok(), "schema");
    CARDBENCH_CHECK(table->AddColumn(spec.fk, ColumnKind::kKey).ok(), "schema");
    CARDBENCH_CHECK(
        table->AddColumn(spec.attr1, ColumnKind::kCategorical).ok(), "schema");
    if (spec.attr2 != nullptr) {
      CARDBENCH_CHECK(
          table->AddColumn(spec.attr2, ColumnKind::kCategorical).ok(),
          "schema");
    }
    Rng sat_rng = rng.Fork();
    const std::vector<Value> fks =
        SkewedForeignKeys(sat_rng, title_ids, title_weight, spec.rows);
    // Attribute values correlate with the referenced title's popularity
    // (popular movies attract different keywords/roles/info types): this is
    // the real-IMDB dependency between satellite attributes and join-key
    // degree that independence-based join estimation cannot see.
    double max_weight = 1.0;
    for (double w : title_weight) max_weight = std::max(max_weight, w);
    for (size_t i = 0; i < spec.rows; ++i) {
      const double pop_norm =
          title_weight[static_cast<size_t>(fks[i] - 1)] / max_weight;
      auto correlated_value = [&](int64_t domain, double skew) {
        const Value band = static_cast<Value>(
            pop_norm * 0.5 * static_cast<double>(domain));
        const int64_t span = std::max<int64_t>(1, domain - band);
        return band + ZipfCategory(sat_rng, span, skew);
      };
      std::vector<std::optional<Value>> row = {
          static_cast<Value>(i + 1), fks[i],
          correlated_value(spec.domain1, spec.skew1)};
      if (spec.attr2 != nullptr) {
        row.push_back(correlated_value(spec.domain2, spec.skew2));
      }
      CARDBENCH_CHECK(table->AppendRow(row).ok(), "%s row", spec.table);
    }
    CARDBENCH_CHECK(
        db->AddJoinRelation(
              {"title", "id", spec.table, spec.fk, JoinKind::kPkFk})
            .ok(),
        "relation");
  }

  CARDBENCH_LOG("generated IMDB-like db: %zu tables, %zu total rows",
                db->num_tables(),
                n_title + n_cast + n_info + n_keyword + n_companies +
                    n_info_idx);
  return db;
}

}  // namespace cardbench
