#ifndef CARDBENCH_DATAGEN_IMDB_GEN_H_
#define CARDBENCH_DATAGEN_IMDB_GEN_H_

#include <memory>

#include "storage/catalog.h"

namespace cardbench {

/// Configuration of the synthetic simplified-IMDB dataset, the easier
/// counterpart benchmark (paper Table 1, left column): 6 tables, 8
/// filterable attributes (1-2 per table), a pure star join schema centered
/// on `title` (5 PK-FK relations), and milder skew/correlation than STATS.
struct ImdbGenConfig {
  uint64_t seed = 7;
  /// Multiplies every table's row count; scale=1.0 yields ~190k total rows.
  double scale = 1.0;
};

/// Generates the IMDB-like database (JOB-LIGHT's simplified subset).
std::unique_ptr<Database> GenerateImdbDatabase(const ImdbGenConfig& config);

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_IMDB_GEN_H_
