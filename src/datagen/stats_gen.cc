#include "datagen/stats_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "datagen/distributions.h"
#include "datagen/gen_util.h"

namespace cardbench {

namespace {

// Abstract time axis: creation dates live in [0, kDateMax]. Parents get
// uniform dates over the first 80% of the axis; children are created an
// exponentially distributed delay after their newest parent.
constexpr Value kDateMax = 1000000;

Value ParentDate(Rng& rng) {
  return static_cast<Value>(rng.NextDouble() * 0.8 * kDateMax);
}

Value ChildDate(Rng& rng, Value parent_date, double mean_delay_frac) {
  const double delay = -std::log(std::max(rng.NextDouble(), 1e-12)) *
                       mean_delay_frac * kDateMax;
  return std::min<Value>(kDateMax, parent_date + static_cast<Value>(delay));
}

size_t Scaled(double scale, size_t base) {
  return std::max<size_t>(8, static_cast<size_t>(base * scale));
}

std::optional<Value> MaybeNull(Rng& rng, double null_prob, Value v) {
  if (rng.NextBool(null_prob)) return std::nullopt;
  return v;
}

}  // namespace

std::string StatsTimestampColumn(const std::string& table_name) {
  if (table_name == "badges") return "Date";
  if (table_name == "users" || table_name == "posts" ||
      table_name == "comments" || table_name == "votes" ||
      table_name == "postHistory" || table_name == "postLinks") {
    return "CreationDate";
  }
  return "";  // tags has no timestamp
}

std::unique_ptr<Database> GenerateStatsDatabase(const StatsGenConfig& config) {
  auto db = std::make_unique<Database>("stats");
  Rng rng(config.seed);

  const size_t n_users = Scaled(config.scale, 4000);
  const size_t n_posts = Scaled(config.scale, 9100);
  const size_t n_comments = Scaled(config.scale, 17500);
  const size_t n_badges = Scaled(config.scale, 8000);
  const size_t n_votes = Scaled(config.scale, 33000);
  const size_t n_history = Scaled(config.scale, 30000);
  const size_t n_links = Scaled(config.scale, 1100);
  const size_t n_tags = Scaled(config.scale, 250);

  // ---------------------------------------------------------------- users
  // Latent "activity" drives reputation/views/votes (intra-table
  // correlation) and the user's share of child rows (skewed FK degrees).
  Table* users = AddTableOrDie(*db, "users");
  CARDBENCH_CHECK(users->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(users->AddColumn("Reputation", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(users->AddColumn("CreationDate", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(users->AddColumn("Views", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(users->AddColumn("UpVotes", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(users->AddColumn("DownVotes", ColumnKind::kNumeric).ok(), "schema");

  std::vector<Value> user_ids(n_users);
  std::vector<double> user_weight(n_users);
  std::vector<Value> user_date(n_users);
  Rng user_rng = rng.Fork();
  for (size_t i = 0; i < n_users; ++i) {
    const double activity =
        static_cast<double>(user_rng.NextZipf(1000, 1.05) + 1);
    const Value date = ParentDate(user_rng);
    user_ids[i] = static_cast<Value>(i + 1);
    // Super-linear weight: hot users own a disproportionate share of child
    // rows (skewed join-key degrees, a deliberate STATS pathology).
    user_weight[i] = std::pow(activity, 1.6);
    user_date[i] = date;
    const Value reputation =
        1 + static_cast<Value>(std::pow(activity, 2.0) *
                               LogNoise(user_rng, 0.4));
    const Value views = static_cast<Value>(
        0.5 * std::pow(activity, 1.6) * LogNoise(user_rng, 0.5));
    const Value upvotes = static_cast<Value>(
        0.2 * std::pow(activity, 1.8) * LogNoise(user_rng, 0.5));
    const Value downvotes = static_cast<Value>(
        0.05 * std::pow(activity, 1.4) * LogNoise(user_rng, 0.6));
    CARDBENCH_CHECK(users
                        ->AppendRow({user_ids[i], reputation, date, views,
                                     upvotes, downvotes})
                        .ok(),
                    "users row");
  }

  // ---------------------------------------------------------------- posts
  Table* posts = AddTableOrDie(*db, "posts");
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, ColumnKind>>{
           {"Id", ColumnKind::kKey},
           {"PostTypeId", ColumnKind::kCategorical},
           {"CreationDate", ColumnKind::kNumeric},
           {"Score", ColumnKind::kNumeric},
           {"ViewCount", ColumnKind::kNumeric},
           {"OwnerUserId", ColumnKind::kKey},
           {"AnswerCount", ColumnKind::kNumeric},
           {"CommentCount", ColumnKind::kNumeric},
           {"FavoriteCount", ColumnKind::kNumeric},
           {"LastEditorUserId", ColumnKind::kKey}}) {
    CARDBENCH_CHECK(posts->AddColumn(name, kind).ok(), "schema");
  }

  Rng post_rng = rng.Fork();
  std::vector<Value> post_ids(n_posts);
  std::vector<double> post_weight(n_posts);
  std::vector<Value> post_date(n_posts);
  const std::vector<Value> post_owners =
      SkewedForeignKeys(post_rng, user_ids, user_weight, n_posts);
  for (size_t i = 0; i < n_posts; ++i) {
    post_ids[i] = static_cast<Value>(i + 1);
    const double popularity =
        static_cast<double>(post_rng.NextZipf(1500, 1.05) + 1);
    post_weight[i] = std::pow(popularity, 1.6);
    const Value owner = post_owners[i];
    const Value owner_date = user_date[static_cast<size_t>(owner - 1)];
    const Value date = ChildDate(post_rng, owner_date, 0.10);
    post_date[i] = date;

    const Value post_type = ZipfCategory(post_rng, 8, 1.6);
    const Value score = static_cast<Value>(std::pow(popularity, 1.1) *
                                           LogNoise(post_rng, 0.4)) -
                        post_rng.NextInt64(0, 3);
    const Value view_count = static_cast<Value>(
        std::pow(popularity, 1.6) * LogNoise(post_rng, 0.5));
    // Only questions (type 1) carry an answer count: NULL correlation with
    // PostTypeId, a cross-attribute dependency independence-based
    // estimators cannot see.
    std::optional<Value> answer_count;
    if (post_type == 1) {
      answer_count = static_cast<Value>(std::pow(popularity, 0.4) *
                                        LogNoise(post_rng, 0.4));
    }
    const Value comment_count = static_cast<Value>(
        std::pow(popularity, 0.5) * LogNoise(post_rng, 0.4));
    const std::optional<Value> favorite_count = MaybeNull(
        post_rng, 0.6,
        static_cast<Value>(0.1 * std::pow(popularity, 1.2) *
                           LogNoise(post_rng, 0.5)));
    const std::optional<Value> owner_opt = MaybeNull(post_rng, 0.03, owner);
    const std::optional<Value> editor = MaybeNull(
        post_rng, 0.5,
        user_ids[static_cast<size_t>(post_rng.NextUint64(n_users))]);
    CARDBENCH_CHECK(posts
                        ->AppendRow({post_ids[i], post_type, date, score,
                                     MaybeNull(post_rng, 0.05, view_count),
                                     owner_opt, answer_count, comment_count,
                                     favorite_count, editor})
                        .ok(),
                    "posts row");
  }

  auto post_parent_date = [&](Value post_id) {
    return post_date[static_cast<size_t>(post_id - 1)];
  };

  // -------------------------------------------------------------- comments
  Table* comments = AddTableOrDie(*db, "comments");
  CARDBENCH_CHECK(comments->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(comments->AddColumn("PostId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(comments->AddColumn("Score", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(comments->AddColumn("CreationDate", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(comments->AddColumn("UserId", ColumnKind::kKey).ok(), "schema");

  Rng comment_rng = rng.Fork();
  const std::vector<Value> comment_posts =
      SkewedForeignKeys(comment_rng, post_ids, post_weight, n_comments);
  const std::vector<Value> comment_users =
      SkewedForeignKeys(comment_rng, user_ids, user_weight, n_comments);
  for (size_t i = 0; i < n_comments; ++i) {
    const Value pid = comment_posts[i];
    const Value date = ChildDate(comment_rng, post_parent_date(pid), 0.05);
    const Value score = comment_rng.NextZipf(60, 1.9);
    CARDBENCH_CHECK(
        comments
            ->AppendRow({static_cast<Value>(i + 1), pid, score, date,
                         MaybeNull(comment_rng, 0.10, comment_users[i])})
            .ok(),
        "comments row");
  }

  // ---------------------------------------------------------------- badges
  Table* badges = AddTableOrDie(*db, "badges");
  CARDBENCH_CHECK(badges->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(badges->AddColumn("UserId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(badges->AddColumn("Date", ColumnKind::kNumeric).ok(), "schema");

  Rng badge_rng = rng.Fork();
  const std::vector<Value> badge_users =
      SkewedForeignKeys(badge_rng, user_ids, user_weight, n_badges);
  for (size_t i = 0; i < n_badges; ++i) {
    const Value uid = badge_users[i];
    const Value date =
        ChildDate(badge_rng, user_date[static_cast<size_t>(uid - 1)], 0.15);
    CARDBENCH_CHECK(
        badges->AppendRow({static_cast<Value>(i + 1), uid, date}).ok(),
        "badges row");
  }

  // ----------------------------------------------------------------- votes
  Table* votes = AddTableOrDie(*db, "votes");
  CARDBENCH_CHECK(votes->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(votes->AddColumn("PostId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(votes->AddColumn("VoteTypeId", ColumnKind::kCategorical).ok(), "schema");
  CARDBENCH_CHECK(votes->AddColumn("CreationDate", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(votes->AddColumn("UserId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(votes->AddColumn("BountyAmount", ColumnKind::kNumeric).ok(), "schema");

  Rng vote_rng = rng.Fork();
  const std::vector<Value> vote_posts =
      SkewedForeignKeys(vote_rng, post_ids, post_weight, n_votes);
  const std::vector<Value> vote_users =
      SkewedForeignKeys(vote_rng, user_ids, user_weight, n_votes);
  for (size_t i = 0; i < n_votes; ++i) {
    const Value pid = vote_posts[i];
    const Value date = ChildDate(vote_rng, post_parent_date(pid), 0.05);
    const Value vote_type = ZipfCategory(vote_rng, 10, 1.4);
    // Only bounty votes (rare) carry an amount and a user: correlated NULLs.
    const bool is_bounty = vote_type == 8 || vote_rng.NextBool(0.02);
    std::optional<Value> bounty;
    std::optional<Value> user;
    if (is_bounty) {
      bounty = 50 * vote_rng.NextInt64(1, 10);
      user = vote_users[i];
    } else if (vote_rng.NextBool(0.2)) {
      user = vote_users[i];
    }
    CARDBENCH_CHECK(votes
                        ->AppendRow({static_cast<Value>(i + 1), pid, vote_type,
                                     date, user, bounty})
                        .ok(),
                    "votes row");
  }

  // ------------------------------------------------------------ postHistory
  Table* history = AddTableOrDie(*db, "postHistory");
  CARDBENCH_CHECK(history->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(history->AddColumn("PostHistoryTypeId", ColumnKind::kCategorical).ok(), "schema");
  CARDBENCH_CHECK(history->AddColumn("PostId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(history->AddColumn("CreationDate", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(history->AddColumn("UserId", ColumnKind::kKey).ok(), "schema");

  Rng hist_rng = rng.Fork();
  const std::vector<Value> hist_posts =
      SkewedForeignKeys(hist_rng, post_ids, post_weight, n_history);
  const std::vector<Value> hist_users =
      SkewedForeignKeys(hist_rng, user_ids, user_weight, n_history);
  for (size_t i = 0; i < n_history; ++i) {
    const Value pid = hist_posts[i];
    const Value date = ChildDate(hist_rng, post_parent_date(pid), 0.08);
    const Value type = ZipfCategory(hist_rng, 12, 1.3);
    CARDBENCH_CHECK(history
                        ->AppendRow({static_cast<Value>(i + 1), type, pid,
                                     date,
                                     MaybeNull(hist_rng, 0.2, hist_users[i])})
                        .ok(),
                    "postHistory row");
  }

  // -------------------------------------------------------------- postLinks
  Table* links = AddTableOrDie(*db, "postLinks");
  CARDBENCH_CHECK(links->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(links->AddColumn("PostId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(links->AddColumn("RelatedPostId", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(links->AddColumn("LinkTypeId", ColumnKind::kCategorical).ok(), "schema");
  CARDBENCH_CHECK(links->AddColumn("CreationDate", ColumnKind::kNumeric).ok(), "schema");

  Rng link_rng = rng.Fork();
  const std::vector<Value> link_posts =
      SkewedForeignKeys(link_rng, post_ids, post_weight, n_links);
  const std::vector<Value> link_related =
      SkewedForeignKeys(link_rng, post_ids, post_weight, n_links);
  for (size_t i = 0; i < n_links; ++i) {
    const Value pid = link_posts[i];
    const Value date = ChildDate(link_rng, post_parent_date(pid), 0.1);
    const Value link_type = link_rng.NextBool(0.8) ? 1 : 3;
    CARDBENCH_CHECK(links
                        ->AppendRow({static_cast<Value>(i + 1), pid,
                                     link_related[i], link_type, date})
                        .ok(),
                    "postLinks row");
  }

  // ------------------------------------------------------------------ tags
  Table* tags = AddTableOrDie(*db, "tags");
  CARDBENCH_CHECK(tags->AddColumn("Id", ColumnKind::kKey).ok(), "schema");
  CARDBENCH_CHECK(tags->AddColumn("Count", ColumnKind::kNumeric).ok(), "schema");
  CARDBENCH_CHECK(tags->AddColumn("ExcerptPostId", ColumnKind::kKey).ok(), "schema");

  Rng tag_rng = rng.Fork();
  for (size_t i = 0; i < n_tags; ++i) {
    const Value count = HeavyTailValue(tag_rng, 1000, 1.1, 1.8, 1.0);
    const std::optional<Value> excerpt = MaybeNull(
        tag_rng, 0.2,
        post_ids[static_cast<size_t>(tag_rng.NextUint64(n_posts))]);
    CARDBENCH_CHECK(
        tags->AppendRow({static_cast<Value>(i + 1), count, excerpt}).ok(),
        "tags row");
  }

  // ----------------------------------------------------- join relations
  // The 12 schema edges of Figure 1. FK-FK (many-to-many) joins between
  // foreign keys sharing a domain (e.g. comments.UserId = badges.UserId) are
  // derived by the workload generator from these PK-FK edges.
  const std::vector<JoinRelation> relations = {
      {"users", "Id", "posts", "OwnerUserId", JoinKind::kPkFk},
      {"users", "Id", "posts", "LastEditorUserId", JoinKind::kPkFk},
      {"users", "Id", "comments", "UserId", JoinKind::kPkFk},
      {"users", "Id", "badges", "UserId", JoinKind::kPkFk},
      {"users", "Id", "votes", "UserId", JoinKind::kPkFk},
      {"users", "Id", "postHistory", "UserId", JoinKind::kPkFk},
      {"posts", "Id", "comments", "PostId", JoinKind::kPkFk},
      {"posts", "Id", "votes", "PostId", JoinKind::kPkFk},
      {"posts", "Id", "postHistory", "PostId", JoinKind::kPkFk},
      {"posts", "Id", "postLinks", "PostId", JoinKind::kPkFk},
      {"posts", "Id", "postLinks", "RelatedPostId", JoinKind::kPkFk},
      {"posts", "Id", "tags", "ExcerptPostId", JoinKind::kPkFk},
  };
  for (const auto& rel : relations) {
    CARDBENCH_CHECK(db->AddJoinRelation(rel).ok(), "relation %s",
                    rel.ToString().c_str());
  }

  CARDBENCH_LOG("generated STATS-like db: %zu tables, %zu total rows",
                db->num_tables(),
                n_users + n_posts + n_comments + n_badges + n_votes +
                    n_history + n_links + n_tags);
  return db;
}

}  // namespace cardbench
