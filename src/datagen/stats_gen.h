#ifndef CARDBENCH_DATAGEN_STATS_GEN_H_
#define CARDBENCH_DATAGEN_STATS_GEN_H_

#include <memory>
#include <string>

#include "storage/catalog.h"

namespace cardbench {

/// Configuration of the synthetic STATS-like dataset.
///
/// The real STATS dataset (an anonymized Stack Exchange dump) is not
/// redistributable/downloadable in this environment; this generator produces
/// a dataset with the same schema (8 tables, Figure 1's 12 join relations,
/// 23 filterable numeric/categorical attributes) and the same statistical
/// pathologies the paper relies on: Zipf-skewed marginals, strong
/// latent-variable-induced intra-table correlations, skewed foreign-key
/// degree distributions (including keys that match zero rows), NULL-able
/// foreign keys, and monotone creation timestamps (children are created
/// after their parents) for the update-split experiment.
struct StatsGenConfig {
  uint64_t seed = 42;
  /// Multiplies every table's row count. scale=1.0 yields ~100k total rows
  /// (about 1/10 of the real STATS), keeping end-to-end execution of the
  /// 146-query workload tractable on one machine.
  double scale = 1.0;
};

/// Generates the STATS-like database. Deterministic in `config`.
std::unique_ptr<Database> GenerateStatsDatabase(const StatsGenConfig& config);

/// Name of the creation-timestamp column of `table_name` (used by the update
/// experiment to split rows into stale/new); empty if the table has none.
std::string StatsTimestampColumn(const std::string& table_name);

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_STATS_GEN_H_
