#include "datagen/streaming_feed.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace cardbench {

StreamingInsertFeed::StreamingInsertFeed(
    const Database& db, std::vector<TimeSplit::Insertion> insertions,
    const TimestampColumnFn& ts_column_of, size_t num_batches) {
  if (num_batches == 0) num_batches = 1;

  // Flatten timestamped rows into one global event list; rows without a
  // usable timestamp (no ts column, or NULL) are scheduled by source order.
  struct TsEvent {
    Value ts;
    size_t src;
    size_t row;
  };
  std::vector<TsEvent> events;
  std::vector<std::vector<size_t>> orderless(insertions.size());
  for (size_t i = 0; i < insertions.size(); ++i) {
    const TimeSplit::Insertion& ins = insertions[i];
    std::optional<size_t> ts_idx;
    const Table* table = db.FindTable(ins.table);
    const std::string ts_name = ts_column_of(ins.table);
    if (table != nullptr && !ts_name.empty()) {
      ts_idx = table->FindColumn(ts_name);
    }
    for (size_t r = 0; r < ins.rows.size(); ++r) {
      if (ts_idx.has_value() && *ts_idx < ins.rows[r].size() &&
          ins.rows[r][*ts_idx].has_value()) {
        events.push_back(TsEvent{*ins.rows[r][*ts_idx], i, r});
      } else {
        orderless[i].push_back(r);
      }
    }
    total_rows_ += ins.rows.size();
  }
  // Stable: ties and re-runs replay in identical order.
  std::stable_sort(
      events.begin(), events.end(),
      [](const TsEvent& a, const TsEvent& b) { return a.ts < b.ts; });

  // Equal-count chunking of the timeline; orderless rows interleave
  // proportionally so every table drains at the same relative rate.
  std::vector<std::vector<size_t>> assign(insertions.size());
  for (size_t i = 0; i < insertions.size(); ++i) {
    assign[i].resize(insertions[i].rows.size(), 0);
  }
  for (size_t e = 0; e < events.size(); ++e) {
    assign[events[e].src][events[e].row] = e * num_batches / events.size();
  }
  for (size_t i = 0; i < orderless.size(); ++i) {
    const size_t n = orderless[i].size();
    for (size_t j = 0; j < n; ++j) {
      assign[i][orderless[i][j]] = j * num_batches / n;
    }
  }

  batches_.resize(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    for (size_t i = 0; i < insertions.size(); ++i) {
      TimeSplit::Insertion slice;
      slice.table = insertions[i].table;
      for (size_t r = 0; r < insertions[i].rows.size(); ++r) {
        if (assign[i][r] == b) {
          slice.rows.push_back(std::move(insertions[i].rows[r]));
        }
      }
      if (!slice.rows.empty()) batches_[b].push_back(std::move(slice));
    }
  }
  // An empty micro-batch would masquerade as a full-refresh InsertionBatch
  // downstream (empty tables list); drop them instead.
  batches_.erase(std::remove_if(batches_.begin(), batches_.end(),
                                [](const std::vector<TimeSplit::Insertion>& b) {
                                  return b.empty();
                                }),
                 batches_.end());
}

Result<InsertionBatch> StreamingInsertFeed::ApplyNext(Database& db) {
  if (Done()) return Status::OutOfRange("streaming feed exhausted");
  const std::vector<TimeSplit::Insertion>& micro = batches_[next_];
  InsertionBatch out;
  out.tables.reserve(micro.size());
  for (const auto& ins : micro) {
    const Table* table = db.FindTable(ins.table);
    if (table == nullptr) {
      return Status::NotFound("streaming feed targets unknown table " +
                              ins.table);
    }
    TableDelta delta;
    delta.table = ins.table;
    delta.old_num_rows = table->num_rows();
    delta.new_num_rows = table->num_rows() + ins.rows.size();
    out.tables.push_back(std::move(delta));
  }
  CARDBENCH_RETURN_IF_ERROR(ApplyInsertions(db, micro));
  out.data_version = db.data_version();
  ++next_;
  return out;
}

}  // namespace cardbench
