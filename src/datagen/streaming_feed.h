#ifndef CARDBENCH_DATAGEN_STREAMING_FEED_H_
#define CARDBENCH_DATAGEN_STREAMING_FEED_H_

#include <cstddef>
#include <vector>

#include "cardest/insertion_batch.h"
#include "common/status.h"
#include "datagen/update_split.h"
#include "storage/catalog.h"

namespace cardbench {

/// Replays the insertion half of a TimeSplit as a sequence of
/// timestamp-ordered micro-batches — the streaming-arrival model of the
/// online refresh pipeline. Rows with a timestamp are globally sorted by it
/// and chunked into `num_batches` equal-count slices; rows of
/// timestamp-less tables are interleaved proportionally by source row order
/// (row j of n lands in batch floor(j * num_batches / n)), so replaying the
/// same split twice produces byte-identical batches.
///
/// Each ApplyNext call appends one micro-batch to the target database
/// (atomically — see ApplyInsertions), bumps its data version, and returns
/// the per-table row deltas stamped with the new version, ready to hand to
/// CardinalityEstimator::IncrementalUpdate.
class StreamingInsertFeed {
 public:
  /// `db` is only used to resolve timestamp columns at construction (it is
  /// typically the stale database the feed will later be applied to).
  /// `insertions` are consumed (moved into the internal schedule).
  StreamingInsertFeed(const Database& db,
                      std::vector<TimeSplit::Insertion> insertions,
                      const TimestampColumnFn& ts_column_of,
                      size_t num_batches);

  size_t num_batches() const { return batches_.size(); }
  size_t batches_applied() const { return next_; }
  bool Done() const { return next_ >= batches_.size(); }
  size_t total_rows() const { return total_rows_; }

  /// Applies the next micro-batch to `db` and returns its deltas. Fails
  /// with OutOfRange once the feed is exhausted; on any apply error the
  /// database is unchanged and the batch is not consumed.
  Result<InsertionBatch> ApplyNext(Database& db);

 private:
  // batches_[b] holds per-table insertion slices for micro-batch b, in the
  // replay order computed at construction.
  std::vector<std::vector<TimeSplit::Insertion>> batches_;
  size_t next_ = 0;
  size_t total_rows_ = 0;
};

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_STREAMING_FEED_H_
