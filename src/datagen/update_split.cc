#include "datagen/update_split.h"

#include <algorithm>

#include "common/logging.h"
#include "datagen/gen_util.h"

namespace cardbench {

namespace {

std::vector<std::optional<Value>> ExtractRow(const Table& table, size_t row) {
  std::vector<std::optional<Value>> out(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    out[c] = col.IsValid(row) ? std::optional<Value>(col.Get(row))
                              : std::nullopt;
  }
  return out;
}

}  // namespace

TimeSplit SplitDatabaseByTime(const Database& db,
                              const TimestampColumnFn& ts_column_of,
                              double stale_fraction) {
  TimeSplit split;
  split.stale = std::make_unique<Database>(db.name() + "_stale");

  // Pool all timestamps to pick a global cutoff at the requested quantile.
  std::vector<Value> all_ts;
  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    const std::string ts_col = ts_column_of(name);
    if (ts_col.empty()) continue;
    const Column& col = table.ColumnByName(ts_col);
    for (size_t row = 0; row < col.size(); ++row) {
      if (col.IsValid(row)) all_ts.push_back(col.Get(row));
    }
  }
  if (!all_ts.empty()) {
    const size_t k = std::min(
        all_ts.size() - 1,
        static_cast<size_t>(stale_fraction * static_cast<double>(all_ts.size())));
    std::nth_element(all_ts.begin(), all_ts.begin() + static_cast<long>(k),
                     all_ts.end());
    split.cutoff = all_ts[k];
  }

  for (const auto& name : db.table_names()) {
    const Table& table = db.TableOrDie(name);
    Table* stale_table = AddTableOrDie(*split.stale, name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      CARDBENCH_CHECK(
          stale_table->AddColumn(table.column(c).name(), table.column(c).kind())
              .ok(),
          "clone schema");
    }

    const std::string ts_name = ts_column_of(name);
    std::optional<size_t> ts_idx;
    if (!ts_name.empty()) ts_idx = table.FindColumn(ts_name);

    TimeSplit::Insertion insertion;
    insertion.table = name;
    const size_t order_cut =
        static_cast<size_t>(stale_fraction * static_cast<double>(table.num_rows()));
    for (size_t row = 0; row < table.num_rows(); ++row) {
      bool is_stale;
      if (ts_idx.has_value() && table.column(*ts_idx).IsValid(row)) {
        is_stale = table.column(*ts_idx).Get(row) <= split.cutoff;
      } else {
        is_stale = row < order_cut;
      }
      if (is_stale) {
        CARDBENCH_CHECK(
            stale_table->AppendRow(ExtractRow(table, row)).ok(), "stale row");
        ++split.stale_rows;
      } else {
        insertion.rows.push_back(ExtractRow(table, row));
        ++split.inserted_rows;
      }
    }
    if (!insertion.rows.empty()) {
      split.insertions.push_back(std::move(insertion));
    }
  }

  for (const auto& rel : db.join_relations()) {
    CARDBENCH_CHECK(split.stale->AddJoinRelation(rel).ok(), "clone relation");
  }

  CARDBENCH_LOG("time split of %s: cutoff=%lld, %zu stale rows, %zu inserts",
                db.name().c_str(), static_cast<long long>(split.cutoff),
                split.stale_rows, split.inserted_rows);
  return split;
}

Status ApplyInsertions(Database& db,
                       const std::vector<TimeSplit::Insertion>& insertions) {
  // Validate every batch before touching any table: a malformed feed must
  // leave the database exactly as it was (no partially applied batch), so
  // schema mismatches surface as structured errors, never as half-writes.
  for (const auto& batch : insertions) {
    const Table* table = db.FindTable(batch.table);
    if (table == nullptr) {
      return Status::NotFound("insertion into unknown table " + batch.table);
    }
    for (const auto& row : batch.rows) {
      if (row.size() != table->num_columns()) {
        return Status::InvalidArgument(
            "insertion row width " + std::to_string(row.size()) +
            " does not match table " + batch.table + " (" +
            std::to_string(table->num_columns()) + " columns)");
      }
    }
  }
  size_t applied = 0;
  for (const auto& batch : insertions) {
    Table* table = db.FindTable(batch.table);
    for (const auto& row : batch.rows) {
      CARDBENCH_RETURN_IF_ERROR(table->AppendRow(row));
      ++applied;
    }
  }
  if (applied > 0) db.BumpDataVersion();
  return Status::OK();
}

}  // namespace cardbench
