#ifndef CARDBENCH_DATAGEN_UPDATE_SPLIT_H_
#define CARDBENCH_DATAGEN_UPDATE_SPLIT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace cardbench {

/// Maps a table name to the name of its timestamp column ("" if the table
/// has none and should be split by row order instead).
using TimestampColumnFn = std::function<std::string(const std::string&)>;

/// Result of splitting a database along the time axis for the paper's
/// update experiment (§6.3): stale models are trained on `stale`, then the
/// `insertions` are applied and the models are incrementally updated.
struct TimeSplit {
  /// Rows created before the cutoff, same schema and join relations as the
  /// source database.
  std::unique_ptr<Database> stale;

  /// Per-table batches of the remaining rows, in source-row order.
  struct Insertion {
    std::string table;
    std::vector<std::vector<std::optional<Value>>> rows;
  };
  std::vector<Insertion> insertions;

  /// The chosen timestamp cutoff.
  Value cutoff = 0;

  size_t stale_rows = 0;
  size_t inserted_rows = 0;
};

/// Splits `db` so that roughly `stale_fraction` of all rows fall before the
/// cutoff timestamp (the paper splits STATS at 50% by creation date).
/// Tables without a timestamp column are split by row position.
TimeSplit SplitDatabaseByTime(const Database& db,
                              const TimestampColumnFn& ts_column_of,
                              double stale_fraction);

/// Appends every insertion batch to `db` (the stale database), simulating
/// the arrival of new data, and bumps the database's data version once on
/// success. All batches are validated (known table, matching row width)
/// before any row is written: on error the database is unchanged and the
/// returned status names the offending table.
Status ApplyInsertions(Database& db,
                       const std::vector<TimeSplit::Insertion>& insertions);

}  // namespace cardbench

#endif  // CARDBENCH_DATAGEN_UPDATE_SPLIT_H_
