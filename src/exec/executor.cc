#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "exec/join_hash.h"
#include "exec/row_batch.h"
#include "storage/filter.h"

namespace cardbench {

namespace {

/// Contiguous input rows per scan morsel / input tuples per probe morsel.
/// A morsel is the unit of work dispatched to one worker; batches of
/// ExecOptions::batch_size are the vectorization unit inside a morsel.
constexpr size_t kScanMorselRows = 1 << 14;
constexpr size_t kProbeMorselTuples = 1 << 12;

/// Rows / iterations processed between wall-clock budget checks. Checking
/// the clock is cheap but not free; this bounds both the overhead and the
/// cut-off latency.
constexpr size_t kBudgetCheckInterval = 1 << 14;

/// Resolves a (table, column) reference against a TupleSet: which tuple
/// component and which storage column it denotes.
struct ColRef {
  const Column* column = nullptr;
  int component = -1;
};

/// View of the per-execution budget shared by all morsel workers of one
/// plan: the wall clock and the cut-off flag they publish into.
struct Budget {
  const Stopwatch* watch = nullptr;
  const ExecLimits* limits = nullptr;
  std::atomic<bool>* timed_out = nullptr;

  bool TimedOut() const {
    return timed_out->load(std::memory_order_relaxed);
  }

  /// False when the wall clock is exhausted (or another worker already
  /// tripped the budget); publishes the cut-off.
  bool CheckTime() const {
    if (TimedOut()) return false;
    if (watch->ElapsedSeconds() > limits->timeout_seconds) {
      timed_out->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

/// Operator-wide emitted-tuple counter enforcing max_intermediate_tuples
/// across concurrent probe morsels of one materializing join.
class EmitCap {
 public:
  EmitCap(size_t cap, Budget budget) : cap_(cap), budget_(budget) {}

  /// Admits one more output tuple; false (and the shared cut-off is
  /// published) once the operator's output would exceed the cap.
  bool Admit() {
    if (emitted_.fetch_add(1, std::memory_order_relaxed) >= cap_) {
      budget_.timed_out->store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

 private:
  std::atomic<uint64_t> emitted_{0};
  size_t cap_;
  Budget budget_;
};

/// KeyBatch storage for one morsel, allocated once at the morsel's batch
/// capacity: from the calling thread's arena when `use_arena` (the frame
/// unwinds when the morsel ends, so steady-state probing allocates zero
/// heap), from the heap otherwise. Must be constructed on the thread that
/// runs the morsel — it borrows that thread's arena.
class KeyScratch {
 public:
  KeyScratch(bool use_arena, size_t capacity)
      : frame_(use_arena ? &ThreadLocalArena() : nullptr) {
    if (Arena* arena = frame_.arena(); arena != nullptr) {
      rows = arena->AllocateArray<uint32_t>(capacity);
      keys = arena->AllocateArray<Value>(capacity);
      valid = arena->AllocateArray<uint8_t>(capacity);
      hashes = arena->AllocateArray<uint64_t>(capacity);
    } else {
      heap_.Resize(capacity);
      rows = heap_.rows.data();
      keys = heap_.keys.data();
      valid = heap_.valid.data();
      heap_hashes_.resize(capacity);
      hashes = heap_hashes_.data();
    }
  }

  uint32_t* rows = nullptr;
  Value* keys = nullptr;
  uint8_t* valid = nullptr;
  /// Per-batch key hashes of the radix probe (computed once, then used for
  /// both the prefetch lookahead and the table walk).
  uint64_t* hashes = nullptr;

 private:
  ArenaFrame frame_;
  KeyBatch heap_;
  std::vector<uint64_t> heap_hashes_;
};

int LookupId(const std::unordered_map<std::string, int>& ids,
             const std::string& table) {
  auto it = ids.find(table);
  return it == ids.end() ? -1 : it->second;
}

ColRef Resolve(const TupleSet& ts, const Database& db, int table_id,
               const std::string& table, const std::string& column) {
  ColRef ref;
  ref.component = ts.ComponentOfId(table_id);
  if (ref.component < 0) return ref;
  const Table* t = db.FindTable(table);
  if (t == nullptr) return ColRef{};
  auto idx = t->FindColumn(column);
  if (!idx.has_value()) return ColRef{};
  ref.column = &t->column(*idx);
  return ref;
}

/// Evaluates the extra (non-primary) join edges for a candidate combined
/// tuple. `refs[i]` resolves edge i's endpoints on the left/right input.
bool ExtraEdgesMatch(const std::vector<std::pair<ColRef, ColRef>>& refs,
                     const TupleSet& left, size_t ltuple, const TupleSet& right,
                     size_t rtuple) {
  for (const auto& [lref, rref] : refs) {
    const uint32_t lrow = left.Row(ltuple, static_cast<size_t>(lref.component));
    const uint32_t rrow =
        right.Row(rtuple, static_cast<size_t>(rref.component));
    if (!lref.column->IsValid(lrow) || !rref.column->IsValid(rrow)) {
      return false;
    }
    if (lref.column->Get(lrow) != rref.column->Get(rrow)) return false;
  }
  return true;
}

/// Index-nested-loop variant: the right side is a single base-table row
/// `irow` (the inner is never materialized, so every right ref binds to it).
bool ExtraEdgesMatchInner(const std::vector<std::pair<ColRef, ColRef>>& refs,
                          const TupleSet& left, size_t ltuple, uint32_t irow) {
  for (const auto& [lref, rref] : refs) {
    const uint32_t lrow = left.Row(ltuple, static_cast<size_t>(lref.component));
    if (!lref.column->IsValid(lrow) || !rref.column->IsValid(irow)) {
      return false;
    }
    if (lref.column->Get(lrow) != rref.column->Get(irow)) return false;
  }
  return true;
}

/// Primary + extra join-edge endpoints resolved on the two join inputs.
struct EdgeRefs {
  ColRef lkey;
  ColRef rkey;
  std::vector<std::pair<ColRef, ColRef>> extra;
};

Status ResolveEdges(const Database& db,
                    const std::unordered_map<std::string, int>& ids,
                    const PlanNode& plan, const TupleSet& left,
                    const TupleSet& right, EdgeRefs* out) {
  out->lkey = Resolve(left, db, LookupId(ids, plan.edge.left_table),
                      plan.edge.left_table, plan.edge.left_column);
  out->rkey = Resolve(right, db, LookupId(ids, plan.edge.right_table),
                      plan.edge.right_table, plan.edge.right_column);
  if (out->lkey.column == nullptr || out->rkey.column == nullptr) {
    out->lkey = Resolve(left, db, LookupId(ids, plan.edge.right_table),
                        plan.edge.right_table, plan.edge.right_column);
    out->rkey = Resolve(right, db, LookupId(ids, plan.edge.left_table),
                        plan.edge.left_table, plan.edge.left_column);
  }
  if (out->lkey.column == nullptr || out->rkey.column == nullptr) {
    return Status::InvalidArgument("cannot resolve join edge " +
                                   plan.edge.ToString());
  }
  for (const auto& e : plan.extra_edges) {
    ColRef l = Resolve(left, db, LookupId(ids, e.left_table), e.left_table,
                       e.left_column);
    ColRef r = Resolve(right, db, LookupId(ids, e.right_table), e.right_table,
                       e.right_column);
    if (l.column == nullptr || r.column == nullptr) {
      l = Resolve(left, db, LookupId(ids, e.right_table), e.right_table,
                  e.right_column);
      r = Resolve(right, db, LookupId(ids, e.left_table), e.left_table,
                  e.left_column);
    }
    if (l.column == nullptr || r.column == nullptr) {
      return Status::InvalidArgument("cannot resolve extra join edge " +
                                     e.ToString());
    }
    out->extra.emplace_back(l, r);
  }
  return Status::OK();
}

/// Everything an index-nested-loop probe needs, resolved once before the
/// probe loops: the inner table and index, compiled inner filters, and the
/// extra-edge endpoints (right endpoints bind to the probed inner row).
struct IndexJoinSetup {
  const Table* inner = nullptr;
  ColRef outer_ref;
  const HashIndex* index = nullptr;
  std::vector<CompiledPredicate> inner_filters;
  std::vector<std::pair<ColRef, ColRef>> extra;
};

Status SetupIndexJoin(const Database& db,
                      const std::unordered_map<std::string, int>& ids,
                      const PlanNode& plan, const TupleSet& left,
                      IndexJoinSetup* out) {
  if (!plan.right->IsScan()) {
    return Status::InvalidArgument(
        "index nested loop requires a base-table inner side");
  }
  const std::string& inner_name = plan.right->table;
  out->inner = db.FindTable(inner_name);
  if (out->inner == nullptr) return Status::NotFound("table " + inner_name);

  // Orient the primary edge: which endpoint is on the (left) outer side?
  const bool edge_left_is_outer =
      left.ComponentOfId(LookupId(ids, plan.edge.left_table)) >= 0;
  const std::string& outer_table =
      edge_left_is_outer ? plan.edge.left_table : plan.edge.right_table;
  const std::string& outer_col =
      edge_left_is_outer ? plan.edge.left_column : plan.edge.right_column;
  const std::string& inner_col =
      edge_left_is_outer ? plan.edge.right_column : plan.edge.left_column;

  out->outer_ref = Resolve(left, db, LookupId(ids, outer_table), outer_table,
                           outer_col);
  if (out->outer_ref.column == nullptr) {
    return Status::InvalidArgument("cannot resolve join key " + outer_table +
                                   "." + outer_col);
  }
  out->index =
      &out->inner->GetIndex(out->inner->ColumnIndexOrDie(inner_col));
  out->inner_filters = CompilePredicates(*out->inner, plan.right->filters);

  // Extra edges: left endpoint resolved on the outer input, right on a
  // synthetic single-component view of the inner table.
  TupleSet inner_view;
  inner_view.tables = {inner_name};
  inner_view.table_ids = {LookupId(ids, inner_name)};
  inner_view.data = {0};
  for (const auto& e : plan.extra_edges) {
    ColRef l = Resolve(left, db, LookupId(ids, e.left_table), e.left_table,
                       e.left_column);
    ColRef r = Resolve(inner_view, db, LookupId(ids, e.right_table),
                       e.right_table, e.right_column);
    if (l.column == nullptr || r.column == nullptr) {
      l = Resolve(left, db, LookupId(ids, e.right_table), e.right_table,
                  e.right_column);
      r = Resolve(inner_view, db, LookupId(ids, e.left_table), e.left_table,
                  e.left_column);
    }
    if (l.column == nullptr || r.column == nullptr) {
      return Status::InvalidArgument("cannot resolve extra join edge " +
                                     e.ToString());
    }
    out->extra.emplace_back(l, r);
  }
  return Status::OK();
}

/// Appends the rows of [lo, hi) passing `preds` to `*sel` in batches of
/// `batch_size`, checking the wall-clock budget every kBudgetCheckInterval
/// processed rows. Output is in ascending row order regardless of batching.
void ScanRange(const std::vector<CompiledPredicate>& preds, size_t lo,
               size_t hi, size_t batch_size, Budget budget,
               std::vector<uint32_t>* sel) {
  size_t since_check = 0;
  for (size_t b = lo; b < hi; b += batch_size) {
    const size_t e = std::min(hi, b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    FilterRangeConjunction(preds, b, e, sel);
    since_check += e - b;
  }
}

using HashTable = std::unordered_map<Value, std::vector<uint32_t>>;

/// Builds the join hash table over the build side's key column: batched key
/// gathers, budget-checked (a huge build input must respect the wall
/// clock). NULL keys are skipped (they join nothing).
void BuildHashTable(const TupleSet& build, const ColRef& key,
                    size_t batch_size, bool use_arena, Budget budget,
                    HashTable* ht) {
  ht->reserve(build.size());
  KeyScratch kb(use_arena, std::min(batch_size, build.size()));
  size_t since_check = 0;
  for (size_t b = 0; b < build.size(); b += batch_size) {
    const size_t e = std::min(build.size(), b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    for (size_t t = b; t < e; ++t) {
      kb.rows[t - b] = build.Row(t, static_cast<size_t>(key.component));
    }
    key.column->Gather(kb.rows, e - b, kb.keys, kb.valid);
    for (size_t i = 0; i < e - b; ++i) {
      if (kb.valid[i]) {
        (*ht)[kb.keys[i]].push_back(static_cast<uint32_t>(b + i));
      }
    }
    since_check += e - b;
  }
}

/// Probes `ht` for the input tuples [t_lo, t_hi) of `left`. With `dst`
/// non-null, combined tuples are appended (cap-enforced); otherwise matches
/// are counted into `*count_out`. Key access is batched through
/// Column::Gather; the budget is checked on every loop that scales with
/// input or output size.
void HashProbeMorsel(const TupleSet& left, const TupleSet& right,
                     const ColRef& lkey, const HashTable& ht,
                     const std::vector<std::pair<ColRef, ColRef>>& extra,
                     size_t batch_size, bool use_arena, size_t t_lo,
                     size_t t_hi, Budget budget, EmitCap* cap,
                     std::vector<uint32_t>* dst, uint64_t* count_out) {
  const size_t larity = left.arity();
  const size_t rarity = right.arity();
  KeyScratch kb(use_arena, std::min(batch_size, t_hi - t_lo));
  uint64_t count = 0;
  size_t since_check = 0;
  if (!budget.CheckTime()) return;
  for (size_t b = t_lo; b < t_hi; b += batch_size) {
    const size_t e = std::min(t_hi, b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    for (size_t t = b; t < e; ++t) {
      kb.rows[t - b] = left.Row(t, static_cast<size_t>(lkey.component));
    }
    lkey.column->Gather(kb.rows, e - b, kb.keys, kb.valid);
    for (size_t i = 0; i < e - b; ++i) {
      if (!kb.valid[i]) continue;
      auto it = ht.find(kb.keys[i]);
      if (it == ht.end()) continue;
      const size_t lt = b + i;
      if (dst == nullptr && extra.empty()) {
        // Count-only without post-join filters: the whole bucket matches.
        count += it->second.size();
        since_check += it->second.size();
        continue;
      }
      for (uint32_t rt : it->second) {
        if (++since_check >= kBudgetCheckInterval) {
          since_check = 0;
          if (!budget.CheckTime()) return;
        }
        if (!extra.empty() && !ExtraEdgesMatch(extra, left, lt, right, rt)) {
          continue;
        }
        if (dst != nullptr) {
          if (!cap->Admit()) return;
          for (size_t c = 0; c < larity; ++c) dst->push_back(left.Row(lt, c));
          for (size_t c = 0; c < rarity; ++c) dst->push_back(right.Row(rt, c));
        } else {
          ++count;
        }
      }
    }
    since_check += e - b;
  }
  if (count_out != nullptr) *count_out += count;
}

/// JoinKeySource over a TupleSet's key column: batched row-id gathers
/// through Column::Gather, exactly like the probe side's key access. Called
/// from build morsel workers for disjoint ranges; the row-id scratch comes
/// from the calling worker's arena (or the heap, per `use_arena`).
class TupleKeySource final : public JoinKeySource {
 public:
  TupleKeySource(const TupleSet& ts, const ColRef& key, bool use_arena)
      : ts_(ts), key_(key), use_arena_(use_arena) {}

  void GatherKeys(size_t lo, size_t hi, Value* keys,
                  uint8_t* valid) const override {
    const size_t n = hi - lo;
    ArenaFrame frame(use_arena_ ? &ThreadLocalArena() : nullptr);
    std::vector<uint32_t> heap;
    uint32_t* rows;
    if (frame.arena() != nullptr) {
      rows = frame.arena()->AllocateArray<uint32_t>(n);
    } else {
      heap.resize(n);
      rows = heap.data();
    }
    for (size_t t = lo; t < hi; ++t) {
      rows[t - lo] = ts_.Row(t, static_cast<size_t>(key_.component));
    }
    key_.column->Gather(rows, n, keys, valid);
  }

 private:
  const TupleSet& ts_;
  const ColRef& key_;
  bool use_arena_;
};

/// RadixProbeMorsel is HashProbeMorsel's counterpart over the radix table:
/// same batching, budget checks, count fast path, extra-edge evaluation and
/// emission order (ForEachMatch enumerates ascending build rows, as the
/// legacy bucket vectors did), plus a software-prefetch pipeline — while
/// probe i walks the table, the tag/key lines of probe i + distance are
/// already on their way up the cache hierarchy.
void RadixProbeMorsel(const TupleSet& left, const TupleSet& right,
                      const ColRef& lkey, const JoinHashTable& ht,
                      const std::vector<std::pair<ColRef, ColRef>>& extra,
                      size_t batch_size, bool use_arena,
                      size_t prefetch_distance, size_t t_lo, size_t t_hi,
                      Budget budget, EmitCap* cap, std::vector<uint32_t>* dst,
                      uint64_t* count_out) {
  const size_t larity = left.arity();
  const size_t rarity = right.arity();
  KeyScratch kb(use_arena, std::min(batch_size, t_hi - t_lo));
  uint64_t count = 0;
  size_t since_check = 0;
  if (!budget.CheckTime()) return;
  for (size_t b = t_lo; b < t_hi; b += batch_size) {
    const size_t e = std::min(t_hi, b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    for (size_t t = b; t < e; ++t) {
      kb.rows[t - b] = left.Row(t, static_cast<size_t>(lkey.component));
    }
    lkey.column->Gather(kb.rows, e - b, kb.keys, kb.valid);
    const size_t n = e - b;
    for (size_t i = 0; i < n; ++i) {
      kb.hashes[i] = kb.valid[i] ? JoinKeyHash(kb.keys[i]) : 0;
    }
    for (size_t i = 0; i < std::min(prefetch_distance, n); ++i) {
      if (kb.valid[i]) ht.Prefetch(kb.hashes[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (prefetch_distance != 0 && i + prefetch_distance < n &&
          kb.valid[i + prefetch_distance]) {
        ht.Prefetch(kb.hashes[i + prefetch_distance]);
      }
      if (!kb.valid[i]) continue;
      if (dst == nullptr && extra.empty()) {
        // Count-only without post-join filters: no per-match work at all.
        const uint64_t matches = ht.CountMatches(kb.keys[i], kb.hashes[i]);
        count += matches;
        since_check += matches;
        continue;
      }
      const size_t lt = b + i;
      bool cut_off = false;
      ht.ForEachMatch(kb.keys[i], kb.hashes[i], [&](uint32_t rt) {
        if (++since_check >= kBudgetCheckInterval) {
          since_check = 0;
          if (!budget.CheckTime()) {
            cut_off = true;
            return false;
          }
        }
        if (!extra.empty() && !ExtraEdgesMatch(extra, left, lt, right, rt)) {
          return true;
        }
        if (dst != nullptr) {
          if (!cap->Admit()) {
            cut_off = true;
            return false;
          }
          for (size_t c = 0; c < larity; ++c) dst->push_back(left.Row(lt, c));
          for (size_t c = 0; c < rarity; ++c) dst->push_back(right.Row(rt, c));
        } else {
          ++count;
        }
        return true;
      });
      if (cut_off) return;
    }
    since_check += n;
  }
  if (count_out != nullptr) *count_out += count;
}

/// Index-nested-loop probe over the outer tuples [t_lo, t_hi): batched
/// outer-key gathers, inner index lookups, compiled inner filters, extra
/// edges. Budget-checked per posting-list entry batch (a huge posting list
/// must respect the wall clock).
void IndexProbeMorsel(const TupleSet& left, const IndexJoinSetup& s,
                      size_t batch_size, bool use_arena, size_t t_lo,
                      size_t t_hi, Budget budget, EmitCap* cap,
                      std::vector<uint32_t>* dst, uint64_t* count_out) {
  const size_t arity = left.arity();
  KeyScratch kb(use_arena, std::min(batch_size, t_hi - t_lo));
  uint64_t count = 0;
  size_t since_check = 0;
  if (!budget.CheckTime()) return;
  for (size_t b = t_lo; b < t_hi; b += batch_size) {
    const size_t e = std::min(t_hi, b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    for (size_t t = b; t < e; ++t) {
      kb.rows[t - b] = left.Row(t, static_cast<size_t>(s.outer_ref.component));
    }
    s.outer_ref.column->Gather(kb.rows, e - b, kb.keys, kb.valid);
    for (size_t i = 0; i < e - b; ++i) {
      if (!kb.valid[i]) continue;
      const size_t t = b + i;
      for (uint32_t irow : s.index->Lookup(kb.keys[i])) {
        if (++since_check >= kBudgetCheckInterval) {
          since_check = 0;
          if (!budget.CheckTime()) return;
        }
        if (!s.inner_filters.empty() &&
            !RowPassesCompiled(s.inner_filters, irow)) {
          continue;
        }
        if (!s.extra.empty() && !ExtraEdgesMatchInner(s.extra, left, t, irow)) {
          continue;
        }
        if (dst != nullptr) {
          if (!cap->Admit()) return;
          for (size_t c = 0; c < arity; ++c) dst->push_back(left.Row(t, c));
          dst->push_back(irow);
        } else {
          ++count;
        }
      }
    }
    since_check += e - b;
  }
  if (count_out != nullptr) *count_out += count;
}

/// Gathers the non-NULL key of every tuple of `ts` (batched, budgeted) and
/// sorts by (key, tuple): the sorted run input of the merge join.
std::vector<std::pair<Value, uint32_t>> SortedKeys(const TupleSet& ts,
                                                   const ColRef& key,
                                                   size_t batch_size,
                                                   bool use_arena,
                                                   Budget budget) {
  std::vector<std::pair<Value, uint32_t>> keys;
  keys.reserve(ts.size());
  KeyScratch kb(use_arena, std::min(batch_size, ts.size()));
  size_t since_check = 0;
  for (size_t b = 0; b < ts.size(); b += batch_size) {
    const size_t e = std::min(ts.size(), b + batch_size);
    if (since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return keys;
    }
    for (size_t t = b; t < e; ++t) {
      kb.rows[t - b] = ts.Row(t, static_cast<size_t>(key.component));
    }
    key.column->Gather(kb.rows, e - b, kb.keys, kb.valid);
    for (size_t i = 0; i < e - b; ++i) {
      if (kb.valid[i]) {
        keys.emplace_back(kb.keys[i], static_cast<uint32_t>(b + i));
      }
    }
    since_check += e - b;
  }
  if (!budget.CheckTime()) return keys;
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Merge join over sorted runs: walks equal-key runs of both inputs and
/// emits (dst mode) or counts their cross products. Serial — the sort
/// dominates merge-join cost; gathers are batched upstream.
void MergeRuns(const TupleSet& left, const TupleSet& right,
               const std::vector<std::pair<Value, uint32_t>>& lkeys,
               const std::vector<std::pair<Value, uint32_t>>& rkeys,
               const std::vector<std::pair<ColRef, ColRef>>& extra,
               Budget budget, EmitCap* cap, std::vector<uint32_t>* dst,
               uint64_t* count_out) {
  const size_t larity = left.arity();
  const size_t rarity = right.arity();
  uint64_t count = 0;
  size_t li = 0, ri = 0;
  size_t since_check = 0;
  while (li < lkeys.size() && ri < rkeys.size()) {
    if (++since_check >= kBudgetCheckInterval) {
      since_check = 0;
      if (!budget.CheckTime()) return;
    }
    if (lkeys[li].first < rkeys[ri].first) {
      ++li;
    } else if (lkeys[li].first > rkeys[ri].first) {
      ++ri;
    } else {
      const Value v = lkeys[li].first;
      size_t lend = li, rend = ri;
      while (lend < lkeys.size() && lkeys[lend].first == v) ++lend;
      while (rend < rkeys.size() && rkeys[rend].first == v) ++rend;
      if (dst == nullptr && extra.empty()) {
        count += static_cast<uint64_t>(lend - li) *
                 static_cast<uint64_t>(rend - ri);
        since_check += rend - ri;
      } else {
        for (size_t i = li; i < lend; ++i) {
          for (size_t j = ri; j < rend; ++j) {
            if (++since_check >= kBudgetCheckInterval) {
              since_check = 0;
              if (!budget.CheckTime()) return;
            }
            if (!extra.empty() &&
                !ExtraEdgesMatch(extra, left, lkeys[i].second, right,
                                 rkeys[j].second)) {
              continue;
            }
            if (dst != nullptr) {
              if (!cap->Admit()) return;
              for (size_t c = 0; c < larity; ++c) {
                dst->push_back(left.Row(lkeys[i].second, c));
              }
              for (size_t c = 0; c < rarity; ++c) {
                dst->push_back(right.Row(rkeys[j].second, c));
              }
            } else {
              ++count;
            }
          }
        }
      }
      li = lend;
      ri = rend;
    }
  }
  if (count_out != nullptr) *count_out += count;
}

}  // namespace

Executor::Executor(const Database& db, ExecLimits limits, ExecOptions options)
    : db_(db), limits_(limits), options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  const auto& names = db_.table_names();
  table_ids_.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    table_ids_[names[i]] = static_cast<int>(i);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

int Executor::TableId(const std::string& table) const {
  auto it = table_ids_.find(table);
  return it == table_ids_.end() ? -1 : it->second;
}

void Executor::ForEachMorsel(size_t count,
                             const std::function<void(size_t)>& fn) const {
  if (pool_ == nullptr || count <= 1) {
    for (size_t m = 0; m < count; ++m) fn(m);
    return;
  }
  ParallelFor(*pool_, count, fn);
}

void Executor::RunProbeMorsels(
    size_t total, Ctx& ctx, TupleSet* out, uint64_t* count_out,
    const std::function<void(size_t, size_t, std::vector<uint32_t>*,
                             uint64_t*)>& morsel) const {
  const size_t morsel_tuples = std::max(options_.batch_size,
                                        kProbeMorselTuples);
  const size_t num_morsels =
      total == 0 ? 0 : (total + morsel_tuples - 1) / morsel_tuples;
  if (pool_ == nullptr || num_morsels <= 1) {
    if (num_morsels >= 1) {
      morsel(0, total, out != nullptr ? &out->data : nullptr, count_out);
    }
    return;
  }
  if (out != nullptr) {
    // Per-morsel output batches concatenated in morsel order: identical
    // tuple order to the serial run.
    std::vector<RowBatch> parts(num_morsels);
    ForEachMorsel(num_morsels, [&](size_t m) {
      morsel(m * morsel_tuples, std::min(total, (m + 1) * morsel_tuples),
             &parts[m].sel, nullptr);
    });
    if (ctx.TimedOut()) return;
    size_t total_size = out->data.size();
    for (const auto& part : parts) total_size += part.size();
    out->data.reserve(total_size);
    for (const auto& part : parts) {
      out->data.insert(out->data.end(), part.sel.begin(), part.sel.end());
    }
  } else {
    std::vector<uint64_t> counts(num_morsels, 0);
    ForEachMorsel(num_morsels, [&](size_t m) {
      morsel(m * morsel_tuples, std::min(total, (m + 1) * morsel_tuples),
             nullptr, &counts[m]);
    });
    for (uint64_t c : counts) *count_out += c;
  }
}

Status Executor::HashJoinDriver(const PlanNode& plan, const TupleSet& left,
                                const TupleSet& right, Ctx& ctx, TupleSet* out,
                                uint64_t* count) const {
  Budget budget{&ctx.watch, ctx.limits, &ctx.timed_out};
  EmitCap cap(ctx.limits->max_intermediate_tuples, budget);
  EmitCap* cap_ptr = out != nullptr ? &cap : nullptr;
  EdgeRefs refs;
  CARDBENCH_RETURN_IF_ERROR(
      ResolveEdges(db_, table_ids_, plan, left, right, &refs));

  if (options_.join_impl == JoinImpl::kLegacy) {
    // Build on the right (inner) side, probe with the left.
    HashTable ht;
    BuildHashTable(right, refs.rkey, options_.batch_size, options_.use_arena,
                   budget, &ht);
    if (ctx.TimedOut()) return Status::OK();
    RunProbeMorsels(
        left.size(), ctx, out, count,
        [&](size_t lo, size_t hi, std::vector<uint32_t>* dst, uint64_t* cnt) {
          HashProbeMorsel(left, right, refs.lkey, ht, refs.extra,
                          options_.batch_size, options_.use_arena, lo, hi,
                          budget, cap_ptr, dst, cnt);
        });
    return Status::OK();
  }

  TupleKeySource source(right, refs.rkey, options_.use_arena);
  JoinHashConfig config;
  config.radix_bits = options_.radix_bits;
  config.prefetch_distance = options_.prefetch_distance;
  config.batch_size = options_.batch_size;
  config.use_arena = options_.use_arena;
  JoinHashTable ht;
  const bool built = ht.Build(
      source, right.size(), config,
      [this](size_t n, const std::function<void(size_t)>& fn) {
        ForEachMorsel(n, fn);
      },
      [&budget] { return budget.CheckTime(); });
  if (!built || ctx.TimedOut()) return Status::OK();
  RunProbeMorsels(
      left.size(), ctx, out, count,
      [&](size_t lo, size_t hi, std::vector<uint32_t>* dst, uint64_t* cnt) {
        RadixProbeMorsel(left, right, refs.lkey, ht, refs.extra,
                         options_.batch_size, options_.use_arena,
                         options_.prefetch_distance, lo, hi, budget, cap_ptr,
                         dst, cnt);
      });
  return Status::OK();
}

Status Executor::ExecuteScan(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  const Table* table = db_.FindTable(plan.table);
  if (table == nullptr) {
    return Status::NotFound("scan of unknown table " + plan.table);
  }
  out->tables = {plan.table};
  out->table_ids = {TableId(plan.table)};
  out->data.clear();
  Budget budget{&ctx.watch, ctx.limits, &ctx.timed_out};
  if (!budget.CheckTime()) return Status::OK();

  if (plan.scan_method == ScanMethod::kIndexScan) {
    // The first filter must be an equality served by the index.
    if (plan.filters.empty() || plan.filters[0].op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "index scan requires a leading equality filter on " + plan.table);
    }
    const Predicate& key = plan.filters[0];
    const HashIndex& index =
        table->GetIndex(table->ColumnIndexOrDie(key.column));
    const std::vector<uint32_t>& postings = index.Lookup(key.value);
    const auto rest = CompilePredicates(
        *table, std::vector<Predicate>(plan.filters.begin() + 1,
                                       plan.filters.end()));
    // The posting list scales with input size: refine it in budget-checked
    // batches so a huge list cannot blow past the wall clock.
    const size_t batch = options_.batch_size;
    size_t since_check = 0;
    out->data.reserve(rest.empty() ? postings.size() : 0);
    for (size_t lo = 0; lo < postings.size(); lo += batch) {
      const size_t hi = std::min(postings.size(), lo + batch);
      if (since_check >= kBudgetCheckInterval) {
        since_check = 0;
        if (!budget.CheckTime()) return Status::OK();
      }
      const size_t base = out->data.size();
      out->data.insert(out->data.end(), postings.begin() + lo,
                       postings.begin() + hi);
      if (!rest.empty()) {
        size_t kept = hi - lo;
        for (const auto& p : rest) {
          if (kept == 0) break;
          kept = p.column->FilterRows(out->data.data() + base, kept, p.op,
                                      p.value);
        }
        out->data.resize(base + kept);
      }
      since_check += hi - lo;
    }
    return Status::OK();
  }

  const size_t n = table->num_rows();
  const auto compiled = CompilePredicates(*table, plan.filters);
  const size_t morsel_rows = std::max(options_.batch_size, kScanMorselRows);
  const size_t num_morsels = n == 0 ? 0 : (n + morsel_rows - 1) / morsel_rows;
  if (pool_ == nullptr || num_morsels <= 1) {
    for (size_t m = 0; m < num_morsels; ++m) {
      if (!budget.CheckTime()) return Status::OK();
      ScanRange(compiled, m * morsel_rows, std::min(n, (m + 1) * morsel_rows),
                options_.batch_size, budget, &out->data);
    }
    return Status::OK();
  }
  // Morsel output batches concatenated in morsel order: row ids come out
  // ascending, exactly as in the serial scan.
  std::vector<RowBatch> parts(num_morsels);
  ForEachMorsel(num_morsels, [&](size_t m) {
    if (!budget.CheckTime()) return;
    ScanRange(compiled, m * morsel_rows, std::min(n, (m + 1) * morsel_rows),
              options_.batch_size, budget, &parts[m].sel);
  });
  if (ctx.TimedOut()) return Status::OK();
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out->data.reserve(total);
  for (const auto& part : parts) {
    out->data.insert(out->data.end(), part.sel.begin(), part.sel.end());
  }
  return Status::OK();
}

Status Executor::ExecuteJoin(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  TupleSet left;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.left, ctx, &left));
  if (ctx.TimedOut()) return Status::OK();
  Budget budget{&ctx.watch, ctx.limits, &ctx.timed_out};
  EmitCap cap(ctx.limits->max_intermediate_tuples, budget);

  out->tables = left.tables;
  out->table_ids = left.table_ids;
  out->data.clear();

  // Index-nested-loop: the inner side is a base table accessed through its
  // join-column index; it is never materialized.
  if (plan.join_method == JoinMethod::kIndexNestLoop) {
    IndexJoinSetup setup;
    CARDBENCH_RETURN_IF_ERROR(SetupIndexJoin(db_, table_ids_, plan, left,
                                             &setup));
    out->tables.push_back(plan.right->table);
    out->table_ids.push_back(TableId(plan.right->table));
    RunProbeMorsels(
        left.size(), ctx, out, nullptr,
        [&](size_t lo, size_t hi, std::vector<uint32_t>* dst, uint64_t* cnt) {
          IndexProbeMorsel(left, setup, options_.batch_size,
                           options_.use_arena, lo, hi, budget, &cap, dst,
                           cnt);
        });
    return Status::OK();
  }

  TupleSet right;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.right, ctx, &right));
  if (ctx.TimedOut()) return Status::OK();
  for (size_t i = 0; i < right.tables.size(); ++i) {
    out->tables.push_back(right.tables[i]);
    out->table_ids.push_back(right.table_ids[i]);
  }

  if (plan.join_method == JoinMethod::kHashJoin) {
    return HashJoinDriver(plan, left, right, ctx, out, nullptr);
  }

  EdgeRefs refs;
  CARDBENCH_RETURN_IF_ERROR(
      ResolveEdges(db_, table_ids_, plan, left, right, &refs));

  // Merge join: sort both inputs by key (NULLs dropped), then walk equal
  // runs, emitting their cross products.
  const auto lkeys = SortedKeys(left, refs.lkey, options_.batch_size,
                                options_.use_arena, budget);
  const auto rkeys = SortedKeys(right, refs.rkey, options_.batch_size,
                                options_.use_arena, budget);
  if (ctx.TimedOut()) return Status::OK();
  MergeRuns(left, right, lkeys, rkeys, refs.extra, budget, &cap, &out->data,
            nullptr);
  return Status::OK();
}

Status Executor::ExecuteNode(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  const Status status =
      plan.IsScan() ? ExecuteScan(plan, ctx, out) : ExecuteJoin(plan, ctx, out);
  if (status.ok() && !ctx.TimedOut() && ctx.actual_rows != nullptr) {
    (*ctx.actual_rows)[plan.table_mask] = static_cast<double>(out->size());
  }
  return status;
}

Status Executor::CountNode(const PlanNode& plan, Ctx& ctx,
                           uint64_t* count) const {
  // The root is evaluated count-only: materialize the children, stream the
  // final join without materializing its output. For scans, count matching
  // rows directly.
  *count = 0;
  if (plan.IsScan()) {
    TupleSet out;
    CARDBENCH_RETURN_IF_ERROR(ExecuteScan(plan, ctx, &out));
    *count = out.size();
    return Status::OK();
  }
  TupleSet left;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.left, ctx, &left));
  if (ctx.TimedOut()) return Status::OK();
  Budget budget{&ctx.watch, ctx.limits, &ctx.timed_out};

  if (plan.join_method == JoinMethod::kIndexNestLoop && plan.right->IsScan()) {
    IndexJoinSetup setup;
    CARDBENCH_RETURN_IF_ERROR(SetupIndexJoin(db_, table_ids_, plan, left,
                                             &setup));
    RunProbeMorsels(
        left.size(), ctx, nullptr, count,
        [&](size_t lo, size_t hi, std::vector<uint32_t>* dst, uint64_t* cnt) {
          IndexProbeMorsel(left, setup, options_.batch_size,
                           options_.use_arena, lo, hi, budget, nullptr, dst,
                           cnt);
        });
    return Status::OK();
  }

  TupleSet right;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.right, ctx, &right));
  if (ctx.TimedOut()) return Status::OK();

  // Merge-count: the counting semantics are identical across join
  // algorithms, but the root method matters for timing — merge join pays
  // the sort, hash join the build.
  if (plan.join_method == JoinMethod::kMergeJoin) {
    EdgeRefs refs;
    CARDBENCH_RETURN_IF_ERROR(
        ResolveEdges(db_, table_ids_, plan, left, right, &refs));
    const auto lkeys = SortedKeys(left, refs.lkey, options_.batch_size,
                                  options_.use_arena, budget);
    const auto rkeys = SortedKeys(right, refs.rkey, options_.batch_size,
                                  options_.use_arena, budget);
    if (ctx.TimedOut()) return Status::OK();
    MergeRuns(left, right, lkeys, rkeys, refs.extra, budget, nullptr, nullptr,
              count);
    return Status::OK();
  }

  // Hash-count: the same driver ExecuteJoin materializes through, in its
  // count-only mode (no emission, no cap, bucket-size fast path).
  return HashJoinDriver(plan, left, right, ctx, nullptr, count);
}

Result<ExecResult> Executor::ExecuteCount(const PlanNode& plan,
                                          bool analyze) const {
  Ctx ctx;
  ctx.limits = &limits_;
  ExecResult result;
  if (analyze) ctx.actual_rows = &result.actual_rows;
  uint64_t count = 0;
  CARDBENCH_RETURN_IF_ERROR(CountNode(plan, ctx, &count));
  result.count = count;
  result.timed_out = ctx.TimedOut();
  result.elapsed_seconds = ctx.watch.ElapsedSeconds();
  if (analyze && !result.timed_out) {
    result.actual_rows[plan.table_mask] = static_cast<double>(count);
  }
  return result;
}

Result<TupleSet> Executor::Materialize(const PlanNode& plan) const {
  Ctx ctx;
  ctx.limits = &limits_;
  TupleSet out;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(plan, ctx, &out));
  if (ctx.TimedOut()) {
    return Status::OutOfRange("materialization exceeded execution limits");
  }
  return out;
}

}  // namespace cardbench
