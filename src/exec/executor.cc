#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace cardbench {

namespace {

constexpr size_t kBudgetCheckInterval = 1 << 16;

/// Resolves a (table, column) reference against a TupleSet: which tuple
/// component and which storage column it denotes.
struct ColRef {
  const Column* column = nullptr;
  int component = -1;
};

ColRef Resolve(const TupleSet& ts, const Database& db,
               const std::string& table, const std::string& column) {
  ColRef ref;
  ref.component = ts.ComponentOf(table);
  if (ref.component < 0) return ref;
  const Table* t = db.FindTable(table);
  if (t == nullptr) return ColRef{};
  auto idx = t->FindColumn(column);
  if (!idx.has_value()) return ColRef{};
  ref.column = &t->column(*idx);
  return ref;
}

bool RowPassesFilters(const Table& table, uint32_t row,
                      const std::vector<Predicate>& filters) {
  for (const auto& filter : filters) {
    const Column& col = table.ColumnByName(filter.column);
    if (!col.IsValid(row)) return false;
    if (!EvalCompare(col.Get(row), filter.op, filter.value)) return false;
  }
  return true;
}

/// Evaluates the extra (non-primary) join edges for a candidate combined
/// tuple. `lrefs[i]`/`rrefs[i]` resolve edge i's endpoints on the left/right
/// input respectively.
bool ExtraEdgesMatch(const std::vector<std::pair<ColRef, ColRef>>& refs,
                     const TupleSet& left, size_t ltuple, const TupleSet& right,
                     size_t rtuple) {
  for (const auto& [lref, rref] : refs) {
    const uint32_t lrow = left.Row(ltuple, static_cast<size_t>(lref.component));
    const uint32_t rrow =
        right.Row(rtuple, static_cast<size_t>(rref.component));
    if (!lref.column->IsValid(lrow) || !rref.column->IsValid(rrow)) {
      return false;
    }
    if (lref.column->Get(lrow) != rref.column->Get(rrow)) return false;
  }
  return true;
}

}  // namespace

Status Executor::ExecuteScan(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  const Table* table = db_.FindTable(plan.table);
  if (table == nullptr) {
    return Status::NotFound("scan of unknown table " + plan.table);
  }
  out->tables = {plan.table};
  out->data.clear();

  if (plan.scan_method == ScanMethod::kIndexScan) {
    // The first filter must be an equality served by the index.
    if (plan.filters.empty() || plan.filters[0].op != CompareOp::kEq) {
      return Status::InvalidArgument(
          "index scan requires a leading equality filter on " + plan.table);
    }
    const Predicate& key = plan.filters[0];
    const HashIndex& index =
        table->GetIndex(table->ColumnIndexOrDie(key.column));
    const std::vector<Predicate> rest(plan.filters.begin() + 1,
                                      plan.filters.end());
    for (uint32_t row : index.Lookup(key.value)) {
      if (RowPassesFilters(*table, row, rest)) out->data.push_back(row);
    }
    return Status::OK();
  }

  const size_t n = table->num_rows();
  for (size_t row = 0; row < n; ++row) {
    if ((row % kBudgetCheckInterval) == 0 &&
        ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
      ctx.timed_out = true;
      return Status::OK();
    }
    if (RowPassesFilters(*table, static_cast<uint32_t>(row), plan.filters)) {
      out->data.push_back(static_cast<uint32_t>(row));
    }
  }
  return Status::OK();
}

Status Executor::ExecuteJoin(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  TupleSet left;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.left, ctx, &left));
  if (ctx.timed_out) return Status::OK();

  out->tables = left.tables;

  // Index-nested-loop: the inner side is a base table accessed through its
  // join-column index; it is never materialized.
  if (plan.join_method == JoinMethod::kIndexNestLoop) {
    if (!plan.right->IsScan()) {
      return Status::InvalidArgument(
          "index nested loop requires a base-table inner side");
    }
    const std::string& inner_name = plan.right->table;
    const Table* inner = db_.FindTable(inner_name);
    if (inner == nullptr) return Status::NotFound("table " + inner_name);
    out->tables.push_back(inner_name);

    // Orient the primary edge: which endpoint is on the (left) outer side?
    const bool edge_left_is_outer = left.ComponentOf(plan.edge.left_table) >= 0;
    const std::string& outer_table =
        edge_left_is_outer ? plan.edge.left_table : plan.edge.right_table;
    const std::string& outer_col =
        edge_left_is_outer ? plan.edge.left_column : plan.edge.right_column;
    const std::string& inner_col =
        edge_left_is_outer ? plan.edge.right_column : plan.edge.left_column;

    const ColRef outer_ref = Resolve(left, db_, outer_table, outer_col);
    if (outer_ref.column == nullptr) {
      return Status::InvalidArgument("cannot resolve join key " + outer_table +
                                     "." + outer_col);
    }
    const HashIndex& index =
        inner->GetIndex(inner->ColumnIndexOrDie(inner_col));

    // Extra edges: left endpoint resolved on outer, right on a synthetic
    // single-component view of the inner table.
    TupleSet inner_view;
    inner_view.tables = {inner_name};
    inner_view.data = {0};
    std::vector<std::pair<ColRef, ColRef>> extra_refs;
    for (const auto& e : plan.extra_edges) {
      ColRef l = Resolve(left, db_, e.left_table, e.left_column);
      ColRef r = Resolve(inner_view, db_, e.right_table, e.right_column);
      if (l.column == nullptr || r.column == nullptr) {
        std::swap(l, r);
        l = Resolve(left, db_, e.right_table, e.right_column);
        r = Resolve(inner_view, db_, e.left_table, e.left_column);
      }
      if (l.column == nullptr || r.column == nullptr) {
        return Status::InvalidArgument("cannot resolve extra join edge " +
                                       e.ToString());
      }
      extra_refs.emplace_back(l, r);
    }

    const size_t arity = left.arity();
    size_t iterations = 0;
    for (size_t t = 0; t < left.size(); ++t) {
      const uint32_t orow = left.Row(t, static_cast<size_t>(outer_ref.component));
      if (!outer_ref.column->IsValid(orow)) continue;
      for (uint32_t irow : index.Lookup(outer_ref.column->Get(orow))) {
        if ((++iterations % kBudgetCheckInterval) == 0 &&
            ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
          ctx.timed_out = true;
          return Status::OK();
        }
        if (!RowPassesFilters(*inner, irow, plan.right->filters)) continue;
        inner_view.data[0] = irow;
        if (!extra_refs.empty() &&
            !ExtraEdgesMatch(extra_refs, left, t, inner_view, 0)) {
          continue;
        }
        if (out->size() >= ctx.limits->max_intermediate_tuples) {
          ctx.timed_out = true;
          return Status::OK();
        }
        for (size_t c = 0; c < arity; ++c) out->data.push_back(left.Row(t, c));
        out->data.push_back(irow);
      }
    }
    return Status::OK();
  }

  TupleSet right;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.right, ctx, &right));
  if (ctx.timed_out) return Status::OK();
  for (const auto& t : right.tables) out->tables.push_back(t);

  // Resolve the primary edge endpoints on each side.
  ColRef lkey = Resolve(left, db_, plan.edge.left_table, plan.edge.left_column);
  ColRef rkey =
      Resolve(right, db_, plan.edge.right_table, plan.edge.right_column);
  if (lkey.column == nullptr || rkey.column == nullptr) {
    lkey = Resolve(left, db_, plan.edge.right_table, plan.edge.right_column);
    rkey = Resolve(right, db_, plan.edge.left_table, plan.edge.left_column);
  }
  if (lkey.column == nullptr || rkey.column == nullptr) {
    return Status::InvalidArgument("cannot resolve join edge " +
                                   plan.edge.ToString());
  }
  std::vector<std::pair<ColRef, ColRef>> extra_refs;
  for (const auto& e : plan.extra_edges) {
    ColRef l = Resolve(left, db_, e.left_table, e.left_column);
    ColRef r = Resolve(right, db_, e.right_table, e.right_column);
    if (l.column == nullptr || r.column == nullptr) {
      l = Resolve(left, db_, e.right_table, e.right_column);
      r = Resolve(right, db_, e.left_table, e.left_column);
    }
    if (l.column == nullptr || r.column == nullptr) {
      return Status::InvalidArgument("cannot resolve extra join edge " +
                                     e.ToString());
    }
    extra_refs.emplace_back(l, r);
  }

  const size_t larity = left.arity();
  const size_t rarity = right.arity();
  auto emit = [&](size_t lt, size_t rt) -> bool {
    if (out->size() >= ctx.limits->max_intermediate_tuples) {
      ctx.timed_out = true;
      return false;
    }
    for (size_t c = 0; c < larity; ++c) out->data.push_back(left.Row(lt, c));
    for (size_t c = 0; c < rarity; ++c) out->data.push_back(right.Row(rt, c));
    return true;
  };

  if (plan.join_method == JoinMethod::kHashJoin) {
    // Build on the right (inner) side, probe with the left.
    std::unordered_map<Value, std::vector<uint32_t>> ht;
    ht.reserve(right.size());
    for (size_t rt = 0; rt < right.size(); ++rt) {
      const uint32_t row = right.Row(rt, static_cast<size_t>(rkey.component));
      if (!rkey.column->IsValid(row)) continue;
      ht[rkey.column->Get(row)].push_back(static_cast<uint32_t>(rt));
    }
    size_t iterations = 0;
    for (size_t lt = 0; lt < left.size(); ++lt) {
      const uint32_t row = left.Row(lt, static_cast<size_t>(lkey.component));
      if (!lkey.column->IsValid(row)) continue;
      auto it = ht.find(lkey.column->Get(row));
      if (it == ht.end()) continue;
      for (uint32_t rt : it->second) {
        if ((++iterations % kBudgetCheckInterval) == 0 &&
            ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
          ctx.timed_out = true;
          return Status::OK();
        }
        if (!extra_refs.empty() &&
            !ExtraEdgesMatch(extra_refs, left, lt, right, rt)) {
          continue;
        }
        if (!emit(lt, rt)) return Status::OK();
      }
    }
    return Status::OK();
  }

  // Merge join: sort both inputs by key (NULLs dropped), then walk equal
  // runs, emitting their cross products.
  auto sorted_keys = [&](const TupleSet& ts, const ColRef& key) {
    std::vector<std::pair<Value, uint32_t>> keys;
    keys.reserve(ts.size());
    for (size_t t = 0; t < ts.size(); ++t) {
      const uint32_t row = ts.Row(t, static_cast<size_t>(key.component));
      if (!key.column->IsValid(row)) continue;
      keys.emplace_back(key.column->Get(row), static_cast<uint32_t>(t));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  const auto lkeys = sorted_keys(left, lkey);
  const auto rkeys = sorted_keys(right, rkey);
  size_t li = 0, ri = 0;
  size_t iterations = 0;
  while (li < lkeys.size() && ri < rkeys.size()) {
    if (lkeys[li].first < rkeys[ri].first) {
      ++li;
    } else if (lkeys[li].first > rkeys[ri].first) {
      ++ri;
    } else {
      const Value v = lkeys[li].first;
      size_t lend = li, rend = ri;
      while (lend < lkeys.size() && lkeys[lend].first == v) ++lend;
      while (rend < rkeys.size() && rkeys[rend].first == v) ++rend;
      for (size_t i = li; i < lend; ++i) {
        for (size_t j = ri; j < rend; ++j) {
          if ((++iterations % kBudgetCheckInterval) == 0 &&
              ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
            ctx.timed_out = true;
            return Status::OK();
          }
          if (!extra_refs.empty() &&
              !ExtraEdgesMatch(extra_refs, left, lkeys[i].second, right,
                               rkeys[j].second)) {
            continue;
          }
          if (!emit(lkeys[i].second, rkeys[j].second)) return Status::OK();
        }
      }
      li = lend;
      ri = rend;
    }
  }
  return Status::OK();
}

Status Executor::ExecuteNode(const PlanNode& plan, Ctx& ctx,
                             TupleSet* out) const {
  const Status status =
      plan.IsScan() ? ExecuteScan(plan, ctx, out) : ExecuteJoin(plan, ctx, out);
  if (status.ok() && !ctx.timed_out && ctx.actual_rows != nullptr) {
    (*ctx.actual_rows)[plan.table_mask] = static_cast<double>(out->size());
  }
  return status;
}

Status Executor::CountNode(const PlanNode& plan, Ctx& ctx,
                           uint64_t* count) const {
  // The root is evaluated count-only: materialize the children, stream the
  // final join. For scans, count matching rows directly.
  *count = 0;
  if (plan.IsScan()) {
    TupleSet out;
    CARDBENCH_RETURN_IF_ERROR(ExecuteScan(plan, ctx, &out));
    *count = out.size();
    return Status::OK();
  }
  // Reuse the materializing join but only to count: we temporarily execute
  // with a joined TupleSet. To avoid materializing huge final results, we
  // count via the same code path but drop tuples — implemented by running
  // the join into a counting sink below.
  TupleSet left;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.left, ctx, &left));
  if (ctx.timed_out) return Status::OK();

  if (plan.join_method == JoinMethod::kIndexNestLoop && plan.right->IsScan()) {
    const std::string& inner_name = plan.right->table;
    const Table* inner = db_.FindTable(inner_name);
    if (inner == nullptr) return Status::NotFound("table " + inner_name);

    const bool edge_left_is_outer = left.ComponentOf(plan.edge.left_table) >= 0;
    const std::string& outer_table =
        edge_left_is_outer ? plan.edge.left_table : plan.edge.right_table;
    const std::string& outer_col =
        edge_left_is_outer ? plan.edge.left_column : plan.edge.right_column;
    const std::string& inner_col =
        edge_left_is_outer ? plan.edge.right_column : plan.edge.left_column;
    const ColRef outer_ref = Resolve(left, db_, outer_table, outer_col);
    if (outer_ref.column == nullptr) {
      return Status::InvalidArgument("cannot resolve join key");
    }
    const HashIndex& index =
        inner->GetIndex(inner->ColumnIndexOrDie(inner_col));

    TupleSet inner_view;
    inner_view.tables = {inner_name};
    inner_view.data = {0};
    std::vector<std::pair<ColRef, ColRef>> extra_refs;
    for (const auto& e : plan.extra_edges) {
      ColRef l = Resolve(left, db_, e.left_table, e.left_column);
      ColRef r = Resolve(inner_view, db_, e.right_table, e.right_column);
      if (l.column == nullptr || r.column == nullptr) {
        l = Resolve(left, db_, e.right_table, e.right_column);
        r = Resolve(inner_view, db_, e.left_table, e.left_column);
      }
      if (l.column == nullptr || r.column == nullptr) {
        return Status::InvalidArgument("cannot resolve extra join edge");
      }
      extra_refs.emplace_back(l, r);
    }

    size_t iterations = 0;
    for (size_t t = 0; t < left.size(); ++t) {
      const uint32_t orow =
          left.Row(t, static_cast<size_t>(outer_ref.component));
      if (!outer_ref.column->IsValid(orow)) continue;
      for (uint32_t irow : index.Lookup(outer_ref.column->Get(orow))) {
        if ((++iterations % kBudgetCheckInterval) == 0 &&
            ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
          ctx.timed_out = true;
          return Status::OK();
        }
        if (!RowPassesFilters(*inner, irow, plan.right->filters)) continue;
        inner_view.data[0] = irow;
        if (!extra_refs.empty() &&
            !ExtraEdgesMatch(extra_refs, left, t, inner_view, 0)) {
          continue;
        }
        ++*count;
      }
    }
    return Status::OK();
  }

  TupleSet right;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(*plan.right, ctx, &right));
  if (ctx.timed_out) return Status::OK();

  ColRef lkey = Resolve(left, db_, plan.edge.left_table, plan.edge.left_column);
  ColRef rkey =
      Resolve(right, db_, plan.edge.right_table, plan.edge.right_column);
  if (lkey.column == nullptr || rkey.column == nullptr) {
    lkey = Resolve(left, db_, plan.edge.right_table, plan.edge.right_column);
    rkey = Resolve(right, db_, plan.edge.left_table, plan.edge.left_column);
  }
  if (lkey.column == nullptr || rkey.column == nullptr) {
    return Status::InvalidArgument("cannot resolve join edge " +
                                   plan.edge.ToString());
  }
  std::vector<std::pair<ColRef, ColRef>> extra_refs;
  for (const auto& e : plan.extra_edges) {
    ColRef l = Resolve(left, db_, e.left_table, e.left_column);
    ColRef r = Resolve(right, db_, e.right_table, e.right_column);
    if (l.column == nullptr || r.column == nullptr) {
      l = Resolve(left, db_, e.right_table, e.right_column);
      r = Resolve(right, db_, e.left_table, e.left_column);
    }
    if (l.column == nullptr || r.column == nullptr) {
      return Status::InvalidArgument("cannot resolve extra join edge");
    }
    extra_refs.emplace_back(l, r);
  }

  // Hash-count: build on the smaller side regardless of the plan's stated
  // method — the counting semantics are identical across join algorithms and
  // the physical differences are already captured in the timed execution of
  // the inner nodes. (The root method still matters for timing because build
  // vs sort costs differ; we emulate merge-join's sort cost by sorting.)
  if (plan.join_method == JoinMethod::kMergeJoin) {
    auto sort_keys = [&](const TupleSet& ts, const ColRef& key) {
      std::vector<Value> keys;
      keys.reserve(ts.size());
      for (size_t t = 0; t < ts.size(); ++t) {
        const uint32_t row = ts.Row(t, static_cast<size_t>(key.component));
        if (key.column->IsValid(row)) keys.push_back(key.column->Get(row));
      }
      std::sort(keys.begin(), keys.end());
      return keys;
    };
    if (extra_refs.empty()) {
      const auto lkeys = sort_keys(left, lkey);
      const auto rkeys = sort_keys(right, rkey);
      size_t li = 0, ri = 0;
      while (li < lkeys.size() && ri < rkeys.size()) {
        if (lkeys[li] < rkeys[ri]) {
          ++li;
        } else if (lkeys[li] > rkeys[ri]) {
          ++ri;
        } else {
          const Value v = lkeys[li];
          size_t lend = li, rend = ri;
          while (lend < lkeys.size() && lkeys[lend] == v) ++lend;
          while (rend < rkeys.size() && rkeys[rend] == v) ++rend;
          *count += static_cast<uint64_t>(lend - li) *
                    static_cast<uint64_t>(rend - ri);
          li = lend;
          ri = rend;
        }
      }
      return Status::OK();
    }
    // Fall through to pairwise evaluation when extra edges exist.
  }

  std::unordered_map<Value, std::vector<uint32_t>> ht;
  ht.reserve(right.size());
  for (size_t rt = 0; rt < right.size(); ++rt) {
    const uint32_t row = right.Row(rt, static_cast<size_t>(rkey.component));
    if (!rkey.column->IsValid(row)) continue;
    ht[rkey.column->Get(row)].push_back(static_cast<uint32_t>(rt));
  }
  size_t iterations = 0;
  for (size_t lt = 0; lt < left.size(); ++lt) {
    const uint32_t row = left.Row(lt, static_cast<size_t>(lkey.component));
    if (!lkey.column->IsValid(row)) continue;
    auto it = ht.find(lkey.column->Get(row));
    if (it == ht.end()) continue;
    if (extra_refs.empty()) {
      *count += it->second.size();
      iterations += it->second.size();
      if (iterations >= kBudgetCheckInterval) {
        iterations = 0;
        if (ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
          ctx.timed_out = true;
          return Status::OK();
        }
      }
      continue;
    }
    for (uint32_t rt : it->second) {
      if ((++iterations % kBudgetCheckInterval) == 0 &&
          ctx.watch.ElapsedSeconds() > ctx.limits->timeout_seconds) {
        ctx.timed_out = true;
        return Status::OK();
      }
      if (ExtraEdgesMatch(extra_refs, left, lt, right, rt)) ++*count;
    }
  }
  return Status::OK();
}

Result<ExecResult> Executor::ExecuteCount(const PlanNode& plan,
                                           bool analyze) const {
  Ctx ctx;
  ctx.limits = &limits_;
  ExecResult result;
  if (analyze) ctx.actual_rows = &result.actual_rows;
  uint64_t count = 0;
  CARDBENCH_RETURN_IF_ERROR(CountNode(plan, ctx, &count));
  result.count = count;
  result.timed_out = ctx.timed_out;
  result.elapsed_seconds = ctx.watch.ElapsedSeconds();
  if (analyze && !ctx.timed_out) {
    result.actual_rows[plan.table_mask] = static_cast<double>(count);
  }
  return result;
}

Result<TupleSet> Executor::Materialize(const PlanNode& plan) const {
  Ctx ctx;
  ctx.limits = &limits_;
  TupleSet out;
  CARDBENCH_RETURN_IF_ERROR(ExecuteNode(plan, ctx, &out));
  if (ctx.timed_out) {
    return Status::OutOfRange("materialization exceeded execution limits");
  }
  return out;
}

}  // namespace cardbench
