#ifndef CARDBENCH_EXEC_EXECUTOR_H_
#define CARDBENCH_EXEC_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "common/stopwatch.h"
#include "exec/plan.h"
#include "exec/tuple_set.h"
#include "storage/catalog.h"

namespace cardbench {

/// Resource guard rails for plan execution. Catastrophically bad plans
/// (which bad cardinality estimates produce by design) are cut off rather
/// than allowed to run for hours — the harness reports them as the paper
/// reports ">25h" entries.
struct ExecLimits {
  /// Cap on any single materialized intermediate result.
  size_t max_intermediate_tuples = 20000000;
  /// Wall-clock budget for one plan execution.
  double timeout_seconds = 60.0;
};

/// Outcome of executing one COUNT(*) plan.
struct ExecResult {
  uint64_t count = 0;
  /// True if a limit was hit; `count` is then meaningless and
  /// `elapsed_seconds` is the time spent until cut-off.
  bool timed_out = false;
  double elapsed_seconds = 0.0;
  /// EXPLAIN ANALYZE data: actual output rows per plan node, keyed by the
  /// node's table_mask. Populated when requested via ExecuteCount's
  /// `analyze` argument. The root's entry equals `count`.
  std::unordered_map<uint64_t, double> actual_rows;
};

/// Volcano-style executor over the columnar storage: materializes each join
/// input as a TupleSet of base-table row ids and evaluates the root
/// count-only (never materializing the final result). Implements the three
/// PostgreSQL join algorithms plus seq/index scans.
class Executor {
 public:
  explicit Executor(const Database& db, ExecLimits limits = ExecLimits())
      : db_(db), limits_(limits) {}

  /// Executes `plan` and returns the COUNT(*) of its output (or a timeout).
  /// Returns an error Status only for malformed plans (unknown tables etc.);
  /// resource exhaustion is reported via ExecResult::timed_out. With
  /// `analyze` set, per-node actual row counts are collected (EXPLAIN
  /// ANALYZE).
  Result<ExecResult> ExecuteCount(const PlanNode& plan,
                                  bool analyze = false) const;

  /// Materializes the full output of `plan` (tests and small queries only).
  Result<TupleSet> Materialize(const PlanNode& plan) const;

 private:
  struct Ctx {
    Stopwatch watch;
    const ExecLimits* limits;
    bool timed_out = false;
    /// Non-null when EXPLAIN ANALYZE collection is requested.
    std::unordered_map<uint64_t, double>* actual_rows = nullptr;
  };

  Status ExecuteNode(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status ExecuteScan(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status ExecuteJoin(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status CountNode(const PlanNode& plan, Ctx& ctx, uint64_t* count) const;

  const Database& db_;
  ExecLimits limits_;
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_EXECUTOR_H_
