#ifndef CARDBENCH_EXEC_EXECUTOR_H_
#define CARDBENCH_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "exec/plan.h"
#include "exec/tuple_set.h"
#include "storage/catalog.h"

namespace cardbench {

/// Resource guard rails for plan execution. Catastrophically bad plans
/// (which bad cardinality estimates produce by design) are cut off rather
/// than allowed to run for hours — the harness reports them as the paper
/// reports ">25h" entries.
struct ExecLimits {
  /// Cap on any single materialized intermediate result.
  size_t max_intermediate_tuples = 20000000;
  /// Wall-clock budget for one plan execution.
  double timeout_seconds = 60.0;
};

/// Which hash-join table implementation the executor runs on. Both produce
/// bit-identical TupleSets and counts (exec_parity_test asserts it); the
/// legacy table stays selectable as the A/B and parity baseline.
enum class JoinImpl {
  /// Radix-partitioned open-addressing table with tag vectors, arena
  /// backing, software prefetch and morsel-parallel build (exec/join_hash).
  kRadix,
  /// Chained `std::unordered_map<Value, std::vector<uint32_t>>`.
  kLegacy,
};

/// Knobs of the vectorized, morsel-driven execution pipeline. No knob
/// affects results: with num_threads == 1 output is bit-identical to any
/// other configuration (morsel outputs are concatenated in morsel order, so
/// parallel runs produce identical tuple order too); batch_size only sets
/// the granularity of the internal selection-vector / key-gather batches;
/// join_impl/radix_bits/prefetch_distance select layout and lookahead of
/// the join hash table, whose match enumeration order is
/// implementation-independent (ascending build row).
struct ExecOptions {
  /// Rows per vectorized batch (selection vectors, key gathers).
  size_t batch_size = 1024;
  /// Worker threads for intra-query morsel parallelism (leaf scans, hash
  /// build + probe, index-nested-loop probe). 1 = serial, no pool is
  /// created.
  size_t num_threads = 1;
  /// Allocate per-morsel gather scratch (KeyBatch buffers) and the radix
  /// join table from the worker thread's arena instead of the heap.
  /// Steady-state execution then allocates zero heap per morsel. Purely an
  /// allocation-strategy knob — results are identical either way.
  bool use_arena = true;
  /// Hash-join table implementation (A/B switch; results identical).
  JoinImpl join_impl = JoinImpl::kRadix;
  /// log2 of the radix join's partition fan-out (0 = unpartitioned single
  /// table). Ignored by the legacy implementation.
  size_t radix_bits = 4;
  /// Software-prefetch lookahead (in keys / build entries) of the radix
  /// join's build and probe loops; 0 disables prefetching.
  size_t prefetch_distance = 8;
};

/// Outcome of executing one COUNT(*) plan.
struct ExecResult {
  uint64_t count = 0;
  /// True if a limit was hit; `count` is then meaningless and
  /// `elapsed_seconds` is the time spent until cut-off.
  bool timed_out = false;
  double elapsed_seconds = 0.0;
  /// EXPLAIN ANALYZE data: actual output rows per plan node, keyed by the
  /// node's table_mask. Populated when requested via ExecuteCount's
  /// `analyze` argument. The root's entry equals `count`.
  std::unordered_map<uint64_t, double> actual_rows;
};

/// Batch-vectorized, morsel-driven executor over the columnar storage:
/// materializes each join input as a TupleSet of base-table row ids and
/// evaluates the root count-only (never materializing the final result).
/// Implements the three PostgreSQL join algorithms plus seq/index scans.
///
/// Scans evaluate predicate conjunctions through the storage filter kernels
/// (Column::FilterRange / FilterRows) into selection vectors; joins gather
/// keys in batches (Column::Gather) and intern table names into catalog ids
/// so no inner loop compares strings. Leaf scans and hash/index-NL probes
/// are split into morsels dispatched on an internal thread pool when
/// ExecOptions::num_threads > 1; the ExecLimits budget (wall clock +
/// intermediate-size cap) is enforced inside every loop that scales with
/// input size through a shared atomic cut-off flag.
///
/// Thread-safety: ExecuteCount/Materialize are const and safe to call
/// concurrently from multiple threads (the harness's --threads fan-out);
/// concurrent calls share the morsel pool.
class Executor {
 public:
  explicit Executor(const Database& db, ExecLimits limits = ExecLimits(),
                    ExecOptions options = ExecOptions());

  /// Executes `plan` and returns the COUNT(*) of its output (or a timeout).
  /// Returns an error Status only for malformed plans (unknown tables etc.);
  /// resource exhaustion is reported via ExecResult::timed_out. With
  /// `analyze` set, per-node actual row counts are collected (EXPLAIN
  /// ANALYZE).
  Result<ExecResult> ExecuteCount(const PlanNode& plan,
                                  bool analyze = false) const;

  /// Materializes the full output of `plan` (tests and small queries only).
  Result<TupleSet> Materialize(const PlanNode& plan) const;

  const ExecOptions& options() const { return options_; }

 private:
  struct Ctx {
    Stopwatch watch;
    const ExecLimits* limits = nullptr;
    /// Shared cut-off flag: any morsel that trips the wall-clock or
    /// intermediate-size budget publishes the timeout here and every other
    /// loop unwinds at its next budget check.
    std::atomic<bool> timed_out{false};
    /// Non-null when EXPLAIN ANALYZE collection is requested. Written only
    /// between operators (never from morsel workers).
    std::unordered_map<uint64_t, double>* actual_rows = nullptr;

    bool TimedOut() const {
      return timed_out.load(std::memory_order_relaxed);
    }
  };

  Status ExecuteNode(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status ExecuteScan(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status ExecuteJoin(const PlanNode& plan, Ctx& ctx, TupleSet* out) const;
  Status CountNode(const PlanNode& plan, Ctx& ctx, uint64_t* count) const;

  /// Shared hash-join driver of ExecuteJoin and the count-only root:
  /// resolves the join edges, builds the configured join table (JoinImpl
  /// A/B seam) over `right`, and probes with `left` — materializing
  /// combined tuples into `out` when non-null (cap-enforced), streaming a
  /// match count into `*count` otherwise.
  Status HashJoinDriver(const PlanNode& plan, const TupleSet& left,
                        const TupleSet& right, Ctx& ctx, TupleSet* out,
                        uint64_t* count) const;

  /// Interned catalog id of `table` (position in Database::table_names()),
  /// or -1 for unknown tables.
  int TableId(const std::string& table) const;

  /// Runs `fn(m)` for every morsel m in [0, count): in order on the calling
  /// thread when serial (or a single morsel), otherwise fanned out over the
  /// morsel pool with a barrier. Results must not depend on morsel order.
  void ForEachMorsel(size_t count, const std::function<void(size_t)>& fn) const;

  /// Splits [0, total) probe input tuples into morsels and runs
  /// `morsel(lo, hi, dst, count)` for each — dst mode when `out` is non-null
  /// (per-morsel buffers concatenated in morsel order, so tuple order
  /// matches the serial run), count mode otherwise (per-morsel counts
  /// summed into *count_out).
  void RunProbeMorsels(
      size_t total, Ctx& ctx, TupleSet* out, uint64_t* count_out,
      const std::function<void(size_t, size_t, std::vector<uint32_t>*,
                               uint64_t*)>& morsel) const;

  const Database& db_;
  ExecLimits limits_;
  ExecOptions options_;
  std::unordered_map<std::string, int> table_ids_;
  /// Morsel workers; created only when options_.num_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_EXECUTOR_H_
