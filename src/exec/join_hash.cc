#include "exec/join_hash.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace cardbench {

namespace {

/// Rows per build morsel — matches the executor's scan morsel granularity
/// so one morsel's gather touches the same working set a scan morsel does.
constexpr size_t kBuildMorselRows = size_t{1} << 14;

/// Inserts between budget checks inside the partition-insert loop (the only
/// build loop whose per-task size is unbounded by the morsel split).
constexpr size_t kInsertBudgetInterval = size_t{1} << 14;

size_t NextPow2(size_t x) {
  if (x <= 1) return 1;
  return size_t{1} << (64 - static_cast<size_t>(__builtin_clzll(x - 1)));
}

}  // namespace

template <typename T>
T* JoinHashTable::Alloc(size_t count) {
  if (frame_.has_value()) {
    return frame_->arena()->AllocateArray<T>(count);
  }
  heap_blocks_.emplace_back(std::max<size_t>(count * sizeof(T), 1));
  return reinterpret_cast<T*>(heap_blocks_.back().data());
}

bool JoinHashTable::Build(const JoinKeySource& source, size_t num_tuples,
                          const JoinHashConfig& config,
                          const JoinMorselRunner& runner,
                          const JoinBudgetCheck& budget_check) {
  radix_bits_ = std::min(config.radix_bits, JoinHashConfig::kMaxRadixBits);
  const size_t fanout = size_t{1} << radix_bits_;
  fanout_mask_ = fanout - 1;
  if (config.use_arena) frame_.emplace(&ThreadLocalArena());
  parts_.assign(fanout, Partition{});

  const size_t num_morsels =
      (num_tuples + kBuildMorselRows - 1) / kBuildMorselRows;

  // Build scratch is heap-owned and freed when Build returns: keeping it in
  // the arena would pin ~37 bytes/row behind the (later-allocated, hence
  // unrewindable) partition arrays for the table's whole probe lifetime.
  std::vector<Value> keys(num_tuples);
  std::vector<uint8_t> valid(num_tuples);
  std::vector<uint64_t> hashes(num_tuples);
  std::vector<uint64_t> hist(num_morsels * fanout, 0);

  std::atomic<bool> aborted{false};
  auto run = [&](size_t count, const std::function<void(size_t)>& fn) {
    if (runner) {
      runner(count, fn);
    } else {
      for (size_t m = 0; m < count; ++m) fn(m);
    }
  };
  auto check_budget = [&]() {
    if (budget_check && !budget_check()) {
      aborted.store(true, std::memory_order_relaxed);
    }
  };

  // Phase 1 (morsel-parallel): gather keys, hash, count per-(morsel,
  // partition) histograms. Each morsel owns disjoint ranges of every array.
  const size_t gather_chunk = std::max<size_t>(config.batch_size, 1);
  run(num_morsels, [&](size_t m) {
    if (aborted.load(std::memory_order_relaxed)) return;
    const size_t lo = m * kBuildMorselRows;
    const size_t hi = std::min(lo + kBuildMorselRows, num_tuples);
    for (size_t c = lo; c < hi; c += gather_chunk) {
      source.GatherKeys(c, std::min(c + gather_chunk, hi), keys.data() + c,
                        valid.data() + c);
    }
    uint64_t* h = hist.data() + m * fanout;
    for (size_t i = lo; i < hi; ++i) {
      if (valid[i] == 0) continue;
      const uint64_t hash = JoinKeyHash(keys[i]);
      hashes[i] = hash;
      ++h[hash & fanout_mask_];
    }
    check_budget();
  });
  if (aborted.load(std::memory_order_relaxed)) return false;

  // Partition bases, then each (morsel, partition)'s scatter cursor:
  // partition-major bases with morsel-major cursors inside a partition, so
  // the scatter below writes every partition's entries in ascending build-
  // row order no matter how morsels interleave across threads. That order
  // is what makes the table's match enumeration bit-identical to the legacy
  // chained table's bucket vectors.
  std::vector<uint64_t> part_start(fanout + 1, 0);
  for (size_t p = 0; p < fanout; ++p) {
    uint64_t total = 0;
    for (size_t m = 0; m < num_morsels; ++m) total += hist[m * fanout + p];
    part_start[p + 1] = part_start[p] + total;
  }
  num_entries_ = part_start[fanout];

  std::vector<uint64_t> cursors(num_morsels * fanout);
  for (size_t p = 0; p < fanout; ++p) {
    uint64_t cursor = part_start[p];
    for (size_t m = 0; m < num_morsels; ++m) {
      cursors[m * fanout + p] = cursor;
      cursor += hist[m * fanout + p];
    }
  }

  // Phase 2 (morsel-parallel): scatter entries into partition-contiguous
  // order. Cursor ranges are disjoint per (morsel, partition), so no writes
  // race.
  std::vector<uint64_t> ent_hash(num_entries_);
  std::vector<Value> ent_key(num_entries_);
  std::vector<uint32_t> ent_row(num_entries_);
  run(num_morsels, [&](size_t m) {
    if (aborted.load(std::memory_order_relaxed)) return;
    const size_t lo = m * kBuildMorselRows;
    const size_t hi = std::min(lo + kBuildMorselRows, num_tuples);
    uint64_t* cursor = cursors.data() + m * fanout;
    for (size_t i = lo; i < hi; ++i) {
      if (valid[i] == 0) continue;
      const uint64_t idx = cursor[hashes[i] & fanout_mask_]++;
      ent_hash[idx] = hashes[i];
      ent_key[idx] = keys[i];
      ent_row[idx] = static_cast<uint32_t>(i);
    }
    check_budget();
  });
  if (aborted.load(std::memory_order_relaxed)) return false;

  // Phase 3a (partition-parallel): dedupe each partition through a scratch
  // linear-probe count table sized for the all-unique worst case. `count`
  // doubles as the occupancy marker; `base` becomes the postings cursor in
  // phase 3b. Processing entries in scatter (ascending build row) order
  // keeps everything downstream deterministic.
  struct TempSlot {
    Value key;
    uint32_t count;
    uint32_t base;
  };
  const size_t dist =
      std::min(config.prefetch_distance, JoinHashConfig::kMaxPrefetchDistance);
  std::vector<std::vector<TempSlot>> temps(fanout);
  std::vector<size_t> distinct(fanout, 0);
  run(fanout, [&](size_t p) {
    if (aborted.load(std::memory_order_relaxed)) return;
    const uint64_t base = part_start[p];
    const uint64_t n = part_start[p + 1] - base;
    const size_t tcap = std::max(kTagGroupWidth, NextPow2(2 * n));
    const size_t tmask = tcap - 1;
    std::vector<TempSlot>& temp = temps[p];
    temp.assign(tcap, TempSlot{0, 0, 0});
    size_t d = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (dist != 0 && i + dist < n) {
        __builtin_prefetch(
            temp.data() + ((ent_hash[base + i + dist] >> radix_bits_) & tmask),
            1, 1);
      }
      const Value key = ent_key[base + i];
      size_t slot = (ent_hash[base + i] >> radix_bits_) & tmask;
      while (temp[slot].count != 0 && temp[slot].key != key) {
        slot = (slot + 1) & tmask;
      }
      if (temp[slot].count == 0) {
        temp[slot].key = key;
        ++d;
      }
      ++temp[slot].count;
      if ((i + 1) % kInsertBudgetInterval == 0) {
        check_budget();
        if (aborted.load(std::memory_order_relaxed)) return;
      }
    }
    distinct[p] = d;
    check_budget();
  });
  if (aborted.load(std::memory_order_relaxed)) return false;

  // Partition tables, sized by the *distinct* key count (capacity 2x
  // distinct rounded to a power of two: load factor <= 1/2 bounds probe
  // chains and guarantees empties terminate every walk). Duplication
  // shrinks the randomly-probed footprint instead of lengthening chains.
  // Allocated serially on the owning thread — arenas are thread-local.
  for (size_t p = 0; p < fanout; ++p) {
    const size_t n = part_start[p + 1] - part_start[p];
    const size_t cap = std::max(kTagGroupWidth, NextPow2(2 * distinct[p]));
    Partition& part = parts_[p];
    part.cap_mask = cap - 1;
    part.tags = Alloc<uint8_t>(cap + kTagGroupWidth - 1);
    part.slots = Alloc<Slot>(cap);
    part.rows = Alloc<uint32_t>(std::max<size_t>(n, 1));
    std::memset(part.tags, kEmptyTag, cap + kTagGroupWidth - 1);
  }

  // Phase 3b (partition-parallel): insert each distinct key with its
  // postings run descriptor, then place the postings. Scratch-table order
  // fixes the slot insertion order and the scatter order fixes each run's
  // (ascending build row) order, so the result is thread-count-invariant.
  run(fanout, [&](size_t p) {
    if (aborted.load(std::memory_order_relaxed)) return;
    Partition& part = parts_[p];
    const uint64_t base = part_start[p];
    const uint64_t n = part_start[p + 1] - base;
    const size_t tmask = temps[p].size() - 1;
    TempSlot* temp = temps[p].data();

    uint32_t cursor = 0;
    for (size_t t = 0; t <= tmask; ++t) {
      TempSlot& ts = temp[t];
      if (ts.count == 0) continue;
      const uint64_t hash = JoinKeyHash(ts.key);
      size_t slot = (hash >> radix_bits_) & part.cap_mask;
      while (part.tags[slot] != kEmptyTag) slot = (slot + 1) & part.cap_mask;
      part.tags[slot] = TagOfHash(hash);
      if (slot < kTagGroupWidth - 1) {
        // Keep the wrap-mirror coherent: group loads at the end of the
        // array read these copies of the first 15 tags.
        part.tags[part.cap_mask + 1 + slot] = part.tags[slot];
      }
      part.slots[slot] = Slot{ts.key, cursor, ts.count};
      ts.base = cursor;
      cursor += ts.count;
    }
    check_budget();
    if (aborted.load(std::memory_order_relaxed)) return;

    for (uint64_t i = 0; i < n; ++i) {
      if (dist != 0 && i + dist < n) {
        __builtin_prefetch(
            temp + ((ent_hash[base + i + dist] >> radix_bits_) & tmask), 1, 1);
      }
      const Value key = ent_key[base + i];
      size_t slot = (ent_hash[base + i] >> radix_bits_) & tmask;
      // The walk path from the home slot was fully occupied by the end of
      // phase 3a, so skipping non-matching slots terminates at the key.
      while (temp[slot].count == 0 || temp[slot].key != key) {
        slot = (slot + 1) & tmask;
      }
      part.rows[temp[slot].base++] = ent_row[base + i];
      if ((i + 1) % kInsertBudgetInterval == 0) {
        check_budget();
        if (aborted.load(std::memory_order_relaxed)) return;
      }
    }
    check_budget();
  });
  return !aborted.load(std::memory_order_relaxed);
}

}  // namespace cardbench
