#ifndef CARDBENCH_EXEC_JOIN_HASH_H_
#define CARDBENCH_EXEC_JOIN_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "storage/tag_probe.h"
#include "storage/value.h"

namespace cardbench {

/// Cache-conscious replacement for the executor's chained
/// `std::unordered_map<Value, std::vector<uint32_t>>` join table:
///
///  - **Radix-partitioned build** (configurable fan-out 2^radix_bits):
///    build keys are materialized once, then distributed with a classic
///    2-pass histogram + scatter keyed on the low hash bits. Per-morsel
///    histograms merged into global offsets make the scatter morsel-
///    parallel yet write each partition's entries in ascending build-tuple
///    order regardless of thread count — the order the legacy table's
///    bucket vectors had, so results stay bit-identical.
///  - **Unique-key open addressing + contiguous postings** per partition:
///    the linear-probe table (load factor <= 1/2, sized by the *distinct*
///    key count) holds one 16-byte slot per distinct key — the key plus an
///    (offset, count) run descriptor into a contiguous build-row postings
///    array. Duplicates never lengthen probe chains, a count-only probe is
///    O(1) after the slot lookup (read `count`, like the legacy table's
///    `vector::size()`), and match enumeration streams one cache-friendly
///    postings run laid out in ascending build-row order — the order the
///    legacy table's bucket vectors had, so results stay bit-identical.
///  - **1-byte tag vectors**: a slot's tag is 1 + the top 7 hash bits
///    (never the empty marker 0). Probes scan tags 16 at a time through the
///    storage tag-probe kernel and only touch the slot array on tag hits —
///    a bloom-style early reject that keeps misses inside one cache line.
///  - **Arena-backed storage**: with `use_arena` every array comes from the
///    building thread's ThreadLocalArena inside an ArenaFrame held by the
///    table, so steady-state joins allocate zero heap; the frame unwinds
///    when the table is destroyed. The arrays are plain trivially-
///    destructible storage either way.
///  - **Software prefetch**: the build insert loop prefetches the home
///    slots `prefetch_distance` entries ahead; probe-side callers are
///    expected to do the same through Prefetch() (the executor's batched
///    probe morsels do).
///
/// Thread-safety: Build() must be called once, from the owning thread (it
/// borrows that thread's arena); the probe API is const and safe for any
/// number of concurrent readers afterwards.
struct JoinHashConfig {
  /// log2 of the partition fan-out. 0 = a single table (no partitioning).
  /// Clamped to kMaxRadixBits.
  size_t radix_bits = 4;
  /// Entries of lookahead for software prefetch in build/probe loops;
  /// 0 disables prefetching. Clamped to kMaxPrefetchDistance.
  size_t prefetch_distance = 8;
  /// Granularity of the batched key gathers feeding the build.
  size_t batch_size = 1024;
  /// Allocate the table from the building thread's arena (else the heap).
  bool use_arena = true;

  static constexpr size_t kMaxRadixBits = 12;
  static constexpr size_t kMaxPrefetchDistance = 64;
};

/// Batched key access of the build input: fills keys[0, hi-lo) and
/// valid[0, hi-lo) for build tuples [lo, hi). Called from build morsel
/// workers (possibly concurrently for disjoint ranges); implementations
/// must be safe for that.
class JoinKeySource {
 public:
  virtual ~JoinKeySource() = default;
  virtual void GatherKeys(size_t lo, size_t hi, Value* keys,
                          uint8_t* valid) const = 0;
};

/// Fans `fn(m)` over m in [0, count) and returns after all complete.
/// The executor passes its morsel pool; a null runner means serial.
using JoinMorselRunner =
    std::function<void(size_t count, const std::function<void(size_t)>& fn)>;

/// Returns false when execution must unwind (wall-clock budget exhausted).
/// Called every few-thousand processed rows from build loops.
using JoinBudgetCheck = std::function<bool()>;

/// Position of `hash`'s partition in the fan-out: the low radix bits.
/// Slot-within-partition uses the next bits and the tag the top bits, so
/// the three derivations never correlate.
inline uint8_t TagOfHash(uint64_t hash) {
  return static_cast<uint8_t>(hash >> 56) | 0x80u;
}

/// The shared key hash of the join layer (see common/hash.h).
inline uint64_t JoinKeyHash(Value v) {
  return HashMix64(static_cast<uint64_t>(v));
}

class JoinHashTable {
 public:
  JoinHashTable() = default;
  JoinHashTable(const JoinHashTable&) = delete;
  JoinHashTable& operator=(const JoinHashTable&) = delete;

  /// Builds the table over `num_tuples` build tuples. Returns false when
  /// the budget tripped mid-build (the table is then unusable and the
  /// caller must unwind, mirroring the legacy build's abandonment
  /// contract). NULL keys (valid == 0) are skipped: they join nothing.
  bool Build(const JoinKeySource& source, size_t num_tuples,
             const JoinHashConfig& config, const JoinMorselRunner& runner,
             const JoinBudgetCheck& budget_check);

  /// Non-NULL entries inserted.
  size_t num_entries() const { return num_entries_; }

  /// Partition count actually used (after clamping radix_bits).
  size_t fanout() const { return size_t{1} << radix_bits_; }

  /// Prefetches the tag/slot lines a probe of `hash` will touch first.
  /// Probe loops call this `prefetch_distance` keys ahead.
  inline void Prefetch(uint64_t hash) const {
    const Partition& p = parts_[hash & fanout_mask_];
    const size_t slot = (hash >> radix_bits_) & p.cap_mask;
    // Locality 3 = prefetcht0: pull all the way into L1 — the demand loads
    // follow within `prefetch_distance` probes, and a t2 prefetch would
    // still leave them paying the L2 round trip.
    __builtin_prefetch(p.tags + slot, 0, 3);
    __builtin_prefetch(p.slots + slot, 0, 3);
  }

  /// Invokes `fn(build_row)` for every build entry whose key equals `key`,
  /// in ascending build-row order. `fn` returns false to abort the walk
  /// (emit-cap exhaustion); ForEachMatch then returns false too.
  /// `hash` must be JoinKeyHash(key).
  template <typename Fn>
  inline bool ForEachMatch(Value key, uint64_t hash, Fn&& fn) const {
    const Slot* s = FindSlot(key, hash);
    if (s == nullptr) return true;
    const Partition& p = parts_[hash & fanout_mask_];
    const uint32_t* rows = p.rows + s->offset;
    for (uint32_t j = 0; j < s->count; ++j) {
      if (!fn(rows[j])) return false;
    }
    return true;
  }

  /// Number of build entries whose key equals `key` (the count-only fast
  /// path: no extra-edge evaluation, no emission). O(1) past the slot
  /// lookup — the run descriptor carries the duplication count.
  inline uint64_t CountMatches(Value key, uint64_t hash) const {
    const Slot* s = FindSlot(key, hash);
    return s == nullptr ? 0 : s->count;
  }

 private:
  /// One distinct key's run descriptor: `count` postings starting at
  /// `offset` in the partition's rows array, ascending build-row order.
  struct Slot {
    Value key;
    uint32_t offset;
    uint32_t count;
  };

  /// One partition's unique-key open-addressing table. `tags` has
  /// cap_mask + 1 slots plus kTagGroupWidth - 1 mirror bytes (copies of the
  /// first tags) so a 16-wide group load at any slot stays in bounds across
  /// the wrap. `rows` holds the partition's postings, grouped per key.
  struct Partition {
    uint8_t* tags = nullptr;
    Slot* slots = nullptr;
    uint32_t* rows = nullptr;
    size_t cap_mask = 0;
  };

  /// The slot holding `key`, or nullptr if absent. Scans tags 16 at a time;
  /// keys are unique, so the first key hit ends the walk.
  inline const Slot* FindSlot(Value key, uint64_t hash) const {
    const Partition& p = parts_[hash & fanout_mask_];
    const uint8_t tag = TagOfHash(hash);
    size_t group = (hash >> radix_bits_) & p.cap_mask;
    while (true) {
      uint32_t match = TagMatchMask16(p.tags + group, tag);
      const uint32_t empty = TagEmptyMask16(p.tags + group);
      if (empty != 0) {
        // The chain ends at the first empty slot; later bits of this group
        // are other keys' territory (no equal key can live past the chain
        // end in insert-only linear probing).
        match &= (empty & (~empty + 1u)) - 1u;
      }
      while (match != 0) {
        const size_t idx =
            (group + static_cast<size_t>(__builtin_ctz(match))) & p.cap_mask;
        if (p.slots[idx].key == key) return &p.slots[idx];
        match &= match - 1;
      }
      if (empty != 0) return nullptr;
      group = (group + kTagGroupWidth) & p.cap_mask;
    }
  }

  /// Allocates `count` Ts from the arena or the heap backing store.
  template <typename T>
  T* Alloc(size_t count);

  std::optional<ArenaFrame> frame_;
  /// Heap fallback when use_arena is off: one owned block per allocation.
  std::vector<std::vector<char>> heap_blocks_;

  std::vector<Partition> parts_;
  size_t radix_bits_ = 0;
  uint64_t fanout_mask_ = 0;
  size_t num_entries_ = 0;
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_JOIN_HASH_H_
