#include "exec/plan.h"

#include "common/str_util.h"

namespace cardbench {

std::string ScanMethodName(ScanMethod method) {
  switch (method) {
    case ScanMethod::kSeqScan: return "SeqScan";
    case ScanMethod::kIndexScan: return "IndexScan";
  }
  return "?";
}

std::string JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kHashJoin: return "HashJoin";
    case JoinMethod::kMergeJoin: return "MergeJoin";
    case JoinMethod::kIndexNestLoop: return "IndexNestLoop";
  }
  return "?";
}

size_t PlanNode::NumTables() const {
  if (IsScan()) return 1;
  return left->NumTables() + right->NumTables();
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->type = type;
  copy->table = table;
  copy->scan_method = scan_method;
  copy->filters = filters;
  copy->join_method = join_method;
  copy->edge = edge;
  copy->extra_edges = extra_edges;
  copy->table_mask = table_mask;
  copy->estimated_card = estimated_card;
  copy->estimated_cost = estimated_cost;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  return copy;
}

std::string PlanNode::ExplainAnalyze(
    const std::unordered_map<uint64_t, double>& actual_rows,
    int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out;
  if (IsScan()) {
    out = pad + StrFormat("%s on %s", ScanMethodName(scan_method).c_str(),
                          table.c_str());
    if (!filters.empty()) {
      std::vector<std::string> parts;
      for (const auto& f : filters) parts.push_back(f.ToString());
      out += "  filter: " + Join(parts, " AND ");
    }
  } else {
    out = pad + StrFormat("%s on %s", JoinMethodName(join_method).c_str(),
                          edge.ToString().c_str());
    for (const auto& e : extra_edges) out += " AND " + e.ToString();
  }
  auto it = actual_rows.find(table_mask);
  if (it != actual_rows.end()) {
    out += StrFormat("  (rows=%.0f actual=%.0f cost=%.1f)\n", estimated_card,
                     it->second, estimated_cost);
  } else {
    out += StrFormat("  (rows=%.0f actual=? cost=%.1f)\n", estimated_card,
                     estimated_cost);
  }
  if (left != nullptr) out += left->ExplainAnalyze(actual_rows, indent + 1);
  if (right != nullptr) out += right->ExplainAnalyze(actual_rows, indent + 1);
  return out;
}

std::string PlanNode::Explain(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out;
  if (IsScan()) {
    out = pad + StrFormat("%s on %s", ScanMethodName(scan_method).c_str(),
                          table.c_str());
    if (!filters.empty()) {
      std::vector<std::string> parts;
      for (const auto& f : filters) parts.push_back(f.ToString());
      out += "  filter: " + Join(parts, " AND ");
    }
  } else {
    out = pad + StrFormat("%s on %s", JoinMethodName(join_method).c_str(),
                          edge.ToString().c_str());
    for (const auto& e : extra_edges) out += " AND " + e.ToString();
  }
  out += StrFormat("  (rows=%.0f cost=%.1f)\n", estimated_card,
                   estimated_cost);
  if (left != nullptr) out += left->Explain(indent + 1);
  if (right != nullptr) out += right->Explain(indent + 1);
  return out;
}

}  // namespace cardbench
