#ifndef CARDBENCH_EXEC_PLAN_H_
#define CARDBENCH_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"

namespace cardbench {

/// Physical table-access method, chosen by the optimizer based on estimated
/// selectivity (mirroring PostgreSQL's seq-scan vs index-scan choice, §4.2).
enum class ScanMethod : uint8_t {
  kSeqScan = 0,
  kIndexScan,  ///< equality lookup on an indexed (key) column, then filter
};

/// Physical join algorithm (PostgreSQL's three: §4.2 / Figure 2).
enum class JoinMethod : uint8_t {
  kHashJoin = 0,
  kMergeJoin,
  kIndexNestLoop,  ///< inner side must be a base-table scan with an index
};

std::string ScanMethodName(ScanMethod method);
std::string JoinMethodName(JoinMethod method);

/// A node of a physical execution plan. Plans are binary trees whose leaves
/// scan base tables and whose inner nodes join two sub-plans on one primary
/// equi-join edge (additional connecting edges become post-join filters).
struct PlanNode {
  enum class Type : uint8_t { kScan = 0, kJoin };

  Type type = Type::kScan;

  // --- scan fields ---
  std::string table;
  ScanMethod scan_method = ScanMethod::kSeqScan;
  /// Filters applied during the scan. For index scans, the first filter is
  /// the equality predicate served by the index.
  std::vector<Predicate> filters;

  // --- join fields ---
  JoinMethod join_method = JoinMethod::kHashJoin;
  /// Primary join condition; left side refers to the outer (left) subtree.
  JoinEdge edge;
  /// Extra equi-join conditions between the two subtrees, applied as
  /// post-join filters.
  std::vector<JoinEdge> extra_edges;
  std::unique_ptr<PlanNode> left;   ///< outer / probe side
  std::unique_ptr<PlanNode> right;  ///< inner / build side

  // --- optimizer annotations ---
  /// Bitmask of the owning query's tables covered by this subtree.
  uint64_t table_mask = 0;
  /// Cardinality the active estimator predicted for this sub-plan.
  double estimated_card = 0.0;
  /// Total cost of this subtree under the estimator's cardinalities.
  double estimated_cost = 0.0;

  bool IsScan() const { return type == Type::kScan; }

  /// Number of base tables under this node.
  size_t NumTables() const;

  /// Deep copy (plans are cheap relative to execution; used when recosting
  /// a plan under true cardinalities for P-Error).
  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line EXPLAIN-style rendering with costs and cardinalities.
  std::string Explain(int indent = 0) const;

  /// EXPLAIN ANALYZE rendering: like Explain but each node also shows its
  /// actual output rows (from Executor::ExecuteCount with analyze=true,
  /// keyed by table_mask) next to the estimate.
  std::string ExplainAnalyze(
      const std::unordered_map<uint64_t, double>& actual_rows,
      int indent = 0) const;
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_PLAN_H_
