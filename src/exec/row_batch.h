#ifndef CARDBENCH_EXEC_ROW_BATCH_H_
#define CARDBENCH_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/value.h"

namespace cardbench {

/// A fixed-capacity unit of vectorized work: a selection vector of row ids
/// (base-table rows for scans, input-tuple indexes for joins). Operators
/// produce and consume RowBatches of at most ExecOptions::batch_size
/// entries; the batch boundaries are an implementation detail and never
/// affect results.
struct RowBatch {
  std::vector<uint32_t> sel;

  size_t size() const { return sel.size(); }
  bool empty() const { return sel.empty(); }
  void Clear() { sel.clear(); }
  void Reserve(size_t n) { sel.reserve(n); }
};

/// Gather buffers for batched join-key access: `rows[i]` is the base-table
/// row of input tuple i of the batch, `keys[i]`/`valid[i]` the gathered key
/// value and its non-NULL flag (see Column::Gather).
struct KeyBatch {
  std::vector<uint32_t> rows;
  std::vector<Value> keys;
  std::vector<uint8_t> valid;

  void Resize(size_t n) {
    rows.resize(n);
    keys.resize(n);
    valid.resize(n);
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_ROW_BATCH_H_
