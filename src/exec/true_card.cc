#include "exec/true_card.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/logging.h"
#include "common/str_util.h"
#include "storage/filter.h"

namespace cardbench {

TrueCardService::TrueCardService(const Database& db, ExecLimits limits,
                                 ExecOptions options)
    : db_(db), executor_(db, limits, options) {}

double TrueCardService::FilteredBaseCard(const Query& query,
                                         const std::string& table_name) const {
  const Table& table = db_.TableOrDie(table_name);
  const auto compiled =
      CompilePredicatesFor(table, table_name, query.predicates);
  return static_cast<double>(
      CountRangeConjunction(compiled, 0, table.num_rows()));
}

std::unique_ptr<PlanNode> TrueCardService::BuildCountingPlan(
    const Query& query) const {
  auto make_scan = [&](const std::string& table) {
    auto scan = std::make_unique<PlanNode>();
    scan->type = PlanNode::Type::kScan;
    scan->table = table;
    scan->scan_method = ScanMethod::kSeqScan;
    for (const auto& pred : query.predicates) {
      if (pred.table == table) scan->filters.push_back(pred);
    }
    const int idx = query.TableIndex(table);
    scan->table_mask = uint64_t{1} << idx;
    return scan;
  };

  // Greedy left-deep order: start from the smallest filtered table, then
  // repeatedly attach the connected table with the smallest filtered
  // cardinality. Any order yields the same exact count; small-first keeps
  // intermediates manageable.
  std::vector<std::string> remaining = query.tables;
  std::string first = remaining[0];
  double best = std::numeric_limits<double>::max();
  for (const auto& t : remaining) {
    const double card = FilteredBaseCard(query, t);
    if (card < best) {
      best = card;
      first = t;
    }
  }
  std::unique_ptr<PlanNode> plan = make_scan(first);
  remaining.erase(std::find(remaining.begin(), remaining.end(), first));
  std::vector<std::string> joined = {first};

  while (!remaining.empty()) {
    // Pick the connected remaining table with the smallest filtered card.
    std::string next;
    double next_card = std::numeric_limits<double>::max();
    for (const auto& cand : remaining) {
      bool connected = false;
      for (const auto& edge : query.joins) {
        const bool touches_cand =
            edge.left_table == cand || edge.right_table == cand;
        if (!touches_cand) continue;
        const std::string& other =
            edge.left_table == cand ? edge.right_table : edge.left_table;
        if (std::find(joined.begin(), joined.end(), other) != joined.end()) {
          connected = true;
          break;
        }
      }
      if (!connected) continue;
      const double card = FilteredBaseCard(query, cand);
      if (card < next_card) {
        next_card = card;
        next = cand;
      }
    }
    CARDBENCH_CHECK(!next.empty(), "query join graph disconnected: %s",
                    query.CanonicalKey().c_str());

    // Collect the edges connecting `next` to the joined set.
    std::vector<JoinEdge> connecting;
    for (const auto& edge : query.joins) {
      const bool next_left = edge.left_table == next;
      const bool next_right = edge.right_table == next;
      if (!next_left && !next_right) continue;
      const std::string& other = next_left ? edge.right_table : edge.left_table;
      if (std::find(joined.begin(), joined.end(), other) != joined.end()) {
        connecting.push_back(edge);
      }
    }
    CARDBENCH_CHECK(!connecting.empty(), "no connecting edge for %s",
                    next.c_str());

    auto join = std::make_unique<PlanNode>();
    join->type = PlanNode::Type::kJoin;
    join->join_method = JoinMethod::kHashJoin;
    join->edge = connecting[0];
    join->extra_edges.assign(connecting.begin() + 1, connecting.end());
    auto scan = make_scan(next);
    join->table_mask = plan->table_mask | scan->table_mask;
    join->left = std::move(plan);
    join->right = std::move(scan);
    plan = std::move(join);

    joined.push_back(next);
    remaining.erase(std::find(remaining.begin(), remaining.end(), next));
  }
  return plan;
}

Result<double> TrueCardService::Card(const Query& query) {
  const std::string key = query.CanonicalKey();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }

  auto plan = BuildCountingPlan(query);
  CARDBENCH_ASSIGN_OR_RETURN(ExecResult result,
                             executor_.ExecuteCount(*plan));
  if (result.timed_out) {
    return Status::OutOfRange("true-cardinality computation exceeded limits: " +
                              query.ToSql());
  }
  const double card = static_cast<double>(result.count);
  std::lock_guard<std::mutex> lock(mu_);
  cache_[key] = card;
  return card;
}

Result<double> TrueCardService::Card(const QueryGraph& graph, uint64_t mask) {
  const std::string& key = graph.CanonicalKey(mask);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Uncached: execute the counting plan of the precomputed induced
  // sub-query (the slow path; identical to the Query overload's).
  return Card(graph.InducedRef(mask));
}

Result<std::unordered_map<uint64_t, double>> TrueCardService::AllSubplanCards(
    const Query& query) {
  std::unordered_map<uint64_t, double> cards;
  for (uint64_t mask : EnumerateConnectedSubsets(query)) {
    CARDBENCH_ASSIGN_OR_RETURN(double card, Card(query.Induced(mask)));
    cards[mask] = card;
  }
  return cards;
}

Result<std::unordered_map<uint64_t, double>> TrueCardService::AllSubplanCards(
    const QueryGraph& graph) {
  std::unordered_map<uint64_t, double> cards;
  for (uint64_t mask : graph.connected_subsets()) {
    CARDBENCH_ASSIGN_OR_RETURN(double card, Card(graph, mask));
    cards[mask] = card;
  }
  return cards;
}

void TrueCardService::ImportFrom(const TrueCardService& other) {
  std::scoped_lock lock(mu_, other.mu_);
  for (const auto& [key, card] : other.cache_) cache_[key] = card;
}

Status TrueCardService::SaveCache(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, card] : cache_) {
    out << key << '\t' << StrFormat("%.17g", card) << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Status TrueCardService::LoadCache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  while (std::getline(in, line)) {
    const size_t tab = line.rfind('\t');
    if (tab == std::string::npos) continue;
    cache_[line.substr(0, tab)] = std::stod(line.substr(tab + 1));
  }
  return Status::OK();
}

}  // namespace cardbench
