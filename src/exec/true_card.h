#ifndef CARDBENCH_EXEC_TRUE_CARD_H_
#define CARDBENCH_EXEC_TRUE_CARD_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "exec/executor.h"
#include "query/query.h"
#include "query/query_graph.h"

namespace cardbench {

/// Computes and memoizes exact cardinalities of (sub-plan) queries by
/// executing count-only greedy hash-join plans. This backs the TrueCard
/// oracle baseline, the Q-Error/P-Error metrics, and the training labels of
/// the query-driven estimators.
class TrueCardService {
 public:
  explicit TrueCardService(const Database& db,
                           ExecLimits limits = DefaultLimits(),
                           ExecOptions options = ExecOptions());

  /// Exact COUNT(*) of `query` (which may be a sub-plan query). Cached by
  /// the query's canonical key. Returns OutOfRange if execution exceeded the
  /// (generous) limits. Thread-safe: the memo table is synchronized, and an
  /// uncached execution serializes callers (the harness precomputes all
  /// workload sub-plans, so the concurrent paths hit the memo).
  Result<double> Card(const Query& query);

  /// Exact COUNT(*) of the sub-plan of `graph` selected by the connected
  /// table subset `mask`. Memo-compatible with the Query overload: the key
  /// is the precomputed canonical key of the induced sub-query, so disk
  /// caches written by either path serve the other.
  Result<double> Card(const QueryGraph& graph, uint64_t mask);

  /// Exact cardinalities of every connected sub-plan of `query`, keyed by
  /// table-subset bitmask — the full sub-plan query space of §4.2.
  Result<std::unordered_map<uint64_t, double>> AllSubplanCards(
      const Query& query);

  /// Same, over a compiled graph: the connected-subset enumeration and the
  /// per-mask canonical keys come precomputed from the graph.
  Result<std::unordered_map<uint64_t, double>> AllSubplanCards(
      const QueryGraph& graph);

  /// Builds the greedy left-deep hash-join counting plan used internally.
  /// Exposed for tests and for the executor's own test coverage.
  std::unique_ptr<PlanNode> BuildCountingPlan(const Query& query) const;

  /// Persists / restores the memo table (one "key<TAB>card" line per entry)
  /// so repeated bench runs skip recomputation.
  Status SaveCache(const std::string& path) const;
  Status LoadCache(const std::string& path);

  /// Copies every memoized cardinality from `other` (used to transfer
  /// results computed under different execution limits).
  void ImportFrom(const TrueCardService& other);

  size_t cache_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

  const Database& db() const { return db_; }

  static ExecLimits DefaultLimits() {
    ExecLimits limits;
    limits.timeout_seconds = 120.0;
    limits.max_intermediate_tuples = 50000000;
    return limits;
  }

 private:
  /// Number of rows of `table` passing the filter predicates of `query`.
  double FilteredBaseCard(const Query& query, const std::string& table) const;

  const Database& db_;
  Executor executor_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, double> cache_;
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_TRUE_CARD_H_
