#ifndef CARDBENCH_EXEC_TUPLE_SET_H_
#define CARDBENCH_EXEC_TUPLE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cardbench {

/// Intermediate result of plan execution: a bag of composite tuples, each a
/// fixed-arity vector of base-table row ids, stored flat in row-major order.
/// Keeping only row ids (late materialization) means joins can access any
/// column of any constituent table without copying payloads.
struct TupleSet {
  /// Constituent base tables, defining component order within each tuple.
  std::vector<std::string> tables;
  /// Interned catalog ids of `tables`, kept parallel by the executor so join
  /// loops resolve components with integer compares, never strings.
  std::vector<int> table_ids;
  /// Row ids, row-major; size is a multiple of arity().
  std::vector<uint32_t> data;

  size_t arity() const { return tables.size(); }
  size_t size() const { return tables.empty() ? 0 : data.size() / arity(); }

  /// Component index of `table` or -1. String-comparing fallback for
  /// diagnostics and tests; operators resolve via ComponentOfId.
  int ComponentOf(const std::string& table) const {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == table) return static_cast<int>(i);
    }
    return -1;
  }

  /// Component index of the interned table id `table_id`, or -1. Negative
  /// ids (unknown tables) never match.
  int ComponentOfId(int table_id) const {
    if (table_id < 0) return -1;
    for (size_t i = 0; i < table_ids.size(); ++i) {
      if (table_ids[i] == table_id) return static_cast<int>(i);
    }
    return -1;
  }

  /// Row id of `component` within tuple `t`.
  uint32_t Row(size_t t, size_t component) const {
    return data[t * arity() + component];
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_EXEC_TUPLE_SET_H_
