#include "harness/bench_env.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cardest/truecard_est.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "datagen/imdb_gen.h"
#include "datagen/stats_gen.h"
#include "metrics/metrics.h"

namespace cardbench {

BenchFlags ParseBenchFlags(int argc, char** argv) {
  // Bench tables are often tee'd into logs; line buffering keeps rows
  // visible as they are produced.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg == "--fast") {
      flags.fast = true;
    } else if (StartsWith(arg, "--scale=")) {
      flags.scale = std::stod(value_of("--scale="));
    } else if (StartsWith(arg, "--max-queries=")) {
      flags.max_queries = std::stoul(value_of("--max-queries="));
    } else if (StartsWith(arg, "--exec-timeout=")) {
      flags.exec_timeout = std::stod(value_of("--exec-timeout="));
    } else if (StartsWith(arg, "--cache-dir=")) {
      flags.cache_dir = value_of("--cache-dir=");
    } else if (StartsWith(arg, "--model-dir=")) {
      flags.model_dir = value_of("--model-dir=");
    } else if (StartsWith(arg, "--estimators=")) {
      flags.estimators = Split(value_of("--estimators="), ',');
    } else if (StartsWith(arg, "--training-queries=")) {
      flags.training_queries = std::stoul(value_of("--training-queries="));
    } else if (StartsWith(arg, "--exec-repeats=")) {
      flags.exec_repeats = std::stoul(value_of("--exec-repeats="));
    } else if (StartsWith(arg, "--threads=")) {
      size_t parsed = 0;
      try {
        parsed = std::stoul(value_of("--threads="));
      } catch (const std::exception&) {
        parsed = 0;  // falls through to the range error below
      }
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--threads must be in [1, 1024], got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.threads = parsed;
    } else if (StartsWith(arg, "--queue-depth=")) {
      size_t parsed = 0;
      try {
        parsed = std::stoul(value_of("--queue-depth="));
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed < 1) {
        std::fprintf(stderr, "--queue-depth must be >= 1, got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.queue_depth = parsed;
    } else if (StartsWith(arg, "--exec-threads=")) {
      size_t parsed = 0;
      try {
        parsed = std::stoul(value_of("--exec-threads="));
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed < 1 || parsed > 1024) {
        std::fprintf(stderr, "--exec-threads must be in [1, 1024], got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.exec_threads = parsed;
    } else if (StartsWith(arg, "--batch-size=")) {
      size_t parsed = 0;
      try {
        parsed = std::stoul(value_of("--batch-size="));
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed < 1) {
        std::fprintf(stderr, "--batch-size must be >= 1, got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.batch_size = parsed;
    } else if (StartsWith(arg, "--arena=")) {
      const std::string v = value_of("--arena=");
      if (v == "on" || v == "1" || v == "true") {
        flags.use_arena = true;
      } else if (v == "off" || v == "0" || v == "false") {
        flags.use_arena = false;
      } else {
        std::fprintf(stderr, "--arena must be on/off, got %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (StartsWith(arg, "--join-impl=")) {
      const std::string v = value_of("--join-impl=");
      if (v == "radix") {
        flags.join_impl = JoinImpl::kRadix;
      } else if (v == "legacy") {
        flags.join_impl = JoinImpl::kLegacy;
      } else {
        std::fprintf(stderr, "--join-impl must be radix/legacy, got %s\n",
                     arg.c_str());
        std::exit(2);
      }
    } else if (StartsWith(arg, "--radix-bits=")) {
      size_t parsed = 0;
      bool ok = true;
      try {
        parsed = std::stoul(value_of("--radix-bits="));
      } catch (const std::exception&) {
        ok = false;
      }
      if (!ok || parsed > 12) {
        std::fprintf(stderr, "--radix-bits must be in [0, 12], got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.radix_bits = parsed;
    } else if (StartsWith(arg, "--prefetch-distance=")) {
      size_t parsed = 0;
      bool ok = true;
      try {
        parsed = std::stoul(value_of("--prefetch-distance="));
      } catch (const std::exception&) {
        ok = false;
      }
      if (!ok || parsed > 64) {
        std::fprintf(stderr,
                     "--prefetch-distance must be in [0, 64], got %s\n",
                     arg.c_str());
        std::exit(2);
      }
      flags.prefetch_distance = parsed;
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = std::stoull(value_of("--seed="));
    } else if (StartsWith(arg, "--verbose=")) {
      LogLevel() = std::stoi(value_of("--verbose="));
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nflags: --fast --scale=F --max-queries=N "
                   "--exec-timeout=S --exec-repeats=N --cache-dir=D "
                   "--model-dir=D --estimators=a,b --training-queries=N "
                   "--threads=N --queue-depth=N --exec-threads=N "
                   "--batch-size=N --arena=on|off --join-impl=radix|legacy "
                   "--radix-bits=N --prefetch-distance=N --seed=N "
                   "--verbose=L\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (flags.fast) {
    if (flags.scale == 1.0) flags.scale = 0.1;
    if (flags.max_queries == 0) flags.max_queries = 25;
    flags.training_queries = std::min<size_t>(flags.training_queries, 400);
  }
  return flags;
}

Result<std::unique_ptr<BenchEnv>> BenchEnv::Create(BenchDataset dataset,
                                                   const BenchFlags& flags) {
  std::unique_ptr<BenchEnv> env(new BenchEnv());
  CARDBENCH_RETURN_IF_ERROR(env->Prepare(dataset, flags));
  return env;
}

BenchEnv::~BenchEnv() {
  if (truecard_ != nullptr && !cache_path_.empty()) {
    (void)truecard_->SaveCache(cache_path_);
  }
}

Status BenchEnv::Prepare(BenchDataset dataset, const BenchFlags& flags) {
  flags_ = flags;
  if (dataset == BenchDataset::kStats) {
    dataset_name_ = "STATS";
    StatsGenConfig config;
    config.scale = flags.scale;
    config.seed = flags.seed;
    db_ = GenerateStatsDatabase(config);
  } else {
    dataset_name_ = "IMDB";
    ImdbGenConfig config;
    config.scale = flags.scale;
    config.seed = flags.seed + 1;
    db_ = GenerateImdbDatabase(config);
  }
  if (!flags.model_dir.empty()) {
    model_store_ = std::make_unique<ModelStore>(flags.model_dir);
  }
  truecard_ = std::make_unique<TrueCardService>(
      *db_, TrueCardService::DefaultLimits(), flags.exec_options());
  optimizer_ = std::make_unique<Optimizer>(*db_);

  // Pre-build every key-column index so no estimator's first execution
  // pays lazy index construction inside its timed run.
  for (const auto& name : db_->table_names()) {
    const Table& table = db_->TableOrDie(name);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (table.column(c).kind() == ColumnKind::kKey) {
        (void)table.GetIndex(c);
      }
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(flags.cache_dir, ec);
  // The version component guards against silently reusing cardinalities
  // cached by an older data generator — bump when datagen output changes.
  constexpr int kDataGenVersion = 2;
  cache_path_ = flags.cache_dir + "/" + ToLower(dataset_name_) + "_s" +
                StrFormat("%g", flags.scale) + "_seed" +
                std::to_string(flags.seed) + "_v" +
                std::to_string(kDataGenVersion) + ".tsv";
  if (std::filesystem::exists(cache_path_)) {
    CARDBENCH_RETURN_IF_ERROR(truecard_->LoadCache(cache_path_));
    CARDBENCH_LOG("loaded %zu cached true cardinalities from %s",
                  truecard_->cache_size(), cache_path_.c_str());
  }

  // Workload generation (STATS-CEB or JOB-LIGHT shape).
  WorkloadOptions options = dataset == BenchDataset::kStats
                                ? WorkloadOptions::StatsCeb()
                                : WorkloadOptions::JobLight();
  options.seed = flags.seed;
  // Scale the acceptable cardinality ceiling with the data scale so small
  // smoke runs stay fast.
  options.max_true_card *= std::max(flags.scale, 0.01);
  if (flags.fast) {
    options.num_queries = std::min<size_t>(options.num_queries, 30);
    options.num_templates = std::min<size_t>(options.num_templates, 15);
  }
  const std::string workload_name =
      dataset == BenchDataset::kStats ? "STATS-CEB" : "JOB-LIGHT";
  CARDBENCH_ASSIGN_OR_RETURN(
      workload_, GenerateWorkload(*db_, *truecard_, workload_name, options));
  if (flags.max_queries > 0 && workload_.queries.size() > flags.max_queries) {
    workload_.queries.resize(flags.max_queries);
  }

  // Per-query contexts: all sub-plan true cards + the true-plan cost.
  TrueCardEstimator oracle(*truecard_);
  contexts_.reserve(workload_.queries.size());
  for (const auto& query : workload_.queries) {
    QueryContext ctx;
    ctx.query = &query;
    ctx.graph = std::make_unique<QueryGraph>(query, *db_);
    ctx.num_tables = query.tables.size();
    CARDBENCH_ASSIGN_OR_RETURN(ctx.true_cards,
                               truecard_->AllSubplanCards(*ctx.graph));
    CARDBENCH_ASSIGN_OR_RETURN(PlanResult true_plan,
                               optimizer_->Plan(*ctx.graph, oracle));
    ctx.true_plan_cost =
        optimizer_->RecostWithCards(*true_plan.plan, ctx.true_cards);
    contexts_.push_back(std::move(ctx));
  }
  CARDBENCH_RETURN_IF_ERROR(truecard_->SaveCache(cache_path_));
  CARDBENCH_LOG("%s env ready: %zu queries, %zu cached cardinalities",
                dataset_name_.c_str(), workload_.queries.size(),
                truecard_->cache_size());
  return Status::OK();
}

const std::vector<TrainingQuery>& BenchEnv::training() {
  if (!training_ready_) {
    // A tighter-limited service keeps pathological training candidates from
    // stalling generation; its results still land in the shared cache file.
    ExecLimits limits;
    limits.timeout_seconds = 10.0;
    limits.max_intermediate_tuples = 20000000;
    TrueCardService service(*db_, limits, flags_.exec_options());
    (void)service.LoadCache(cache_path_);
    auto result = GenerateTrainingQueries(*db_, service,
                                          flags_.training_queries,
                                          flags_.seed + 7);
    CARDBENCH_CHECK(result.ok(), "training workload generation failed: %s",
                    result.status().ToString().c_str());
    training_ = std::move(*result);
    (void)service.SaveCache(cache_path_);
    training_ready_ = true;
    CARDBENCH_LOG("generated %zu training queries", training_.size());
  }
  return training_;
}

Result<std::unique_ptr<CardinalityEstimator>> BenchEnv::MakeNamedEstimator(
    const std::string& name, ModelStoreStats* stats) {
  EstimatorConfig config;
  config.fast = flags_.fast;
  const std::vector<TrainingQuery>* training_ptr =
      EstimatorNeedsTraining(name) ? &training() : nullptr;
  return MakeEstimator(name, *db_, *truecard_, training_ptr, config,
                       model_store_.get(), stats);
}

double BenchEnv::RunResult::TotalExecSeconds() const {
  double total = 0;
  for (const auto& q : queries) total += q.exec_seconds;
  return total;
}

double BenchEnv::RunResult::TotalPlanSeconds() const {
  double total = 0;
  for (const auto& q : queries) total += q.plan_seconds;
  return total;
}

double BenchEnv::RunResult::TotalInferenceSeconds() const {
  double total = 0;
  for (const auto& q : queries) total += q.inference_seconds;
  return total;
}

std::vector<double> BenchEnv::RunResult::AllQErrors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    out.insert(out.end(), q.subplan_qerrors.begin(), q.subplan_qerrors.end());
  }
  return out;
}

std::vector<double> BenchEnv::RunResult::AllPErrors() const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(q.p_error);
  return out;
}

BenchEnv::RunResult BenchEnv::RunEstimator(const CardinalityEstimator& estimator) {
  RunResult result;
  result.estimator = estimator.name();

  ExecLimits limits;
  limits.timeout_seconds = flags_.exec_timeout;
  Executor executor(*db_, limits, flags_.exec_options());

  // One slot per query, written by index: the parallel fan-out produces the
  // same vector, in the same order, as the serial loop.
  result.queries.resize(contexts_.size());

  auto run_one = [&](size_t i) {
    const QueryContext& ctx = contexts_[i];
    const Query& query = *ctx.query;
    QueryRun run;
    run.query_name = query.name;
    run.num_tables = ctx.num_tables;
    run.true_card = ctx.true_cards.at(query.FullMask());

    auto plan_result = optimizer_->Plan(*ctx.graph, estimator);
    CARDBENCH_CHECK(plan_result.ok(), "planning failed for %s: %s",
                    query.name.c_str(),
                    plan_result.status().ToString().c_str());
    run.plan_seconds = plan_result->planning_seconds;
    run.inference_seconds = plan_result->estimation_seconds;
    run.num_estimates = plan_result->num_estimates;

    // P-Error: re-cost the chosen plan under true cardinalities.
    const double plan_cost_true =
        optimizer_->RecostWithCards(*plan_result->plan, ctx.true_cards);
    run.p_error =
        ctx.true_plan_cost > 0 ? plan_cost_true / ctx.true_plan_cost : 1.0;

    // Sub-plan Q-Errors.
    for (const auto& [mask, est_card] : plan_result->injected_cards) {
      auto it = ctx.true_cards.find(mask);
      if (it != ctx.true_cards.end()) {
        run.subplan_qerrors.push_back(QError(est_card, it->second));
      }
    }

    // Execute the chosen plan for the end-to-end time; repeat and take the
    // minimum to suppress scheduler noise on sub-second runs.
    const size_t repeats = std::max<size_t>(1, flags_.exec_repeats);
    double best_seconds = -1.0;
    bool timed_out = false;
    for (size_t r = 0; r < repeats; ++r) {
      auto exec = executor.ExecuteCount(*plan_result->plan);
      CARDBENCH_CHECK(exec.ok(), "execution failed for %s: %s",
                      query.name.c_str(), exec.status().ToString().c_str());
      if (exec->timed_out) {
        timed_out = true;
        best_seconds = flags_.exec_timeout;  // reported at the cap
        break;
      }
      CARDBENCH_CHECK(
          static_cast<double>(exec->count) == run.true_card,
          "plan for %s returned %llu, expected %.0f — executor bug",
          query.name.c_str(), static_cast<unsigned long long>(exec->count),
          run.true_card);
      if (best_seconds < 0 || exec->elapsed_seconds < best_seconds) {
        best_seconds = exec->elapsed_seconds;
      }
    }
    run.exec_seconds = best_seconds;
    run.timed_out = timed_out;
    result.queries[i] = std::move(run);
  };

  if (flags_.threads <= 1) {
    for (size_t i = 0; i < contexts_.size(); ++i) run_one(i);
  } else {
    // Fan the per-query work over a pool. Safe because the estimator,
    // optimizer, executor and true-card structures are shared read-only
    // behind the EstimateCard thread-safety contract and internal locks;
    // per-query wall-clock timings become noisier under contention, which
    // is the tradeoff the flag opts into (aggregate checks stay exact).
    ThreadPool pool(flags_.threads);
    ParallelFor(pool, contexts_.size(), run_one);
  }
  for (const auto& run : result.queries) {
    if (run.timed_out) ++result.timeouts;
  }
  return result;
}

}  // namespace cardbench
