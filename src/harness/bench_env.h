#ifndef CARDBENCH_HARNESS_BENCH_ENV_H_
#define CARDBENCH_HARNESS_BENCH_ENV_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cardest/model_store.h"
#include "cardest/registry.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/true_card.h"
#include "optimizer/optimizer.h"
#include "query/query_graph.h"
#include "storage/catalog.h"
#include "workload/workload_gen.h"

namespace cardbench {

/// Command-line knobs shared by every bench binary.
struct BenchFlags {
  /// Dataset scale factor (1.0 ~ 1/10 of the real STATS).
  double scale = 1.0;
  /// Shrinks learned models and the workload for quick smoke runs.
  bool fast = false;
  /// Cap on workload queries (0 = all).
  size_t max_queries = 0;
  /// Per-query execution wall-clock cap; timed-out queries are reported at
  /// the cap (the paper prints "> 25h" for such methods).
  double exec_timeout = 30.0;
  /// Directory for persisted true-cardinality caches.
  std::string cache_dir = "bench_cache";
  /// Directory for serialized estimator artifacts (empty = train every
  /// time). A warm directory turns model construction into a load.
  std::string model_dir;
  /// Estimators to run (empty = bench-specific default list).
  std::vector<std::string> estimators;
  /// Number of training queries for query-driven methods.
  size_t training_queries = 2000;
  /// Each plan is executed this many times and the minimum wall time is
  /// reported, de-noising the sub-second executions of simulator scale.
  size_t exec_repeats = 3;
  /// Worker threads for RunEstimator's per-query fan-out and the serving
  /// benches (1 = the paper's serial loop).
  size_t threads = 1;
  /// Bound of the estimation service's request queue (serving benches and
  /// cardserve; backpressure rejects beyond it).
  size_t queue_depth = 256;
  /// Intra-query morsel parallelism of the executor (ExecOptions::
  /// num_threads); orthogonal to `threads`, which fans out across queries.
  size_t exec_threads = 1;
  /// Vectorized batch size of the executor (ExecOptions::batch_size).
  size_t batch_size = 1024;
  /// Arena-backed per-morsel scratch and join tables (ExecOptions::
  /// use_arena). Off routes the executor's gather buffers and the radix
  /// join's arrays back to the heap for A/B comparisons.
  bool use_arena = true;
  /// Hash-join implementation (ExecOptions::join_impl): the radix-
  /// partitioned table or the legacy chained map (A/B; identical results).
  JoinImpl join_impl = JoinImpl::kRadix;
  /// Radix join partition fan-out, log2 (ExecOptions::radix_bits).
  size_t radix_bits = 4;
  /// Radix join software-prefetch lookahead (ExecOptions::
  /// prefetch_distance); 0 disables prefetching.
  size_t prefetch_distance = 8;
  uint64_t seed = 2021;

  ExecOptions exec_options() const {
    ExecOptions options;
    options.batch_size = batch_size;
    options.num_threads = exec_threads;
    options.use_arena = use_arena;
    options.join_impl = join_impl;
    options.radix_bits = radix_bits;
    options.prefetch_distance = prefetch_distance;
    return options;
  }
};

/// Parses --scale=, --fast, --max-queries=, --exec-timeout=, --cache-dir=,
/// --model-dir=, --estimators=a,b,c, --training-queries=, --threads=,
/// --queue-depth=, --exec-threads=, --batch-size=, --arena=on|off,
/// --join-impl=radix|legacy, --radix-bits=, --prefetch-distance=, --seed=,
/// --verbose=.
/// Unknown flags and invalid values abort with a usage message.
BenchFlags ParseBenchFlags(int argc, char** argv);

enum class BenchDataset { kStats, kImdb };

/// Everything a bench needs for one dataset: the database, its workload,
/// memoized exact sub-plan cardinalities, a PostgreSQL-style optimizer and
/// the estimator factory. Construction prepares (and disk-caches) the true
/// cardinalities of every sub-plan of every workload query — the paper's
/// precomputation that makes P-Error "computable instantaneously" (§7.2).
class BenchEnv {
 public:
  static Result<std::unique_ptr<BenchEnv>> Create(BenchDataset dataset,
                                                  const BenchFlags& flags);
  ~BenchEnv();

  const std::string& dataset_name() const { return dataset_name_; }
  Database& db() { return *db_; }
  TrueCardService& truecard() { return *truecard_; }
  const Optimizer& optimizer() const { return *optimizer_; }
  const Workload& workload() const { return workload_; }

  /// Training workload for query-driven estimators (generated on first use,
  /// true counts from a tighter-limited service).
  const std::vector<TrainingQuery>& training();

  /// Per-workload-query precomputed context.
  struct QueryContext {
    const Query* query = nullptr;
    /// The query's compiled IR, built once here and shared by every
    /// planning, estimation and recosting pass over the workload.
    std::unique_ptr<QueryGraph> graph;
    size_t num_tables = 0;
    /// Exact cardinality of every connected sub-plan, bitmask-keyed.
    std::unordered_map<uint64_t, double> true_cards;
    /// PPC(P(C^T), C^T): cost of the true-cardinality plan under true
    /// cardinalities — the P-Error denominator.
    double true_plan_cost = 0.0;
  };
  const std::vector<QueryContext>& query_contexts() const { return contexts_; }

  /// Builds (and trains) an estimator by registry name. When the env has a
  /// model store (--model-dir), construction goes through it: artifacts are
  /// loaded when present and persisted after training. `stats` (optional)
  /// reports whether the model was trained or loaded, and how long it took.
  Result<std::unique_ptr<CardinalityEstimator>> MakeNamedEstimator(
      const std::string& name, ModelStoreStats* stats = nullptr);

  /// Non-null iff flags.model_dir was set.
  ModelStore* model_store() { return model_store_.get(); }

  /// Outcome of one query under one estimator.
  struct QueryRun {
    std::string query_name;
    size_t num_tables = 0;
    double true_card = 0.0;
    double exec_seconds = 0.0;
    double plan_seconds = 0.0;       // join enumeration + inference
    double inference_seconds = 0.0;  // inference portion
    size_t num_estimates = 0;
    bool timed_out = false;
    double p_error = 1.0;
    /// Q-Error of every estimated sub-plan.
    std::vector<double> subplan_qerrors;
  };

  /// Aggregated outcome over the workload.
  struct RunResult {
    std::string estimator;
    std::vector<QueryRun> queries;
    size_t timeouts = 0;

    double TotalExecSeconds() const;
    double TotalPlanSeconds() const;
    double TotalInferenceSeconds() const;
    double EndToEndSeconds() const {
      return TotalExecSeconds() + TotalPlanSeconds();
    }
    std::vector<double> AllQErrors() const;
    std::vector<double> AllPErrors() const;
  };

  /// Plans, executes and scores every workload query with `estimator`.
  /// Execution correctness is asserted: a finished plan must return the
  /// exact COUNT(*) regardless of the injected cardinalities.
  /// With flags.threads > 1 the queries fan out over a thread pool sharing
  /// `estimator` (which the thread-safety contract of
  /// CardinalityEstimator::EstimateCard makes safe); results are identical
  /// to the serial run — same queries, same order, same estimates — only
  /// wall-clock differs.
  RunResult RunEstimator(const CardinalityEstimator& estimator);

  const BenchFlags& flags() const { return flags_; }

 private:
  BenchEnv() = default;
  Status Prepare(BenchDataset dataset, const BenchFlags& flags);

  BenchFlags flags_;
  std::string dataset_name_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ModelStore> model_store_;
  std::unique_ptr<TrueCardService> truecard_;
  std::unique_ptr<Optimizer> optimizer_;
  Workload workload_;
  std::vector<QueryContext> contexts_;
  std::vector<TrainingQuery> training_;
  bool training_ready_ = false;
  std::string cache_path_;
};

}  // namespace cardbench

#endif  // CARDBENCH_HARNESS_BENCH_ENV_H_
