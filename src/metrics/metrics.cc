#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

namespace cardbench {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

Percentiles ComputePercentiles(std::vector<double> values) {
  Percentiles out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  auto at = [&](double q) {
    const size_t idx = std::min(
        values.size() - 1,
        static_cast<size_t>(q * static_cast<double>(values.size())));
    return values[idx];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  out.max = values.back();
  return out;
}

double PearsonCorrelationOf(const std::vector<double>& a,
                            const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (size_t i = 0; i < n; ++i) {
    sa += a[i];
    sb += b[i];
    saa += a[i] * a[i];
    sbb += b[i] * b[i];
    sab += a[i] * b[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = sab / dn - (sa / dn) * (sb / dn);
  const double va = saa / dn - (sa / dn) * (sa / dn);
  const double vb = sbb / dn - (sb / dn) * (sb / dn);
  if (va <= 1e-300 || vb <= 1e-300) return 0.0;
  return cov / std::sqrt(va * vb);
}

double SpearmanCorrelationOf(const std::vector<double>& a,
                             const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 3) return 0.0;
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
      const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2;
      for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
      i = j + 1;
    }
    return rank;
  };
  return PearsonCorrelationOf(ranks(a), ranks(b));
}

}  // namespace cardbench
