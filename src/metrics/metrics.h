#ifndef CARDBENCH_METRICS_METRICS_H_
#define CARDBENCH_METRICS_METRICS_H_

#include <cstddef>
#include <vector>

namespace cardbench {

/// Q-Error (Moerkotte et al., §7.1): the symmetric multiplicative error
/// max(est/true, true/est), with both sides clamped to >= 1 row.
double QError(double estimate, double truth);

/// Distribution summary used by the paper's Table 7 (50/90/99 percentiles)
/// and the serving layer's latency reports (which add the tail-latency
/// convention P95).
struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Percentiles by nearest-rank on a copy of `values`; zeros for empty input.
Percentiles ComputePercentiles(std::vector<double> values);

/// Pearson correlation coefficient (0 for degenerate inputs).
double PearsonCorrelationOf(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Spearman rank correlation (Pearson on average ranks; 0 for degenerate
/// inputs). The paper's O14 reports correlation between error metrics and
/// query execution time; rank correlation is the robust choice for the
/// heavy-tailed runtimes involved.
double SpearmanCorrelationOf(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace cardbench

#endif  // CARDBENCH_METRICS_METRICS_H_
