#include "metrics/perror.h"

#include <algorithm>

#include "cardest/truecard_est.h"
#include "common/logging.h"

namespace cardbench {

namespace {

/// A throwaway estimator serving the precomputed true cardinalities by
/// bitmask (avoids needing a TrueCardService here).
class MapEstimator : public CardinalityEstimator {
 public:
  MapEstimator(const Query& query,
               const std::unordered_map<uint64_t, double>& cards)
      : query_(query), cards_(cards) {}

  std::string name() const override { return "map"; }

  double EstimateCard(const Query& subquery) const override {
    // Recover the bitmask from the sub-query's table set.
    uint64_t mask = 0;
    for (const auto& table : subquery.tables) {
      const int idx = query_.TableIndex(table);
      CARDBENCH_CHECK(idx >= 0, "sub-query table not in query");
      mask |= uint64_t{1} << idx;
    }
    auto it = cards_.find(mask);
    return it != cards_.end() ? it->second : 1.0;
  }

 private:
  const Query& query_;
  const std::unordered_map<uint64_t, double>& cards_;
};

}  // namespace

PErrorCalculator::PErrorCalculator(
    const Optimizer& optimizer, const Query& query,
    std::unordered_map<uint64_t, double> true_cards)
    : optimizer_(optimizer), query_(query), true_cards_(std::move(true_cards)) {
  MapEstimator oracle(query_, true_cards_);
  auto plan = optimizer_.Plan(query_, oracle);
  CARDBENCH_CHECK(plan.ok(), "true-card planning failed: %s",
                  plan.status().ToString().c_str());
  true_plan_cost_ =
      optimizer_.RecostWithCards(*plan->plan, query_, true_cards_);
}

Result<double> PErrorCalculator::Evaluate(
    const CardinalityEstimator& estimator) const {
  CARDBENCH_ASSIGN_OR_RETURN(PlanResult plan,
                             optimizer_.Plan(query_, estimator));
  return EvaluatePlan(*plan.plan);
}

double PErrorCalculator::EvaluatePlan(const PlanNode& plan) const {
  // Not clamped at 1: the paper notes PPC(P(C^T), C^T) need not be the true
  // minimum when the cost model is imperfect; relative comparison remains
  // valid either way (§7.2).
  const double cost = optimizer_.RecostWithCards(plan, query_, true_cards_);
  return true_plan_cost_ > 0 ? cost / true_plan_cost_ : 1.0;
}

}  // namespace cardbench
