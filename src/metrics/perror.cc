#include "metrics/perror.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace cardbench {

namespace {

/// Serves the precomputed true cardinalities by sub-plan bitmask. Purely
/// graph-dispatched: the optimizer's graph path never materializes
/// sub-queries for it, and an unknown mask dies instead of degrading into
/// a silent estimate.
class TrueCardMapEstimator : public CardinalityEstimator {
 public:
  TrueCardMapEstimator(const QueryGraph& graph,
                       const std::unordered_map<uint64_t, double>& cards)
      : graph_(graph), cards_(cards) {}

  std::string name() const override { return "truecard-map"; }

  double EstimateCard(const QueryGraph& graph, uint64_t mask) const override {
    auto it = cards_.find(mask);
    CARDBENCH_CHECK(it != cards_.end(),
                    "no true cardinality for sub-plan mask %llu",
                    static_cast<unsigned long long>(mask));
    return it->second;
  }

  double EstimateCard(const Query& subquery) const override {
    // Legacy-dispatch adapter: recover the bitmask from the table set.
    uint64_t mask = 0;
    for (const auto& table : subquery.tables) {
      const int idx = graph_.query().TableIndex(table);
      CARDBENCH_CHECK(idx >= 0, "sub-query table not in query");
      mask |= uint64_t{1} << idx;
    }
    return EstimateCard(graph_, mask);
  }

 private:
  const QueryGraph& graph_;
  const std::unordered_map<uint64_t, double>& cards_;
};

}  // namespace

PErrorCalculator::PErrorCalculator(
    const Optimizer& optimizer, const Query& query,
    std::unordered_map<uint64_t, double> true_cards)
    : optimizer_(optimizer),
      owned_graph_(std::make_unique<QueryGraph>(query, optimizer.db())),
      graph_(*owned_graph_),
      true_cards_(std::move(true_cards)) {
  ComputeTruePlanCost();
}

PErrorCalculator::PErrorCalculator(
    const Optimizer& optimizer, const QueryGraph& graph,
    std::unordered_map<uint64_t, double> true_cards)
    : optimizer_(optimizer), graph_(graph), true_cards_(std::move(true_cards)) {
  ComputeTruePlanCost();
}

void PErrorCalculator::ComputeTruePlanCost() {
  TrueCardMapEstimator oracle(graph_, true_cards_);
  auto plan = optimizer_.Plan(graph_, oracle);
  CARDBENCH_CHECK(plan.ok(), "true-card planning failed: %s",
                  plan.status().ToString().c_str());
  true_plan_cost_ = optimizer_.RecostWithCards(*plan->plan, true_cards_);
}

Result<double> PErrorCalculator::Evaluate(
    const CardinalityEstimator& estimator) const {
  CARDBENCH_ASSIGN_OR_RETURN(PlanResult plan,
                             optimizer_.Plan(graph_, estimator));
  return EvaluatePlan(*plan.plan);
}

double PErrorCalculator::EvaluatePlan(const PlanNode& plan) const {
  // Not clamped at 1: the paper notes PPC(P(C^T), C^T) need not be the true
  // minimum when the cost model is imperfect; relative comparison remains
  // valid either way (§7.2).
  const double cost = optimizer_.RecostWithCards(plan, true_cards_);
  return true_plan_cost_ > 0 ? cost / true_plan_cost_ : 1.0;
}

}  // namespace cardbench
