#ifndef CARDBENCH_METRICS_PERROR_H_
#define CARDBENCH_METRICS_PERROR_H_

#include <memory>
#include <unordered_map>

#include "cardest/estimator.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "query/query.h"
#include "query/query_graph.h"

namespace cardbench {

/// The paper's P-Error metric (§7.2):
///
///   P-Error = PPC(P(C^E), C^T) / PPC(P(C^T), C^T)
///
/// where P(C) is the plan the optimizer picks given cardinalities C, and
/// PPC costs a plan under a fixed set of cardinalities. The optimizer's
/// cost model is the PPC function; true sub-plan cardinalities C^T are
/// precomputed once per query (the paper stores them and evaluates P-Error
/// "instantaneously" via pg_hint_plan).
///
/// True cardinalities are served directly by sub-plan bitmask against the
/// query's compiled QueryGraph — a missing mask is a hard error (every
/// connected sub-plan must have been executed), never a silent fallback.
class PErrorCalculator {
 public:
  /// `true_cards`: exact cardinality of every connected sub-plan of
  /// `query`, keyed by table-subset bitmask. Compiles the query's graph
  /// internally.
  PErrorCalculator(const Optimizer& optimizer, const Query& query,
                   std::unordered_map<uint64_t, double> true_cards);

  /// Same, but reuses an already-compiled graph (the harness compiles one
  /// per workload query; `graph` must outlive the calculator).
  PErrorCalculator(const Optimizer& optimizer, const QueryGraph& graph,
                   std::unordered_map<uint64_t, double> true_cards);

  /// Denominator PPC(P(C^T), C^T), computed once at construction.
  double true_plan_cost() const { return true_plan_cost_; }

  /// P-Error of the plan `estimator` induces for the query.
  Result<double> Evaluate(const CardinalityEstimator& estimator) const;

  /// P-Error of an already-built plan (avoids re-planning when the caller
  /// holds a PlanResult).
  double EvaluatePlan(const PlanNode& plan) const;

 private:
  void ComputeTruePlanCost();

  const Optimizer& optimizer_;
  std::unique_ptr<QueryGraph> owned_graph_;  // only the Query ctor sets this
  const QueryGraph& graph_;
  std::unordered_map<uint64_t, double> true_cards_;
  double true_plan_cost_ = 0.0;
};

}  // namespace cardbench

#endif  // CARDBENCH_METRICS_PERROR_H_
