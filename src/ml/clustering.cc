#include "ml/clustering.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cardbench {

std::vector<int> TwoMeans(const std::vector<std::vector<double>>& rows,
                          Rng& rng, size_t max_iterations) {
  const size_t n = rows.size();
  std::vector<int> labels(n, 0);
  if (n < 2) return labels;
  const size_t d = rows[0].size();

  // Z-normalize features so no single wide-range column dominates.
  std::vector<double> mean(d, 0.0), stddev(d, 0.0);
  for (const auto& row : rows) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
  for (const auto& row : rows) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - mean[j];
      stddev[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddev[j] = std::sqrt(stddev[j] / static_cast<double>(n));
    if (stddev[j] < 1e-12) stddev[j] = 1.0;
  }
  auto norm = [&](size_t i, size_t j) { return (rows[i][j] - mean[j]) / stddev[j]; };

  // k-means++-lite seeding: first center random, second the farthest row.
  size_t c0 = rng.NextUint64(n);
  size_t c1 = c0;
  double best_dist = -1.0;
  for (size_t i = 0; i < n; ++i) {
    double dist = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = norm(i, j) - norm(c0, j);
      dist += diff * diff;
    }
    if (dist > best_dist) {
      best_dist = dist;
      c1 = i;
    }
  }
  std::vector<std::vector<double>> centers(2, std::vector<double>(d));
  for (size_t j = 0; j < d; ++j) {
    centers[0][j] = norm(c0, j);
    centers[1][j] = norm(c1, j);
  }

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double v = norm(i, j);
        d0 += (v - centers[0][j]) * (v - centers[0][j]);
        d1 += (v - centers[1][j]) * (v - centers[1][j]);
      }
      const int label = d1 < d0 ? 1 : 0;
      if (label != labels[i]) {
        labels[i] = label;
        changed = true;
      }
    }
    std::vector<std::vector<double>> sums(2, std::vector<double>(d, 0.0));
    std::vector<size_t> counts(2, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[static_cast<size_t>(labels[i])];
      for (size_t j = 0; j < d; ++j) {
        sums[static_cast<size_t>(labels[i])][j] += norm(i, j);
      }
    }
    if (counts[0] == 0 || counts[1] == 0) break;
    for (int c = 0; c < 2; ++c) {
      for (size_t j = 0; j < d; ++j) {
        centers[static_cast<size_t>(c)][j] =
            sums[static_cast<size_t>(c)][j] /
            static_cast<double>(counts[static_cast<size_t>(c)]);
      }
    }
    if (!changed) break;
  }

  // Guarantee a non-trivial split: fall back to a median split on the first
  // feature (then to a half split) when k-means collapses.
  size_t ones = 0;
  for (int label : labels) ones += static_cast<size_t>(label);
  if (ones == 0 || ones == n) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return rows[a][0] < rows[b][0];
    });
    for (size_t i = 0; i < n; ++i) labels[order[i]] = i < n / 2 ? 0 : 1;
  }
  return labels;
}

double DependenceScore(const std::vector<double>& x,
                       const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 3) return 0.0;
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> rank(n);
    size_t i = 0;
    while (i < n) {
      // Average ranks over ties.
      size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
      const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
      for (size_t k = i; k <= j; ++k) rank[order[k]] = avg;
      i = j + 1;
    }
    return rank;
  };
  const std::vector<double> rx = ranks(x);
  const std::vector<double> ry = ranks(y);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += rx[i];
    sy += ry[i];
    sxx += rx[i] * rx[i];
    syy += ry[i] * ry[i];
    sxy += rx[i] * ry[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = sxy / dn - (sx / dn) * (sy / dn);
  const double vx = sxx / dn - (sx / dn) * (sx / dn);
  const double vy = syy / dn - (sy / dn) * (sy / dn);
  if (vx <= 1e-12 || vy <= 1e-12) return 0.0;
  return std::min(1.0, std::abs(cov / std::sqrt(vx * vy)));
}

}  // namespace cardbench
