#ifndef CARDBENCH_ML_CLUSTERING_H_
#define CARDBENCH_ML_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace cardbench {

/// Two-way k-means row clustering over z-normalized features, used by the
/// SPN/FSPN learners (DeepDB, FLAT) to create sum-node children. Returns a
/// 0/1 cluster label per row; degenerate inputs fall back to a median split
/// on the first feature so the caller always receives two non-empty halves
/// when n >= 2.
std::vector<int> TwoMeans(const std::vector<std::vector<double>>& rows,
                          Rng& rng, size_t max_iterations = 20);

/// Dependence score in [0, 1] between two feature vectors: |Spearman rank
/// correlation|. This is the role the RDC statistic plays in DeepDB/FLAT
/// (thresholds 0.3 "independent" and 0.7 "highly correlated"); rank
/// correlation is the same monotone-dependence family without the random
/// Fourier features.
double DependenceScore(const std::vector<double>& x,
                       const std::vector<double>& y);

}  // namespace cardbench

#endif  // CARDBENCH_ML_CLUSTERING_H_
