#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/serde.h"

namespace cardbench {

int GbdtRegressor::BuildNode(Tree& tree,
                             const std::vector<std::vector<double>>& features,
                             const std::vector<double>& residuals,
                             std::vector<size_t>& items, size_t begin,
                             size_t end, size_t depth) {
  const size_t n = end - begin;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += residuals[items[i]];

  const int node_id = static_cast<int>(tree.size());
  tree.push_back(Node{});
  // L2-regularized leaf value (XGBoost: G / (H + lambda) with H = n for
  // squared error).
  tree[static_cast<size_t>(node_id)].value =
      sum / (static_cast<double>(n) + options_.l2_lambda);

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_per_leaf) {
    return node_id;
  }

  // Exact greedy split search: maximize variance reduction (equivalently
  // the regularized gain).
  const size_t num_features = features[items[begin]].size();
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, size_t>> sorted(n);
  std::vector<std::pair<double, size_t>> best_sorted;

  for (size_t f = 0; f < num_features; ++f) {
    for (size_t i = 0; i < n; ++i) {
      const size_t item = items[begin + i];
      sorted[i] = {features[item][f], item};
    }
    std::sort(sorted.begin(), sorted.end());
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += residuals[sorted[i].second];
      if (sorted[i].first == sorted[i + 1].first) continue;  // tied values
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < options_.min_samples_per_leaf ||
          right_n < options_.min_samples_per_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double gain =
          left_sum * left_sum / (static_cast<double>(left_n) + options_.l2_lambda) +
          right_sum * right_sum /
              (static_cast<double>(right_n) + options_.l2_lambda) -
          sum * sum / (static_cast<double>(n) + options_.l2_lambda);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (sorted[i].first + sorted[i + 1].first) / 2.0;
        best_sorted = sorted;
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition items by the winning split (stable via the sorted order).
  size_t mid = begin;
  {
    std::vector<size_t> left_items, right_items;
    for (const auto& [value, item] : best_sorted) {
      (value <= best_threshold ? left_items : right_items).push_back(item);
    }
    std::copy(left_items.begin(), left_items.end(),
              items.begin() + static_cast<long>(begin));
    std::copy(right_items.begin(), right_items.end(),
              items.begin() + static_cast<long>(begin + left_items.size()));
    mid = begin + left_items.size();
  }

  tree[static_cast<size_t>(node_id)].feature = best_feature;
  tree[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = BuildNode(tree, features, residuals, items, begin, mid,
                             depth + 1);
  const int right = BuildNode(tree, features, residuals, items, mid, end,
                              depth + 1);
  tree[static_cast<size_t>(node_id)].left = left;
  tree[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

void GbdtRegressor::Fit(const std::vector<std::vector<double>>& features,
                        const std::vector<double>& targets) {
  CARDBENCH_CHECK(features.size() == targets.size() && !features.empty(),
                  "bad GBDT training data");
  trees_.clear();
  double sum = 0.0;
  for (double t : targets) sum += t;
  base_prediction_ = sum / static_cast<double>(targets.size());

  std::vector<double> predictions(targets.size(), base_prediction_);
  BoostRounds(features, targets, predictions, options_.num_trees);
}

void GbdtRegressor::BoostMore(const std::vector<std::vector<double>>& features,
                              const std::vector<double>& targets,
                              size_t extra_trees) {
  CARDBENCH_CHECK(features.size() == targets.size() && !features.empty(),
                  "bad GBDT training data");
  if (trees_.empty()) {
    // Unfitted model: no ensemble to continue, so this is a plain fit with
    // `extra_trees` rounds (the base prediction must come from the data).
    double sum = 0.0;
    for (double t : targets) sum += t;
    base_prediction_ = sum / static_cast<double>(targets.size());
  }
  std::vector<double> predictions = PredictBatch(features);
  BoostRounds(features, targets, predictions, extra_trees);
}

void GbdtRegressor::BoostRounds(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& targets, std::vector<double>& predictions,
    size_t rounds) {
  std::vector<double> residuals(targets.size());
  std::vector<size_t> items(targets.size());
  for (size_t t = 0; t < rounds; ++t) {
    for (size_t i = 0; i < targets.size(); ++i) {
      residuals[i] = targets[i] - predictions[i];
      items[i] = i;
    }
    Tree tree;
    BuildNode(tree, features, residuals, items, 0, items.size(), 0);
    for (size_t i = 0; i < targets.size(); ++i) {
      // Evaluate the freshly built tree.
      int node = 0;
      while (tree[static_cast<size_t>(node)].feature >= 0) {
        const Node& nd = tree[static_cast<size_t>(node)];
        node = features[i][static_cast<size_t>(nd.feature)] <= nd.threshold
                   ? nd.left
                   : nd.right;
      }
      predictions[i] +=
          options_.learning_rate * tree[static_cast<size_t>(node)].value;
    }
    trees_.push_back(std::move(tree));
  }
}

double GbdtRegressor::Predict(const std::vector<double>& features) const {
  double out = base_prediction_;
  for (const auto& tree : trees_) {
    int node = 0;
    while (tree[static_cast<size_t>(node)].feature >= 0) {
      const Node& nd = tree[static_cast<size_t>(node)];
      node = features[static_cast<size_t>(nd.feature)] <= nd.threshold
                 ? nd.left
                 : nd.right;
    }
    out += options_.learning_rate * tree[static_cast<size_t>(node)].value;
  }
  return out;
}

std::vector<double> GbdtRegressor::PredictBatch(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<double> out(rows.size(), base_prediction_);
  for (const auto& tree : trees_) {
    for (size_t r = 0; r < rows.size(); ++r) {
      const std::vector<double>& features = rows[r];
      int node = 0;
      while (tree[static_cast<size_t>(node)].feature >= 0) {
        const Node& nd = tree[static_cast<size_t>(node)];
        node = features[static_cast<size_t>(nd.feature)] <= nd.threshold
                   ? nd.left
                   : nd.right;
      }
      out[r] += options_.learning_rate * tree[static_cast<size_t>(node)].value;
    }
  }
  return out;
}

size_t GbdtRegressor::ModelBytes() const {
  size_t nodes = 0;
  for (const auto& tree : trees_) nodes += tree.size();
  return nodes * sizeof(Node) + sizeof(*this);
}

void GbdtRegressor::SerializeParams(SectionWriter& out) const {
  out.PutDouble(base_prediction_);
  out.PutDouble(options_.learning_rate);
  out.PutU64(trees_.size());
  for (const Tree& tree : trees_) {
    out.PutU64(tree.size());
    for (const Node& node : tree) {
      out.PutI64(node.feature);
      out.PutDouble(node.threshold);
      out.PutDouble(node.value);
      out.PutI64(node.left);
      out.PutI64(node.right);
    }
  }
}

Status GbdtRegressor::LoadParams(SectionReader& in) {
  CARDBENCH_ASSIGN_OR_RETURN(base_prediction_, in.GetDouble());
  // Predict scales each tree by the learning rate, so the rate is part of
  // the fitted model, not just a training knob.
  CARDBENCH_ASSIGN_OR_RETURN(options_.learning_rate, in.GetDouble());
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_trees, in.GetU64());
  trees_.clear();
  trees_.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    CARDBENCH_ASSIGN_OR_RETURN(uint64_t num_nodes, in.GetU64());
    Tree tree(num_nodes);
    for (Node& node : tree) {
      CARDBENCH_ASSIGN_OR_RETURN(int64_t feature, in.GetI64());
      node.feature = static_cast<int>(feature);
      CARDBENCH_ASSIGN_OR_RETURN(node.threshold, in.GetDouble());
      CARDBENCH_ASSIGN_OR_RETURN(node.value, in.GetDouble());
      CARDBENCH_ASSIGN_OR_RETURN(int64_t left, in.GetI64());
      CARDBENCH_ASSIGN_OR_RETURN(int64_t right, in.GetI64());
      node.left = static_cast<int>(left);
      node.right = static_cast<int>(right);
      if (node.feature >= 0 &&
          (node.left < 0 || node.right < 0 ||
           static_cast<size_t>(node.left) >= num_nodes ||
           static_cast<size_t>(node.right) >= num_nodes)) {
        return Status::InvalidArgument("gbdt tree child index out of range");
      }
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

}  // namespace cardbench
