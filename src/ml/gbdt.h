#ifndef CARDBENCH_ML_GBDT_H_
#define CARDBENCH_ML_GBDT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace cardbench {

class SectionWriter;
class SectionReader;

/// Training options for gradient-boosted regression trees (the model behind
/// the LW-XGB estimator, Dutt et al. 2019).
struct GbdtOptions {
  size_t num_trees = 100;
  size_t max_depth = 6;
  size_t min_samples_per_leaf = 8;
  double learning_rate = 0.1;
  /// L2 regularization on leaf values (XGBoost's lambda).
  double l2_lambda = 1.0;
};

/// Gradient boosted regression trees with squared-error objective, built
/// from scratch: exact greedy splits over feature thresholds, depth-limited,
/// shrinkage, L2-regularized leaf values.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = GbdtOptions())
      : options_(options) {}

  /// Fits on features (n × d, row-major) and targets (n).
  void Fit(const std::vector<std::vector<double>>& features,
           const std::vector<double>& targets);

  /// Warm-start continuation: appends `extra_trees` boosting rounds fitted
  /// to the residuals of the *current* ensemble on the given data, without
  /// touching the existing trees or the base prediction. This is the
  /// incremental-refresh path of LW-XGB: a handful of rounds on a small
  /// fresh workload instead of a full retrain. On an unfitted model it
  /// degenerates to Fit with `extra_trees` rounds.
  void BoostMore(const std::vector<std::vector<double>>& features,
                 const std::vector<double>& targets, size_t extra_trees);

  /// Predicts one example.
  double Predict(const std::vector<double>& features) const;

  /// Predicts a batch of examples, walking each tree over all rows before
  /// moving to the next (the tree stays hot in cache). Accumulation order
  /// per row is identical to Predict — base prediction, then trees in
  /// order — so results are bit-identical to a scalar loop.
  std::vector<double> PredictBatch(
      const std::vector<std::vector<double>>& rows) const;

  size_t num_trees() const { return trees_.size(); }
  const GbdtOptions& options() const { return options_; }
  size_t ModelBytes() const;

  /// Appends the fitted ensemble (base prediction + every tree's nodes) to
  /// a serde section; LoadParams replaces any fitted state.
  void SerializeParams(SectionWriter& out) const;
  Status LoadParams(SectionReader& in);

 private:
  struct Node {
    int feature = -1;        // -1 for leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double value = 0.0;      // leaf prediction
    int left = -1;
    int right = -1;
  };
  using Tree = std::vector<Node>;

  /// Runs `rounds` residual-boosting iterations, appending to trees_ and
  /// advancing `predictions` in place (shared by Fit and BoostMore).
  void BoostRounds(const std::vector<std::vector<double>>& features,
                   const std::vector<double>& targets,
                   std::vector<double>& predictions, size_t rounds);

  int BuildNode(Tree& tree, const std::vector<std::vector<double>>& features,
                const std::vector<double>& residuals,
                std::vector<size_t>& items, size_t begin, size_t end,
                size_t depth);

  GbdtOptions options_;
  double base_prediction_ = 0.0;
  std::vector<Tree> trees_;
};

}  // namespace cardbench

#endif  // CARDBENCH_ML_GBDT_H_
