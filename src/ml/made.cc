#include "ml/made.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cardbench {

namespace {

/// Builds the static Mlp shape {input, hidden..., input} — logits share the
/// one-hot layout of the inputs.
std::vector<size_t> MadeDims(size_t input_dim, size_t hidden_units,
                             size_t hidden_layers) {
  std::vector<size_t> dims = {input_dim};
  for (size_t i = 0; i < hidden_layers; ++i) dims.push_back(hidden_units);
  dims.push_back(input_dim);
  return dims;
}

}  // namespace

MadeModel::MadeModel(std::vector<size_t> domains, size_t hidden_units,
                     size_t hidden_layers, Rng& rng)
    : domains_(std::move(domains)),
      net_({1, 1}, rng) /* replaced below */ {
  offsets_.resize(domains_.size());
  for (size_t i = 0; i < domains_.size(); ++i) {
    offsets_[i] = input_dim_;
    input_dim_ += domains_[i];
  }
  net_ = Mlp(MadeDims(input_dim_, hidden_units, hidden_layers), rng);

  // --- Autoregressive masks (Germain et al. 2015). ---
  const size_t d = domains_.size();
  // Input unit degrees: all one-hot units of column i carry degree i+1.
  std::vector<size_t> in_degree(input_dim_);
  for (size_t col = 0; col < d; ++col) {
    for (size_t k = 0; k < domains_[col]; ++k) {
      in_degree[offsets_[col] + k] = col + 1;
    }
  }
  // Hidden unit degrees cycle over 1..d-1 (for d == 1 all hidden units are
  // disconnected and the single column is modeled by the output bias).
  auto hidden_degree = [&](size_t unit) {
    return d <= 1 ? size_t{0} : 1 + (unit % (d - 1));
  };

  std::vector<size_t> prev_degree = in_degree;
  for (size_t layer = 0; layer < net_.num_layers(); ++layer) {
    LinearLayer& lin = net_.layer(layer);
    const bool is_output = layer + 1 == net_.num_layers();
    Matrix mask(lin.out_dim(), lin.in_dim(), 0.0);
    std::vector<size_t> out_degree(lin.out_dim());
    if (is_output) {
      // Output unit for column i has degree i+1; connects to hidden units
      // with strictly smaller degree.
      for (size_t col = 0; col < d; ++col) {
        for (size_t k = 0; k < domains_[col]; ++k) {
          out_degree[offsets_[col] + k] = col + 1;
        }
      }
      for (size_t o = 0; o < lin.out_dim(); ++o) {
        for (size_t i = 0; i < lin.in_dim(); ++i) {
          if (prev_degree[i] < out_degree[o]) mask.At(o, i) = 1.0;
        }
      }
    } else {
      for (size_t o = 0; o < lin.out_dim(); ++o) out_degree[o] = hidden_degree(o);
      for (size_t o = 0; o < lin.out_dim(); ++o) {
        for (size_t i = 0; i < lin.in_dim(); ++i) {
          if (out_degree[o] >= prev_degree[i] && out_degree[o] > 0) {
            mask.At(o, i) = 1.0;
          }
        }
      }
    }
    lin.SetMask(std::move(mask));
    prev_degree = std::move(out_degree);
  }
}

Matrix MadeModel::EncodePrefixes(
    const std::vector<std::vector<uint16_t>>& prefixes,
    size_t prefix_len) const {
  Matrix x(prefixes.size(), input_dim_);
  for (size_t r = 0; r < prefixes.size(); ++r) {
    for (size_t col = 0; col < prefix_len && col < domains_.size(); ++col) {
      x.At(r, offsets_[col] + prefixes[r][col]) = 1.0;
    }
  }
  return x;
}

Matrix MadeModel::ConditionalProbs(const Matrix& encoded, size_t col) const {
  Matrix logits = net_.Infer(encoded);
  SoftmaxRows(logits, offsets_[col], offsets_[col] + domains_[col]);
  Matrix probs(encoded.rows(), domains_[col]);
  for (size_t r = 0; r < probs.rows(); ++r) {
    for (size_t b = 0; b < domains_[col]; ++b) {
      probs.At(r, b) = logits.At(r, offsets_[col] + b);
    }
  }
  return probs;
}

double MadeModel::BatchStep(const std::vector<std::vector<uint16_t>>& rows,
                            const std::vector<size_t>& index, size_t begin,
                            size_t end, double lr, double mask_prob,
                            Rng& rng) {
  const size_t batch = end - begin;
  Matrix x(batch, input_dim_);
  for (size_t r = 0; r < batch; ++r) {
    const auto& row = rows[index[begin + r]];
    for (size_t col = 0; col < domains_.size(); ++col) {
      if (mask_prob > 0.0 && rng.NextBool(mask_prob)) continue;  // wildcard
      x.At(r, offsets_[col] + row[col]) = 1.0;
    }
  }
  Matrix logits = net_.Forward(x);
  // Per-column softmax cross-entropy: grad = softmax - onehot.
  double nll = 0.0;
  Matrix grad = logits;
  for (size_t col = 0; col < domains_.size(); ++col) {
    SoftmaxRows(grad, offsets_[col], offsets_[col] + domains_[col]);
  }
  for (size_t r = 0; r < batch; ++r) {
    const auto& row = rows[index[begin + r]];
    for (size_t col = 0; col < domains_.size(); ++col) {
      const size_t target = offsets_[col] + row[col];
      nll -= std::log(std::max(grad.At(r, target), 1e-12));
      grad.At(r, target) -= 1.0;
    }
  }
  const double inv = 1.0 / static_cast<double>(batch);
  for (double& g : grad.data()) g *= inv;
  net_.Backward(grad);
  net_.Step(lr);
  return nll / static_cast<double>(batch);
}

double MadeModel::TrainEpoch(const std::vector<std::vector<uint16_t>>& rows,
                             size_t batch_size, double lr, Rng& rng,
                             double mask_prob) {
  CARDBENCH_CHECK(!rows.empty(), "empty training set");
  const std::vector<size_t> index = rng.Permutation(rows.size());
  double total = 0.0;
  size_t batches = 0;
  for (size_t begin = 0; begin < rows.size(); begin += batch_size) {
    const size_t end = std::min(rows.size(), begin + batch_size);
    total += BatchStep(rows, index, begin, end, lr, mask_prob, rng);
    ++batches;
  }
  return total / static_cast<double>(std::max<size_t>(1, batches));
}

double MadeModel::EvalNll(const std::vector<std::vector<uint16_t>>& rows) {
  if (rows.empty()) return 0.0;
  Matrix x(rows.size(), input_dim_);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t col = 0; col < domains_.size(); ++col) {
      x.At(r, offsets_[col] + rows[r][col]) = 1.0;
    }
  }
  Matrix logits = net_.Infer(x);
  for (size_t col = 0; col < domains_.size(); ++col) {
    SoftmaxRows(logits, offsets_[col], offsets_[col] + domains_[col]);
  }
  double nll = 0.0;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t col = 0; col < domains_.size(); ++col) {
      nll -= std::log(
          std::max(logits.At(r, offsets_[col] + rows[r][col]), 1e-12));
    }
  }
  return nll / static_cast<double>(rows.size());
}

}  // namespace cardbench
