#ifndef CARDBENCH_ML_MADE_H_
#define CARDBENCH_ML_MADE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/nn.h"

namespace cardbench {

/// Masked autoregressive density estimator (Germain et al., MADE) over a
/// tuple of discretized columns: models P(x) = Π_i P(x_i | x_<i) with one
/// masked MLP, the model class behind Naru/NeuroCard and the UAE family.
/// Inputs are concatenated one-hot bin encodings; outputs are concatenated
/// per-column logit segments.
class MadeModel {
 public:
  /// `domains[i]` is the number of bins of column i (autoregressive order is
  /// the given column order).
  MadeModel(std::vector<size_t> domains, size_t hidden_units,
            size_t hidden_layers, Rng& rng);

  size_t num_columns() const { return domains_.size(); }
  size_t input_dim() const { return input_dim_; }
  const std::vector<size_t>& domains() const { return domains_; }

  /// Offset of column i's one-hot segment in the input / logit vector.
  size_t ColumnOffset(size_t col) const { return offsets_[col]; }

  /// One epoch of minibatch NLL training over binned rows; returns the mean
  /// negative log-likelihood per tuple. `mask_prob` zeroes each input
  /// column's one-hot with that probability (targets unchanged) — the
  /// wildcard-skipping training trick (Liang et al.) that lets inference
  /// leave unconstrained columns unsampled.
  double TrainEpoch(const std::vector<std::vector<uint16_t>>& rows,
                    size_t batch_size, double lr, Rng& rng,
                    double mask_prob = 0.0);

  /// Encodes binned prefixes: row r of the result one-hot-encodes
  /// `prefixes[r][0..prefix_len)`; remaining columns are zero.
  Matrix EncodePrefixes(const std::vector<std::vector<uint16_t>>& prefixes,
                        size_t prefix_len) const;

  /// P(column `col` = b | encoded prefix) for every row of `encoded`:
  /// returns (batch × domains[col]) probabilities.
  Matrix ConditionalProbs(const Matrix& encoded, size_t col) const;

  /// Mean NLL of `rows` without updating parameters (validation).
  double EvalNll(const std::vector<std::vector<uint16_t>>& rows);

  size_t ParamBytes() const { return net_.ParamBytes(); }

  /// Parameter dump/restore of the masked net. Masks are structural (fully
  /// determined by `domains` and the layer sizes), so only weights travel;
  /// construct an identically-shaped model first, then LoadParams.
  void SerializeParams(SectionWriter& out) const {
    net_.SerializeParams(out);
  }
  Status LoadParams(SectionReader& in) { return net_.LoadParams(in); }

 private:
  double BatchStep(const std::vector<std::vector<uint16_t>>& rows,
                   const std::vector<size_t>& index, size_t begin, size_t end,
                   double lr, double mask_prob, Rng& rng);

  std::vector<size_t> domains_;
  std::vector<size_t> offsets_;
  size_t input_dim_ = 0;
  Mlp net_;
};

}  // namespace cardbench

#endif  // CARDBENCH_ML_MADE_H_
