#include "ml/matrix.h"

#include "common/logging.h"
#include "common/simd.h"

namespace cardbench {

Matrix Matrix::MatMul(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.rows(), "matmul shape mismatch");
  Matrix out(rows_, other.cols());
  const simd::KernelTable& kt = simd::Active();
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      // Zero-skip: one-hot / bitmap feature rows are mostly zeros, and
      // 0 * x contributes nothing (features are finite), so skipping is
      // bit-identical and saves the whole inner row pass.
      if (av == 0.0) continue;
      kt.axpy(o, other.Row(k), av, other.cols());
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.cols(), "matmulT shape mismatch");
  Matrix out(rows_, other.rows());
  // Every output element is one kernel-layer dot product under the 16-lane
  // striped contract (simd.h), for every batch size: single-row inference
  // and batched inference produce bit-identical activations by construction,
  // and so do the scalar/SSE2/AVX2/AVX-512 dispatch tiers.
  const simd::KernelTable& kt = simd::Active();
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t j = 0; j < other.rows(); ++j) {
      o[j] = kt.dot(a, other.Row(j), cols_);
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  CARDBENCH_CHECK(rows_ == other.rows(), "Tmatmul shape mismatch");
  Matrix out(cols_, other.cols());
  const simd::KernelTable& kt = simd::Active();
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    const double* b = other.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      kt.axpy(out.Row(k), b, av, other.cols());
    }
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  CARDBENCH_CHECK(rows_ == other.rows() && cols_ == other.cols(),
                  "add shape mismatch");
  simd::Active().axpy(data_.data(), other.data().data(), scale, data_.size());
}

}  // namespace cardbench
