#include "ml/matrix.h"

#include "common/logging.h"

namespace cardbench {

Matrix Matrix::MatMul(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.rows(), "matmul shape mismatch");
  Matrix out(rows_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = other.Row(k);
      for (size_t j = 0; j < other.cols(); ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.cols(), "matmulT shape mismatch");
  Matrix out(rows_, other.rows());
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t j = 0; j < other.rows(); ++j) {
      const double* b = other.Row(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  CARDBENCH_CHECK(rows_ == other.rows(), "Tmatmul shape mismatch");
  Matrix out(cols_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    const double* b = other.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      double* o = out.Row(k);
      for (size_t j = 0; j < other.cols(); ++j) o[j] += av * b[j];
    }
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  CARDBENCH_CHECK(rows_ == other.rows() && cols_ == other.cols(),
                  "add shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data()[i];
}

}  // namespace cardbench
