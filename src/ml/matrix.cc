#include "ml/matrix.h"

#include "common/logging.h"

namespace cardbench {

Matrix Matrix::MatMul(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.rows(), "matmul shape mismatch");
  Matrix out(rows_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = other.Row(k);
      for (size_t j = 0; j < other.cols(); ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  CARDBENCH_CHECK(cols_ == other.cols(), "matmulT shape mismatch");
  Matrix out(rows_, other.rows());
  // Blocked over activation rows (8, then 4): each output element is still
  // one serial dot product in ascending-k order (results are bit-identical
  // to the row-at-a-time loop, which batch-vs-scalar parity depends on),
  // but the accumulator chains are independent, so multi-row batches get
  // instruction-level parallelism a single-row inference cannot — plus one
  // weight-row read shared across the block.
  size_t i = 0;
  for (; i + 8 <= rows_; i += 8) {
    const double* a[8];
    for (size_t r = 0; r < 8; ++r) a[r] = Row(i + r);
    size_t j = 0;
    for (; j + 2 <= other.rows(); j += 2) {
      // Two weight rows per pass: each activation load feeds two FMA
      // chains, easing the load-port pressure of the 8-row block.
      const double* b0 = other.Row(j);
      const double* b1 = other.Row(j + 1);
      double acc0[8] = {0.0};
      double acc1[8] = {0.0};
      for (size_t k = 0; k < cols_; ++k) {
        const double bv0 = b0[k];
        const double bv1 = b1[k];
        for (size_t r = 0; r < 8; ++r) {
          const double av = a[r][k];
          acc0[r] += av * bv0;
          acc1[r] += av * bv1;
        }
      }
      for (size_t r = 0; r < 8; ++r) {
        out.Row(i + r)[j] = acc0[r];
        out.Row(i + r)[j + 1] = acc1[r];
      }
    }
    for (; j < other.rows(); ++j) {
      const double* b = other.Row(j);
      double acc[8] = {0.0};
      for (size_t k = 0; k < cols_; ++k) {
        const double bv = b[k];
        for (size_t r = 0; r < 8; ++r) acc[r] += a[r][k] * bv;
      }
      for (size_t r = 0; r < 8; ++r) out.Row(i + r)[j] = acc[r];
    }
  }
  for (; i + 4 <= rows_; i += 4) {
    const double* a0 = Row(i);
    const double* a1 = Row(i + 1);
    const double* a2 = Row(i + 2);
    const double* a3 = Row(i + 3);
    for (size_t j = 0; j < other.rows(); ++j) {
      const double* b = other.Row(j);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double bv = b[k];
        acc0 += a0[k] * bv;
        acc1 += a1[k] * bv;
        acc2 += a2[k] * bv;
        acc3 += a3[k] * bv;
      }
      out.Row(i)[j] = acc0;
      out.Row(i + 1)[j] = acc1;
      out.Row(i + 2)[j] = acc2;
      out.Row(i + 3)[j] = acc3;
    }
  }
  for (; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t j = 0; j < other.rows(); ++j) {
      const double* b = other.Row(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  CARDBENCH_CHECK(rows_ == other.rows(), "Tmatmul shape mismatch");
  Matrix out(cols_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    const double* b = other.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      double* o = out.Row(k);
      for (size_t j = 0; j < other.cols(); ++j) o[j] += av * b[j];
    }
  }
  return out;
}

void Matrix::AddInPlace(const Matrix& other, double scale) {
  CARDBENCH_CHECK(rows_ == other.rows() && cols_ == other.cols(),
                  "add shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data()[i];
}

}  // namespace cardbench
