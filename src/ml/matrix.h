#ifndef CARDBENCH_ML_MATRIX_H_
#define CARDBENCH_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace cardbench {

/// Dense row-major matrix of doubles. Deliberately minimal: the learned
/// estimators only need matmul, transposed matmul variants and elementwise
/// ops, at batch sizes where cache-friendly loops are plenty fast on CPU.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// this (m×k) times other (k×n) -> (m×n).
  Matrix MatMul(const Matrix& other) const;

  /// this (m×k) times other^T, other is (n×k) -> (m×n). The common layout
  /// for applying a weight matrix stored as (out×in) to activations (batch×in).
  Matrix MatMulTransposed(const Matrix& other) const;

  /// this^T (k×m)^T... i.e. returns this^T * other where this is (m×k),
  /// other (m×n) -> (k×n). Used for weight gradients.
  Matrix TransposedMatMul(const Matrix& other) const;

  void AddInPlace(const Matrix& other, double scale = 1.0);

  size_t SizeBytes() const { return data_.size() * sizeof(double); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cardbench

#endif  // CARDBENCH_ML_MATRIX_H_
