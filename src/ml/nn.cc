#include "ml/nn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/serde.h"
#include "common/simd.h"

namespace cardbench {

namespace {
constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
}  // namespace

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim, Rng& rng)
    : weight_(out_dim, in_dim),
      bias_(out_dim, 0.0),
      grad_weight_(out_dim, in_dim),
      grad_bias_(out_dim, 0.0),
      m_weight_(out_dim, in_dim),
      v_weight_(out_dim, in_dim),
      m_bias_(out_dim, 0.0),
      v_bias_(out_dim, 0.0) {
  // He initialization, appropriate for ReLU nets.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (double& w : weight_.data()) w = rng.NextGaussian() * scale;
}

void LinearLayer::SetMask(Matrix mask) {
  CARDBENCH_CHECK(mask.rows() == weight_.rows() &&
                      mask.cols() == weight_.cols(),
                  "mask shape mismatch");
  mask_ = std::move(mask);
  ApplyMask();
}

void LinearLayer::ApplyMask() {
  if (mask_.rows() == 0) return;
  for (size_t i = 0; i < weight_.data().size(); ++i) {
    weight_.data()[i] *= mask_.data()[i];
  }
}

Matrix LinearLayer::Forward(const Matrix& x) const {
  Matrix y = x.MatMulTransposed(weight_);
  const simd::KernelTable& kt = simd::Active();
  for (size_t r = 0; r < y.rows(); ++r) {
    kt.add_bias(y.Row(r), bias_.data(), y.cols());
  }
  return y;
}

Matrix LinearLayer::Backward(const Matrix& x, const Matrix& grad_out) {
  // dW = grad_out^T x ; db = column sums of grad_out ; dx = grad_out W.
  grad_weight_.AddInPlace(grad_out.TransposedMatMul(x));
  const simd::KernelTable& kt = simd::Active();
  for (size_t r = 0; r < grad_out.rows(); ++r) {
    kt.vec_add(grad_bias_.data(), grad_out.Row(r), grad_out.cols());
  }
  return grad_out.MatMul(weight_);
}

void LinearLayer::Step(double lr) {
  ++step_;
  const double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(step_));
  for (size_t i = 0; i < weight_.data().size(); ++i) {
    const double g = grad_weight_.data()[i];
    double& m = m_weight_.data()[i];
    double& v = v_weight_.data()[i];
    m = kAdamBeta1 * m + (1 - kAdamBeta1) * g;
    v = kAdamBeta2 * v + (1 - kAdamBeta2) * g * g;
    weight_.data()[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    grad_weight_.data()[i] = 0.0;
  }
  for (size_t i = 0; i < bias_.size(); ++i) {
    const double g = grad_bias_[i];
    double& m = m_bias_[i];
    double& v = v_bias_[i];
    m = kAdamBeta1 * m + (1 - kAdamBeta1) * g;
    v = kAdamBeta2 * v + (1 - kAdamBeta2) * g * g;
    bias_[i] -= lr * (m / bc1) / (std::sqrt(v / bc2) + kAdamEps);
    grad_bias_[i] = 0.0;
  }
  ApplyMask();
}

size_t LinearLayer::ParamBytes() const {
  return (weight_.data().size() + bias_.size()) * sizeof(double);
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng& rng) {
  CARDBENCH_CHECK(dims.size() >= 2, "Mlp needs at least input and output dim");
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Matrix Mlp::Forward(const Matrix& x) {
  inputs_.clear();
  pre_act_.clear();
  Matrix h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    inputs_.push_back(h);
    Matrix z = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      pre_act_.push_back(z);
      simd::Active().relu(z.data().data(), z.data().size());
    } else {
      pre_act_.push_back(Matrix());
    }
    h = std::move(z);
  }
  return h;
}

Matrix Mlp::Infer(const Matrix& x) const {
  Matrix h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Matrix z = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      simd::Active().relu(z.data().data(), z.data().size());
    }
    h = std::move(z);
  }
  return h;
}

Matrix Mlp::Backward(const Matrix& grad_out) {
  CARDBENCH_CHECK(inputs_.size() == layers_.size(),
                  "Backward without Forward");
  Matrix grad = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i + 1 < layers_.size()) {
      // Chain through the ReLU applied to this layer's output.
      const Matrix& z = pre_act_[i];
      for (size_t k = 0; k < grad.data().size(); ++k) {
        if (z.data()[k] <= 0.0) grad.data()[k] = 0.0;
      }
    }
    grad = layers_[i].Backward(inputs_[i], grad);
  }
  return grad;
}

void Mlp::Step(double lr) {
  for (auto& layer : layers_) layer.Step(lr);
}

size_t Mlp::ParamBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.ParamBytes();
  return total;
}

void LinearLayer::SerializeParams(SectionWriter& out) const {
  out.PutU64(weight_.rows());
  out.PutU64(weight_.cols());
  out.PutDoubles(weight_.data());
  out.PutDoubles(bias_);
}

Status LinearLayer::LoadParams(SectionReader& in) {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t rows, in.GetU64());
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t cols, in.GetU64());
  if (rows != weight_.rows() || cols != weight_.cols()) {
    return Status::InvalidArgument(
        "layer shape mismatch: artifact " + std::to_string(rows) + "x" +
        std::to_string(cols) + ", model " + std::to_string(weight_.rows()) +
        "x" + std::to_string(weight_.cols()));
  }
  CARDBENCH_ASSIGN_OR_RETURN(std::vector<double> w, in.GetDoubles());
  CARDBENCH_ASSIGN_OR_RETURN(std::vector<double> b, in.GetDoubles());
  if (w.size() != weight_.data().size() || b.size() != bias_.size()) {
    return Status::InvalidArgument("layer parameter count mismatch");
  }
  weight_.data() = std::move(w);
  bias_ = std::move(b);
  ApplyMask();
  return Status::OK();
}

void Mlp::SerializeParams(SectionWriter& out) const {
  out.PutU64(layers_.size());
  for (const auto& layer : layers_) layer.SerializeParams(out);
}

Status Mlp::LoadParams(SectionReader& in) {
  CARDBENCH_ASSIGN_OR_RETURN(uint64_t n, in.GetU64());
  if (n != layers_.size()) {
    return Status::InvalidArgument(
        "layer count mismatch: artifact " + std::to_string(n) + ", model " +
        std::to_string(layers_.size()));
  }
  for (auto& layer : layers_) {
    CARDBENCH_RETURN_IF_ERROR(layer.LoadParams(in));
  }
  return Status::OK();
}

void SoftmaxRows(Matrix& m, size_t begin, size_t end) {
  for (size_t r = 0; r < m.rows(); ++r) {
    double* row = m.Row(r);
    double max_v = row[begin];
    for (size_t c = begin; c < end; ++c) max_v = std::max(max_v, row[c]);
    double sum = 0.0;
    for (size_t c = begin; c < end; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    for (size_t c = begin; c < end; ++c) row[c] /= sum;
  }
}

double MseLoss(const Matrix& y, const std::vector<double>& target,
               Matrix* grad) {
  CARDBENCH_CHECK(y.cols() == 1 && y.rows() == target.size(),
                  "MSE shape mismatch");
  *grad = Matrix(y.rows(), 1);
  double loss = 0.0;
  const double n = static_cast<double>(y.rows());
  for (size_t r = 0; r < y.rows(); ++r) {
    const double diff = y.At(r, 0) - target[r];
    loss += diff * diff;
    grad->At(r, 0) = 2.0 * diff / n;
  }
  return loss / n;
}

}  // namespace cardbench
