#ifndef CARDBENCH_ML_NN_H_
#define CARDBENCH_ML_NN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace cardbench {

class SectionWriter;
class SectionReader;

/// One fully connected layer (weights stored out×in) with optional binary
/// connectivity mask (used by MADE to enforce autoregressive structure) and
/// Adam state. ReLU is applied by the owning Mlp between layers.
class LinearLayer {
 public:
  LinearLayer(size_t in_dim, size_t out_dim, Rng& rng);

  /// Restricts connectivity: entries where mask is 0 are forced to stay 0.
  void SetMask(Matrix mask);

  /// y = x W^T + b for a batch x (batch×in) -> (batch×out).
  Matrix Forward(const Matrix& x) const;

  /// Given upstream grad (batch×out) and the input that produced the
  /// forward pass, accumulates parameter grads and returns grad wrt input.
  Matrix Backward(const Matrix& x, const Matrix& grad_out);

  /// Adam update with the accumulated grads; zeroes them afterwards.
  void Step(double lr);

  size_t in_dim() const { return weight_.cols(); }
  size_t out_dim() const { return weight_.rows(); }
  size_t ParamBytes() const;

  /// Appends the trained parameters (weights + bias) to a serde section.
  /// Optimizer state and masks are structural/transient and are not
  /// written; LoadParams re-applies the current mask after overwriting.
  void SerializeParams(SectionWriter& out) const;
  Status LoadParams(SectionReader& in);

 private:
  void ApplyMask();

  Matrix weight_;  // out×in
  std::vector<double> bias_;
  Matrix mask_;  // empty if unmasked
  // Accumulated gradients.
  Matrix grad_weight_;
  std::vector<double> grad_bias_;
  // Adam moments.
  Matrix m_weight_, v_weight_;
  std::vector<double> m_bias_, v_bias_;
  long step_ = 0;
};

/// Multi-layer perceptron with ReLU between layers and a linear output.
/// Supports per-layer masks (MADE). Used for the query-driven estimators
/// (MSCN modules, LW-NN) and the autoregressive data-driven ones
/// (NeuroCard, UAE).
class Mlp {
 public:
  /// dims = {in, h1, ..., out}.
  Mlp(const std::vector<size_t>& dims, Rng& rng);

  LinearLayer& layer(size_t i) { return layers_[i]; }
  size_t num_layers() const { return layers_.size(); }

  /// Forward pass; caches per-layer inputs for a subsequent Backward.
  Matrix Forward(const Matrix& x);

  /// Forward without caching (inference).
  Matrix Infer(const Matrix& x) const;

  /// Backprop from output gradient; returns gradient wrt the network input.
  Matrix Backward(const Matrix& grad_out);

  /// Adam step on all layers.
  void Step(double lr);

  size_t ParamBytes() const;

  /// Parameter dump/restore across all layers, in layer order. Loading
  /// validates that layer count and dims match the constructed topology.
  void SerializeParams(SectionWriter& out) const;
  Status LoadParams(SectionReader& in);

 private:
  std::vector<LinearLayer> layers_;
  // Cached inputs per layer (post-ReLU of previous layer) and pre-ReLU
  // outputs, from the last Forward call.
  std::vector<Matrix> inputs_;
  std::vector<Matrix> pre_act_;
};

/// In-place row-wise softmax over [begin, end) columns of `m`.
void SoftmaxRows(Matrix& m, size_t begin, size_t end);

/// Mean squared error loss and its gradient for 1-D regression output.
/// Returns the loss; writes dL/dy into grad (same shape as y).
double MseLoss(const Matrix& y, const std::vector<double>& target,
               Matrix* grad);

}  // namespace cardbench

#endif  // CARDBENCH_ML_NN_H_
