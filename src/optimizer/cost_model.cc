#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace cardbench {

double CostModel::Pages(double rows) const {
  return std::max(1.0, std::ceil(rows / rows_per_page));
}

double CostModel::SeqScanCost(double table_rows, size_t num_predicates) const {
  return seq_page_cost * Pages(table_rows) + cpu_tuple_cost * table_rows +
         cpu_operator_cost * static_cast<double>(num_predicates) * table_rows;
}

double CostModel::IndexScanCost(double matched_rows,
                                size_t num_residual) const {
  // Calibrated to the in-memory executor: an index lookup is one hash-map
  // probe, each match one tuple fetch plus residual filter evaluations.
  // (PostgreSQL's random_page_cost-heavy formula priced index paths for
  // spinning disks; with an in-memory engine that systematically rewarded
  // underestimating methods.)
  return 2.0 * cpu_operator_cost +
         matched_rows * (cpu_index_tuple_cost + cpu_tuple_cost +
                         cpu_operator_cost * static_cast<double>(num_residual));
}

double CostModel::HashJoinCost(double outer_rows, double inner_rows,
                               double output_rows, size_t num_extra) const {
  const double build =
      inner_rows * (cpu_operator_cost + 1.5 * cpu_tuple_cost);
  const double probe = outer_rows * 2.0 * cpu_operator_cost;
  const double emit =
      output_rows * (cpu_tuple_cost +
                     cpu_operator_cost * static_cast<double>(num_extra));
  // Cache-degradation factor: beyond hash_mem_rows the build table no
  // longer fits caches and every operation slows down moderately —
  // calibrated to the in-memory executor's unordered_map behaviour (a
  // ~2x degradation at 10-20x the threshold, not a disk-spill cliff).
  double degrade = 1.0;
  if (inner_rows > hash_mem_rows) {
    const double batches = std::ceil(inner_rows / hash_mem_rows);
    degrade = 1.0 + 0.2 * std::log2(batches + 1.0);
  }
  return (build + probe) * degrade + emit;
}

double CostModel::MergeJoinCost(double outer_rows, double inner_rows,
                                double output_rows, size_t num_extra) const {
  auto sort_cost = [&](double rows) {
    const double n = std::max(rows, 2.0);
    return 2.0 * cpu_operator_cost * n * std::log2(n);
  };
  const double merge = (outer_rows + inner_rows) * cpu_operator_cost;
  const double emit =
      output_rows * (cpu_tuple_cost +
                     cpu_operator_cost * static_cast<double>(num_extra));
  return sort_cost(outer_rows) + sort_cost(inner_rows) + merge + emit;
}

double CostModel::IndexNestLoopCost(double outer_rows,
                                    double matched_per_probe,
                                    double output_rows, size_t inner_filters,
                                    size_t num_extra) const {
  // Calibrated to the in-memory executor: each outer row performs one
  // hash-index lookup, then evaluates the inner filters on every raw match
  // (repeatedly — unlike a hash join, which filters the inner exactly once
  // during the build). That repeated filtering, not page I/O, is what makes
  // INL lose against hash join for large outers.
  const double per_probe =
      2.0 * cpu_operator_cost + cpu_index_tuple_cost +
      matched_per_probe *
          (cpu_operator_cost * (1.0 + static_cast<double>(inner_filters)) +
           0.2 * cpu_tuple_cost);
  const double emit =
      output_rows * (cpu_tuple_cost +
                     cpu_operator_cost * static_cast<double>(num_extra));
  return outer_rows * per_probe + emit;
}

}  // namespace cardbench
