#ifndef CARDBENCH_OPTIMIZER_COST_MODEL_H_
#define CARDBENCH_OPTIMIZER_COST_MODEL_H_

#include <cstddef>

namespace cardbench {

/// PostgreSQL-style cost model. Constants default to PostgreSQL 12's
/// planner GUCs; formulas are simplified but keep the structure that makes
/// cardinality estimates matter: per-tuple CPU charges, page I/O charges,
/// a hash-join spill penalty beyond work_mem, sort costs for merge joins,
/// and per-probe random-access charges for index nested loops. The same
/// model serves as the PPC cost function of the P-Error metric (§7.2).
struct CostModel {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// Tuples per 8KB page (row width ~64B).
  double rows_per_page = 128.0;
  /// Rows of the build side that fit in work_mem before hash join batches.
  double hash_mem_rows = 1000000.0;

  /// Pages occupied by `rows` tuples.
  double Pages(double rows) const;

  /// Full scan of a table of `table_rows` rows evaluating `num_predicates`
  /// filter clauses per row.
  double SeqScanCost(double table_rows, size_t num_predicates) const;

  /// Index equality lookup returning `matched_rows`, then `num_residual`
  /// filters per matched row.
  double IndexScanCost(double matched_rows, size_t num_residual) const;

  /// Hash join: build `inner_rows`, probe `outer_rows`, emit `output_rows`,
  /// evaluating `num_extra` residual join clauses per emitted candidate.
  double HashJoinCost(double outer_rows, double inner_rows,
                      double output_rows, size_t num_extra) const;

  /// Merge join with both inputs unsorted (we do not track sort orders):
  /// two sorts plus a linear merge.
  double MergeJoinCost(double outer_rows, double inner_rows,
                       double output_rows, size_t num_extra) const;

  /// Index nested loop: one index probe per outer row into the inner base
  /// table, `inner_filters` residual predicates per matched inner row.
  double IndexNestLoopCost(double outer_rows, double matched_per_probe,
                           double output_rows, size_t inner_filters,
                           size_t num_extra) const;
};

}  // namespace cardbench

#endif  // CARDBENCH_OPTIMIZER_COST_MODEL_H_
