#include "optimizer/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace cardbench {

namespace {

double ClampCard(double card) {
  if (!std::isfinite(card) || card < 1.0) return 1.0;
  return card;
}

uint64_t NdvKey(int table_id, int column_id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(table_id)) << 32) |
         static_cast<uint32_t>(column_id);
}

/// The subset-estimation preamble shared by Plan and PlanLegacy: estimate
/// every connected sub-plan in one pass of `estimate_all` (the batched
/// EstimateCards call on the graph path; a scalar loop on the legacy path)
/// and inject the clamped cardinalities, charging the whole pass to
/// estimation_seconds.
template <typename EstimateAll>
void InjectSubplanCards(const std::vector<uint64_t>& subsets,
                        EstimateAll&& estimate_all, PlanResult* result) {
  Stopwatch est_watch;
  const std::vector<double> cards = estimate_all(subsets);
  result->estimation_seconds += est_watch.ElapsedSeconds();
  result->num_estimates += subsets.size();
  CARDBENCH_CHECK(cards.size() == subsets.size(),
                  "estimator returned %zu cards for %zu sub-plans",
                  cards.size(), subsets.size());
  for (size_t i = 0; i < subsets.size(); ++i) {
    result->injected_cards[subsets[i]] = ClampCard(cards[i]);
  }
}

}  // namespace

Optimizer::Optimizer(const Database& db, CostModel cost_model)
    : db_(db), cost_(cost_model) {
  for (size_t i = 0; i < db.table_names().size(); ++i) {
    table_ids_[db.table_names()[i]] = static_cast<int>(i);
  }
}

double Optimizer::NdvOf(int table_id, int column_id,
                        const Table& table) const {
  const uint64_t key = NdvKey(table_id, column_id);
  {
    std::lock_guard<std::mutex> lock(ndv_mu_);
    auto it = ndv_cache_.find(key);
    if (it != ndv_cache_.end()) return it->second;
  }
  const double ndv = std::max<double>(
      1.0, static_cast<double>(table.GetIndex(column_id).num_distinct()));
  std::lock_guard<std::mutex> lock(ndv_mu_);
  ndv_cache_[key] = ndv;
  return ndv;
}

double Optimizer::NdvOf(const std::string& table,
                        const std::string& column) const {
  const Table& t = db_.TableOrDie(table);
  auto it = table_ids_.find(table);
  CARDBENCH_CHECK(it != table_ids_.end(), "unknown table '%s'",
                  table.c_str());
  return NdvOf(it->second, static_cast<int>(t.ColumnIndexOrDie(column)), t);
}

Result<PlanResult> Optimizer::Plan(const QueryGraph& graph,
                                   const CardinalityEstimator& estimator) const {
  Stopwatch total_watch;
  PlanResult result;

  struct Entry {
    std::unique_ptr<PlanNode> plan;
    double cost = std::numeric_limits<double>::infinity();
    double card = 1.0;
  };
  std::unordered_map<uint64_t, Entry> dp;

  // --- Estimate every connected sub-plan (the sub-plan query space) in one
  // batched call, so learned estimators run one GEMM per query instead of
  // one per sub-plan.
  const std::vector<uint64_t>& subsets = graph.connected_subsets();
  InjectSubplanCards(
      subsets,
      [&](std::span<const uint64_t> masks) {
        return estimator.EstimateCards(graph, masks);
      },
      &result);

  // --- Base relations: access-path selection. ---
  for (size_t i = 0; i < graph.num_tables(); ++i) {
    const uint64_t mask = uint64_t{1} << i;
    const QueryGraph::TableInfo& info = graph.table(i);
    const double table_rows = static_cast<double>(info.table->num_rows());
    const double out_card = result.injected_cards.at(mask);
    const std::vector<Predicate>& filters = info.preds;

    Entry entry;
    // Sequential scan is always available.
    {
      auto scan = std::make_unique<PlanNode>();
      scan->type = PlanNode::Type::kScan;
      scan->table = info.name;
      scan->scan_method = ScanMethod::kSeqScan;
      scan->filters = filters;
      scan->table_mask = mask;
      scan->estimated_card = out_card;
      scan->estimated_cost = cost_.SeqScanCost(table_rows, filters.size());
      entry.cost = scan->estimated_cost;
      entry.plan = std::move(scan);
    }
    // Index scan: leading equality predicate on an indexed (key) column.
    for (size_t f = 0; f < filters.size(); ++f) {
      if (filters[f].op != CompareOp::kEq) continue;
      const int col_id = info.pred_column_ids[f];
      if (info.table->column(col_id).kind() != ColumnKind::kKey) continue;
      const double matched =
          table_rows / NdvOf(info.table_id, col_id, *info.table);
      const double cost = cost_.IndexScanCost(matched, filters.size() - 1);
      if (cost < entry.cost) {
        auto scan = std::make_unique<PlanNode>();
        scan->type = PlanNode::Type::kScan;
        scan->table = info.name;
        scan->scan_method = ScanMethod::kIndexScan;
        scan->filters = filters;
        std::swap(scan->filters[0], scan->filters[f]);
        scan->table_mask = mask;
        scan->estimated_card = out_card;
        scan->estimated_cost = cost;
        entry.cost = cost;
        entry.plan = std::move(scan);
      }
    }
    entry.card = out_card;
    dp[mask] = std::move(entry);
  }

  // --- Join enumeration: DP over connected subsets in popcount order. ---
  std::vector<const QueryGraph::EdgeInfo*> in_mask_edges;
  std::vector<const QueryGraph::EdgeInfo*> connecting;
  for (uint64_t mask : subsets) {
    if (std::popcount(mask) < 2) continue;
    // Edges with both endpoints inside `mask`, collected once per subset in
    // query edge order; only these can connect a split, so the per-split
    // work drops to two bit tests per candidate edge.
    in_mask_edges.clear();
    for (const QueryGraph::EdgeInfo& edge : graph.edges()) {
      if ((edge.mask & mask) == edge.mask) in_mask_edges.push_back(&edge);
    }
    const double out_card = result.injected_cards.at(mask);
    Entry best;
    // Enumerate ordered splits (outer, inner) of `mask`.
    for (uint64_t outer = (mask - 1) & mask; outer != 0;
         outer = (outer - 1) & mask) {
      const uint64_t inner = mask ^ outer;
      // Adjacency pre-check: a split with no edge between the two sides is
      // a cross product; skip it without touching the edge list.
      if ((graph.AdjacencyOf(outer) & inner) == 0) continue;
      auto outer_it = dp.find(outer);
      auto inner_it = dp.find(inner);
      if (outer_it == dp.end() || inner_it == dp.end()) continue;

      // Connecting edges between the two sides, in query edge order (the
      // first one is the primary hash/merge join condition). An in-mask
      // edge crosses the split iff exactly one endpoint is in `outer`.
      connecting.clear();
      for (const QueryGraph::EdgeInfo* edge : in_mask_edges) {
        if (((outer & edge->left_bit) != 0) !=
            ((outer & edge->right_bit) != 0)) {
          connecting.push_back(edge);
        }
      }
      if (connecting.empty()) continue;  // unreachable given the pre-check

      const Entry& oe = outer_it->second;
      const Entry& ie = inner_it->second;
      const double child_cost = oe.cost + ie.cost;
      const size_t num_extra = connecting.size() - 1;

      auto consider = [&](JoinMethod method, double join_cost,
                          const JoinEdge& primary) {
        const double total = child_cost + join_cost;
        if (total >= best.cost) return;
        auto node = std::make_unique<PlanNode>();
        node->type = PlanNode::Type::kJoin;
        node->join_method = method;
        node->edge = primary;
        for (const QueryGraph::EdgeInfo* e : connecting) {
          if (*e->edge != primary) node->extra_edges.push_back(*e->edge);
        }
        node->left = oe.plan->Clone();
        node->right = ie.plan->Clone();
        node->table_mask = mask;
        node->estimated_card = out_card;
        node->estimated_cost = total;
        best.cost = total;
        best.card = out_card;
        best.plan = std::move(node);
      };

      consider(JoinMethod::kHashJoin,
               cost_.HashJoinCost(oe.card, ie.card, out_card, num_extra),
               *connecting[0]->edge);
      consider(JoinMethod::kMergeJoin,
               cost_.MergeJoinCost(oe.card, ie.card, out_card, num_extra),
               *connecting[0]->edge);

      // Index nested loop: inner side must be a single base table whose
      // join-edge endpoint is an indexed key column.
      if (std::popcount(inner) == 1 && ie.plan->IsScan() &&
          ie.plan->scan_method == ScanMethod::kSeqScan) {
        const int inner_local = std::countr_zero(inner);
        const QueryGraph::TableInfo& it_info = graph.table(inner_local);
        for (const QueryGraph::EdgeInfo* edge : connecting) {
          int inner_col;
          const Column* inner_column;
          if (edge->left_local == inner_local) {
            inner_col = edge->left_column_id;
            inner_column = edge->left_column;
          } else if (edge->right_local == inner_local) {
            inner_col = edge->right_column_id;
            inner_column = edge->right_column;
          } else {
            continue;
          }
          if (inner_column->kind() != ColumnKind::kKey) continue;
          const double matched_per_probe =
              static_cast<double>(it_info.table->num_rows()) /
              NdvOf(it_info.table_id, inner_col, *it_info.table);
          // The inner scan's cost is not paid: probes replace the scan.
          const double join_cost = cost_.IndexNestLoopCost(
              oe.card, matched_per_probe, out_card, ie.plan->filters.size(),
              num_extra);
          const double total = oe.cost + join_cost;
          if (total >= best.cost) continue;
          auto node = std::make_unique<PlanNode>();
          node->type = PlanNode::Type::kJoin;
          node->join_method = JoinMethod::kIndexNestLoop;
          node->edge = *edge->edge;
          for (const QueryGraph::EdgeInfo* e : connecting) {
            if (*e->edge != *edge->edge) node->extra_edges.push_back(*e->edge);
          }
          node->left = oe.plan->Clone();
          node->right = ie.plan->Clone();
          node->table_mask = mask;
          node->estimated_card = out_card;
          node->estimated_cost = total;
          best.cost = total;
          best.card = out_card;
          best.plan = std::move(node);
          break;
        }
      }
    }
    if (best.plan == nullptr) {
      return Status::Internal("no join plan found for connected subset");
    }
    dp[mask] = std::move(best);
  }

  auto full_it = dp.find(graph.full_mask());
  if (full_it == dp.end() || full_it->second.plan == nullptr) {
    return Status::Internal("planning failed for " + graph.query().ToSql());
  }
  result.plan = std::move(full_it->second.plan);
  result.planning_seconds = total_watch.ElapsedSeconds();
  return result;
}

Result<PlanResult> Optimizer::Plan(const Query& query,
                                   const CardinalityEstimator& estimator) const {
  Stopwatch total_watch;
  const QueryGraph graph(query, db_);
  auto result = Plan(graph, estimator);
  // Count the one-time compile in the plan time the caller observes.
  if (result.ok()) result->planning_seconds = total_watch.ElapsedSeconds();
  return result;
}

Result<PlanResult> Optimizer::PlanLegacy(
    const Query& query, const CardinalityEstimator& estimator) const {
  Stopwatch total_watch;
  PlanResult result;

  struct Entry {
    std::unique_ptr<PlanNode> plan;
    double cost = std::numeric_limits<double>::infinity();
    double card = 1.0;
  };
  std::unordered_map<uint64_t, Entry> dp;

  // --- Estimate every connected sub-plan (the sub-plan query space). ---
  const std::vector<uint64_t> subsets = EnumerateConnectedSubsets(query);
  InjectSubplanCards(
      subsets,
      [&](std::span<const uint64_t> masks) {
        std::vector<double> cards;
        cards.reserve(masks.size());
        for (uint64_t mask : masks) {
          cards.push_back(estimator.EstimateCard(query.Induced(mask)));
        }
        return cards;
      },
      &result);

  // --- Base relations: access-path selection. ---
  for (size_t i = 0; i < query.tables.size(); ++i) {
    const uint64_t mask = uint64_t{1} << i;
    const std::string& table_name = query.tables[i];
    const Table& table = db_.TableOrDie(table_name);
    const double table_rows = static_cast<double>(table.num_rows());
    const double out_card = result.injected_cards.at(mask);

    std::vector<Predicate> filters;
    for (const auto& pred : query.predicates) {
      if (pred.table == table_name) filters.push_back(pred);
    }

    Entry entry;
    // Sequential scan is always available.
    {
      auto scan = std::make_unique<PlanNode>();
      scan->type = PlanNode::Type::kScan;
      scan->table = table_name;
      scan->scan_method = ScanMethod::kSeqScan;
      scan->filters = filters;
      scan->table_mask = mask;
      scan->estimated_card = out_card;
      scan->estimated_cost = cost_.SeqScanCost(table_rows, filters.size());
      entry.cost = scan->estimated_cost;
      entry.plan = std::move(scan);
    }
    // Index scan: leading equality predicate on an indexed (key) column.
    for (size_t f = 0; f < filters.size(); ++f) {
      if (filters[f].op != CompareOp::kEq) continue;
      const Column& col = table.ColumnByName(filters[f].column);
      if (col.kind() != ColumnKind::kKey) continue;
      const double matched = table_rows / NdvOf(table_name, filters[f].column);
      const double cost = cost_.IndexScanCost(matched, filters.size() - 1);
      if (cost < entry.cost) {
        auto scan = std::make_unique<PlanNode>();
        scan->type = PlanNode::Type::kScan;
        scan->table = table_name;
        scan->scan_method = ScanMethod::kIndexScan;
        scan->filters = filters;
        std::swap(scan->filters[0], scan->filters[f]);
        scan->table_mask = mask;
        scan->estimated_card = out_card;
        scan->estimated_cost = cost;
        entry.cost = cost;
        entry.plan = std::move(scan);
      }
    }
    entry.card = out_card;
    dp[mask] = std::move(entry);
  }

  // --- Join enumeration: DP over connected subsets in popcount order. ---
  for (uint64_t mask : subsets) {
    if (std::popcount(mask) < 2) continue;
    Entry best;
    // Enumerate ordered splits (outer, inner) of `mask`.
    for (uint64_t outer = (mask - 1) & mask; outer != 0;
         outer = (outer - 1) & mask) {
      const uint64_t inner = mask ^ outer;
      auto outer_it = dp.find(outer);
      auto inner_it = dp.find(inner);
      if (outer_it == dp.end() || inner_it == dp.end()) continue;

      // Connecting edges between the two sides.
      std::vector<JoinEdge> connecting;
      for (const auto& edge : query.joins) {
        const int li = query.TableIndex(edge.left_table);
        const int ri = query.TableIndex(edge.right_table);
        if (li < 0 || ri < 0) continue;
        const uint64_t lb = uint64_t{1} << li;
        const uint64_t rb = uint64_t{1} << ri;
        if (((outer & lb) && (inner & rb)) || ((outer & rb) && (inner & lb))) {
          connecting.push_back(edge);
        }
      }
      if (connecting.empty()) continue;  // avoid cross products, like PG

      const Entry& oe = outer_it->second;
      const Entry& ie = inner_it->second;
      const double out_card = result.injected_cards.at(mask);
      const double child_cost = oe.cost + ie.cost;
      const size_t num_extra = connecting.size() - 1;

      auto consider = [&](JoinMethod method, double join_cost,
                          const JoinEdge& primary) {
        const double total = child_cost + join_cost;
        if (total >= best.cost) return;
        auto node = std::make_unique<PlanNode>();
        node->type = PlanNode::Type::kJoin;
        node->join_method = method;
        node->edge = primary;
        for (const auto& e : connecting) {
          if (e != primary) node->extra_edges.push_back(e);
        }
        node->left = oe.plan->Clone();
        node->right = ie.plan->Clone();
        node->table_mask = mask;
        node->estimated_card = out_card;
        node->estimated_cost = total;
        best.cost = total;
        best.card = out_card;
        best.plan = std::move(node);
      };

      consider(JoinMethod::kHashJoin,
               cost_.HashJoinCost(oe.card, ie.card, out_card, num_extra),
               connecting[0]);
      consider(JoinMethod::kMergeJoin,
               cost_.MergeJoinCost(oe.card, ie.card, out_card, num_extra),
               connecting[0]);

      // Index nested loop: inner side must be a single base table whose
      // join-edge endpoint is an indexed key column.
      if (std::popcount(inner) == 1 && ie.plan->IsScan() &&
          ie.plan->scan_method == ScanMethod::kSeqScan) {
        const std::string& inner_table = ie.plan->table;
        for (const auto& edge : connecting) {
          const bool inner_is_left = edge.left_table == inner_table;
          const bool inner_is_right = edge.right_table == inner_table;
          if (!inner_is_left && !inner_is_right) continue;
          const std::string& inner_col =
              inner_is_left ? edge.left_column : edge.right_column;
          const Table& it_table = db_.TableOrDie(inner_table);
          if (it_table.ColumnByName(inner_col).kind() != ColumnKind::kKey) {
            continue;
          }
          const double matched_per_probe =
              static_cast<double>(it_table.num_rows()) /
              NdvOf(inner_table, inner_col);
          // The inner scan's cost is not paid: probes replace the scan.
          const double join_cost = cost_.IndexNestLoopCost(
              oe.card, matched_per_probe, out_card, ie.plan->filters.size(),
              num_extra);
          const double total = oe.cost + join_cost;
          if (total >= best.cost) continue;
          auto node = std::make_unique<PlanNode>();
          node->type = PlanNode::Type::kJoin;
          node->join_method = JoinMethod::kIndexNestLoop;
          node->edge = edge;
          for (const auto& e : connecting) {
            if (e != edge) node->extra_edges.push_back(e);
          }
          node->left = oe.plan->Clone();
          node->right = ie.plan->Clone();
          node->table_mask = mask;
          node->estimated_card = out_card;
          node->estimated_cost = total;
          best.cost = total;
          best.card = out_card;
          best.plan = std::move(node);
          break;
        }
      }
    }
    if (best.plan == nullptr) {
      return Status::Internal("no join plan found for connected subset");
    }
    dp[mask] = std::move(best);
  }

  auto full_it = dp.find(query.FullMask());
  if (full_it == dp.end() || full_it->second.plan == nullptr) {
    return Status::Internal("planning failed for " + query.ToSql());
  }
  result.plan = std::move(full_it->second.plan);
  result.planning_seconds = total_watch.ElapsedSeconds();
  return result;
}

double Optimizer::RecostWithCards(
    const PlanNode& plan,
    const std::unordered_map<uint64_t, double>& cards) const {
  auto card_of = [&](const PlanNode& node) {
    auto it = cards.find(node.table_mask);
    return ClampCard(it != cards.end() ? it->second : node.estimated_card);
  };

  if (plan.IsScan()) {
    const Table& table = db_.TableOrDie(plan.table);
    const double table_rows = static_cast<double>(table.num_rows());
    if (plan.scan_method == ScanMethod::kIndexScan) {
      const double matched = table_rows / NdvOf(plan.table, plan.filters[0].column);
      return cost_.IndexScanCost(matched, plan.filters.size() - 1);
    }
    return cost_.SeqScanCost(table_rows, plan.filters.size());
  }

  const double left_cost = RecostWithCards(*plan.left, cards);
  const double out_card = card_of(plan);
  const double outer_card = card_of(*plan.left);
  const size_t num_extra = plan.extra_edges.size();

  if (plan.join_method == JoinMethod::kIndexNestLoop) {
    const std::string& inner_table = plan.right->table;
    const bool inner_is_left = plan.edge.left_table == inner_table;
    const std::string& inner_col =
        inner_is_left ? plan.edge.left_column : plan.edge.right_column;
    const Table& it_table = db_.TableOrDie(inner_table);
    const double matched_per_probe =
        static_cast<double>(it_table.num_rows()) / NdvOf(inner_table, inner_col);
    return left_cost + cost_.IndexNestLoopCost(outer_card, matched_per_probe,
                                               out_card,
                                               plan.right->filters.size(),
                                               num_extra);
  }

  const double right_cost = RecostWithCards(*plan.right, cards);
  const double inner_card = card_of(*plan.right);
  if (plan.join_method == JoinMethod::kHashJoin) {
    return left_cost + right_cost +
           cost_.HashJoinCost(outer_card, inner_card, out_card, num_extra);
  }
  return left_cost + right_cost +
         cost_.MergeJoinCost(outer_card, inner_card, out_card, num_extra);
}

}  // namespace cardbench
