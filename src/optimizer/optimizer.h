#ifndef CARDBENCH_OPTIMIZER_OPTIMIZER_H_
#define CARDBENCH_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cardest/estimator.h"
#include "common/status.h"
#include "exec/plan.h"
#include "optimizer/cost_model.h"
#include "query/query.h"
#include "query/query_graph.h"
#include "storage/catalog.h"

namespace cardbench {

/// Output of planning one query.
struct PlanResult {
  std::unique_ptr<PlanNode> plan;
  /// Total planning wall time (join enumeration + cardinality estimation),
  /// the paper's "plan time".
  double planning_seconds = 0.0;
  /// Portion of planning_seconds spent inside EstimateCard calls (the
  /// estimator's inference latency, §6.1).
  double estimation_seconds = 0.0;
  /// Number of sub-plan queries estimated.
  size_t num_estimates = 0;
  /// The injected cardinalities, keyed by table-subset bitmask. Used by the
  /// Q-Error analysis without re-invoking the estimator.
  std::unordered_map<uint64_t, double> injected_cards;
};

/// Cost-based query optimizer mirroring PostgreSQL's planner structure:
/// dynamic programming over connected table subsets (join order), physical
/// operator selection per join (hash / merge / index nested loop) and per
/// scan (seq / index), with every sub-plan cardinality obtained from an
/// injected CardinalityEstimator — the paper's evaluation mechanism (§4.2).
class Optimizer {
 public:
  explicit Optimizer(const Database& db, CostModel cost_model = CostModel());

  /// Plans the compiled query using cardinalities from `estimator` — the
  /// primary entry point: sub-plans dispatch as (graph, mask), split
  /// connectivity comes from adjacency bitmasks, and no Induced(mask)
  /// sub-query is ever materialized. Thread-safe: may be called
  /// concurrently from many threads sharing one Optimizer, one graph and
  /// one estimator (see the CardinalityEstimator thread-safety contract).
  Result<PlanResult> Plan(const QueryGraph& graph,
                          const CardinalityEstimator& estimator) const;

  /// Convenience: compiles `query` into a QueryGraph and plans it. The
  /// compile cost is counted in planning_seconds. Callers planning the same
  /// query repeatedly (the service, the harness) should compile once and
  /// use the graph overload.
  Result<PlanResult> Plan(const Query& query,
                          const CardinalityEstimator& estimator) const;

  /// The pre-QueryGraph planning path: string-based sub-queries via
  /// Induced(mask) and a per-split O(edges) connecting-edge scan. Kept as
  /// the reference for the planner parity suite and the micro benchmark;
  /// produces bit-identical plans, costs and injected cardinalities to the
  /// graph path.
  Result<PlanResult> PlanLegacy(const Query& query,
                                const CardinalityEstimator& estimator) const;

  /// Re-costs an existing plan shape under a different set of sub-plan
  /// cardinalities (bitmask-keyed). This is the PPC function of the P-Error
  /// metric: PPC(P(C_E), C_T) re-costs the estimate-chosen plan with true
  /// cardinalities. Masks absent from `cards` keep the plan's estimates.
  double RecostWithCards(const PlanNode& plan,
                         const std::unordered_map<uint64_t, double>& cards)
      const;

  const CostModel& cost_model() const { return cost_; }
  const Database& db() const { return db_; }

 private:
  /// Distinct-value count of a column, cached under its (table_id,
  /// column_id) pair (PostgreSQL keeps the same statistic in pg_stats; used
  /// for index-nested-loop costing).
  double NdvOf(int table_id, int column_id, const Table& table) const;
  /// Name-based resolution front-end for the legacy path and recosting
  /// (plan nodes carry names).
  double NdvOf(const std::string& table, const std::string& column) const;

  const Database& db_;
  CostModel cost_;
  std::unordered_map<std::string, int> table_ids_;
  mutable std::mutex ndv_mu_;
  mutable std::unordered_map<uint64_t, double> ndv_cache_;
};

}  // namespace cardbench

#endif  // CARDBENCH_OPTIMIZER_OPTIMIZER_H_
