#ifndef CARDBENCH_OPTIMIZER_OPTIMIZER_H_
#define CARDBENCH_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "cardest/estimator.h"
#include "common/status.h"
#include "exec/plan.h"
#include "optimizer/cost_model.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace cardbench {

/// Output of planning one query.
struct PlanResult {
  std::unique_ptr<PlanNode> plan;
  /// Total planning wall time (join enumeration + cardinality estimation),
  /// the paper's "plan time".
  double planning_seconds = 0.0;
  /// Portion of planning_seconds spent inside EstimateCard calls (the
  /// estimator's inference latency, §6.1).
  double estimation_seconds = 0.0;
  /// Number of sub-plan queries estimated.
  size_t num_estimates = 0;
  /// The injected cardinalities, keyed by table-subset bitmask. Used by the
  /// Q-Error analysis without re-invoking the estimator.
  std::unordered_map<uint64_t, double> injected_cards;
};

/// Cost-based query optimizer mirroring PostgreSQL's planner structure:
/// dynamic programming over connected table subsets (join order), physical
/// operator selection per join (hash / merge / index nested loop) and per
/// scan (seq / index), with every sub-plan cardinality obtained from an
/// injected CardinalityEstimator — the paper's evaluation mechanism (§4.2).
class Optimizer {
 public:
  explicit Optimizer(const Database& db, CostModel cost_model = CostModel())
      : db_(db), cost_(cost_model) {}

  /// Plans `query` using cardinalities from `estimator`. Thread-safe: may
  /// be called concurrently from many threads sharing one Optimizer and one
  /// estimator (see the CardinalityEstimator thread-safety contract).
  Result<PlanResult> Plan(const Query& query,
                          const CardinalityEstimator& estimator) const;

  /// Re-costs an existing plan shape under a different set of sub-plan
  /// cardinalities (bitmask-keyed). This is the PPC function of the P-Error
  /// metric: PPC(P(C_E), C_T) re-costs the estimate-chosen plan with true
  /// cardinalities. Masks absent from `cards` keep the plan's estimates.
  double RecostWithCards(const PlanNode& plan, const Query& query,
                         const std::unordered_map<uint64_t, double>& cards)
      const;

  const CostModel& cost_model() const { return cost_; }

 private:
  /// Distinct-value count of table.column, cached (PostgreSQL keeps the
  /// same statistic in pg_stats; used for index-nested-loop costing).
  double NdvOf(const std::string& table, const std::string& column) const;

  const Database& db_;
  CostModel cost_;
  mutable std::mutex ndv_mu_;
  mutable std::unordered_map<std::string, double> ndv_cache_;
};

}  // namespace cardbench

#endif  // CARDBENCH_OPTIMIZER_OPTIMIZER_H_
