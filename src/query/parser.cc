#include "query/parser.h"

#include <cctype>
#include <optional>

#include "common/str_util.h"

namespace cardbench {

namespace {

/// Minimal hand-rolled tokenizer for the benchmark SQL dialect.
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  /// Next token or empty string at end of input. Token classes: identifiers,
  /// integers (sign handled by the parser), punctuation, comparison ops.
  std::string Next() {
    SkipSpace();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return text_.substr(start, pos_ - start);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return text_.substr(start, pos_ - start);
    }
    // Two-character operators.
    if (pos_ + 1 < text_.size()) {
      const std::string two = text_.substr(pos_, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        pos_ += 2;
        return two == "!=" ? "<>" : two;
      }
    }
    ++pos_;
    return std::string(1, c);
  }

  std::string Peek() {
    const size_t saved = pos_;
    std::string tok = Next();
    pos_ = saved;
    return tok;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<CompareOp> ParseOp(const std::string& tok) {
  if (tok == "=") return CompareOp::kEq;
  if (tok == "<>") return CompareOp::kNeq;
  if (tok == "<") return CompareOp::kLt;
  if (tok == "<=") return CompareOp::kLe;
  if (tok == ">") return CompareOp::kGt;
  if (tok == ">=") return CompareOp::kGe;
  return Status::InvalidArgument("expected comparison operator, got '" + tok +
                                 "'");
}

bool IsIdentifier(const std::string& tok) {
  return !tok.empty() && (std::isalpha(static_cast<unsigned char>(tok[0])) ||
                          tok[0] == '_');
}

}  // namespace

Result<Query> ParseSql(const std::string& sql) {
  Tokenizer tok(sql);
  auto expect = [&](const std::string& want) -> Status {
    const std::string got = tok.Next();
    if (ToLower(got) != ToLower(want)) {
      return Status::InvalidArgument("expected '" + want + "', got '" + got +
                                     "'");
    }
    return Status::OK();
  };

  Query query;
  CARDBENCH_RETURN_IF_ERROR(expect("SELECT"));
  CARDBENCH_RETURN_IF_ERROR(expect("COUNT"));
  CARDBENCH_RETURN_IF_ERROR(expect("("));
  CARDBENCH_RETURN_IF_ERROR(expect("*"));
  CARDBENCH_RETURN_IF_ERROR(expect(")"));
  CARDBENCH_RETURN_IF_ERROR(expect("FROM"));

  // Table list.
  for (;;) {
    const std::string name = tok.Next();
    if (!IsIdentifier(name)) {
      return Status::InvalidArgument("expected table name, got '" + name +
                                     "'");
    }
    query.tables.push_back(name);
    const std::string sep = tok.Peek();
    if (sep == ",") {
      tok.Next();
      continue;
    }
    break;
  }

  const std::string after_from = tok.Peek();
  if (after_from.empty() || after_from == ";") return query;
  CARDBENCH_RETURN_IF_ERROR(expect("WHERE"));

  // Conjunction of conditions.
  for (;;) {
    // Left side: table.column
    const std::string lt = tok.Next();
    if (!IsIdentifier(lt)) {
      return Status::InvalidArgument("expected table name, got '" + lt + "'");
    }
    CARDBENCH_RETURN_IF_ERROR(expect("."));
    const std::string lc = tok.Next();
    if (!IsIdentifier(lc)) {
      return Status::InvalidArgument("expected column name, got '" + lc + "'");
    }
    CARDBENCH_ASSIGN_OR_RETURN(CompareOp op, ParseOp(tok.Next()));

    std::string rhs = tok.Next();
    bool negative = false;
    if (rhs == "-") {
      negative = true;
      rhs = tok.Next();
    }
    if (IsIdentifier(rhs)) {
      // Join condition: rhs must be table.column and op must be '='.
      if (op != CompareOp::kEq) {
        return Status::InvalidArgument(
            "non-equi joins are not supported (paper excludes them)");
      }
      CARDBENCH_RETURN_IF_ERROR(expect("."));
      const std::string rc = tok.Next();
      if (!IsIdentifier(rc)) {
        return Status::InvalidArgument("expected column name, got '" + rc +
                                       "'");
      }
      query.joins.push_back({lt, lc, rhs, rc});
    } else {
      // Filter predicate with integer literal.
      if (rhs.empty() ||
          !std::isdigit(static_cast<unsigned char>(rhs[0]))) {
        return Status::InvalidArgument("expected integer literal, got '" +
                                       rhs + "'");
      }
      Value value = static_cast<Value>(std::stoll(rhs));
      if (negative) value = -value;
      query.predicates.push_back({lt, lc, op, value});
    }

    const std::string next = tok.Peek();
    if (ToLower(next) == "and") {
      tok.Next();
      continue;
    }
    if (next.empty() || next == ";") break;
    return Status::InvalidArgument("unexpected token '" + next + "'");
  }
  return query;
}

Status ValidateQuery(const Query& query, const Database& db) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query references no tables");
  }
  for (const auto& table : query.tables) {
    if (db.FindTable(table) == nullptr) {
      return Status::NotFound("unknown table " + table);
    }
  }
  auto check_column = [&](const std::string& table,
                          const std::string& column) -> Status {
    if (query.TableIndex(table) < 0) {
      return Status::InvalidArgument("table " + table +
                                     " not in query FROM list");
    }
    const Table* t = db.FindTable(table);
    if (t == nullptr || !t->FindColumn(column).has_value()) {
      return Status::NotFound("unknown column " + table + "." + column);
    }
    return Status::OK();
  };
  for (const auto& join : query.joins) {
    CARDBENCH_RETURN_IF_ERROR(check_column(join.left_table, join.left_column));
    CARDBENCH_RETURN_IF_ERROR(
        check_column(join.right_table, join.right_column));
    if (join.left_table == join.right_table) {
      return Status::Unsupported("self joins are not supported: " +
                                 join.ToString());
    }
  }
  for (const auto& pred : query.predicates) {
    CARDBENCH_RETURN_IF_ERROR(check_column(pred.table, pred.column));
  }
  if (!query.IsConnected(query.FullMask())) {
    return Status::InvalidArgument(
        "join graph is disconnected (cross products not supported)");
  }
  return Status::OK();
}

}  // namespace cardbench
