#ifndef CARDBENCH_QUERY_PARSER_H_
#define CARDBENCH_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace cardbench {

/// Parses the SQL dialect used by the benchmark workloads:
///
///   SELECT COUNT(*) FROM posts, comments
///   WHERE posts.Id = comments.PostId AND posts.Score >= 3;
///
/// Only COUNT(*) select-project-join queries with conjunctive equi-joins and
/// integer comparison predicates are accepted — exactly the canonical query
/// class the paper evaluates (numeric/categorical predicates; no LIKE, no
/// disjunction, no cyclic constructs beyond what the table list implies).
Result<Query> ParseSql(const std::string& sql);

/// Checks that every table/column referenced by `query` exists in `db`, that
/// each join edge connects two distinct referenced tables, and that the join
/// graph is connected. Returns the first violation.
Status ValidateQuery(const Query& query, const Database& db);

}  // namespace cardbench

#endif  // CARDBENCH_QUERY_PARSER_H_
