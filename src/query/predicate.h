#ifndef CARDBENCH_QUERY_PREDICATE_H_
#define CARDBENCH_QUERY_PREDICATE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "storage/value.h"

namespace cardbench {

/// Comparison operator of a filter predicate. The paper's canonical query
/// form is a conjunction of per-attribute constraint regions; we support
/// the operators the STATS-CEB and JOB-LIGHT workloads use.
enum class CompareOp : uint8_t {
  kEq = 0,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// Text form of `op` ("=", "<>", "<", "<=", ">", ">=").
std::string CompareOpName(CompareOp op);

/// Applies `op` to a concrete value pair.
inline bool EvalCompare(Value lhs, CompareOp op, Value rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNeq: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
  }
  return false;
}

/// One filter predicate "table.column op value". SQL semantics: NULL
/// satisfies no predicate.
struct Predicate {
  std::string table;
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value = 0;

  /// "posts.Score >= 3" rendering.
  std::string ToString() const {
    return table + "." + column + " " + CompareOpName(op) + " " +
           std::to_string(value);
  }
};

/// Closed integer interval [lo, hi]; the canonical constraint region R_i of
/// the paper for ordered attributes. A predicate conjunction on one column
/// folds into one ValueRange (kNeq is approximated by the full range minus
/// a point, which estimators treat as range minus an equality estimate).
struct ValueRange {
  Value lo = std::numeric_limits<Value>::min();
  Value hi = std::numeric_limits<Value>::max();

  bool Contains(Value v) const { return v >= lo && v <= hi; }
  bool Empty() const { return lo > hi; }

  /// Intersects with the region admitted by `op value`.
  void Apply(CompareOp op, Value value) {
    switch (op) {
      case CompareOp::kEq:
        lo = std::max(lo, value);
        hi = std::min(hi, value);
        break;
      case CompareOp::kLt:
        hi = std::min(hi, value - 1);
        break;
      case CompareOp::kLe:
        hi = std::min(hi, value);
        break;
      case CompareOp::kGt:
        lo = std::max(lo, value + 1);
        break;
      case CompareOp::kGe:
        lo = std::max(lo, value);
        break;
      case CompareOp::kNeq:
        // Not representable as a single interval; handled upstream.
        break;
    }
  }
};

}  // namespace cardbench

#endif  // CARDBENCH_QUERY_PREDICATE_H_
