#include "query/query.h"

#include <algorithm>
#include <bit>

#include "common/str_util.h"

namespace cardbench {

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNeq: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

int Query::TableIndex(const std::string& table) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == table) return static_cast<int>(i);
  }
  return -1;
}

Query Query::Induced(uint64_t mask) const {
  Query sub;
  sub.name = name;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (mask & (uint64_t{1} << i)) sub.tables.push_back(tables[i]);
  }
  auto inside = [&](const std::string& t) {
    const int idx = TableIndex(t);
    return idx >= 0 && (mask & (uint64_t{1} << idx)) != 0;
  };
  for (const auto& join : joins) {
    if (inside(join.left_table) && inside(join.right_table)) {
      sub.joins.push_back(join);
    }
  }
  for (const auto& pred : predicates) {
    if (inside(pred.table)) sub.predicates.push_back(pred);
  }
  return sub;
}

bool Query::IsConnected(uint64_t mask) const {
  if (mask == 0) return false;
  // BFS over join edges restricted to the mask.
  const int start = std::countr_zero(mask);
  uint64_t visited = uint64_t{1} << start;
  uint64_t frontier = visited;
  while (frontier != 0) {
    uint64_t next = 0;
    for (const auto& join : joins) {
      const int li = TableIndex(join.left_table);
      const int ri = TableIndex(join.right_table);
      if (li < 0 || ri < 0) continue;
      const uint64_t lb = uint64_t{1} << li;
      const uint64_t rb = uint64_t{1} << ri;
      if ((mask & lb) == 0 || (mask & rb) == 0) continue;
      if ((frontier & lb) && !(visited & rb)) next |= rb;
      if ((frontier & rb) && !(visited & lb)) next |= lb;
    }
    visited |= next;
    frontier = next;
  }
  return visited == mask;
}

std::string Query::CanonicalKey() const {
  std::vector<std::string> parts;
  std::vector<std::string> sorted_tables = tables;
  std::sort(sorted_tables.begin(), sorted_tables.end());
  parts.push_back("T:" + Join(sorted_tables, ","));

  std::vector<std::string> join_strs;
  for (const auto& join : joins) {
    // Normalize edge orientation lexicographically.
    const std::string a = join.left_table + "." + join.left_column;
    const std::string b = join.right_table + "." + join.right_column;
    join_strs.push_back(a < b ? a + "=" + b : b + "=" + a);
  }
  std::sort(join_strs.begin(), join_strs.end());
  parts.push_back("J:" + Join(join_strs, ","));

  std::vector<std::string> pred_strs;
  for (const auto& pred : predicates) pred_strs.push_back(pred.ToString());
  std::sort(pred_strs.begin(), pred_strs.end());
  parts.push_back("P:" + Join(pred_strs, ","));
  return Join(parts, "|");
}

std::string Query::ToSql() const {
  std::string sql = "SELECT COUNT(*) FROM " + Join(tables, ", ");
  std::vector<std::string> conds;
  for (const auto& join : joins) conds.push_back(join.ToString());
  for (const auto& pred : predicates) conds.push_back(pred.ToString());
  if (!conds.empty()) sql += " WHERE " + Join(conds, " AND ");
  return sql + ";";
}

std::vector<uint64_t> EnumerateConnectedSubsets(const Query& query) {
  std::vector<uint64_t> subsets;
  const uint64_t full = query.FullMask();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (query.IsConnected(mask)) subsets.push_back(mask);
  }
  std::stable_sort(subsets.begin(), subsets.end(),
                   [](uint64_t a, uint64_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });
  return subsets;
}

}  // namespace cardbench
