#ifndef CARDBENCH_QUERY_QUERY_H_
#define CARDBENCH_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace cardbench {

/// One equi-join condition "left_table.left_column = right_table.right_column"
/// appearing in a query. Query-level edges are not restricted to schema
/// relations: FK-FK joins (e.g. comments.UserId = badges.UserId) are valid
/// edges even though the schema only records the PK-FK relations.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;

  std::string ToString() const {
    return left_table + "." + left_column + " = " + right_table + "." +
           right_column;
  }

  /// Field-wise equality (orientation-sensitive, like the ToString
  /// comparison it replaces in the optimizer's split loop — no string
  /// materialization).
  bool operator==(const JoinEdge& other) const {
    return left_table == other.left_table &&
           left_column == other.left_column &&
           right_table == other.right_table &&
           right_column == other.right_column;
  }
  bool operator!=(const JoinEdge& other) const { return !(*this == other); }
};

/// A COUNT(*) select-project-join query in the paper's canonical form:
/// a set of tables, a conjunction of equi-join edges, and a conjunction of
/// filter predicates. This is the unit the estimators see.
struct Query {
  /// Optional workload label (e.g. "STATS-CEB Q57").
  std::string name;
  /// Referenced tables; order defines the table indexes used by masks.
  std::vector<std::string> tables;
  std::vector<JoinEdge> joins;
  std::vector<Predicate> predicates;

  /// Index of `table` within `tables`, or -1.
  int TableIndex(const std::string& table) const;

  /// Bitmask with one bit per table, all set.
  uint64_t FullMask() const { return (uint64_t{1} << tables.size()) - 1; }

  /// The sub-query induced by the table subset `mask`: tables in the mask,
  /// join edges with both endpoints inside, predicates on inside tables.
  /// This is exactly the "sub-plan query" of the paper (§4.2).
  Query Induced(uint64_t mask) const;

  /// True if the tables in `mask` form a connected subgraph under `joins`.
  /// The optimizer only enumerates connected sub-plans.
  bool IsConnected(uint64_t mask) const;

  /// Canonical single-line key used to memoize true cardinalities.
  std::string CanonicalKey() const;

  /// SQL text ("SELECT COUNT(*) FROM ... WHERE ...").
  std::string ToSql() const;
};

/// All connected table subsets of `query` (the sub-plan query space of
/// §4.2), in increasing popcount order. Singletons are included.
std::vector<uint64_t> EnumerateConnectedSubsets(const Query& query);

}  // namespace cardbench

#endif  // CARDBENCH_QUERY_QUERY_H_
