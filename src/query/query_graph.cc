#include "query/query_graph.h"

#include <algorithm>
#include <bit>
#include <map>

#include "common/logging.h"
#include "common/str_util.h"

namespace cardbench {

QueryGraph::QueryGraph(const Query& query, const Database& db)
    : query_(query), db_(&db) {
  // --- Tables: intern names to global ids once. ---
  std::unordered_map<std::string, int> global_id;
  global_id.reserve(db.num_tables());
  for (size_t i = 0; i < db.table_names().size(); ++i) {
    global_id[db.table_names()[i]] = static_cast<int>(i);
  }
  std::unordered_map<std::string, int> local_id;
  tables_.reserve(query_.tables.size());
  for (size_t i = 0; i < query_.tables.size(); ++i) {
    const std::string& name = query_.tables[i];
    auto it = global_id.find(name);
    CARDBENCH_CHECK(it != global_id.end(), "query table '%s' not in database",
                    name.c_str());
    TableInfo info;
    info.name = name;
    info.table_id = it->second;
    info.table = &db.TableOrDie(name);
    tables_.push_back(std::move(info));
    local_id[name] = static_cast<int>(i);
  }

  // --- Predicates: pre-bind column slots. ---
  preds_.reserve(query_.predicates.size());
  for (const Predicate& pred : query_.predicates) {
    auto it = local_id.find(pred.table);
    CARDBENCH_CHECK(it != local_id.end(),
                    "predicate table '%s' not in query", pred.table.c_str());
    PredInfo info;
    info.local_table = it->second;
    TableInfo& owner = tables_[info.local_table];
    info.table_id = owner.table_id;
    info.column_id =
        static_cast<int>(owner.table->ColumnIndexOrDie(pred.column));
    info.column = &owner.table->column(info.column_id);
    info.pred = pred;
    owner.preds.push_back(pred);
    owner.pred_column_ids.push_back(info.column_id);
    preds_.push_back(std::move(info));
  }
  for (TableInfo& info : tables_) {
    info.compiled = CompilePredicates(*info.table, info.preds);
    // Group by column in column-name order, predicates keeping query order
    // within a group — the exact fold order of the string-keyed estimators
    // (they grouped through std::map<std::string, ...>).
    std::map<std::string, PredGroup> groups;
    for (size_t p = 0; p < info.preds.size(); ++p) {
      PredGroup& group = groups[info.preds[p].column];
      group.column = info.preds[p].column;
      group.column_id = info.pred_column_ids[p];
      group.preds.push_back(info.preds[p]);
    }
    info.pred_groups.reserve(groups.size());
    for (auto& [column, group] : groups) {
      info.pred_groups.push_back(std::move(group));
    }
  }

  // --- Join edges: id pairs + adjacency bitmasks. ---
  edges_.reserve(query_.joins.size());
  for (const JoinEdge& edge : query_.joins) {
    auto lit = local_id.find(edge.left_table);
    auto rit = local_id.find(edge.right_table);
    CARDBENCH_CHECK(lit != local_id.end() && rit != local_id.end(),
                    "join edge '%s' references a table not in the query",
                    edge.ToString().c_str());
    EdgeInfo info;
    info.left_local = lit->second;
    info.right_local = rit->second;
    info.left_table_id = tables_[info.left_local].table_id;
    info.right_table_id = tables_[info.right_local].table_id;
    info.left_table = tables_[info.left_local].table;
    info.right_table = tables_[info.right_local].table;
    info.left_column_id = static_cast<int>(
        info.left_table->ColumnIndexOrDie(edge.left_column));
    info.right_column_id = static_cast<int>(
        info.right_table->ColumnIndexOrDie(edge.right_column));
    info.left_column = &info.left_table->column(info.left_column_id);
    info.right_column = &info.right_table->column(info.right_column_id);
    info.left_bit = uint64_t{1} << info.left_local;
    info.right_bit = uint64_t{1} << info.right_local;
    info.mask = info.left_bit | info.right_bit;
    const std::string a = edge.left_table + "." + edge.left_column;
    const std::string b = edge.right_table + "." + edge.right_column;
    info.canonical = a < b ? a + "=" + b : b + "=" + a;
    info.edge = &edge;  // stable: query_.joins never reallocates again
    tables_[info.left_local].adjacency |= uint64_t{1} << info.right_local;
    tables_[info.right_local].adjacency |= uint64_t{1} << info.left_local;
    edges_.push_back(std::move(info));
  }

  // --- Sub-plan space: connected subsets, induced queries, keys. ---
  const uint64_t full = full_mask();
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (IsConnected(mask)) connected_subsets_.push_back(mask);
  }
  std::stable_sort(connected_subsets_.begin(), connected_subsets_.end(),
                   [](uint64_t a, uint64_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });
  subplans_.reserve(connected_subsets_.size());
  subplan_slot_.reserve(connected_subsets_.size());
  for (uint64_t mask : connected_subsets_) {
    SubplanSlot slot;
    slot.induced = query_.Induced(mask);
    slot.canonical_key = slot.induced.CanonicalKey();
    subplan_slot_[mask] = subplans_.size();
    subplans_.push_back(std::move(slot));
  }
  fingerprint_ = Fnv1aHash(query_.CanonicalKey());
}

uint64_t QueryGraph::AdjacencyOf(uint64_t mask) const {
  uint64_t adjacent = 0;
  for (uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    adjacent |= tables_[std::countr_zero(rest)].adjacency;
  }
  return adjacent;
}

bool QueryGraph::IsConnected(uint64_t mask) const {
  if (mask == 0) return false;
  uint64_t visited = uint64_t{1} << std::countr_zero(mask);
  for (;;) {
    const uint64_t next = (AdjacencyOf(visited) & mask) | visited;
    if (next == visited) break;
    visited = next;
  }
  return visited == mask;
}

const QueryGraph::SubplanSlot& QueryGraph::SlotFor(uint64_t mask) const {
  auto it = subplan_slot_.find(mask);
  CARDBENCH_CHECK(it != subplan_slot_.end(),
                  "mask %llu is not a connected sub-plan of this query",
                  static_cast<unsigned long long>(mask));
  return subplans_[it->second];
}

const Query& QueryGraph::InducedRef(uint64_t mask) const {
  return SlotFor(mask).induced;
}

const std::string& QueryGraph::CanonicalKey(uint64_t mask) const {
  return SlotFor(mask).canonical_key;
}

}  // namespace cardbench
