#ifndef CARDBENCH_QUERY_QUERY_GRAPH_H_
#define CARDBENCH_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "storage/catalog.h"
#include "storage/filter.h"

namespace cardbench {

/// A per-query compiled IR, built once after parsing and shared read-only by
/// every layer that touches sub-plans: the optimizer's DP, the estimators'
/// per-sub-plan dispatch, the service cache and the P-Error recosting.
///
/// Construction resolves every name exactly once — table names to global
/// table ids (the table's index in Database::table_names() order) and
/// Table pointers, predicate/join columns to column ids and Column pointers
/// — and precomputes what the planning loop otherwise recomputes per
/// (estimator x sub-plan): per-table adjacency bitmasks, the connected
/// subset enumeration, the induced sub-query and its canonical key per
/// connected mask, and a stable 64-bit fingerprint of the whole query.
///
/// The graph deliberately stores *no* data statistics (NDV, null fractions,
/// histograms): those live in the table indexes and estimator models and
/// may change under data updates; the graph only pins identities, so it
/// stays valid across appends to the underlying tables.
///
/// Thread-safety: immutable after construction; safe to share across the
/// service's worker threads without locking. Non-copyable and non-movable
/// so internal pointers (into the owned Query copy) can never dangle.
class QueryGraph {
 public:
  /// One resolved predicate of the query, in query order.
  struct PredInfo {
    int local_table = -1;     ///< index into the query's `tables`
    int table_id = -1;        ///< global id: index in db.table_names()
    int column_id = -1;       ///< column index within the table
    const Column* column = nullptr;
    Predicate pred;           ///< the original predicate, verbatim
  };

  /// Predicates of one table that filter the same column, sorted by column
  /// name across groups (the iteration order the string-keyed estimators
  /// used, preserved so floating-point products fold identically).
  struct PredGroup {
    std::string column;
    int column_id = -1;
    std::vector<Predicate> preds;  ///< original query order within the column
  };

  /// One resolved table of the query, in query order (local id = index).
  struct TableInfo {
    std::string name;
    int table_id = -1;            ///< global id: index in db.table_names()
    const Table* table = nullptr;
    uint64_t adjacency = 0;       ///< local-id bitmask of join neighbours
    std::vector<Predicate> preds;         ///< this table's filters, query order
    std::vector<int> pred_column_ids;     ///< column id per entry of `preds`
    std::vector<CompiledPredicate> compiled;  ///< `preds` bound to base columns
    std::vector<PredGroup> pred_groups;
  };

  /// One resolved join edge, in query order.
  struct EdgeInfo {
    int left_local = -1;
    int right_local = -1;
    int left_table_id = -1;
    int right_table_id = -1;
    int left_column_id = -1;
    int right_column_id = -1;
    const Table* left_table = nullptr;
    const Table* right_table = nullptr;
    const Column* left_column = nullptr;
    const Column* right_column = nullptr;
    uint64_t mask = 0;            ///< (1 << left_local) | (1 << right_local)
    uint64_t left_bit = 0;        ///< 1 << left_local
    uint64_t right_bit = 0;       ///< 1 << right_local
    std::string canonical;        ///< endpoint-sorted "a.b=c.d"
    const JoinEdge* edge = nullptr;  ///< the original edge, inside query()
  };

  /// Dies (CHECK) on a table or column name that does not resolve against
  /// `db` — a graph only exists for validated queries.
  QueryGraph(const Query& query, const Database& db);

  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;

  const Query& query() const { return query_; }
  const Database& db() const { return *db_; }

  size_t num_tables() const { return tables_.size(); }
  uint64_t full_mask() const { return (uint64_t{1} << tables_.size()) - 1; }
  const TableInfo& table(size_t local) const { return tables_[local]; }
  const std::vector<TableInfo>& tables() const { return tables_; }
  const std::vector<EdgeInfo>& edges() const { return edges_; }
  const std::vector<PredInfo>& predicates() const { return preds_; }

  /// Union of the adjacency masks of the tables in `mask`: every local
  /// table one join edge away from the set. A split (outer, inner) has a
  /// connecting edge iff `AdjacencyOf(outer) & inner` is non-empty — the
  /// O(1) pre-check that replaces the per-split O(edges) scan.
  uint64_t AdjacencyOf(uint64_t mask) const;

  /// True if the tables in `mask` form a connected subgraph (bitmask BFS
  /// over adjacency masks; no name resolution).
  bool IsConnected(uint64_t mask) const;

  /// All connected table subsets in increasing popcount order — identical
  /// to EnumerateConnectedSubsets(query()), enumerated once at build time.
  const std::vector<uint64_t>& connected_subsets() const {
    return connected_subsets_;
  }

  /// The sub-query induced by a *connected* `mask`, precomputed — byte-for-
  /// byte equal to query().Induced(mask). Dies on a non-connected mask (no
  /// caller dispatches a disconnected sub-plan).
  const Query& InducedRef(uint64_t mask) const;

  /// The induced sub-query for any mask (copies; prefer InducedRef).
  Query InducedQuery(uint64_t mask) const { return query_.Induced(mask); }

  /// Canonical key of the sub-plan `mask` (connected masks only),
  /// precomputed — byte-for-byte equal to query().Induced(mask)
  /// .CanonicalKey(), so hash-seeded samplers and the true-cardinality
  /// disk cache see exactly the keys the string path produced.
  const std::string& CanonicalKey(uint64_t mask) const;

  /// Stable 64-bit fingerprint of the whole query: FNV-1a of the full-mask
  /// canonical key. Equal queries (up to table/join/predicate order) agree;
  /// the service cache keys sub-plan estimates on (estimator, fingerprint,
  /// mask).
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct SubplanSlot {
    Query induced;
    std::string canonical_key;
  };

  const SubplanSlot& SlotFor(uint64_t mask) const;

  Query query_;  // owned copy; EdgeInfo::edge points into its joins
  const Database* db_;
  std::vector<TableInfo> tables_;
  std::vector<EdgeInfo> edges_;
  std::vector<PredInfo> preds_;
  std::vector<uint64_t> connected_subsets_;
  std::vector<SubplanSlot> subplans_;                // one per connected mask
  std::unordered_map<uint64_t, size_t> subplan_slot_;  // mask -> subplans_ idx
  uint64_t fingerprint_ = 0;
};

}  // namespace cardbench

#endif  // CARDBENCH_QUERY_QUERY_GRAPH_H_
