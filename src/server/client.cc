#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/str_util.h"

namespace cardbench {

namespace {

Result<int> OpenConnection(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IOError(StrFormat(
        "connect %s:%u: %s", host.c_str(), port, std::strerror(errno)));
    close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

CardClient::~CardClient() { Close(); }

CardClient::CardClient(CardClient&& other) noexcept
    : fd_(other.fd_),
      reader_(std::move(other.reader_)),
      next_id_(other.next_id_) {
  other.fd_ = -1;
}

CardClient& CardClient::operator=(CardClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    next_id_ = other.next_id_;
    other.fd_ = -1;
  }
  return *this;
}

Status CardClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::AlreadyExists("client already connected");
  CARDBENCH_ASSIGN_OR_RETURN(fd_, OpenConnection(host, port));
  return Status::OK();
}

void CardClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  reader_ = FrameReader();
}

Result<ServerResponse> CardClient::Call(const ServerRequest& request) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  ServerRequest sent = request;
  if (sent.id == 0) sent.id = next_id_++;

  Status io = SendAll(fd_, EncodeFrame(EncodeRequest(sent)));
  if (!io.ok()) {
    Close();
    return io;
  }

  std::string payload;
  for (;;) {
    const Status next = reader_.Next(&payload);
    if (next.ok()) break;
    if (next.code() != StatusCode::kNotFound) {
      Close();
      return Status::IOError("malformed response frame from server");
    }
    char buf[16 << 10];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IOError("server closed the connection mid-call");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
      Close();
      return status;
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }

  CARDBENCH_ASSIGN_OR_RETURN(ServerResponse response,
                             DecodeResponse(payload));
  // Frame-decode errors answered in-band carry id 0; anything else must
  // echo the id of the one request outstanding on this connection.
  if (response.id != 0 && response.id != sent.id) {
    Close();
    return Status::IOError(
        StrFormat("response id %llu does not match request id %llu",
                  static_cast<unsigned long long>(response.id),
                  static_cast<unsigned long long>(sent.id)));
  }
  return response;
}

Result<std::string> FetchServerMetrics(const std::string& host, uint16_t port,
                                       const std::string& path) {
  CARDBENCH_ASSIGN_OR_RETURN(const int fd, OpenConnection(host, port));
  const std::string request =
      StrFormat("GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n",
                path.c_str(), host.c_str());
  Status io = SendAll(fd, request);
  if (!io.ok()) {
    close(fd);
    return io;
  }
  std::string raw;
  char buf[16 << 10];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
      close(fd);
      return status;
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IOError("truncated HTTP response from metrics endpoint");
  }
  const size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::IOError("metrics endpoint answered: " + status_line);
  }
  return raw.substr(header_end + 4);
}

SocketEstimateBackend::SocketEstimateBackend(std::string host, uint16_t port,
                                             std::vector<std::string> sqls)
    : host_(std::move(host)), port_(port), sqls_(std::move(sqls)) {}

Result<std::unique_ptr<CardClient>> SocketEstimateBackend::AcquireClient() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      std::unique_ptr<CardClient> client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  auto client = std::make_unique<CardClient>();
  CARDBENCH_RETURN_IF_ERROR(client->Connect(host_, port_));
  return client;
}

void SocketEstimateBackend::ReleaseClient(
    std::unique_ptr<CardClient> client) {
  if (client == nullptr || !client->connected()) return;  // broken: drop
  std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.push_back(std::move(client));
}

Status SocketEstimateBackend::Validate(const std::string& estimator) {
  if (estimator.empty()) {
    return Status::InvalidArgument("estimator name is empty");
  }
  // Reachability probe; an unknown estimator surfaces on the first call as
  // a structured NotFound response.
  CARDBENCH_ASSIGN_OR_RETURN(std::unique_ptr<CardClient> client,
                             AcquireClient());
  ReleaseClient(std::move(client));
  return Status::OK();
}

BackendCallResult SocketEstimateBackend::EstimateQuery(
    const std::string& estimator, size_t query_index,
    double timeout_seconds) {
  BackendCallResult result;
  if (query_index >= sqls_.size()) {
    result.status = Status::OutOfRange("query index out of range");
    return result;
  }
  auto acquired = AcquireClient();
  if (!acquired.ok()) {
    result.status = acquired.status();
    return result;
  }
  std::unique_ptr<CardClient> client = std::move(*acquired);

  ServerRequest request;
  request.estimator = estimator;
  request.sql = sqls_[query_index];
  request.deadline_ms = timeout_seconds * 1e3;
  auto response = client->Call(request);
  ReleaseClient(std::move(client));
  if (!response.ok()) {
    result.status = response.status();
    return result;
  }
  result.status = response->ToStatus();
  result.estimates = response->cards.size();
  result.cache_hits = response->cache_hits;
  result.cache_misses = response->cache_misses;
  cache_hits_.fetch_add(response->cache_hits, std::memory_order_relaxed);
  cache_misses_.fetch_add(response->cache_misses,
                          std::memory_order_relaxed);
  return result;
}

EstimateCacheStats SocketEstimateBackend::cache_stats() const {
  EstimateCacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cardbench
