#ifndef CARDBENCH_SERVER_CLIENT_H_
#define CARDBENCH_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "service/load_driver.h"

namespace cardbench {

/// Blocking client for one cardserved connection. Not thread-safe: a
/// connection carries one caller's requests (use one client per load-driver
/// thread, or the pool inside SocketEstimateBackend).
class CardClient {
 public:
  CardClient() = default;
  ~CardClient();

  CardClient(const CardClient&) = delete;
  CardClient& operator=(const CardClient&) = delete;
  CardClient(CardClient&& other) noexcept;
  CardClient& operator=(CardClient&& other) noexcept;

  /// Opens the TCP connection. Fails on unreachable host/port.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends `request` and blocks for its response (requests and responses
  /// are matched 1:1 on a client connection — no pipelining here). A
  /// transport failure closes the connection and returns IOError; protocol-
  /// level errors (rejection, deadline, bad SQL) come back as a decoded
  /// ServerResponse with its structured code instead.
  Result<ServerResponse> Call(const ServerRequest& request);

  void Close();

 private:
  int fd_ = -1;
  FrameReader reader_;
  uint64_t next_id_ = 1;
};

/// One-shot HTTP GET against the server's metrics endpoint ("/metrics" or
/// "/metrics.json"); returns the response body. Opens its own connection —
/// the server treats HTTP probes as connection-per-request.
Result<std::string> FetchServerMetrics(const std::string& host, uint16_t port,
                                       const std::string& path = "/metrics");

/// LoadDriver backend that speaks the wire protocol to a remote cardserved
/// instead of an in-process EstimationService — the socket-client mode of
/// the load driver. Thread-safe: concurrent EstimateQuery calls each borrow
/// a pooled connection (grown on demand, capped only by use).
///
/// Cache statistics are accumulated from the per-response hit/miss counters
/// (the server owns the cache; the client only observes per-request
/// deltas), so LoadReport cache numbers remain comparable with in-process
/// runs.
class SocketEstimateBackend : public EstimateBackend {
 public:
  /// `sqls` is the workload: query text sent to the server, which compiles
  /// each once into its graph LRU.
  SocketEstimateBackend(std::string host, uint16_t port,
                        std::vector<std::string> sqls);

  size_t num_queries() const override { return sqls_.size(); }

  Status Validate(const std::string& estimator) override;

  BackendCallResult EstimateQuery(const std::string& estimator,
                                  size_t query_index,
                                  double timeout_seconds) override;

  EstimateCacheStats cache_stats() const override;

 private:
  Result<std::unique_ptr<CardClient>> AcquireClient();
  void ReleaseClient(std::unique_ptr<CardClient> client);

  const std::string host_;
  const uint16_t port_;
  const std::vector<std::string> sqls_;

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<CardClient>> pool_;

  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVER_CLIENT_H_
