#include "server/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/str_util.h"

namespace cardbench {

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN and negatives clamp to 0
  size_t index = 0;
  if (seconds > kMinSeconds) {
    index = static_cast<size_t>(
        std::ceil(std::log10(seconds / kMinSeconds) * kBucketsPerDecade));
    if (index >= kNumBuckets) index = kNumBuckets - 1;
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

double LatencyHistogram::BucketUpperBound(size_t index) {
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(index) / kBucketsPerDecade);
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank && seen > 0) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void ServerMetrics::RecordLatency(const std::string& estimator,
                                  double seconds) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = latency_.find(estimator);
    if (it != latency_.end()) {
      it->second->Record(seconds);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = latency_[estimator];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  slot->Record(seconds);
}

std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
ServerMetrics::LatencySnapshots() const {
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(latency_.size());
    for (const auto& [name, histogram] : latency_) {
      out.emplace_back(name, histogram->TakeSnapshot());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ServerMetrics::RecordRefresh(const std::string& estimator,
                                  uint64_t model_version, double seconds) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  RefreshStats& stats = refresh_[estimator];
  stats.count += 1;
  stats.total_seconds += seconds;
  stats.last_seconds = seconds;
  stats.last_version = model_version;
  stats.last_refresh = std::chrono::steady_clock::now();
}

std::vector<std::pair<std::string, ServerMetrics::RefreshStats>>
ServerMetrics::RefreshSnapshots() const {
  std::vector<std::pair<std::string, RefreshStats>> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(refresh_.size());
    for (const auto& [name, stats] : refresh_) out.emplace_back(name, stats);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

namespace {

double StalenessSeconds(const ServerMetrics::RefreshStats& stats) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       stats.last_refresh)
      .count();
}

void AppendCounter(const char* name, uint64_t value, std::string* out) {
  out->append(name);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->push_back('\n');
}

constexpr double kQuantiles[] = {0.5, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.99", "0.999"};

}  // namespace

std::string ServerMetrics::RenderText(const ServerGauges& gauges) const {
  std::string out;
  out.reserve(2048);
  const ServerCounters& c = counters_;
  AppendCounter("cardserved_connections_opened_total",
                c.connections_opened.load(), &out);
  AppendCounter("cardserved_connections_closed_total",
                c.connections_closed.load(), &out);
  AppendCounter("cardserved_requests_total", c.requests_received.load(), &out);
  AppendCounter("cardserved_responses_total", c.responses_sent.load(), &out);
  AppendCounter("cardserved_completed_total", c.completed.load(), &out);
  AppendCounter("cardserved_rejected_total", c.rejected.load(), &out);
  AppendCounter("cardserved_deadline_exceeded_total",
                c.deadline_exceeded.load(), &out);
  AppendCounter("cardserved_failed_total", c.failed.load(), &out);
  AppendCounter("cardserved_malformed_frames_total",
                c.malformed_frames.load(), &out);
  AppendCounter("cardserved_http_requests_total", c.http_requests.load(),
                &out);
  AppendCounter("cardserved_bytes_read_total", c.bytes_read.load(), &out);
  AppendCounter("cardserved_bytes_written_total", c.bytes_written.load(),
                &out);
  AppendCounter("cardserved_queue_depth", gauges.queue_depth, &out);
  AppendCounter("cardserved_queue_capacity", gauges.queue_capacity, &out);
  AppendCounter("cardserved_in_flight", gauges.in_flight, &out);
  AppendCounter("cardserved_open_connections", gauges.open_connections,
                &out);
  AppendCounter("cardserved_cache_hits_total", gauges.cache.hits, &out);
  AppendCounter("cardserved_cache_misses_total", gauges.cache.misses, &out);
  AppendCounter("cardserved_cache_evictions_total", gauges.cache.evictions,
                &out);
  out += StrFormat("cardserved_cache_hit_rate %.6f\n",
                   gauges.cache.HitRate());
  for (const auto& [name, snap] : LatencySnapshots()) {
    for (size_t q = 0; q < 3; ++q) {
      out += StrFormat(
          "cardserved_latency_seconds{estimator=\"%s\",quantile=\"%s\"} "
          "%.9f\n",
          name.c_str(), kQuantileLabels[q], snap.Quantile(kQuantiles[q]));
    }
    out += StrFormat("cardserved_latency_seconds_count{estimator=\"%s\"} "
                     "%llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(snap.count));
    out += StrFormat("cardserved_latency_seconds_sum{estimator=\"%s\"} "
                     "%.9f\n",
                     name.c_str(), snap.sum_seconds);
  }
  for (const auto& [name, stats] : RefreshSnapshots()) {
    out += StrFormat("cardserved_model_version{estimator=\"%s\"} %llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(stats.last_version));
    out += StrFormat("cardserved_model_refresh_total{estimator=\"%s\"} "
                     "%llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(stats.count));
    out += StrFormat(
        "cardserved_model_refresh_seconds_total{estimator=\"%s\"} %.6f\n",
        name.c_str(), stats.total_seconds);
    out += StrFormat(
        "cardserved_model_staleness_seconds{estimator=\"%s\"} %.3f\n",
        name.c_str(), StalenessSeconds(stats));
  }
  return out;
}

std::string ServerMetrics::RenderJson(const ServerGauges& gauges) const {
  const ServerCounters& c = counters_;
  std::string out = "{";
  auto field = [&out](const char* key, uint64_t value, bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  field("connections_opened", c.connections_opened.load(), true);
  field("connections_closed", c.connections_closed.load());
  field("requests", c.requests_received.load());
  field("responses", c.responses_sent.load());
  field("completed", c.completed.load());
  field("rejected", c.rejected.load());
  field("deadline_exceeded", c.deadline_exceeded.load());
  field("failed", c.failed.load());
  field("malformed_frames", c.malformed_frames.load());
  field("http_requests", c.http_requests.load());
  field("bytes_read", c.bytes_read.load());
  field("bytes_written", c.bytes_written.load());
  field("queue_depth", gauges.queue_depth);
  field("queue_capacity", gauges.queue_capacity);
  field("in_flight", gauges.in_flight);
  field("open_connections", gauges.open_connections);
  field("cache_hits", gauges.cache.hits);
  field("cache_misses", gauges.cache.misses);
  field("cache_evictions", gauges.cache.evictions);
  out += StrFormat(",\"cache_hit_rate\":%.6f", gauges.cache.HitRate());
  out += ",\"latency\":{";
  bool first_estimator = true;
  for (const auto& [name, snap] : LatencySnapshots()) {
    if (!first_estimator) out += ",";
    first_estimator = false;
    out += "\"";
    out += name;  // estimator names are identifier-like; no escaping needed
    out += StrFormat("\":{\"count\":%llu,\"mean_us\":%.3f,"
                     "\"p50_us\":%.3f,\"p99_us\":%.3f,\"p999_us\":%.3f}",
                     static_cast<unsigned long long>(snap.count),
                     snap.MeanSeconds() * 1e6, snap.Quantile(0.5) * 1e6,
                     snap.Quantile(0.99) * 1e6, snap.Quantile(0.999) * 1e6);
  }
  out += "},\"models\":{";
  bool first_model = true;
  for (const auto& [name, stats] : RefreshSnapshots()) {
    if (!first_model) out += ",";
    first_model = false;
    out += "\"";
    out += name;  // estimator names are identifier-like; no escaping needed
    out += StrFormat(
        "\":{\"version\":%llu,\"refreshes\":%llu,"
        "\"refresh_seconds_total\":%.6f,\"last_refresh_seconds\":%.6f,"
        "\"staleness_seconds\":%.3f}",
        static_cast<unsigned long long>(stats.last_version),
        static_cast<unsigned long long>(stats.count), stats.total_seconds,
        stats.last_seconds, StalenessSeconds(stats));
  }
  out += "}}";
  return out;
}

Status ServerMetrics::WriteJsonSnapshot(const std::string& path,
                                        const ServerGauges& gauges) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out << RenderJson(gauges) << "\n";
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace cardbench
