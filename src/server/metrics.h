#ifndef CARDBENCH_SERVER_METRICS_H_
#define CARDBENCH_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "service/estimate_cache.h"

namespace cardbench {

/// Lock-free latency histogram: atomic counters over log-spaced buckets,
/// 12 buckets per decade from 1us to ~100s (96 buckets total). Record is a
/// single relaxed fetch_add on the hot path — cheap enough to sit on every
/// served request — and quantiles are reconstructed from the buckets at
/// render time (upper-bound convention, so reported tails never understate).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 96;
  static constexpr double kBucketsPerDecade = 12.0;
  static constexpr double kMinSeconds = 1e-6;

  /// Records one latency observation (relaxed atomics; thread-safe).
  void Record(double seconds);

  /// Upper bound of bucket `index` in seconds.
  static double BucketUpperBound(size_t index);

  /// Consistent-enough copy for rendering (buckets are read individually;
  /// concurrent Records may straddle the copy, which only ever misattributes
  /// a handful of in-flight observations, never loses recorded ones).
  struct Snapshot {
    uint64_t count = 0;
    double sum_seconds = 0.0;
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Latency quantile q in [0,1] by cumulative bucket walk; returns the
    /// bucket upper bound containing the q-th observation (0 when empty).
    double Quantile(double q) const;
    double MeanSeconds() const {
      return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
    }
  };
  Snapshot TakeSnapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  /// Sum in nanoseconds so it can live in a lock-free integer atomic.
  std::atomic<uint64_t> sum_nanos_{0};
};

/// Monotonic counters of the serving loop. All relaxed atomics: the metrics
/// plane never takes a lock on the request path.
struct ServerCounters {
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> requests_received{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> completed{0};         ///< status OK
  std::atomic<uint64_t> rejected{0};          ///< ResourceExhausted (admission)
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> failed{0};            ///< every other non-OK status
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> http_requests{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

/// Point-in-time gauges sampled at render time (the server owns the
/// authoritative sources: service queue, estimate cache, in-flight set).
struct ServerGauges {
  uint64_t queue_depth = 0;
  uint64_t queue_capacity = 0;
  uint64_t in_flight = 0;
  uint64_t open_connections = 0;
  EstimateCacheStats cache;
};

/// The observability plane of cardserved: counters + per-estimator latency
/// histograms, rendered either as a Prometheus-style text page
/// (`GET /metrics`) or as a JSON snapshot (periodically written to disk for
/// run_all_benches.sh to collect).
class ServerMetrics {
 public:
  /// Records one finished request for `estimator` (latency = admission to
  /// response marshalling). Creates the histogram on first sight of the
  /// name; the read path afterwards is a shared-lock map probe plus atomic
  /// bucket increments.
  void RecordLatency(const std::string& estimator, double seconds);

  ServerCounters& counters() { return counters_; }
  const ServerCounters& counters() const { return counters_; }

  /// Latency snapshot per estimator, name-sorted for stable output.
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
  LatencySnapshots() const;

  /// Records one model refresh or hot-swap: the new live version and the
  /// wall-clock the refresh took. Fed by the service's refresh listener;
  /// rare (per refresh, not per request), so it takes the writer lock.
  void RecordRefresh(const std::string& estimator, uint64_t model_version,
                     double seconds);

  /// Per-estimator model lifecycle state for the exposition endpoints.
  struct RefreshStats {
    uint64_t count = 0;
    double total_seconds = 0.0;
    double last_seconds = 0.0;
    uint64_t last_version = 0;
    std::chrono::steady_clock::time_point last_refresh{};
  };

  /// Refresh snapshot per estimator, name-sorted for stable output.
  std::vector<std::pair<std::string, RefreshStats>> RefreshSnapshots() const;

  /// Prometheus-style exposition text (counters, gauges, quantiles
  /// 0.5/0.99/0.999 per estimator).
  std::string RenderText(const ServerGauges& gauges) const;

  /// The same data as one JSON object.
  std::string RenderJson(const ServerGauges& gauges) const;

  /// Atomically replaces `path` with the current JSON snapshot
  /// (write-temp-then-rename, so collectors never read a torn file).
  Status WriteJsonSnapshot(const std::string& path,
                           const ServerGauges& gauges) const;

 private:
  ServerCounters counters_;
  mutable std::shared_mutex mu_;  ///< guards the map shape, not the buckets
  std::unordered_map<std::string, std::unique_ptr<LatencyHistogram>>
      latency_;
  std::unordered_map<std::string, RefreshStats> refresh_;  ///< also under mu_
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVER_METRICS_H_
