#include "server/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/str_util.h"

namespace cardbench {
namespace {

// ---------------------------------------------------------------------------
// JSON writing. The protocol only ever emits flat objects plus one nested
// map of numeric strings to doubles, so a couple of append helpers beat a
// general document model.
// ---------------------------------------------------------------------------

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double value, std::string* out) {
  // %.17g round-trips every finite double; the parity discipline of the
  // repo (bit-identical estimates across paths) extends to the wire.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

// ---------------------------------------------------------------------------
// JSON parsing: a minimal strict recursive-descent parser covering exactly
// what the protocol emits (objects, strings, numbers, booleans, null,
// arrays). Depth-capped; trailing garbage is an error.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 16;

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(c == 't', out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      std::string key;
      CARDBENCH_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (Peek() != ':') return Status::InvalidArgument("expected ':'");
      ++pos_;
      JsonValue value;
      CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      CARDBENCH_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (Peek() != '"') return Status::InvalidArgument("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Status::InvalidArgument("bad \\u escape");
          }
          // The protocol only escapes control characters; decode the BMP
          // code point as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape in string");
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Status ParseKeyword(bool value, JsonValue* out) {
    const char* word = value ? "true" : "false";
    const size_t len = value ? 4 : 5;
    if (text_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument("bad JSON keyword");
    }
    pos_ += len;
    out->kind = JsonValue::Kind::kBool;
    out->boolean = value;
    return Status::OK();
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") != 0) {
      return Status::InvalidArgument("bad JSON keyword");
    }
    pos_ += 4;
    out->kind = JsonValue::Kind::kNull;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return Status::InvalidArgument("expected JSON number");
    pos_ += static_cast<size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kNumber
             ? value->number
             : fallback;
}

std::string StringOr(const JsonValue* value, std::string fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kString
             ? value->string
             : fallback;
}

}  // namespace

StatusCode StatusCodeFromName(const std::string& name) {
  static const std::unordered_map<std::string, StatusCode> kCodes = [] {
    std::unordered_map<std::string, StatusCode> codes;
    for (StatusCode code : {
             StatusCode::kOk, StatusCode::kInvalidArgument,
             StatusCode::kNotFound, StatusCode::kAlreadyExists,
             StatusCode::kOutOfRange, StatusCode::kUnsupported,
             StatusCode::kInternal, StatusCode::kIOError,
             StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
             StatusCode::kUnavailable}) {
      codes.emplace(StatusCodeName(code), code);
    }
    return codes;
  }();
  auto it = kCodes.find(name);
  return it == kCodes.end() ? StatusCode::kInternal : it->second;
}

std::string EncodeRequest(const ServerRequest& request) {
  std::string out = "{\"id\":";
  out += std::to_string(request.id);
  out += ",\"estimator\":";
  AppendJsonString(request.estimator, &out);
  out += ",\"sql\":";
  AppendJsonString(request.sql, &out);
  if (request.subplan_mask != 0) {
    out += ",\"mask\":";
    out += std::to_string(request.subplan_mask);
  }
  if (request.deadline_ms > 0.0) {
    out += ",\"deadline_ms\":";
    AppendJsonDouble(request.deadline_ms, &out);
  }
  out += "}";
  return out;
}

std::string EncodeResponse(const ServerResponse& response) {
  std::string out = "{\"id\":";
  out += std::to_string(response.id);
  out += ",\"status\":";
  AppendJsonString(StatusCodeName(response.code), &out);
  if (!response.error.empty()) {
    out += ",\"error\":";
    AppendJsonString(response.error, &out);
  }
  out += ",\"cards\":{";
  bool first = true;
  for (const auto& [mask, card] : response.cards) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += std::to_string(mask);
    out += "\":";
    AppendJsonDouble(card, &out);
  }
  out += "}";
  out += ",\"cache_hits\":";
  out += std::to_string(response.cache_hits);
  out += ",\"cache_misses\":";
  out += std::to_string(response.cache_misses);
  if (response.code == StatusCode::kResourceExhausted) {
    out += ",\"queue_depth\":";
    out += std::to_string(response.queue_depth);
    out += ",\"retry_after_ms\":";
    AppendJsonDouble(response.retry_after_ms, &out);
  }
  out += ",\"elapsed_us\":";
  AppendJsonDouble(response.elapsed_us, &out);
  out += "}";
  return out;
}

Result<ServerRequest> DecodeRequest(const std::string& payload) {
  JsonParser parser(payload);
  CARDBENCH_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request is not a JSON object");
  }
  ServerRequest request;
  request.id = static_cast<uint64_t>(NumberOr(root.Find("id"), 0.0));
  request.estimator = StringOr(root.Find("estimator"), "");
  request.sql = StringOr(root.Find("sql"), "");
  request.subplan_mask = static_cast<uint64_t>(NumberOr(root.Find("mask"), 0.0));
  request.deadline_ms = NumberOr(root.Find("deadline_ms"), 0.0);
  if (request.estimator.empty()) {
    return Status::InvalidArgument("request missing \"estimator\"");
  }
  if (request.sql.empty()) {
    return Status::InvalidArgument("request missing \"sql\"");
  }
  if (request.deadline_ms < 0.0) {
    return Status::InvalidArgument("negative \"deadline_ms\"");
  }
  return request;
}

Result<ServerResponse> DecodeResponse(const std::string& payload) {
  JsonParser parser(payload);
  CARDBENCH_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("response is not a JSON object");
  }
  ServerResponse response;
  response.id = static_cast<uint64_t>(NumberOr(root.Find("id"), 0.0));
  response.code =
      StatusCodeFromName(StringOr(root.Find("status"), "Internal"));
  response.error = StringOr(root.Find("error"), "");
  response.cache_hits =
      static_cast<uint64_t>(NumberOr(root.Find("cache_hits"), 0.0));
  response.cache_misses =
      static_cast<uint64_t>(NumberOr(root.Find("cache_misses"), 0.0));
  response.queue_depth =
      static_cast<uint64_t>(NumberOr(root.Find("queue_depth"), 0.0));
  response.retry_after_ms = NumberOr(root.Find("retry_after_ms"), 0.0);
  response.elapsed_us = NumberOr(root.Find("elapsed_us"), 0.0);
  if (const JsonValue* cards = root.Find("cards");
      cards != nullptr && cards->kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : cards->object) {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("non-numeric card for mask " + key);
      }
      char* end = nullptr;
      const uint64_t mask = std::strtoull(key.c_str(), &end, 10);
      if (end == key.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad card mask key '" + key + "'");
      }
      response.cards[mask] = value.number;
    }
  }
  return response;
}

std::string EncodeFrame(const std::string& payload) {
  const uint32_t size = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameReader::Feed(const char* data, size_t size) {
  // Compact lazily: drop fully consumed prefix before growing the buffer.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Status FrameReader::Next(std::string* payload) {
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return Status::NotFound("no complete frame");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const uint32_t size = (static_cast<uint32_t>(p[0]) << 24) |
                        (static_cast<uint32_t>(p[1]) << 16) |
                        (static_cast<uint32_t>(p[2]) << 8) |
                        static_cast<uint32_t>(p[3]);
  if (size > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds the %u-byte cap", size,
                  kMaxFrameBytes));
  }
  if (available < 4 + static_cast<size_t>(size)) {
    return Status::NotFound("no complete frame");
  }
  payload->assign(buffer_, consumed_ + 4, size);
  consumed_ += 4 + static_cast<size_t>(size);
  return Status::OK();
}

bool FrameReader::LooksLikeHttpGet() const {
  const size_t available = buffer_.size() - consumed_;
  static constexpr char kGet[] = "GET ";
  const size_t check = available < 4 ? available : 4;
  return check > 0 &&
         std::memcmp(buffer_.data() + consumed_, kGet, check) == 0;
}

}  // namespace cardbench
