#include "server/protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/json.h"
#include "common/str_util.h"

namespace cardbench {
namespace {

// Local spellings: the protocol predates common/json and reads better with
// the short names.
constexpr auto NumberOr = JsonNumberOr;
constexpr auto StringOr = JsonStringOr;

}  // namespace

StatusCode StatusCodeFromName(const std::string& name) {
  static const std::unordered_map<std::string, StatusCode> kCodes = [] {
    std::unordered_map<std::string, StatusCode> codes;
    for (StatusCode code : {
             StatusCode::kOk, StatusCode::kInvalidArgument,
             StatusCode::kNotFound, StatusCode::kAlreadyExists,
             StatusCode::kOutOfRange, StatusCode::kUnsupported,
             StatusCode::kInternal, StatusCode::kIOError,
             StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
             StatusCode::kUnavailable}) {
      codes.emplace(StatusCodeName(code), code);
    }
    return codes;
  }();
  auto it = kCodes.find(name);
  return it == kCodes.end() ? StatusCode::kInternal : it->second;
}

std::string EncodeRequest(const ServerRequest& request) {
  std::string out = "{\"id\":";
  out += std::to_string(request.id);
  out += ",\"estimator\":";
  AppendJsonString(request.estimator, &out);
  out += ",\"sql\":";
  AppendJsonString(request.sql, &out);
  if (request.subplan_mask != 0) {
    out += ",\"mask\":";
    out += std::to_string(request.subplan_mask);
  }
  if (request.deadline_ms > 0.0) {
    out += ",\"deadline_ms\":";
    AppendJsonDouble(request.deadline_ms, &out);
  }
  out += "}";
  return out;
}

std::string EncodeResponse(const ServerResponse& response) {
  std::string out = "{\"id\":";
  out += std::to_string(response.id);
  out += ",\"status\":";
  AppendJsonString(StatusCodeName(response.code), &out);
  if (!response.error.empty()) {
    out += ",\"error\":";
    AppendJsonString(response.error, &out);
  }
  out += ",\"cards\":{";
  bool first = true;
  for (const auto& [mask, card] : response.cards) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += std::to_string(mask);
    out += "\":";
    AppendJsonDouble(card, &out);
  }
  out += "}";
  out += ",\"cache_hits\":";
  out += std::to_string(response.cache_hits);
  out += ",\"cache_misses\":";
  out += std::to_string(response.cache_misses);
  if (response.model_version != 0) {
    out += ",\"model_version\":";
    out += std::to_string(response.model_version);
  }
  if (response.code == StatusCode::kResourceExhausted) {
    out += ",\"queue_depth\":";
    out += std::to_string(response.queue_depth);
    out += ",\"retry_after_ms\":";
    AppendJsonDouble(response.retry_after_ms, &out);
  }
  out += ",\"elapsed_us\":";
  AppendJsonDouble(response.elapsed_us, &out);
  out += "}";
  return out;
}

Result<ServerRequest> DecodeRequest(const std::string& payload) {
  JsonParser parser(payload);
  CARDBENCH_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request is not a JSON object");
  }
  ServerRequest request;
  request.id = static_cast<uint64_t>(NumberOr(root.Find("id"), 0.0));
  request.estimator = StringOr(root.Find("estimator"), "");
  request.sql = StringOr(root.Find("sql"), "");
  request.subplan_mask = static_cast<uint64_t>(NumberOr(root.Find("mask"), 0.0));
  request.deadline_ms = NumberOr(root.Find("deadline_ms"), 0.0);
  if (request.estimator.empty()) {
    return Status::InvalidArgument("request missing \"estimator\"");
  }
  if (request.sql.empty()) {
    return Status::InvalidArgument("request missing \"sql\"");
  }
  if (request.deadline_ms < 0.0) {
    return Status::InvalidArgument("negative \"deadline_ms\"");
  }
  return request;
}

Result<ServerResponse> DecodeResponse(const std::string& payload) {
  JsonParser parser(payload);
  CARDBENCH_ASSIGN_OR_RETURN(const JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("response is not a JSON object");
  }
  ServerResponse response;
  response.id = static_cast<uint64_t>(NumberOr(root.Find("id"), 0.0));
  response.code =
      StatusCodeFromName(StringOr(root.Find("status"), "Internal"));
  response.error = StringOr(root.Find("error"), "");
  response.cache_hits =
      static_cast<uint64_t>(NumberOr(root.Find("cache_hits"), 0.0));
  response.cache_misses =
      static_cast<uint64_t>(NumberOr(root.Find("cache_misses"), 0.0));
  response.model_version =
      static_cast<uint64_t>(NumberOr(root.Find("model_version"), 0.0));
  response.queue_depth =
      static_cast<uint64_t>(NumberOr(root.Find("queue_depth"), 0.0));
  response.retry_after_ms = NumberOr(root.Find("retry_after_ms"), 0.0);
  response.elapsed_us = NumberOr(root.Find("elapsed_us"), 0.0);
  if (const JsonValue* cards = root.Find("cards");
      cards != nullptr && cards->kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : cards->object) {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("non-numeric card for mask " + key);
      }
      char* end = nullptr;
      const uint64_t mask = std::strtoull(key.c_str(), &end, 10);
      if (end == key.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad card mask key '" + key + "'");
      }
      response.cards[mask] = value.number;
    }
  }
  return response;
}

std::string EncodeFrame(const std::string& payload) {
  const uint32_t size = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame.append(payload);
  return frame;
}

void FrameReader::Feed(const char* data, size_t size) {
  // Compact lazily: drop fully consumed prefix before growing the buffer.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Status FrameReader::Next(std::string* payload) {
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return Status::NotFound("no complete frame");
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  const uint32_t size = (static_cast<uint32_t>(p[0]) << 24) |
                        (static_cast<uint32_t>(p[1]) << 16) |
                        (static_cast<uint32_t>(p[2]) << 8) |
                        static_cast<uint32_t>(p[3]);
  if (size > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds the %u-byte cap", size,
                  kMaxFrameBytes));
  }
  if (available < 4 + static_cast<size_t>(size)) {
    return Status::NotFound("no complete frame");
  }
  payload->assign(buffer_, consumed_ + 4, size);
  consumed_ += 4 + static_cast<size_t>(size);
  return Status::OK();
}

bool FrameReader::LooksLikeHttpGet() const {
  const size_t available = buffer_.size() - consumed_;
  static constexpr char kGet[] = "GET ";
  const size_t check = available < 4 ? available : 4;
  return check > 0 &&
         std::memcmp(buffer_.data() + consumed_, kGet, check) == 0;
}

}  // namespace cardbench
