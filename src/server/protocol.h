#ifndef CARDBENCH_SERVER_PROTOCOL_H_
#define CARDBENCH_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cardbench {

/// Wire protocol of cardserved, and the request/response vocabulary shared
/// by every serving front-end (the network server, the cardserve CLI and
/// the socket load driver all speak these structs — one protocol
/// definition, three transports).
///
/// Framing: every message is a 4-byte big-endian payload length followed by
/// a UTF-8 JSON object. The length prefix of a well-formed frame can never
/// spell ASCII "GET " (0x47455420 ≈ 1.2GB, far above kMaxFrameBytes), which
/// is how the server tells a plain HTTP `GET /metrics` probe apart from a
/// binary client on the same port.
///
///   request  {"id":7,"estimator":"PostgreSQL","sql":"SELECT ...",
///             "mask":0,"deadline_ms":50}
///   response {"id":7,"status":"OK","cards":{"1":42.0,"3":7.5},
///             "cache_hits":2,"cache_misses":1,"elapsed_us":913.2}
///
/// Errors are structured: a rejected request answers with
/// {"status":"ResourceExhausted","error":...,"queue_depth":256,
///  "retry_after_ms":3.1} — the admission-control contract is "reject with
/// data, never hang".

/// Hard cap on a frame payload. A length above this (or a negative JSON
/// nesting depth, etc.) is a protocol violation and closes the connection.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// One estimation request as carried on the wire.
struct ServerRequest {
  /// Client-chosen correlation id, echoed verbatim in the response, so
  /// responses may complete out of order on a pipelined connection.
  uint64_t id = 0;
  /// Registered estimator name ("PostgreSQL", "MSCN", ...).
  std::string estimator;
  /// SQL text of the query; the server compiles it once to a QueryGraph.
  std::string sql;
  /// Connected-sub-plan selector; 0 requests every connected sub-plan
  /// (kAllSubplans, the planner-visit unit).
  uint64_t subplan_mask = 0;
  /// Per-request wall-clock budget in milliseconds; 0 = no deadline. The
  /// service aborts estimation at the next budget check past the deadline
  /// and answers DeadlineExceeded.
  double deadline_ms = 0.0;
};

/// One estimation response as carried on the wire.
struct ServerResponse {
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  /// Human-readable error detail; empty when code == kOk.
  std::string error;
  /// Sub-plan estimates, bitmask-keyed (ordered map: deterministic wire
  /// bytes for identical answers).
  std::map<uint64_t, double> cards;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Version of the model that answered (0 when no estimator was reached,
  /// e.g. rejections and unknown-estimator errors). Lets clients attribute
  /// estimate changes across hot-swaps and detect stale replicas.
  uint64_t model_version = 0;
  /// Queue depth observed at rejection time (ResourceExhausted only).
  uint64_t queue_depth = 0;
  /// Backoff hint for rejected requests, in milliseconds (ResourceExhausted
  /// only; 0 otherwise).
  double retry_after_ms = 0.0;
  /// Server-side processing time in microseconds (admission to response
  /// marshalling), for client-observed queueing-delay attribution.
  double elapsed_us = 0.0;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, error);
  }
};

/// Parses the stable code spelling emitted by StatusCodeName; unknown
/// spellings map to kInternal (never silently OK).
StatusCode StatusCodeFromName(const std::string& name);

/// JSON object payloads (no frame prefix).
std::string EncodeRequest(const ServerRequest& request);
std::string EncodeResponse(const ServerResponse& response);
Result<ServerRequest> DecodeRequest(const std::string& payload);
Result<ServerResponse> DecodeResponse(const std::string& payload);

/// Wraps `payload` in the 4-byte big-endian length frame.
std::string EncodeFrame(const std::string& payload);

/// Incremental frame decoder for a byte stream: feed whatever the socket
/// delivered, pull complete payloads out. Tolerates arbitrary fragmentation
/// (a frame split across reads, several frames in one read).
class FrameReader {
 public:
  /// Appends raw bytes from the transport.
  void Feed(const char* data, size_t size);

  /// Extracts the next complete payload into `payload`. Returns:
  ///   kOk       — one payload extracted, call again (more may be buffered)
  ///   kNotFound — no complete frame buffered yet (read more bytes)
  ///   kInvalidArgument — framing violation (oversized length); the stream
  ///                      can no longer be trusted and must be closed.
  Status Next(std::string* payload);

  /// True once buffered bytes start with an ASCII HTTP "GET " — the metrics
  /// probe path. Only meaningful before any successful Next().
  bool LooksLikeHttpGet() const;

  /// Unconsumed buffered bytes (HTTP mode reads the request line here).
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ already handed out
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVER_PROTOCOL_H_
