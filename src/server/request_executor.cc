#include "server/request_executor.h"

#include <future>
#include <utility>

#include "common/stopwatch.h"
#include "query/parser.h"

namespace cardbench {

RequestExecutor::RequestExecutor(EstimationService& service,
                                 const Database& db,
                                 size_t graph_cache_capacity)
    : service_(service),
      db_(db),
      cache_capacity_(graph_cache_capacity == 0 ? 1 : graph_cache_capacity) {}

Result<std::shared_ptr<const QueryGraph>> RequestExecutor::Compile(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = graphs_.find(sql);
    if (it != graphs_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.graph;
    }
  }
  // Compile outside the lock: parsing + graph construction is the expensive
  // part and must not serialize concurrent misses on different queries.
  CARDBENCH_ASSIGN_OR_RETURN(const Query query, ParseSql(sql));
  CARDBENCH_RETURN_IF_ERROR(ValidateQuery(query, db_));
  auto graph = std::make_shared<const QueryGraph>(query, db_);

  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = graphs_.find(sql);
  if (it != graphs_.end()) {
    // A concurrent miss won the insert race; keep its graph (estimates are
    // deterministic either way, this only avoids holding two copies).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.graph;
  }
  lru_.push_front(sql);
  graphs_.emplace(sql, CachedGraph{graph, lru_.begin()});
  while (graphs_.size() > cache_capacity_) {
    graphs_.erase(lru_.back());
    lru_.pop_back();
  }
  return graph;
}

size_t RequestExecutor::graph_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return graphs_.size();
}

ServerResponse RequestExecutor::ErrorResponse(const ServerRequest& request,
                                              const Status& status) const {
  ServerResponse response;
  response.id = request.id;
  response.code = status.code();
  response.error = status.message();
  if (status.code() == StatusCode::kResourceExhausted) {
    response.queue_depth = service_.queue_size();
    response.retry_after_ms = service_.SuggestedRetrySeconds() * 1e3;
  }
  return response;
}

void RequestExecutor::ExecuteAsync(const ServerRequest& request,
                                   std::function<void(ServerResponse)> done) {
  Stopwatch watch;
  auto compiled = Compile(request.sql);
  if (!compiled.ok()) {
    done(ErrorResponse(request, compiled.status()));
    return;
  }
  std::shared_ptr<const QueryGraph> graph = std::move(*compiled);
  if (request.subplan_mask != 0) {
    if ((request.subplan_mask & graph->full_mask()) != request.subplan_mask) {
      done(ErrorResponse(
          request,
          Status::InvalidArgument("subplan mask selects absent tables")));
      return;
    }
    if (!graph->IsConnected(request.subplan_mask)) {
      done(ErrorResponse(
          request,
          Status::InvalidArgument("subplan mask is not connected")));
      return;
    }
  }

  EstimateRequest estimate;
  estimate.estimator = request.estimator;
  estimate.graph = graph.get();
  estimate.subplan_mask = request.subplan_mask;  // 0 == kAllSubplans
  estimate.timeout_seconds = request.deadline_ms * 1e-3;

  // The graph shared_ptr rides in the callback, keeping the borrowed
  // pointer inside the service alive until the response is delivered.
  // `done` is captured by copy: on a queue-full rejection the service
  // destroys the un-run callback and the rejection branch below still needs
  // its own copy to answer with.
  const uint64_t id = request.id;
  Status submitted = service_.Submit(
      std::move(estimate),
      [graph, id, watch, done](EstimateResponse result) {
        ServerResponse response;
        response.id = id;
        response.code = result.status.code();
        response.error = result.status.message();
        response.cache_hits = result.cache_hits;
        response.cache_misses = result.cache_misses;
        response.model_version = result.model_version;
        for (const auto& [mask, card] : result.cards) {
          response.cards[mask] = card;
        }
        response.elapsed_us = watch.ElapsedMicros();
        done(std::move(response));
      });
  if (!submitted.ok()) {
    ServerResponse response = ErrorResponse(request, submitted);
    response.elapsed_us = watch.ElapsedMicros();
    done(std::move(response));
  }
}

ServerResponse RequestExecutor::ExecuteSync(const ServerRequest& request) {
  std::promise<ServerResponse> promise;
  std::future<ServerResponse> future = promise.get_future();
  ExecuteAsync(request, [&promise](ServerResponse response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

}  // namespace cardbench
