#ifndef CARDBENCH_SERVER_REQUEST_EXECUTOR_H_
#define CARDBENCH_SERVER_REQUEST_EXECUTOR_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "query/query_graph.h"
#include "server/protocol.h"
#include "service/estimation_service.h"
#include "storage/catalog.h"

namespace cardbench {

/// The one place a ServerRequest is turned into an EstimateResponse —
/// shared by the network server (async) and the cardserve CLI (sync), so
/// both paths parse, validate, compile and dispatch identically.
///
/// Compilation is memoized: SQL text maps to a shared immutable QueryGraph
/// through a bounded LRU, so a workload replay compiles each query once and
/// every later request rides the resolve-once IR (the same
/// "compile once, estimate many" contract the in-process harness enjoys).
class RequestExecutor {
 public:
  /// `service` and `db` are borrowed and must outlive the executor.
  RequestExecutor(EstimationService& service, const Database& db,
                  size_t graph_cache_capacity = 512);

  /// Parses + validates `sql` and compiles (or recalls) its QueryGraph.
  /// The returned graph is shared: it stays valid while any caller holds
  /// the pointer, even across cache eviction.
  Result<std::shared_ptr<const QueryGraph>> Compile(const std::string& sql);

  /// Executes `request` and delivers the response through `done`, exactly
  /// once. Parse/validation errors and admission rejections are answered
  /// synchronously (from the calling thread); accepted requests complete
  /// later on a service worker thread. The rejection path never blocks —
  /// a full queue answers ResourceExhausted with the observed queue depth
  /// and the service's retry-after hint.
  void ExecuteAsync(const ServerRequest& request,
                    std::function<void(ServerResponse)> done);

  /// Blocking convenience over ExecuteAsync (the CLI path).
  ServerResponse ExecuteSync(const ServerRequest& request);

  EstimationService& service() { return service_; }

  size_t graph_cache_size() const;

 private:
  ServerResponse ErrorResponse(const ServerRequest& request,
                               const Status& status) const;

  EstimationService& service_;
  const Database& db_;

  mutable std::mutex cache_mu_;
  size_t cache_capacity_;
  /// LRU order: front = most recent. The map owns iterators into the list.
  std::list<std::string> lru_;
  struct CachedGraph {
    std::shared_ptr<const QueryGraph> graph;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CachedGraph> graphs_;
};

}  // namespace cardbench

#endif  // CARDBENCH_SERVER_REQUEST_EXECUTOR_H_
